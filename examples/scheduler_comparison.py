#!/usr/bin/env python3
"""Scheduler showdown: TSE vs Linux vs the Evans et al. SVR4/IA baseline.

Reproduces the paper's §4 narrative as a single runnable study:

* idle-state compulsory load (Figures 1-2): what each OS burns with
  nobody logged in, and the event durations a user can collide with;
* dynamic load (Figure 3): keystroke stalls as sink processes pile up;
* the scheduler that fixes it: the SVR4 interactive class keeps stalls
  flat to load 20, as Evans et al. demonstrated in 1993 — and as neither
  1999 production system did.

Run:  python examples/scheduler_comparison.py
"""

from repro.core import format_table
from repro.cpu import OS_NAMES, run_idle_experiment
from repro.workloads import run_stall_experiment


def idle_state() -> None:
    rows = []
    for os_name in OS_NAMES:
        result = run_idle_experiment(os_name, duration_ms=300_000.0, seed=0)
        durations = result.event_durations_ms
        rows.append(
            (
                os_name,
                f"{result.total_lost_time_ms / 1000:.1f}s",
                f"{result.idle_utilization * 100:.2f}%",
                f"{max(durations):.0f}ms",
            )
        )
    print(
        format_table(
            ["system", "lost time / 5min", "idle util", "longest event"],
            rows,
            title="Idle-state compulsory load (Figures 1-2)",
        )
    )
    print(
        "   TSE burns ~3x NT Workstation and ~7x Linux while doing nothing;\n"
        "   its 250-400ms service events are individually perceptible.\n"
    )


def loaded_state() -> None:
    loads = [0, 5, 10, 15, 20]
    stalls = {}
    for os_name in ("nt_tse", "linux", "svr4"):
        results = run_stall_experiment(
            os_name, loads, duration_ms=30_000.0, seed=0
        )
        stalls[os_name] = {r.queue_length: r for r in results}
    rows = []
    for n in loads:
        rows.append(
            [n]
            + [
                f"{stalls[o][n].average_stall_ms:.0f}"
                for o in ("nt_tse", "linux", "svr4")
            ]
        )
    print(
        format_table(
            ["sinks", "TSE stall (ms)", "Linux stall (ms)", "SVR4/IA stall (ms)"],
            rows,
            title="Keystroke stalls vs CPU load (Figure 3 + Evans baseline)",
        )
    )
    print(
        "   TSE collapses near 15 sinks (the paper: 'barely usable');\n"
        "   Linux degrades linearly; the interactive class stays flat —\n"
        "   the improvement the paper laments no production Unix adopted."
    )


def main() -> None:
    idle_state()
    loaded_state()


if __name__ == "__main__":
    main()
