#!/usr/bin/env python3
"""Animation, the bitmap cache, and the web: the paper's §6.1.3 story.

Walks the full arc of the paper's network-animation analysis:

1. a 10-frame GIF over X, LBX, and RDP (Figure 5) — caching beats
   compression beats nothing;
2. the synthetic MSNBC-style page (Figure 4) — two animations that each
   fit the 1.5 MB client cache overflow it together, and load explodes
   non-linearly;
3. the frame-count sweep (Figure 7) — LRU's looping-animation cliff;
4. the fix the paper suggests: loop-aware eviction, which removes the
   cliff entirely.

Run:  python examples/animation_cache_study.py
"""

from repro.core import format_table, sparkline
from repro.workloads import (
    run_frame_count_sweep,
    run_gif_protocol_comparison,
    run_webpage_experiment,
)


def gif_over_protocols() -> None:
    results = run_gif_protocol_comparison(duration_ms=5_000.0)
    rows = []
    for name in ("x", "lbx", "rdp"):
        result = results[name]
        __, series = result.load_series(window_ms=100.0)
        rows.append(
            (name, f"{result.average_mbps(500.0):.3f}", sparkline(series[5:45]))
        )
    print(
        format_table(
            ["protocol", "steady Mbps", "load shape"],
            rows,
            title="1. A 10-frame 20 Hz GIF (Figure 5): cache > compression > X",
        )
    )
    print()


def synthetic_webpage() -> None:
    rows = []
    for variant in ("marquee", "banner", "both"):
        result = run_webpage_experiment(variant, duration_ms=120_000.0)
        rows.append((variant, f"{result.average_mbps():.3f}"))
    print(
        format_table(
            ["page variant", "avg Mbps"],
            rows,
            title="2. The synthetic web page (Figure 4): "
            "combined load is wildly non-additive",
        )
    )
    print(
        "   At ~1+ Mbps per browsing user, five of them saturate a 10 Mbps\n"
        "   Ethernet — the paper's capacity warning.\n"
    )


def cache_cliff_and_fix() -> None:
    frame_counts = [50, 60, 65, 66, 70, 85, 100]
    lru = dict(run_frame_count_sweep(frame_counts, duration_ms=60_000.0))
    aware = dict(
        run_frame_count_sweep(
            frame_counts, duration_ms=60_000.0, loop_aware_cache=True
        )
    )
    print(
        format_table(
            ["frames", "LRU Mbps", "loop-aware Mbps"],
            [(n, f"{lru[n]:.3f}", f"{aware[n]:.3f}") for n in frame_counts],
            title="3+4. The LRU cliff (Figure 7) and the loop-aware fix",
        )
    )
    print(
        "   LRU falls off a two-orders-of-magnitude cliff at 66 frames\n"
        "   (1.5 MB / 23,868 B per frame = 65 cacheable frames); detecting\n"
        "   the loop and evicting MRU keeps a stable subset resident."
    )


def main() -> None:
    gif_over_protocols()
    synthetic_webpage()
    cache_cliff_and_fix()


if __name__ == "__main__":
    main()
