#!/usr/bin/env python3
"""A tour of the paper's evaluation framework as an API (§3).

The paper's methodological contribution is a structured way to evaluate
thin-client operating systems: pick a resource, decompose the load on it
into compulsory and dynamic parts, then measure how the OS turns that load
into user-perceived latency.  This example expresses one study per
resource in those terms using :mod:`repro.core.framework` — the same
studies the benchmarks run, but organized the way §3 presents them.

Run:  python examples/framework_tour.py
"""

from repro.core import (
    LoadKind,
    LoadProfile,
    LoadSource,
    Resource,
    ResourceStudy,
    format_table,
)
from repro.cpu import idle_profile
from repro.memory import run_memory_latency_experiment
from repro.net import run_ping_experiment
from repro.workloads import run_stall_experiment


def processor_study(os_name: str, sinks: int) -> ResourceStudy:
    """§4: compulsory idle load + sink load -> keystroke stalls."""
    load = LoadProfile(Resource.PROCESSOR)
    compulsory = idle_profile(os_name).expected_busy(1000.0) / 1000.0
    load.add(
        LoadSource(
            "idle services", LoadKind.COMPULSORY, Resource.PROCESSOR, compulsory
        )
    )
    load.add(
        LoadSource("sinks", LoadKind.DYNAMIC, Resource.PROCESSOR, float(sinks))
    )

    def probe():
        (result,) = run_stall_experiment(
            os_name, [sinks], duration_ms=20_000.0
        )
        # Stall instances are the perceptible tail; pad with the baseline
        # 50 ms cadence for non-stalled updates so fractions are honest.
        return result.stalls_ms or [0.1]

    return ResourceStudy(
        name=f"{os_name}: cpu @{sinks} sinks",
        resource=Resource.PROCESSOR,
        load=load,
        probe=probe,
    )


def memory_study(os_name: str) -> ResourceStudy:
    """§5: per-login compulsory memory + a streaming hog -> paging stalls."""
    from repro.memory import idle_memory_bytes, session_profile

    load = LoadProfile(Resource.MEMORY)
    load.add(
        LoadSource(
            "os base",
            LoadKind.COMPULSORY,
            Resource.MEMORY,
            float(idle_memory_bytes(os_name)),
        )
    )
    load.add(
        LoadSource(
            "login",
            LoadKind.COMPULSORY,
            Resource.MEMORY,
            float(session_profile(os_name).total_bytes),
        )
    )

    def probe():
        result = run_memory_latency_experiment(os_name, 1.2, runs=10)
        return result.latencies_ms

    return ResourceStudy(
        name=f"{os_name}: memory @120% demand",
        resource=Resource.MEMORY,
        load=load,
        probe=probe,
    )


def network_study(offered_mbps: float) -> ResourceStudy:
    """§6: synthetic offered load -> input-channel RTT."""
    load = LoadProfile(Resource.NETWORK)
    load.add(
        LoadSource(
            "synthetic traffic", LoadKind.DYNAMIC, Resource.NETWORK, offered_mbps
        )
    )

    def probe():
        (result,) = run_ping_experiment(
            [offered_mbps], duration_ms=30_000.0
        )
        return result.rtts_ms

    return ResourceStudy(
        name=f"network @{offered_mbps} Mbps",
        resource=Resource.NETWORK,
        load=load,
        probe=probe,
    )


def main() -> None:
    studies = [
        processor_study("nt_tse", 15),
        processor_study("linux", 15),
        memory_study("nt_tse"),
        memory_study("linux"),
        network_study(2.0),
        network_study(9.6),
    ]
    rows = []
    for study in studies:
        # ResourceStudy is a Runnable: study.run() evaluates its probe (and
        # takes threshold_ms=... to re-assess without rebuilding the study).
        result = study.run()
        a = result.assessment
        rows.append(
            (
                result.name,
                result.resource.value,
                f"{a.summary.average:.0f}ms",
                f"{a.worst_case_factor:.1f}x",
                f"{a.perceptible_fraction * 100:.0f}%",
                "yes" if a.acceptable else "no",
            )
        )
    print(
        format_table(
            ["study", "resource", "avg latency", "worst vs 100ms", "perceptible", "ok?"],
            rows,
            title="The behaviour → load → latency framework, one study per resource",
        )
    )
    print()
    print(
        "Each row follows §3's recipe: decompose the load (compulsory vs\n"
        "dynamic), run the latency-sensitive operation, and assess against\n"
        "the 100 ms perception threshold in all three of the paper's ways —\n"
        "worst-case excess, fraction perceptible, and jitter."
    )


if __name__ == "__main__":
    main()
