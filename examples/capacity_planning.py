#!/usr/bin/env python3
"""Capacity planning: how many users fit on a thin-client server?

The paper (§3.1): "those interested in deploying interface services need
to know the maximum number of concurrent users their servers can support
given some hardware configuration."  This example plans capacity for three
user classes on several hardware configurations, showing how the binding
resource shifts:

* task workers are memory-limited on small boxes;
* web-browsing users saturate a 10 Mbps Ethernet at five — the paper's
  §6.1.3 warning — and upgrading the network moves the bottleneck to CPU.

It then validates one analytic cell against the full simulation by
actually running that many typing users on a simulated server.

Run:  python examples/capacity_planning.py
"""

from repro.core import ServerConfig, ThinClientServer, format_table, plan_capacity
from repro.units import mb
from repro.workloads import KNOWLEDGE_WORKER, TASK_WORKER, WEB_BROWSER_USER

HARDWARE = {
    "small (128MB, 10Mbps, 1cpu)": dict(
        physical_bytes=mb(128), bandwidth_mbps=10.0, cpu_count=1
    ),
    "big-ram (512MB, 10Mbps, 1cpu)": dict(
        physical_bytes=mb(512), bandwidth_mbps=10.0, cpu_count=1
    ),
    "fast-net (512MB, 100Mbps, 1cpu)": dict(
        physical_bytes=mb(512), bandwidth_mbps=100.0, cpu_count=1
    ),
    "smp (512MB, 100Mbps, 4cpu)": dict(
        physical_bytes=mb(512), bandwidth_mbps=100.0, cpu_count=4
    ),
}


def plan_tables() -> None:
    for os_name in ("nt_tse", "linux"):
        rows = []
        for hw_name, hw in HARDWARE.items():
            for profile in (TASK_WORKER, KNOWLEDGE_WORKER, WEB_BROWSER_USER):
                report = plan_capacity(os_name, profile, **hw)
                rows.append(
                    (
                        hw_name,
                        profile.name,
                        report.max_users,
                        report.limiting_resource,
                    )
                )
        print(
            format_table(
                ["hardware", "user class", "max users", "limited by"],
                rows,
                title=f"Capacity plan: {os_name}",
            )
        )
        print()


def validate_against_simulation() -> None:
    """Run 8 typing task-workers on a small TSE box: latency stays sane."""
    server = ThinClientServer(ServerConfig.tse(), seed=11)
    sessions = [server.connect(f"user{i}") for i in range(8)]
    server.run(1_000.0)
    for session in sessions:
        session.start_typing()
    server.run(20_000.0)
    for session in sessions:
        session.stop_typing()
    server.run(2_000.0)
    latencies = [s.client.assessment().summary.average for s in sessions]
    print(
        format_table(
            ["validation", "value"],
            [
                ("concurrent typing users", len(sessions)),
                ("worst per-user avg latency", f"{max(latencies):.1f} ms"),
                ("server CPU utilization", f"{server.cpu.utilization(1_000.0, 21_000.0) * 100:.1f}%"),
                ("link utilization", f"{server.link.utilization(1_000.0, 21_000.0) * 100:.2f}%"),
            ],
            title="Full-simulation check: 8 task workers on TSE",
        )
    )


def main() -> None:
    plan_tables()
    validate_against_simulation()


if __name__ == "__main__":
    main()
