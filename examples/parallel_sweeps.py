#!/usr/bin/env python3
"""Parallel, cached parameter sweeps with :mod:`repro.exec`.

Every experiment in this package is a deterministic pure function of
(configuration, seed).  That buys two things for free, and this example
demonstrates both on the Figure 8 RTT sweep:

* **parallelism** — sweep points fan out to worker processes and merge
  back by parameter index, so the result table is bit-identical to a
  serial run no matter how many workers raced;
* **caching** — finished points persist to disk keyed by (experiment,
  value, seed, version), so re-running the sweep replays instantly and
  only *changed* points recompute.

The same engine backs the CLI (``python -m repro run all --jobs 8
--cache-dir .repro-cache``); here it drives a plain
:class:`~repro.core.ParameterSweep` directly.

Run:  python examples/parallel_sweeps.py
"""

import tempfile
import time

from repro.core import ParameterSweep, format_table
from repro.exec import SweepExecutor
from repro.net import run_ping_experiment

LOAD_LEVELS = [0.0, 2.0, 4.0, 6.0, 8.0, 9.0, 9.6]
DURATION_MS = 20_000.0


def mean_rtt_ms(offered_mbps: float) -> float:
    """One sweep point: mean ping RTT under this much offered load.

    Module-level (hence picklable) so the process backend can ship it to
    workers; a lambda would make the executor quietly fall back to serial.
    """
    (result,) = run_ping_experiment(
        [offered_mbps], duration_ms=DURATION_MS, seed=0
    )
    return result.mean_rtt_ms


def timed(label: str, executor: SweepExecutor, sweep: ParameterSweep):
    start = time.perf_counter()
    result = sweep.execute(LOAD_LEVELS, executor=executor, seed=0)
    elapsed = time.perf_counter() - start
    backend = executor.last_backend_used
    cache = executor.cache
    cached = cache.stats.hits if cache is not None else 0
    return result, (label, backend, f"{elapsed:.2f}s", cached)


def main() -> None:
    sweep = ParameterSweep("ping-rtt", "offered_mbps", mean_rtt_ms)
    with tempfile.TemporaryDirectory() as cache_dir:
        serial, row_serial = timed(
            "serial, cold", SweepExecutor(backend="serial"), sweep
        )
        parallel, row_parallel = timed(
            "process x4, cold",
            SweepExecutor(backend="process", jobs=4, cache=cache_dir),
            sweep,
        )
        cached, row_cached = timed(
            "any backend, warm cache",
            SweepExecutor(backend="process", jobs=4, cache=cache_dir),
            sweep,
        )

    assert parallel.rows == serial.rows, "parallel must reproduce serial"
    assert cached.rows == serial.rows, "cache must reproduce the computation"

    print(
        format_table(
            ["run", "backend", "wall time", "cache hits"],
            [row_serial, row_parallel, row_cached],
            title="One sweep, three ways (identical results each time)",
        )
    )
    print()
    print(
        format_table(
            ["offered Mbps", "mean RTT (ms)"],
            [(level, f"{rtt:.2f}") for level, rtt in serial.rows],
            title="The sweep itself (Figure 8's shape, shortened)",
        )
    )


if __name__ == "__main__":
    main()
