#!/usr/bin/env python3
"""Quickstart: stand up a thin-client server and measure what a user feels.

This example builds the paper's two systems — NT TSE serving RDP and Linux
serving X — logs a user into each, lets them type at the 20 Hz key-repeat
rate, and reports **user-perceived latency** (the paper's §3.2 criterion)
with and without competing CPU load.

Run:  python examples/quickstart.py
"""

from repro.core import ServerConfig, ThinClientServer, format_table
from repro.workloads import SinkFleet


def measure(config: ServerConfig, sinks: int, seed: int = 0):
    """One server, one typing user, N competing sink processes."""
    server = ThinClientServer(config, seed=seed)
    if sinks:
        # Sinks launched inside sessions are foreground-class on NT.
        SinkFleet(server.cpu, sinks, foreground=True)
    session = server.connect("user")
    server.run(1_000.0)  # session settles
    session.start_typing()  # 20 Hz key repeat
    server.run(30_000.0)
    session.stop_typing()
    server.run(2_000.0)  # drain in-flight echoes
    return session.client.assessment()


def main() -> None:
    systems = {
        "TSE/RDP": ServerConfig.tse(),
        "Linux/X": ServerConfig.linux(),
        "Linux/LBX": ServerConfig.linux_lbx(),
    }
    rows = []
    for name, config in systems.items():
        for sinks in (0, 10):
            a = measure(config, sinks)
            rows.append(
                (
                    name,
                    sinks,
                    f"{a.summary.average:.1f}",
                    f"{a.summary.maximum:.1f}",
                    f"{a.perceptible_fraction * 100:.0f}%",
                    f"{a.jitter_ms:.1f}",
                )
            )
    print(
        format_table(
            [
                "system",
                "sinks",
                "avg latency (ms)",
                "max (ms)",
                "perceptible",
                "jitter (ms)",
            ],
            rows,
            title="Keystroke echo latency, 30 s of 20 Hz typing "
            "(perception threshold: 100 ms)",
        )
    )
    print()
    print(
        "Idle servers answer in a few ms; a dozen competing CPU hogs push\n"
        "TSE's echoes deep into perceptible territory while Linux degrades\n"
        "more gently — Figure 3's finding, reproduced end to end."
    )


if __name__ == "__main__":
    main()
