#!/usr/bin/env python3
"""The think-time paging pathology, and the throttling cure (§5.2).

A user loads a document, reads for a while, and scrolls.  During the
think time, a streaming job (an NFS copy, a compile, a /tmp writer) pages
the editor to disk; the next keystroke costs seconds.  The paper measures
averages of 1,170 ms on Linux and 4,026 ms on TSE — 11x and 40x the
threshold of human perception — and points to Evans et al.'s
non-interactive throttling as the demonstrated fix.

This example reproduces the table, then re-runs it on the throttled VM.

Run:  python examples/memory_pathology.py
"""

from repro.core import PERCEPTION_THRESHOLD_MS, format_table
from repro.memory import run_memory_latency_experiment


def run_table(throttled: bool):
    rows = []
    for os_name in ("linux", "nt_tse"):
        for demand, label in ((0.5, "<100%"), (1.2, ">=100%")):
            result = run_memory_latency_experiment(
                os_name, demand, runs=10, seed=0, throttled=throttled
            )
            s = result.summary
            rows.append(
                (
                    os_name,
                    label,
                    f"{s.minimum:,.0f}",
                    f"{s.average:,.0f}",
                    f"{s.maximum:,.0f}",
                    f"{s.average / PERCEPTION_THRESHOLD_MS:.1f}x",
                )
            )
    return rows


def main() -> None:
    headers = ["OS", "page demand", "min ms", "avg ms", "max ms", "vs perception"]
    print(
        format_table(
            headers,
            run_table(throttled=False),
            title="Keystroke response after a 30 s memory stream "
            "(plain LRU paging, 10 runs)",
        )
    )
    print()
    print(
        format_table(
            headers,
            run_table(throttled=True),
            title="Same experiment with interactive working-set protection "
            "+ streamer throttling (Evans et al.)",
        )
    )
    print()
    print(
        "Throttling pins the interactive session's pages through the\n"
        "stream: the keystroke stays at the 50 ms baseline at any demand."
    )


if __name__ == "__main__":
    main()
