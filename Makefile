# Convenience targets for the repro package.

.PHONY: install test bench repro-all examples clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only -s

repro-all:
	python -m repro run all --csv results/

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f; done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache results
	find . -name __pycache__ -type d -exec rm -rf {} +
