"""Setuptools shim.

The execution environment has no network access and an older setuptools
without PEP 660 editable-wheel support, so ``pip install -e .`` falls back to
this legacy path (``pip install -e . --no-build-isolation --no-use-pep517``).
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
