"""§5.2 table: keystroke latency under memory page demand.

Paper (10 runs each):

    OS      demand   min      avg      max
    Linux   <100%    50ms     50ms     50ms
    Linux   >=100%   330ms    1,170ms  3,000ms
    TSE     <100%    50ms     50ms     50ms
    TSE     >=100%   2,430ms  4,026ms  11,850ms
"""

from conftest import emit, run_once

from repro.core import format_table
from repro.memory import BASELINE_RESPONSE_MS, run_memory_latency_experiment

LOW_DEMAND = 0.5
HIGH_DEMAND = 1.2


def reproduce_memory_table(seed: int = 0):
    out = {}
    for os_name in ("linux", "nt_tse"):
        for demand in (LOW_DEMAND, HIGH_DEMAND):
            out[(os_name, demand)] = run_memory_latency_experiment(
                os_name, demand, runs=10, seed=seed
            )
    return out


def test_tab_memory_latency(benchmark):
    results = run_once(benchmark, reproduce_memory_table)

    rows = []
    for (os_name, demand), result in results.items():
        s = result.summary
        rows.append(
            (
                os_name,
                "<100%" if demand < 1.0 else ">=100%",
                f"{s.minimum:,.0f}",
                f"{s.average:,.0f}",
                f"{s.maximum:,.0f}",
            )
        )
    emit(
        format_table(
            ["OS", "page demand", "min (ms)", "avg (ms)", "max (ms)"],
            rows,
            title="§5.2: keystroke response under memory pressure (10 runs)",
        )
    )

    linux_low = results[("linux", LOW_DEMAND)].summary
    linux_high = results[("linux", HIGH_DEMAND)].summary
    tse_low = results[("nt_tse", LOW_DEMAND)].summary
    tse_high = results[("nt_tse", HIGH_DEMAND)].summary

    # Below 100% demand: the baseline 50 ms response, every run.
    for s in (linux_low, tse_low):
        assert s.minimum == s.maximum == BASELINE_RESPONSE_MS
    # At/above 100%: latencies 1-2 orders beyond the perception threshold,
    # "in TSE ... about 40 times the threshold ... in Linux ... 11 times".
    assert 300.0 < linux_high.average < 2_500.0
    assert 2_000.0 < tse_high.average < 8_000.0
    assert 2.0 < tse_high.average / linux_high.average < 6.0
    # Wide min-max spread, as the paper reports.
    assert linux_high.maximum > 2 * linux_high.minimum
    assert tse_high.maximum > 2 * tse_high.minimum
