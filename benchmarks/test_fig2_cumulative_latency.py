"""Figure 2: cumulative idle-state latency by event duration.

Paper: over an idle trace, NT's busy events are <= 100 ms; TSE adds events
near 250 ms and 400 ms; "TSE generates about three times the idle-state
load that NT Workstation does, and about seven times that of Linux."
"""

from conftest import emit, run_once

from repro.core import format_table
from repro.cpu import OS_NAMES, run_idle_experiment

TRACE_MS = 600_000.0  # the paper-scale 10-minute idle window
THRESHOLDS = [0.0, 50.0, 100.0, 200.0, 300.0, 400.0, 500.0, 600.0]


def reproduce_fig2(seed: int = 0):
    return {
        os_name: run_idle_experiment(os_name, TRACE_MS, seed=seed)
        for os_name in OS_NAMES
    }


def test_fig2_cumulative_latency(benchmark):
    results = run_once(benchmark, reproduce_fig2)

    curves = {
        os_name: result.cumulative_latency_curve(THRESHOLDS)[1]
        for os_name, result in results.items()
    }
    rows = [
        [f"<={int(t)}ms"] + [f"{curves[o][i]:.1f}s" for o in OS_NAMES]
        for i, t in enumerate(THRESHOLDS)
    ]
    emit(
        format_table(
            ["event length"] + list(OS_NAMES),
            rows,
            title="Figure 2: cumulative idle-state latency (s)",
        )
    )

    nt_total = results["nt_workstation"].total_lost_time_ms
    tse_total = results["nt_tse"].total_lost_time_ms
    linux_total = results["linux"].total_lost_time_ms
    emit(
        format_table(
            ["system", "total lost time", "vs paper"],
            [
                ("nt_tse", f"{tse_total / 1000:.1f}s", "45s-scale, 3x NT"),
                ("nt_workstation", f"{nt_total / 1000:.1f}s", "15s-scale"),
                ("linux", f"{linux_total / 1000:.1f}s", "~1/7 of TSE"),
            ],
        )
    )

    # The paper's ratios: TSE ~= 3x NT ~= 7x Linux.
    assert 2.2 < tse_total / nt_total < 3.8
    assert 4.5 < tse_total / linux_total < 10.5
    # NT's bulk is <= 100ms events; TSE has the 250/400ms additions.
    nt = results["nt_workstation"]
    assert max(nt.event_durations_ms) <= 150.0
    tse_events = results["nt_tse"].event_durations_ms
    assert any(200.0 < d < 320.0 for d in tse_events)
    assert any(d > 350.0 for d in tse_events)
