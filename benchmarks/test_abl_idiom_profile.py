"""Extension: Danskin-style display-channel idiom profiling (§7).

Danskin "published several papers on profiling the X protocol ... his
methodology provides the inspiration for our prototap tool", and "came to
the same conclusion as we did that small message size makes TCP/IP an
inefficient network substrate for protocols like RDP, X, and LBX."

This bench decomposes each protocol's display channel by message kind and
quantifies the TCP/IP framing tax as a function of message size.
"""

from conftest import emit, run_once

from repro.core import format_table
from repro.net import DISPLAY_CHANNEL
from repro.net.framing import framing_overhead_fraction
from repro.workloads import run_protocol_comparison


def test_abl_idiom_profile(benchmark):
    taps = run_once(benchmark, run_protocol_comparison, 0)

    rows = []
    for name in ("x", "lbx", "rdp"):
        breakdown = taps[name].kind_breakdown(DISPLAY_CHANNEL)
        total = sum(s.payload_bytes for s in breakdown.values())
        for kind, stats in sorted(breakdown.items()):
            rows.append(
                (
                    name,
                    kind,
                    f"{stats.messages:,}",
                    f"{stats.payload_bytes:,}",
                    f"{stats.payload_bytes / total * 100:.1f}%",
                    f"{stats.avg_payload:.0f}",
                )
            )
    emit(
        format_table(
            ["protocol", "kind", "messages", "payload bytes", "share", "avg"],
            rows,
            title="Display-channel idiom profile (Danskin-style)",
        )
    )

    overhead_rows = [
        (size, f"{framing_overhead_fraction(size) * 100:.1f}%")
        for size in (16, 32, 64, 128, 256, 512, 1024, 1460)
    ]
    emit(
        format_table(
            ["message payload (B)", "TCP/IP framing tax"],
            overhead_rows,
            title="Why small messages make TCP/IP inefficient",
        )
    )

    x_breakdown = taps["x"].kind_breakdown(DISPLAY_CHANNEL)
    total = sum(s.payload_bytes for s in x_breakdown.values())
    # X's display bytes are overwhelmingly uncompressed image payload.
    assert x_breakdown["put-image"].payload_bytes > 0.8 * total
    # RDP never ships an uncompressed image idiom.
    assert "put-image" not in taps["rdp"].kind_breakdown(DISPLAY_CHANNEL)
    # The framing tax on a 64-byte message is an order above a full segment.
    assert framing_overhead_fraction(64) > 10 * framing_overhead_fraction(1460)
