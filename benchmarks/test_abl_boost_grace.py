"""Ablation: the GUI-boost grace period and processor speed (§4.2.1).

The paper's worked example: a 500 ms window-maximize intersecting a 400 ms
priority-13 service event "will still take 900ms total in spite of the
scheduler's help", because the priority-15 boost lasts only two (stretched)
quanta.  "Upgrading to a faster processor that can bring more user input
events under this 180ms threshold can tangibly improve user-perceived
latency with no modifications to the scheduler" — they estimate processors
2.5-5.5x the reference 100 MHz Pentium suffice.
"""

from conftest import emit, run_once

from repro.core import format_table
from repro.workloads import run_maximize_experiment

SPEEDS = [1.0, 2.0, 2.5, 4.0, 5.5, 8.0]


def reproduce_boost_grace():
    return [(s, run_maximize_experiment(cpu_speed=s)) for s in SPEEDS]


def test_abl_boost_grace(benchmark):
    rows = run_once(benchmark, reproduce_boost_grace)

    emit(
        format_table(
            ["cpu speed", "maximize completion (ms)", "added latency (ms)"],
            [
                (f"{s:.1f}x", f"{r.completion_ms:.0f}", f"{r.added_latency_ms:.0f}")
                for s, r in rows
            ],
            title="Ablation: boost grace period vs processor speed "
            "(500ms maximize + 400ms priority-13 event)",
        )
    )

    by_speed = dict(rows)
    # The reference processor: the paper's ~900ms worst case.
    assert 800.0 < by_speed[1.0].completion_ms < 1_000.0
    # Fast processors finish inside the boost grace: no added latency.
    assert by_speed[5.5].added_latency_ms < 10.0
    assert by_speed[8.0].added_latency_ms < 10.0
    # The transition happens in the paper's predicted 2.5-5.5x band.
    assert by_speed[2.0].added_latency_ms > 100.0
    completions = [r.completion_ms for __, r in rows]
    assert completions == sorted(completions, reverse=True)
