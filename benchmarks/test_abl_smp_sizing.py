"""Ablation/extension: server sizing by simulation, uni- vs multi-processor.

§3.1: "those interested in deploying interface services need to know the
maximum number of concurrent users their servers can support."  The vendor
white papers the paper critiques size servers by throughput and "uniformly
ignore ... user-perceived latency"; here we size the simulated TSE server
the paper's way — concurrent typing users vs per-keystroke latency — and
show the CPU dimension scaling with processor count.
"""

from conftest import emit, run_once

from repro.core import format_table
from repro.workloads.sizing import max_users_under_sla, run_sizing_experiment

USER_COUNTS = [5, 10, 15, 20, 22, 26, 30, 40, 50]
DURATION_MS = 15_000.0


def reproduce_sizing(seed: int = 0):
    return {
        cpus: run_sizing_experiment(
            "nt_tse",
            USER_COUNTS,
            cpu_count=cpus,
            duration_ms=DURATION_MS,
            seed=seed,
        )
        for cpus in (1, 2)
    }


def test_abl_smp_sizing(benchmark):
    results = run_once(benchmark, reproduce_sizing)

    rows = []
    for cpus, series in results.items():
        for r in series:
            rows.append(
                (
                    cpus,
                    r.users,
                    f"{r.average_latency_ms:.1f}",
                    f"{r.p95_latency_ms:.1f}",
                    f"{r.utilization * 100:.0f}%",
                )
            )
    emit(
        format_table(
            ["cpus", "users", "avg latency (ms)", "p95 (ms)", "cpu util"],
            rows,
            title="Extension: TSE server sizing by simulated typing users "
            "(SLA: 100 ms)",
        )
    )

    one = max_users_under_sla(results[1])
    two = max_users_under_sla(results[2])
    emit(
        format_table(
            ["cpus", "max users under 100ms SLA"],
            [(1, one), (2, two)],
        )
    )

    # Latency cliff at CPU saturation (each user is ~4% of a processor).
    by_users_1 = {r.users: r for r in results[1]}
    assert by_users_1[20].average_latency_ms < 20.0
    assert by_users_1[30].average_latency_ms > 200.0
    # A second processor roughly doubles latency-respecting capacity.
    assert 1.7 <= two / one <= 2.4
