"""Fidelity ablation: the paper's RR model vs the real 2.0 scheduler.

§4.2.1 characterizes Linux as a 10 ms round robin with no interactive
help, and that model reproduces the paper's measured linear Figure 3
curve.  The 2.0.36 kernel's actual counter/epoch ("goodness") scheduler
behaves differently, and this ablation shows how:

* at moderate load the sleeper credit protects the interactive thread —
  stalls stay bounded by one hog's counter (~200 ms) rather than growing
  with queue length;
* under heavy load the epoch stretches past what the credit can cover:
  the interactive thread drains its counter mid-epoch and then starves
  until every hog has burned its entitlement — multi-second stalls, far
  worse than round robin.

Neither regime matches the paper's measured linear curve, which supports
its choice of the effective-RR characterization for the latencies the
X/vim pipeline actually exhibited.
"""

from conftest import emit, run_once

from repro.core import format_table
from repro.cpu.goodness import LinuxGoodnessScheduler
from repro.workloads import run_stall_experiment

LOADS = [0, 5, 10, 25, 50]
DURATION_MS = 30_000.0


def reproduce_goodness_comparison(seed: int = 0):
    out = {}
    out["paper-rr"] = run_stall_experiment(
        "linux",
        LOADS,
        duration_ms=DURATION_MS,
        seed=seed,
        include_idle_activity=False,
    )
    out["goodness-2.0"] = run_stall_experiment(
        "linux",
        LOADS,
        duration_ms=DURATION_MS,
        seed=seed,
        scheduler_factory=LinuxGoodnessScheduler,
        include_idle_activity=False,
    )
    return out


def test_abl_goodness(benchmark):
    results = run_once(benchmark, reproduce_goodness_comparison)

    rows = []
    for model, series in results.items():
        for r in series:
            lost = sum(r.stalls_ms) / DURATION_MS
            rows.append(
                (
                    model,
                    r.queue_length,
                    f"{r.average_stall_ms:.0f}",
                    len(r.stalls_ms),
                    f"{lost * 100:.0f}%",
                )
            )
    emit(
        format_table(
            ["scheduler model", "sinks", "avg stall (ms)", "stall count", "time stalled"],
            rows,
            title="Fidelity ablation: paper's RR model vs Linux 2.0 goodness",
        )
    )

    rr = {r.queue_length: r for r in results["paper-rr"]}
    goodness = {r.queue_length: r for r in results["goodness-2.0"]}
    # RR: linear growth (the paper's measured shape).
    assert rr[50].average_stall_ms > 3 * rr[10].average_stall_ms
    # Goodness at moderate load: bounded by one entitlement, not by N.
    assert goodness[10].average_stall_ms < 250.0
    # Goodness under heavy load: epoch starvation, multi-second stalls.
    assert max(goodness[25].stalls_ms) > 1_000.0
    assert max(goodness[50].stalls_ms) > 2_000.0
    # At the heavy end, the real scheduler is *worse* than the RR model.
    assert (
        max(goodness[50].stalls_ms)
        > max(rr[50].stalls_ms) * 2
    )
