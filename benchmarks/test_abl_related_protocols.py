"""Extension: the §7 related-work protocols on the paper's workload.

§7: Schmidt et al.'s SLIM "has the advantage of being more platform
independent than X or RDP, [but] their results show it to be roughly
equivalent in performance to X, placing it still behind RDP and LBX in
network load efficiency.  VNC is yet another network protocol that is
similar to SLIM."

We implement both (pixel-shipping, cacheless designs) and run the §6.1.2
application workload over all five protocols — the comparison the paper's
related-work section describes but never tabulates.
"""

from conftest import emit, run_once

from repro.core import format_table
from repro.workloads.apps import application_workload, replay_workload

ALL_PROTOCOLS = ("rdp", "lbx", "vnc", "x", "slim")


def reproduce_extended_comparison(seed: int = 0):
    steps = application_workload(seed)
    return {name: replay_workload(name, steps) for name in ALL_PROTOCOLS}


def test_abl_related_protocols(benchmark):
    taps = run_once(benchmark, reproduce_extended_comparison)

    traces = {name: taps[name].trace() for name in ALL_PROTOCOLS}
    x_bytes = traces["x"].total_bytes
    rows = [
        (
            name,
            f"{t.total_bytes:,}",
            f"{t.total_messages:,}",
            f"{t.total_bytes / x_bytes:.2f}x",
        )
        for name, t in sorted(
            traces.items(), key=lambda kv: kv[1].total_bytes
        )
    ]
    emit(
        format_table(
            ["protocol", "bytes", "messages", "vs X"],
            rows,
            title="Extension: the five-protocol comparison "
            "(§6.1.2 workload, §7 protocols included)",
        )
    )

    # §7's placement, quantitatively.
    assert 0.7 < traces["slim"].total_bytes / x_bytes < 1.5  # "~equivalent"
    assert 0.5 < traces["vnc"].total_bytes / traces["slim"].total_bytes < 1.5
    for name in ("slim", "vnc"):
        assert traces[name].total_bytes > traces["lbx"].total_bytes
        assert traces[name].total_bytes > 4 * traces["rdp"].total_bytes
    # The efficiency ordering the paper's whole §6 implies.
    assert traces["rdp"].total_bytes == min(
        t.total_bytes for t in traces.values()
    )
