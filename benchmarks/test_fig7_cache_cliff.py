"""Figure 7: network load vs animation frame count — the LRU cache cliff.

Paper: "for values 25 through 65, bandwidth utilization is 0.01Mbps, but
for all values above 65, bandwidth utilization is 0.96Mbps."  Looping
animations defeat LRU bitmap caches exactly the way sequential scans
defeat LRU disk caches.
"""

from conftest import emit, run_once

from repro.core import format_series
from repro.workloads import run_frame_count_sweep

FRAME_COUNTS = [25, 35, 45, 55, 60, 65, 66, 70, 80, 90, 100]
DURATION_MS = 60_000.0


def test_fig7_cache_cliff(benchmark):
    rows = run_once(
        benchmark, run_frame_count_sweep, FRAME_COUNTS, duration_ms=DURATION_MS
    )

    counts = [c for c, __ in rows]
    mbps = [m for __, m in rows]
    emit(
        format_series(
            "frames",
            "Mbps",
            counts,
            mbps,
            title="Figure 7: network load vs animation frame count",
        )
    )

    by_count = dict(rows)
    # Below the cliff: steady-state load is swap messages only.
    for count in (25, 35, 45, 55, 60, 65):
        assert by_count[count] < 0.02, count  # paper: 0.01 Mbps
    # Above it: every frame re-transfers.
    for count in (66, 70, 80, 90, 100):
        assert by_count[count] > 0.5, count  # paper: 0.96 Mbps
    # The jump is a cliff, not a slope: two orders of magnitude at 65->66.
    assert by_count[66] / by_count[65] > 50.0
