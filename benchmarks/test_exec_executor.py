"""Executor determinism: parallel and cached sweeps reproduce serial runs.

Not one of the paper's figures — this benchmark guards the property the
whole :mod:`repro.exec` subsystem rests on: a sweep's result table is a
pure function of (experiment, values, seed), independent of backend,
worker count, chunking, or cache temperature.
"""

from conftest import emit, run_once

from repro.core import ParameterSweep, format_series
from repro.exec import SweepExecutor
from repro.net import run_ping_experiment

LOAD_LEVELS = [0.0, 2.0, 4.0, 6.0, 8.0, 9.6]
DURATION_MS = 20_000.0


def mean_rtt_ms(offered_mbps):
    """One Figure-8-style point (module-level, so workers can import it)."""
    (result,) = run_ping_experiment(
        [offered_mbps], duration_ms=DURATION_MS, seed=0
    )
    return result.mean_rtt_ms


def test_exec_parallel_and_cached_match_serial(benchmark, tmp_path):
    sweep = ParameterSweep("ping-rtt", "offered_mbps", mean_rtt_ms)
    serial = sweep.execute(LOAD_LEVELS)

    executor = SweepExecutor(backend="process", jobs=4, cache=str(tmp_path))
    parallel = run_once(
        benchmark, sweep.execute, LOAD_LEVELS, executor=executor, seed=0
    )
    assert parallel.rows == serial.rows

    warm = sweep.execute(LOAD_LEVELS, executor=executor, seed=0)
    assert warm.rows == serial.rows
    assert executor.cache.stats.hits == len(LOAD_LEVELS)

    emit(
        format_series(
            "offered Mbps",
            "mean RTT ms",
            serial.values(),
            serial.results(),
            title="Executor check: serial == process x4 == cached",
        )
    )
