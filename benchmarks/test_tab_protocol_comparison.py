"""§6.1.2 table: bytes and messages per channel for RDP, X, and LBX.

Paper (WordPerfect + Gimp + control-panel workload):

                 RDP        X          LBX
    bytes total  888,239    6,250,888  3,197,185
    msgs total   1,841      26,923     36,615
    avg msg size 482.48     232.18     87.32

Headline ratios: RDP < 15% of X and < 30% of LBX in bytes; LBX has ~80%
more display messages than X with the smallest average message size.
"""

from conftest import emit, run_once

from repro.core import format_table
from repro.workloads import run_protocol_comparison


def test_tab_protocol_comparison(benchmark):
    taps = run_once(benchmark, run_protocol_comparison, 0)

    traces = {name: taps[name].trace() for name in ("rdp", "x", "lbx")}
    rows = []
    for name, t in traces.items():
        rows.append((name, "input", f"{t.input.bytes:,}", f"{t.input.messages:,}"))
        rows.append(
            (name, "display", f"{t.display.bytes:,}", f"{t.display.messages:,}")
        )
        rows.append(
            (
                name,
                "total",
                f"{t.total_bytes:,}",
                f"{t.total_messages:,}",
            )
        )
    emit(
        format_table(
            ["protocol", "channel", "bytes", "messages"],
            rows,
            title="§6.1.2: protocol comparison on the application workload",
        )
    )
    emit(
        format_table(
            ["protocol", "avg message size"],
            [
                (name, f"{t.avg_message_size:.2f}")
                for name, t in traces.items()
            ],
        )
    )

    rdp, x, lbx = traces["rdp"], traces["x"], traces["lbx"]
    # "RDP is clearly the most efficient protocol, generating less than
    # 30% of the byte traffic of LBX and less than 15% of X."
    assert rdp.total_bytes < 0.25 * x.total_bytes
    assert rdp.total_bytes < 0.35 * lbx.total_bytes
    # LBX halves X's bytes...
    assert lbx.total_bytes < 0.75 * x.total_bytes
    # ..."at the expense of a[n] ~80% increase in display message count".
    assert 1.3 < lbx.display.messages / x.display.messages < 2.5
    # Message-count ordering: RDP smallest by far.
    assert rdp.total_messages < 0.5 * x.total_messages < lbx.total_messages
    # LBX's messages are the smallest of the three.
    assert lbx.avg_message_size < x.avg_message_size
    assert lbx.avg_message_size < rdp.avg_message_size
