"""§6.1.2 VIP table: byte savings from eliding the 20-byte IP header.

Paper:                RDP       X          LBX
    normal bytes      888,239   6,250,888  3,197,185
    bytes w/ VIP      846,919   5,678,808  2,464,885
    savings           4.65%     9.15%      22.90%

"Because LBX has the smallest average message size, it stands to benefit
most from a VIP-like scheme."  Our reproduction preserves that headline —
LBX saves the most — but our X rides fatter image-bearing packets than the
paper's X did, so its relative savings land below RDP's rather than
between (see EXPERIMENTS.md).
"""

from conftest import emit, run_once

from repro.core import format_table
from repro.workloads import run_protocol_comparison


def test_tab_vip_savings(benchmark):
    taps = run_once(benchmark, run_protocol_comparison, 0)

    rows = []
    savings = {}
    for name in ("rdp", "x", "lbx"):
        row = taps[name].vip_table_row()
        savings[name] = row["savings"]
        rows.append(
            (
                name,
                f"{row['normal_bytes']:,}",
                f"{row['vip_bytes']:,}",
                f"{row['savings'] * 100:.2f}%",
            )
        )
    emit(
        format_table(
            ["protocol", "normal bytes", "bytes w/ VIP", "savings"],
            rows,
            title="§6.1.2: potential byte savings of omitting the IP header",
        )
    )

    # All protocols save something; LBX (smallest messages) saves most.
    assert all(s > 0.0 for s in savings.values())
    assert savings["lbx"] == max(savings.values())
    # Even with VIP, LBX remains far less efficient than RDP (paper:
    # "still more than two times less efficient").
    lbx_vip = taps["lbx"].vip_table_row()["vip_bytes"]
    rdp_vip = taps["rdp"].vip_table_row()["vip_bytes"]
    assert lbx_vip > 2 * rdp_vip
