"""Figure 4: network load of the synthetic MSNBC-style web page over RDP.

Paper: marquee + banner together sustain ~1.60 Mbps (plateaus ~1.89);
the marquee alone averages 0.07 Mbps and the banner alone 0.01 Mbps —
the combined frame sets overflow the client's 1.5 MB bitmap cache while
each alone fits, so load is wildly non-linear in the amount of animation.
"""

from conftest import emit, run_once

from repro.core import format_series, format_table, sparkline
from repro.workloads import run_webpage_experiment

DURATION_MS = 160_000.0


def reproduce_fig4():
    return {
        variant: run_webpage_experiment(variant, duration_ms=DURATION_MS)
        for variant in ("both", "marquee", "banner")
    }


def test_fig4_webpage_load(benchmark):
    results = run_once(benchmark, reproduce_fig4)

    rows = []
    for variant, result in results.items():
        __, series = result.load_series(window_ms=2_000.0)
        rows.append(
            (
                variant,
                f"{result.average_mbps():.3f}",
                f"{max(series):.2f}",
                sparkline(series[:40]),
            )
        )
    emit(
        format_table(
            ["page variant", "avg Mbps", "peak window", "trace (first 80 s)"],
            rows,
            title="Figure 4: synthetic web page network load over RDP",
        )
    )

    both = results["both"].average_mbps()
    marquee = results["marquee"].average_mbps()
    banner = results["banner"].average_mbps()
    # Each element alone is cheap (cache absorbs the loops)...
    assert marquee < 0.3  # paper: 0.07 Mbps
    assert banner < 0.05  # paper: 0.01 Mbps
    # ...together they thrash the cache: strongly non-additive load.
    assert both > 0.8  # paper: 1.60 Mbps sustained
    assert both > 4 * (marquee + banner)
    # Periodic structure from the marquee's scroll/pause cycle.
    __, series = results["both"].load_series(window_ms=2_000.0)
    assert min(series[5:]) < 0.7 * max(series[5:])
