"""Ablation: non-interactive memory throttling (§5.2).

"Evans et al. also demonstrated in their prototype kernel a solution to
this problem, which is non-interactive process throttling in high load
situations.  They demonstrated that their SVR4 kernel modified with
throttling eliminated this pathology."

We re-run the §5.2 memory-latency table with
:class:`repro.memory.ThrottledVirtualMemory`: interactive working sets are
protected, and the keystroke response stays at the 50 ms baseline even at
>=100% page demand.
"""

from conftest import emit, run_once

from repro.core import format_table
from repro.memory import BASELINE_RESPONSE_MS, run_memory_latency_experiment

DEMAND = 1.2


def reproduce_throttle_ablation(seed: int = 0):
    out = {}
    for os_name in ("linux", "nt_tse"):
        out[(os_name, "plain")] = run_memory_latency_experiment(
            os_name, DEMAND, runs=10, seed=seed
        )
        out[(os_name, "throttled")] = run_memory_latency_experiment(
            os_name, DEMAND, runs=10, seed=seed, throttled=True
        )
    return out


def test_abl_mem_throttle(benchmark):
    results = run_once(benchmark, reproduce_throttle_ablation)

    rows = []
    for (os_name, mode), result in results.items():
        s = result.summary
        rows.append(
            (os_name, mode, f"{s.minimum:,.0f}", f"{s.average:,.0f}", f"{s.maximum:,.0f}")
        )
    emit(
        format_table(
            ["OS", "vm", "min (ms)", "avg (ms)", "max (ms)"],
            rows,
            title="Ablation: keystroke latency at >=100% page demand, "
            "plain vs throttled VM",
        )
    )

    for os_name in ("linux", "nt_tse"):
        plain = results[(os_name, "plain")].summary
        throttled = results[(os_name, "throttled")].summary
        assert plain.average > 500.0
        # Throttling eliminates the pathology entirely.
        assert throttled.maximum == BASELINE_RESPONSE_MS
