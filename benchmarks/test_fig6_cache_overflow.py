"""Figure 6: CPU utilization and cache hit ratio for a 66-frame animation.

Paper: the animation overflows the 1.5 MB cache, so the server "must
continue to send the frames that fall out of the cache just before being
needed, which is all of them": CPU stays near 10% and never falls, while
the cumulative cache hit ratio starts around 70% and "falls asymptotically
toward zero with each subsequent miss."
"""

from conftest import emit, run_once

from repro.core import format_table, sparkline
from repro.workloads import run_cache_overflow_experiment

DURATION_MS = 60_000.0


def test_fig6_cache_overflow(benchmark):
    result = run_once(
        benchmark, run_cache_overflow_experiment, 66, DURATION_MS
    )

    emit(
        format_table(
            ["series", "t=5s", "t=15s", "t=30s", "t=59s", "shape"],
            [
                (
                    "cumulative hit ratio",
                    f"{result.cumulative_hit_ratio[5]:.2f}",
                    f"{result.cumulative_hit_ratio[15]:.2f}",
                    f"{result.cumulative_hit_ratio[30]:.2f}",
                    f"{result.cumulative_hit_ratio[-1]:.2f}",
                    sparkline(result.cumulative_hit_ratio),
                ),
                (
                    "CPU utilization",
                    f"{result.cpu_utilization[5]:.2f}",
                    f"{result.cpu_utilization[15]:.2f}",
                    f"{result.cpu_utilization[30]:.2f}",
                    f"{result.cpu_utilization[-1]:.2f}",
                    sparkline(result.cpu_utilization),
                ),
            ],
            title="Figure 6: 66-frame animation overflowing the bitmap cache",
        )
    )

    ratios = result.cumulative_hit_ratio
    # Starts high (UI warmup hits), like the paper's ~70%...
    assert ratios[5] > 0.5
    # ...then decays monotonically toward zero, never recovering.
    tail = ratios[6:]
    assert all(b <= a + 1e-9 for a, b in zip(tail, tail[1:]))
    assert ratios[-1] < 0.3
    # The CPU never falls back to idle: every frame must be re-sent.
    late_cpu = result.cpu_utilization[10:]
    assert min(late_cpu) > 0.04
    assert max(late_cpu) < 0.25  # ~10% scale, not a saturated CPU
