"""Extension: browsing users saturate the shared link, end to end (§6.1.3).

"Such levels of network activity make multi-user service over aging 10Mbps
ethernet unfeasible.  If just five users open their browsers to a page
like this, the network link becomes saturated."

Here the claim runs through the whole composed system: N sessions each
open the synthetic animated page over RDP on one 10 Mbps link while
another user types; we report link utilization and what happens to the
typist's user-perceived latency.  (The paper's testbed, as real coax
Ethernet, effectively saturated below nominal capacity; our FIFO medium
delivers the full 10 Mbps, so complete saturation lands at 6–7 of our
~1.4 Mbps pages rather than exactly five.)
"""

from conftest import emit, run_once

from repro.core import ServerConfig, ThinClientServer, format_table

BROWSER_COUNTS = (0, 1, 3, 5, 7)


def reproduce_web_capacity(seed: int = 3):
    rows = {}
    for browsers in BROWSER_COUNTS:
        server = ThinClientServer(ServerConfig.tse(), seed=seed)
        typer = server.connect("typist")
        for i in range(browsers):
            session = server.connect(f"web{i}")
            session.open_webpage()
        server.run(2_000.0)
        typer.start_typing()
        server.run(30_000.0)
        typer.stop_typing()
        server.run(3_000.0)
        rows[browsers] = {
            "util": server.link.utilization(2_000.0, 32_000.0),
            "assessment": typer.client.assessment(),
        }
    return rows


def test_abl_web_capacity(benchmark):
    rows = run_once(benchmark, reproduce_web_capacity)

    emit(
        format_table(
            [
                "browsing users",
                "link utilization",
                "typist avg latency (ms)",
                "perceptible",
            ],
            [
                (
                    n,
                    f"{data['util'] * 100:.0f}%",
                    f"{data['assessment'].summary.average:.1f}",
                    f"{data['assessment'].perceptible_fraction * 100:.0f}%",
                )
                for n, data in rows.items()
            ],
            title="Extension: animated-page users vs the 10 Mbps link "
            "and an innocent typist",
        )
    )

    # One animated page is ~14% of the link; five take most of it.
    assert 0.08 < rows[1]["util"] < 0.25
    assert rows[5]["util"] > 0.55
    assert rows[7]["util"] > 0.85
    # The typist pays: latency grows by an order of magnitude.
    quiet = rows[0]["assessment"].summary.average
    assert rows[5]["assessment"].summary.average > 5 * quiet
    assert rows[7]["assessment"].summary.average > 10 * quiet
