"""Ablation: NT quantum stretching (§4.2.1).

"The first ['quantum stretching'] allows the system administrator to
multiply the quantum for foreground threads.  The allowed stretch factors
are one, two, and three."

On a terminal server every session's threads are foreground, so stretching
lengthens *everyone's* turns: the Figure 3 experiment re-run at each
stretch factor shows the echo thread's stall growing proportionally — the
administrator knob makes the interactive collapse worse, not better, once
the competitors are foreground too.
"""

import pytest
from conftest import emit, run_once

from repro.core import format_table
from repro.cpu import NTConfig, NTScheduler
from repro.workloads import run_stall_experiment

LOADS = [5, 10, 15]
DURATION_MS = 30_000.0


def reproduce_stretch_sweep(seed: int = 0):
    out = {}
    for stretch in (1, 2, 3):
        config = NTConfig.tse().with_stretch(stretch)
        out[stretch] = run_stall_experiment(
            "nt_tse",
            LOADS,
            duration_ms=DURATION_MS,
            seed=seed,
            scheduler_factory=lambda config=config: NTScheduler(config),
            include_idle_activity=False,
        )
    return out


def test_abl_stretch_factor(benchmark):
    results = run_once(benchmark, reproduce_stretch_sweep)

    stalls = {
        stretch: {r.queue_length: r.average_stall_ms for r in series}
        for stretch, series in results.items()
    }
    emit(
        format_table(
            ["sinks", "stretch x1", "stretch x2", "stretch x3"],
            [
                [n] + [f"{stalls[s][n]:.0f}" for s in (1, 2, 3)]
                for n in LOADS
            ],
            title="Ablation: TSE echo stalls (ms) vs foreground quantum stretch",
        )
    )

    # With foreground competitors, stretching scales the wait per sink:
    # stall ~= N * 30ms * stretch.
    for n in LOADS:
        assert stalls[2][n] > 1.5 * stalls[1][n]
        assert stalls[3][n] > 2.0 * stalls[1][n]
    # Rough proportionality at the heaviest load.
    assert stalls[3][15] / stalls[1][15] == pytest.approx(3.0, rel=0.35)
