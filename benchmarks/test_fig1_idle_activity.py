"""Figure 1: idle-state processor activity in NT, TSE, and Linux.

Paper: 10-second utilization traces of the three idle systems; TSE shows
extra spikes from the Terminal Service / Session Manager, Linux is nearly
flat.
"""

from conftest import emit, run_once

from repro.core import format_table, sparkline
from repro.cpu import OS_NAMES, run_idle_experiment

TRACE_MS = 60_000.0
BIN_MS = 1_000.0


def reproduce_fig1(seed: int = 0):
    results = {}
    for os_name in OS_NAMES:
        results[os_name] = run_idle_experiment(os_name, TRACE_MS, seed=seed)
    return results


def test_fig1_idle_activity(benchmark):
    results = run_once(benchmark, reproduce_fig1)

    rows = []
    for os_name, result in results.items():
        __, utils = result.utilization_trace(bin_ms=BIN_MS)
        rows.append(
            (
                os_name,
                f"{result.idle_utilization * 100:.2f}%",
                f"{max(utils) * 100:.1f}%",
                sparkline(utils[:30]),
            )
        )
    emit(
        format_table(
            ["system", "avg idle util", "peak bin", "trace (first 30 s)"],
            rows,
            title="Figure 1: idle-state processor activity",
        )
    )

    nt = results["nt_workstation"]
    tse = results["nt_tse"]
    linux = results["linux"]
    # The paper's visual: TSE busiest, Linux much quieter than either.
    assert tse.idle_utilization > nt.idle_utilization > linux.idle_utilization
    # TSE's spikes come from its multi-user services: bins of >= 20% exist.
    __, tse_utils = tse.utilization_trace(bin_ms=BIN_MS)
    assert max(tse_utils) >= 0.2
    __, linux_utils = linux.utilization_trace(bin_ms=BIN_MS)
    assert max(linux_utils) < 0.1
