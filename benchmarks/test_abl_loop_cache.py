"""Ablation: loop-aware bitmap cache eviction (§6.1.3).

"While LRU may be the appropriate eviction scheme for typical usage, it is
exactly the wrong scheme for handling looping animations.  A more
intelligent scheme capable of dealing with such animations might somehow
detect loop patterns and adjust its eviction behavior accordingly."

We implement that scheme (:class:`repro.protocols.LoopAwareBitmapCache`)
and re-run the Figure 7 sweep with it: the cliff disappears and load above
the capacity point grows gracefully instead of jumping two orders.
"""

from conftest import emit, run_once

from repro.core import format_table
from repro.workloads import run_frame_count_sweep

FRAME_COUNTS = [60, 66, 70, 85, 100]
DURATION_MS = 60_000.0


def reproduce_loop_cache_ablation():
    lru = dict(run_frame_count_sweep(FRAME_COUNTS, duration_ms=DURATION_MS))
    aware = dict(
        run_frame_count_sweep(
            FRAME_COUNTS, duration_ms=DURATION_MS, loop_aware_cache=True
        )
    )
    return lru, aware


def test_abl_loop_cache(benchmark):
    lru, aware = run_once(benchmark, reproduce_loop_cache_ablation)

    emit(
        format_table(
            ["frames", "LRU Mbps", "loop-aware Mbps"],
            [
                (n, f"{lru[n]:.3f}", f"{aware[n]:.3f}")
                for n in FRAME_COUNTS
            ],
            title="Ablation: LRU vs loop-aware bitmap cache eviction",
        )
    )

    # Below capacity both are cheap.
    assert lru[60] < 0.02 and aware[60] < 0.02
    # Above capacity LRU thrashes; loop-aware keeps a stable hot subset.
    for n in (66, 70, 85):
        assert aware[n] < lru[n] / 2, n
    # Loop-aware load grows with the uncacheable remainder, gracefully.
    assert aware[66] < aware[100]
