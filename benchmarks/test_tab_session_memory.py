"""§5.1.1 tables: compulsory memory load — idle and per-login.

Paper: idle memory 17 MB (Linux) vs 19 MB (TSE); minimal-login private
memory 752 KB (Linux/X), 3,244 KB (TSE typical), 2,100 KB (TSE light).
"""

from conftest import emit, run_once

from repro.core import format_table
from repro.memory import (
    LINUX_SESSION,
    TSE_SESSION_LIGHT,
    TSE_SESSION_TYPICAL,
    idle_memory_bytes,
    sessions_that_fit,
)
from repro.units import MB, mb


def reproduce_session_memory():
    return {
        "idle": {
            "linux": idle_memory_bytes("linux"),
            "nt_tse": idle_memory_bytes("nt_tse"),
        },
        "sessions": (LINUX_SESSION, TSE_SESSION_TYPICAL, TSE_SESSION_LIGHT),
        "capacity_128mb": {
            "linux": sessions_that_fit("linux", mb(128)),
            "nt_tse": sessions_that_fit("nt_tse", mb(128)),
            "nt_tse_light": sessions_that_fit("nt_tse", mb(128), variant="light"),
        },
    }


def test_tab_session_memory(benchmark):
    data = run_once(benchmark, reproduce_session_memory)

    for session in data["sessions"]:
        rows = [(p.name, f"{p.private_kb:,} KB") for p in session.processes]
        rows.append(("Total", f"{session.total_kb:,} KB"))
        emit(
            format_table(
                ["process", "private"],
                rows,
                title=f"§5.1.1 minimal login: {session.os_name} ({session.variant})",
            )
        )
    emit(
        format_table(
            ["metric", "linux", "nt_tse"],
            [
                (
                    "idle memory",
                    f"{data['idle']['linux'] // MB} MB",
                    f"{data['idle']['nt_tse'] // MB} MB",
                ),
                (
                    "logins in 128 MB",
                    data["capacity_128mb"]["linux"],
                    f"{data['capacity_128mb']['nt_tse']} "
                    f"({data['capacity_128mb']['nt_tse_light']} light)",
                ),
            ],
        )
    )

    # Exact paper figures.
    assert data["idle"]["linux"] == 17 * MB
    assert data["idle"]["nt_tse"] == 19 * MB
    linux, tse_typ, tse_light = data["sessions"]
    assert linux.total_kb == 752
    assert tse_typ.total_kb == 3244
    assert tse_light.total_kb == 2100
    assert (
        data["capacity_128mb"]["linux"]
        > data["capacity_128mb"]["nt_tse_light"]
        > data["capacity_128mb"]["nt_tse"]
    )
