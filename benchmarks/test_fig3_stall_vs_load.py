"""Figure 3: average stall length vs scheduler queue length.

Paper: 20 Hz key repeat against N ``sink`` processes.  TSE's latency rises
sharply around 10 load units and the system is barely usable by 15; Linux
degrades linearly and more slowly out to 50.
"""

from conftest import emit, run_once

from repro.core import format_table
from repro.workloads import run_stall_experiment

TSE_LOADS = [0, 5, 10, 15]
LINUX_LOADS = [0, 5, 10, 15, 25, 35, 50]
DURATION_MS = 60_000.0


def reproduce_fig3(seed: int = 0):
    return {
        "nt_tse": run_stall_experiment(
            "nt_tse", TSE_LOADS, duration_ms=DURATION_MS, seed=seed
        ),
        "linux": run_stall_experiment(
            "linux", LINUX_LOADS, duration_ms=DURATION_MS, seed=seed
        ),
    }


def test_fig3_stall_vs_load(benchmark):
    results = run_once(benchmark, reproduce_fig3)

    rows = []
    for os_name, series in results.items():
        for r in series:
            rows.append(
                (
                    os_name,
                    r.queue_length,
                    f"{r.average_stall_ms:.0f}",
                    f"{r.jitter_ms:.0f}",
                )
            )
    emit(
        format_table(
            ["system", "queue length", "avg stall (ms)", "jitter (ms)"],
            rows,
            title="Figure 3: average stall length vs scheduler queue length",
        )
    )

    tse = {r.queue_length: r.average_stall_ms for r in results["nt_tse"]}
    linux = {r.queue_length: r.average_stall_ms for r in results["linux"]}

    # TSE: sharp rise; near-unusable (paper ~800-900ms stalls) by 15.
    assert tse[15] > 600.0
    assert tse[15] > 2.5 * tse[5]
    # Linux: linear-ish, much gentler at equal load.
    assert linux[15] < tse[15] / 3
    assert 200.0 < linux[50] < 700.0  # paper: ~400-500ms at 45-50
    # Monotone growth for Linux across the sweep.
    linux_series = [linux[n] for n in LINUX_LOADS]
    assert all(b >= a - 25.0 for a, b in zip(linux_series, linux_series[1:]))
