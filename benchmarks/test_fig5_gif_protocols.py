"""Figure 5: a 10-frame, 20 Hz animated GIF over X, LBX, and RDP.

Paper: X retransmits the full bitmap for every frame (no cache of any
appreciable size); LBX compresses but still resends; RDP's client bitmap
cache reduces the steady-state load to tiny cache-swap messages.
"""

from conftest import emit, run_once

from repro.core import format_table, sparkline
from repro.workloads import run_gif_protocol_comparison

DURATION_MS = 5_000.0
WARMUP_MS = 500.0  # the first cycle ships frames compulsorily


def test_fig5_gif_protocols(benchmark):
    results = run_once(benchmark, run_gif_protocol_comparison, DURATION_MS)

    rows = []
    for name in ("x", "lbx", "rdp"):
        result = results[name]
        __, series = result.load_series(window_ms=100.0)
        rows.append(
            (
                name,
                f"{result.average_mbps(WARMUP_MS):.3f}",
                sparkline(series[5:45]),
            )
        )
    emit(
        format_table(
            ["protocol", "steady Mbps", "load trace (100ms windows)"],
            rows,
            title="Figure 5: 10-frame 20 Hz GIF over X, LBX, RDP",
        )
    )

    x = results["x"].average_mbps(WARMUP_MS)
    lbx = results["lbx"].average_mbps(WARMUP_MS)
    rdp = results["rdp"].average_mbps(WARMUP_MS)
    # The paper's ordering and scale.
    assert x > lbx > rdp
    assert x > 1.5  # Mbps: full frames at 20 Hz
    assert lbx < 0.75 * x  # compression helps but cannot cache
    assert rdp < 0.05  # swap messages only
