"""Figure 8: network latency as a function of offered load.

Paper: 64-byte pings on a 10 Mbps shared Ethernet under synthetic load;
RTT stays low until the knee, reaching ~55 ms at 9.6 Mbps — "considerable
with respect to known levels of human latency tolerance."
"""

from conftest import emit, run_once

from repro.core import format_series
from repro.net import run_ping_experiment

LOAD_LEVELS = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 9.6]
DURATION_MS = 60_000.0


def test_fig8_rtt_vs_load(benchmark):
    results = run_once(
        benchmark,
        run_ping_experiment,
        LOAD_LEVELS,
        duration_ms=DURATION_MS,
        seed=0,
    )

    emit(
        format_series(
            "offered Mbps",
            "mean RTT ms",
            [r.offered_mbps for r in results],
            [r.mean_rtt_ms for r in results],
            title="Figure 8: round-trip time vs offered load (64-byte pings)",
        )
    )

    rtt = {r.offered_mbps: r.mean_rtt_ms for r in results}
    # Flat and sub-millisecond while unsaturated...
    assert rtt[0.0] < 1.0
    assert rtt[5.0] < 5.0
    # ...then the queueing knee: tens of ms approaching capacity.
    assert rtt[9.6] > 20.0  # paper: ~55 ms
    assert rtt[9.6] > 10 * rtt[6.0]
    # Monotone growth across the sweep (within noise).
    series = [rtt[l] for l in LOAD_LEVELS]
    assert series[-1] == max(series)
