"""Shared helpers for the figure/table benchmarks.

Every benchmark regenerates one of the paper's tables or figures and
prints the corresponding rows/series (run with ``-s`` to see them inline;
pytest captures stdout otherwise).  Experiments are deterministic, so each
is benchmarked with a single pedantic round — the interesting output is
the reproduced data, not the wall-clock time.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark *fn* with one round/iteration and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def emit(text: str) -> None:
    """Print a reproduced table/series with visual separation."""
    print()
    print(text)
