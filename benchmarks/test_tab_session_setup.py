"""§6.1.1: session setup costs — compulsory network load.

Paper: "Session setup costs in our configurations were 45,328 bytes and
16,312 bytes for TSE and Linux/X, respectively."
"""

from conftest import emit, run_once

from repro.core import ServerConfig, ThinClientServer, format_table
from repro.gui import TSE_SETUP, X_SETUP


def reproduce_session_setup():
    """Model totals plus the bytes actually observed on a simulated wire."""
    observed = {}
    for key, config in (("nt_tse", ServerConfig.tse()), ("linux", ServerConfig.linux())):
        server = ThinClientServer(
            config, seed=0
        )
        server.connect("user")
        server.run(5_000.0)
        observed[key] = server.link.bytes_sent
    return observed


def test_tab_session_setup(benchmark):
    observed = run_once(benchmark, reproduce_session_setup)

    emit(
        format_table(
            ["system", "setup payload (model)", "on-wire incl. framing"],
            [
                ("nt_tse (RDP)", f"{TSE_SETUP.total_bytes:,} B", f"{observed['nt_tse']:,} B"),
                ("linux (X)", f"{X_SETUP.total_bytes:,} B", f"{observed['linux']:,} B"),
            ],
            title="§6.1.1: session setup costs",
        )
    )

    # Model totals match the paper's measurements exactly.
    assert TSE_SETUP.total_bytes == 45_328
    assert X_SETUP.total_bytes == 16_312
    # On the wire, framing adds overhead but ordering holds.
    assert observed["nt_tse"] > observed["linux"]
    assert observed["nt_tse"] >= TSE_SETUP.total_bytes
    assert observed["linux"] >= X_SETUP.total_bytes
