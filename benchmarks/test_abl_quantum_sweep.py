"""Ablation: the quantum-length "latency catch-22" (§4.2.1).

"The longer the quantum, the longer some thread three or four deep in the
queue will have to wait until it can run.  In contrast, if the quantum is
made shorter ... the full, run-to-block execution time of each thread
becomes fragmented across more distinct quanta."

We sweep the round-robin quantum with the Figure 3 typing workload at a
fixed queue length: stalls for a *short* interactive burst grow linearly
with the quantum, while a *long* interactive operation suffers from
fragmentation when quanta shrink.
"""

from conftest import emit, run_once

from repro.core import format_table
from repro.cpu import CPU, Burst, LinuxScheduler, Thread, sink_thread
from repro.sim import Simulator
from repro.workloads import run_stall_experiment

QUANTA_MS = [5.0, 10.0, 30.0, 60.0, 120.0]
QUEUE_LENGTH = 10


def stall_for_quantum(quantum_ms: float) -> float:
    """Average echo stall at fixed load under the given RR quantum."""
    (result,) = run_stall_experiment(
        "linux",
        [QUEUE_LENGTH],
        duration_ms=30_000.0,
        scheduler_factory=lambda: LinuxScheduler(quantum_ms=quantum_ms),
        include_idle_activity=False,
    )
    return result.average_stall_ms


def long_op_completion(quantum_ms: float, demand_ms: float = 500.0) -> float:
    """Wall completion of a 500 ms interactive op against 3 competitors.

    A 1 ms context-switch cost (dispatch plus cache/TLB pollution on
    late-90s hardware) is what makes fragmentation hurt: with 5 ms quanta
    a fifth of every slice is switch overhead.
    """
    sim = Simulator()
    cpu = CPU(sim, LinuxScheduler(quantum_ms=quantum_ms), context_switch_ms=1.0)
    for i in range(3):
        cpu.add_thread(sink_thread(f"sink{i}"))
    op = Thread("op")
    done = []
    op.push_burst(Burst(demand_ms, on_complete=done.append))
    cpu.add_thread(op)
    sim.run_until(60_000.0)
    return done[0]


def reproduce_quantum_sweep():
    return [
        (q, stall_for_quantum(q), long_op_completion(q)) for q in QUANTA_MS
    ]


def test_abl_quantum_sweep(benchmark):
    rows = run_once(benchmark, reproduce_quantum_sweep)

    emit(
        format_table(
            ["quantum (ms)", "echo stall @10 sinks (ms)", "500ms-op completion (ms)"],
            [(q, f"{s:.0f}", f"{c:.0f}") for q, s, c in rows],
            title="Ablation: the quantum latency catch-22",
        )
    )

    stalls = {q: s for q, s, __ in rows}
    completions = {q: c for q, __, c in rows}
    # Longer quanta stretch the inter-quantum wait for short echoes...
    assert stalls[120.0] > 4 * stalls[10.0]
    # ...while shorter quanta fragment a long run-to-block operation
    # across more slices, each paying switch overhead.
    assert completions[5.0] > completions[30.0]
    assert completions[5.0] > completions[120.0]
    assert completions[5.0] > 1_500.0  # 500ms of work behind 3 sinks
