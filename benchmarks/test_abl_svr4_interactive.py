"""Ablation: Evans et al.'s interactive scheduling class (§4.2.1-4.2.2).

"They demonstrated a prototype SVR4 kernel modified with an interactive
scheduler for which keystroke handling latency remains constant and small,
even as load approaches 20."  The paper laments that "years later no
Unix-like kernels implement such improvements."

This bench runs the Figure 3 experiment on the SVR4/IA scheduler next to
TSE and Linux: the IA class keeps the echo thread's stalls flat while the
production schedulers degrade.
"""

from conftest import emit, run_once

from repro.core import format_table
from repro.workloads import run_stall_experiment

LOADS = [0, 5, 10, 15, 20]
DURATION_MS = 30_000.0


def reproduce_svr4_comparison(seed: int = 0):
    return {
        os_name: run_stall_experiment(
            os_name, LOADS, duration_ms=DURATION_MS, seed=seed
        )
        for os_name in ("svr4", "linux", "nt_tse")
    }


def test_abl_svr4_interactive(benchmark):
    results = run_once(benchmark, reproduce_svr4_comparison)

    stalls = {
        os_name: {r.queue_length: r.average_stall_ms for r in series}
        for os_name, series in results.items()
    }
    emit(
        format_table(
            ["queue length"] + list(stalls),
            [
                [n] + [f"{stalls[o][n]:.0f}" for o in stalls]
                for n in LOADS
            ],
            title="Ablation: avg stall (ms) — SVR4/IA vs Linux vs TSE",
        )
    )

    # Evans et al.: flat and small out to load 20.
    assert all(stalls["svr4"][n] < 10.0 for n in LOADS)
    # The systems the paper measured degrade with load.
    assert stalls["linux"][20] > 20 * max(stalls["svr4"][20], 1.0)
    assert stalls["nt_tse"][15] > 600.0
