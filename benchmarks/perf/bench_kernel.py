#!/usr/bin/env python
"""Kernel micro/macro performance suite — writes and checks BENCH_kernel.json.

Micro benchmarks drive the two kernel implementations (the optimized
:mod:`repro.sim.engine` and the frozen :mod:`repro.sim.engine_reference`)
through the event patterns that dominate real experiment profiles:

* ``one_shot``      — distinct-timestamp one-shot events (heap-bound path);
* ``periodic``      — many fixed-interval clock ticks (the timer-wheel lane);
* ``signal_storm``  — equal-timestamp wake bursts (bucket FIFO lane);
* ``cancel_churn``  — events cancelled while sitting in the wheel;
* ``process_sleep`` — generator processes sleeping in a loop.

Macro benchmarks time full CLI experiments (``repro run <exp>``) end to end
on the optimized kernel; the per-experiment wall times feed the
EXPERIMENTS.md wall-time column.

Usage::

    python benchmarks/perf/bench_kernel.py --out BENCH_kernel.json
    python benchmarks/perf/bench_kernel.py --check BENCH_kernel.json

``--check`` re-runs the micro suite and fails (exit 1) when either the
fast-vs-reference *speedup ratio* of any micro benchmark regresses by more
than 25% against the committed file, or the overall untraced speedup falls
below the 2x floor this PR claims.  Ratios, not absolute ops/s, are
compared so the gate is stable across differently-sized CI machines.
"""

from __future__ import annotations

import argparse
import io
import json
import os
import sys
import time
from typing import Callable, Dict

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.sim import engine as fast_engine  # noqa: E402
from repro.sim import engine_reference as ref_engine  # noqa: E402

#: Headline floor: untraced event throughput must be at least this multiple
#: of the reference kernel's (ISSUE 4 acceptance criterion).
SPEEDUP_FLOOR = 2.0
#: --check fails when a per-benchmark speedup drops below this fraction of
#: the committed value.
REGRESSION_TOLERANCE = 0.75

MACRO_EXPERIMENTS = (
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
    "fig8", "fig9", "chaos", "tab-mem", "tab-sessions", "tab-proto",
    "tab-setup",
)


# -- micro benchmarks ---------------------------------------------------------


def _bench_one_shot(mod) -> int:
    """Distinct-timestamp one-shot events: the pure queue discipline."""
    sim = mod.Simulator()
    n = 120_000
    noop = lambda: None  # noqa: E731
    schedule = sim.schedule
    for i in range(n):
        schedule(float(i % 997) + i * 1e-6, noop)
    sim.run_until(2_000.0)
    return n


def _bench_periodic(mod) -> int:
    """50 fixed-interval tickers — the dominant clock-tick pattern."""
    sim = mod.Simulator()
    tasks = [
        sim.every(1.0, (lambda: None), start=float(i % 10) / 10.0)
        for i in range(50)
    ]
    sim.run_until(2_000.0)  # 50 x 2000 ticks
    for task in tasks:
        task.stop()
    return 50 * 2_000


def _bench_signal_storm(mod) -> int:
    """Equal-timestamp wake bursts: many waiters resumed at one instant."""
    sim = mod.Simulator()
    fired = 0
    rounds, waiters = 300, 100

    def count(_value) -> None:
        nonlocal fired
        fired += 1

    for r in range(rounds):
        sig = mod.Signal(sim)
        for _ in range(waiters):
            sig.add_waiter(count)
        sim.schedule_at(float(r), sig.succeed)
    sim.run_until(float(rounds) + 1.0)
    assert fired == rounds * waiters
    return rounds * waiters


def _bench_cancel_churn(mod) -> int:
    """Half the scheduled events are cancelled while queued."""
    sim = mod.Simulator()
    n = 60_000
    noop = lambda: None  # noqa: E731
    events = [sim.schedule(float(i % 500), noop) for i in range(n)]
    for event in events[::2]:
        event.cancel()
    sim.run_until(1_000.0)
    return n


def _bench_process_sleep(mod) -> int:
    """Generator processes sleeping in a tight loop."""
    sim = mod.Simulator()
    laps = 2_000

    def sleeper():
        for _ in range(laps):
            yield 1.0

    for _ in range(20):
        mod.Process(sim, sleeper())
    sim.run_until(float(laps) + 10.0)
    return 20 * laps


MICRO_BENCHMARKS: Dict[str, Callable] = {
    "one_shot": _bench_one_shot,
    "periodic": _bench_periodic,
    "signal_storm": _bench_signal_storm,
    "cancel_churn": _bench_cancel_churn,
    "process_sleep": _bench_process_sleep,
}


def _time_ops(fn: Callable, mod, repeats: int = 3) -> float:
    """Best-of-*repeats* ops/s for one benchmark on one kernel module."""
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        ops = fn(mod)
        elapsed = time.perf_counter() - start
        best = max(best, ops / elapsed)
    return best


def run_micro() -> dict:
    results = {}
    for name, fn in MICRO_BENCHMARKS.items():
        fast = _time_ops(fn, fast_engine)
        ref = _time_ops(fn, ref_engine)
        results[name] = {
            "fast_ops_per_s": round(fast),
            "reference_ops_per_s": round(ref),
            "speedup": round(fast / ref, 3),
        }
        print(
            f"  {name:<14} fast {fast:>12,.0f} ops/s   "
            f"reference {ref:>12,.0f} ops/s   {fast / ref:.2f}x",
            file=sys.stderr,
        )
    return results


def untraced_speedup(micro: dict) -> float:
    """Aggregate untraced event-throughput speedup (geometric mean)."""
    product = 1.0
    for entry in micro.values():
        product *= entry["speedup"]
    return round(product ** (1.0 / len(micro)), 3)


# -- macro benchmarks ---------------------------------------------------------


def run_macro() -> dict:
    from repro.cli import main as cli_main

    results = {}
    for name in MACRO_EXPERIMENTS:
        sink = io.StringIO()
        start = time.perf_counter()
        code = cli_main(["run", name, "--seed", "1"], out=sink)
        elapsed = time.perf_counter() - start
        if code != 0:
            raise SystemExit(f"experiment {name} failed during macro bench")
        results[name] = {"wall_s": round(elapsed, 3)}
        print(f"  {name:<12} {elapsed:.2f}s", file=sys.stderr)
    return results


# -- entry points -------------------------------------------------------------


def write_bench(path: str, skip_macro: bool = False) -> dict:
    print("micro (kernel event throughput):", file=sys.stderr)
    micro = run_micro()
    doc = {
        "schema": 1,
        "kernel_micro": micro,
        "untraced_speedup": untraced_speedup(micro),
    }
    if not skip_macro:
        print("macro (full experiments, optimized kernel):", file=sys.stderr)
        doc["experiments"] = run_macro()
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(
        f"untraced speedup {doc['untraced_speedup']}x -> {path}",
        file=sys.stderr,
    )
    return doc


def check_bench(path: str) -> int:
    with open(path) as fh:
        committed = json.load(fh)
    print("micro (kernel event throughput):", file=sys.stderr)
    micro = run_micro()
    failures = []
    for name, entry in micro.items():
        baseline = committed.get("kernel_micro", {}).get(name)
        if baseline is None:
            continue
        floor = baseline["speedup"] * REGRESSION_TOLERANCE
        if entry["speedup"] < floor:
            failures.append(
                f"{name}: speedup {entry['speedup']:.2f}x is below "
                f"{floor:.2f}x (>25% regression vs committed "
                f"{baseline['speedup']:.2f}x)"
            )
    overall = untraced_speedup(micro)
    if overall < SPEEDUP_FLOOR:
        failures.append(
            f"untraced speedup {overall:.2f}x is below the "
            f"{SPEEDUP_FLOOR:.1f}x floor"
        )
    if failures:
        for failure in failures:
            print(f"PERF REGRESSION: {failure}", file=sys.stderr)
        return 1
    print(f"perf smoke ok: untraced speedup {overall:.2f}x", file=sys.stderr)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--out", metavar="FILE", help="write BENCH_kernel.json")
    group.add_argument(
        "--check",
        metavar="FILE",
        help="re-run micro benches; fail on >25% speedup regression",
    )
    parser.add_argument(
        "--micro-only",
        action="store_true",
        help="with --out, skip the macro experiment timings",
    )
    args = parser.parse_args(argv)
    if fast_engine.KERNEL != "fast":
        parser.error(
            "benchmarks must run with the optimized kernel selected "
            "(unset REPRO_KERNEL)"
        )
    if args.check:
        return check_bench(args.check)
    write_bench(args.out, skip_macro=args.micro_only)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
