#!/usr/bin/env python
"""Tracing-overhead performance suite — writes and checks BENCH_obs.json.

For every figure/table experiment that runs sweeps, this bench times the
experiment untraced (``repro run``) and traced (``repro trace``) and reports
the **tracing overhead** — ``traced_wall / untraced_wall - 1`` — the
fraction of a run's wall time the observability layer costs.  Overheads are
dimensionless ratios, so the committed numbers transfer across differently
sized machines the same way the kernel bench's speedup ratios do.

The headline claim is the *reduction* against the frozen seed overheads:
the same measurement taken at commit ``f5c440b`` (the dict-per-event
recorder, per-event ``json.dumps`` encoder, and uncached per-call metric
lookups), embedded below as ``SEED_OVERHEADS``.  The geometric-mean
reduction across experiments must stay above the 2x floor this PR claims.

Usage::

    python benchmarks/perf/bench_obs.py --out BENCH_obs.json
    python benchmarks/perf/bench_obs.py --check BENCH_obs.json

``--check`` re-measures the overheads and fails (exit 1) when the
geometric-mean overhead reduction falls below the 2x floor.  Individual
experiments are reported but not gated — sub-100ms runs put several
percent of noise on a single overhead ratio, and the geomean over the whole
suite is what the acceptance criterion names.

Secondary comparison: ``--with-reference`` also times every experiment
traced under the reference (seed, dict-per-event) recorder selected via
``repro.obs.tracer.RECORDER`` — a same-call-sites A/B of just the recorder
and encoder, independent of the frozen baseline numbers.
"""

from __future__ import annotations

import argparse
import gc
import io
import json
import math
import os
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

#: Headline floor: the geometric-mean tracing-overhead reduction against the
#: frozen seed baseline must be at least this (ISSUE 5 acceptance criterion).
REDUCTION_FLOOR = 2.0

#: Overheads are clamped up to this before ratios are taken, so a traced run
#: that times *faster* than its untraced twin (pure scheduling noise) cannot
#: produce an unbounded reduction.
OVERHEAD_EPS = 0.005

#: Experiments that run sweeps (and therefore record observations), at a
#: wall time large enough to measure an overhead ratio against.  tab-sessions
#: and tab-setup run no sweeps; fig5/fig6 finish in a few milliseconds.
EXPERIMENTS = (
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig7",
    "fig8",
    "fig9",
    "chaos",
    "tab-mem",
    "tab-proto",
)

#: Tracing overhead (traced_wall / untraced_wall - 1) per experiment at the
#: seed commit f5c440b, measured with this script's own timing methodology
#: (fresh interpreter per experiment, GC-disabled timed regions, interleaved
#: run/trace pairs, adaptive best-of-N) before the columnar
#: recorder landed; each number is the median over three full measurement
#: passes.  Frozen: these are the denominators the reduction claim is made
#: against.
SEED_OVERHEADS = {
    "fig1": 0.1857,
    "fig2": 0.1226,
    "fig3": 1.0684,
    "fig4": 0.0356,
    "fig7": 0.0700,
    "fig8": 0.1517,
    "fig9": 0.1183,
    "chaos": 0.2103,
    "tab-mem": 0.3086,
    "tab-proto": 0.1091,
}
SEED_COMMIT = "f5c440b"


def _timed_wall(argv) -> float:
    """Wall seconds for one in-process CLI invocation, GC held off.

    The collector is disabled (after a full collection) for the timed
    region so a generation-2 pass triggered by one variant's allocations
    cannot be charged to the other; the overhead ratio stays a property of
    the code, not of where the GC thresholds happened to fall.
    """
    from repro.cli import main as cli_main

    sink = io.StringIO()
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        code = cli_main(argv, out=sink)
        elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    if code != 0:
        raise SystemExit(f"{argv!r} failed during obs bench")
    return elapsed


#: Adaptive repeats: a pair keeps being re-timed until at least this much
#: wall time has been measured (sub-100ms experiments need far more than
#: best-of-3 for a stable ratio), within the repeat cap.
MIN_MEASURED_S = 4.0
MAX_REPEATS = 25


def _pair_overhead(run_argv, trace_argv, min_repeats: int) -> tuple:
    """(best untraced, best traced, overhead) over N interleaved pairs.

    The two variants are timed back to back within each repeat — not as
    two separate repeat loops — so machine-load drift hits both sides of
    the comparison instead of skewing one.  The overhead estimate is the
    ratio of the **fastest observed wall** of each variant: each minimum
    converges on the variant's noise-free floor, which is the code-inherent
    cost the reduction claim is about (a median would fold scheduler and
    filesystem jitter tails back into the ratio and drift with machine
    load).  At least *min_repeats* pairs are timed; short experiments keep
    going until :data:`MIN_MEASURED_S` of wall time has been accumulated
    (capped at :data:`MAX_REPEATS`), because a single sub-100ms sample
    rarely touches its floor.
    """
    best_run = best_trace = math.inf
    measured = 0.0
    pairs = 0
    while pairs < min_repeats or (
        measured < MIN_MEASURED_S and pairs < MAX_REPEATS
    ):
        run = _timed_wall(run_argv)
        trace = _timed_wall(trace_argv)
        measured += run + trace
        pairs += 1
        if run < best_run:
            best_run = run
        if trace < best_trace:
            best_trace = trace
    overhead = max(best_trace / best_run - 1.0, OVERHEAD_EPS)
    return best_run, best_trace, overhead


def _measure_one(name: str, repeats: int, with_reference: bool) -> dict:
    """Measure one experiment in *this* interpreter; used by the child."""
    from repro.obs import tracer as tracer_mod

    with tempfile.TemporaryDirectory() as tmp:
        untraced, traced, overhead = _pair_overhead(
            ["run", name, "--seed", "1"],
            ["trace", name, "--seed", "1", "--trace-dir", os.path.join(tmp, name)],
            repeats,
        )
        entry = {
            "untraced_s": untraced,
            "traced_s": traced,
            "overhead": overhead,
        }
        if with_reference:
            tracer_mod.RECORDER = "reference"
            try:
                entry["reference_traced_s"] = min(
                    _timed_wall(
                        [
                            "trace", name, "--seed", "1",
                            "--trace-dir", os.path.join(tmp, name + "-ref"),
                        ]
                    )
                    for _ in range(repeats)
                )
            finally:
                tracer_mod.RECORDER = "columnar"
    return entry


def measure(repeats: int, with_reference: bool = False) -> dict:
    """Untraced/traced wall times and overheads for every experiment.

    Each experiment is measured in a **fresh interpreter**: ten experiments
    timed back to back in one process inherit each other's allocator state
    and drift several percent on single-experiment ratios.  A child process
    per experiment keeps every ratio a clean-slate measurement (the frozen
    seed baseline was measured the same way).
    """
    results = {}
    for name in EXPERIMENTS:
        argv = [
            sys.executable, os.path.abspath(__file__),
            "--measure-one", name, "--repeats", str(repeats),
        ]
        if with_reference:
            argv.append("--with-reference")
        proc = subprocess.run(
            argv, capture_output=True, text=True, check=False
        )
        if proc.returncode != 0:
            raise SystemExit(
                f"measuring {name} failed:\n{proc.stdout}{proc.stderr}"
            )
        timing = json.loads(proc.stdout)
        untraced = timing["untraced_s"]
        traced = timing["traced_s"]
        overhead = timing["overhead"]
        entry = {
            "untraced_s": round(untraced, 4),
            "traced_s": round(traced, 4),
            "overhead": round(overhead, 4),
            "reduction": round(SEED_OVERHEADS[name] / overhead, 3),
        }
        if with_reference:
            ref = timing["reference_traced_s"]
            entry["reference_traced_s"] = round(ref, 4)
            entry["reference_overhead"] = round(
                max(ref / untraced - 1.0, OVERHEAD_EPS), 4
            )
        results[name] = entry
        print(
            f"  {name:<10} untraced {untraced:7.3f}s  "
            f"traced {traced:7.3f}s  overhead {overhead * 100:5.1f}%  "
            f"(seed {SEED_OVERHEADS[name] * 100:5.1f}%, "
            f"{entry['reduction']:.2f}x)",
            file=sys.stderr,
        )
    return results


def overhead_reduction(results: dict) -> float:
    """Geometric-mean reduction in tracing overhead vs the seed baseline."""
    logs = [
        math.log(SEED_OVERHEADS[name] / results[name]["overhead"])
        for name in results
    ]
    return round(math.exp(sum(logs) / len(logs)), 3)


def write_bench(path: str, repeats: int, with_reference: bool) -> dict:
    print("tracing overhead (traced vs untraced wall time):", file=sys.stderr)
    results = measure(repeats, with_reference=with_reference)
    doc = {
        "schema": 1,
        "baseline": {
            "commit": SEED_COMMIT,
            "overheads": SEED_OVERHEADS,
        },
        "experiments": results,
        "overhead_reduction": overhead_reduction(results),
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(
        f"overhead reduction {doc['overhead_reduction']}x -> {path}",
        file=sys.stderr,
    )
    return doc


def check_bench(path: str, repeats: int) -> int:
    with open(path) as fh:
        committed = json.load(fh)
    committed_reduction = committed.get("overhead_reduction")
    # One retry: a sustained load burst on a shared CI runner can sink a
    # whole measurement pass, so a failing pass is re-measured once before
    # the gate fails.  The best of the two passes is the verdict — a real
    # recorder regression fails both.
    reduction = 0.0
    for attempt in (1, 2):
        print(
            "tracing overhead (traced vs untraced wall time):", file=sys.stderr
        )
        reduction = max(reduction, overhead_reduction(measure(repeats)))
        if reduction >= REDUCTION_FLOOR:
            break
        if attempt == 1:
            print(
                f"reduction {reduction:.2f}x below the floor; "
                "re-measuring once",
                file=sys.stderr,
            )
    if reduction < REDUCTION_FLOOR:
        print(
            f"PERF REGRESSION: tracing-overhead reduction {reduction:.2f}x "
            f"is below the {REDUCTION_FLOOR:.1f}x floor "
            f"(committed: {committed_reduction}x)",
            file=sys.stderr,
        )
        return 1
    print(
        f"perf smoke ok: tracing-overhead reduction {reduction:.2f}x "
        f"(committed: {committed_reduction}x)",
        file=sys.stderr,
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--out", metavar="FILE", help="write BENCH_obs.json")
    group.add_argument(
        "--check",
        metavar="FILE",
        help="re-measure overheads; fail below the 2x reduction floor",
    )
    group.add_argument(
        "--measure-one",
        metavar="EXPERIMENT",
        help=argparse.SUPPRESS,  # child-process mode used by measure()
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=7,
        metavar="N",
        help="minimum timing pairs per experiment (default 7; short "
        "experiments adaptively run more)",
    )
    parser.add_argument(
        "--with-reference",
        action="store_true",
        help="with --out, also time the reference (seed) recorder",
    )
    args = parser.parse_args(argv)
    if os.environ.get("REPRO_OBS", "columnar") != "columnar":
        parser.error(
            "benchmarks must run with the columnar recorder selected "
            "(unset REPRO_OBS)"
        )
    if args.measure_one:
        timing = _measure_one(
            args.measure_one, args.repeats, args.with_reference
        )
        json.dump(timing, sys.stdout)
        return 0
    if args.check:
        return check_bench(args.check, args.repeats)
    write_bench(args.out, args.repeats, args.with_reference)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
