#!/usr/bin/env python
"""Hybrid-tier performance suite — writes and checks BENCH_scale.json.

Machine-checkable claims, open tier and closed tier alike:

* **Population independence** — a hybrid point costs the same wall time
  at 10^6 background users as at 10^4 (the open background is a
  presampled array; the closed one is three counts stepped per tick).
  Checked as ratios, so the gates are stable across differently-sized
  CI machines.
* **Absolute affordability** — the 10^5-user point of the committed
  ``scale_load_curve`` shape finishes inside ``POINT_BUDGET_S`` seconds,
  and the 10^6-session ``scale_closed_curve`` point inside
  ``CLOSED_POINT_BUDGET_S`` (the ISSUE's acceptance bounds).
* **Hybrid beats exact** — at a population both tiers can run
  (N = 20 000), each hybrid point is at least ``SPEEDUP_FLOOR``x faster
  than its per-event twin, and the committed speedups do not regress by
  more than 50%.

Usage::

    python benchmarks/perf/bench_scale.py --out BENCH_scale.json
    python benchmarks/perf/bench_scale.py --check BENCH_scale.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.scale.experiments import (  # noqa: E402
    CLOSED_CURVE_BANDWIDTH_MBPS,
    CLOSED_CURVE_BURST_KEYS,
    CLOSED_CURVE_DURATION_MS,
    CLOSED_CURVE_THINK_MS,
    CLOSED_CURVE_TICK_MS,
    CLOSED_CURVE_TYPE_MS,
    CLOSED_CURVE_WARMUP_MS,
    LOAD_CURVE_BANDWIDTH_MBPS,
    LOAD_CURVE_DURATION_MS,
    LOAD_CURVE_PER_USER_BPS,
    LOAD_CURVE_TICK_MS,
)
from repro.scale.hybrid import (  # noqa: E402
    run_closed_curve_point,
    run_load_curve_point,
)

#: Populations timed on the committed curve shapes.
POPULATIONS = (10_000, 100_000, 1_000_000)

#: Absolute wall-time bound on the open 10^5-user point.
POINT_BUDGET_S = 10.0

#: Absolute wall-time bound on the closed 10^6-session point (ISSUE
#: acceptance: the full 60 s window at tick 1 ms in about a second).
CLOSED_POINT_BUDGET_S = 2.0

#: The 10^6-user point may cost at most this multiple of the 10^4 one.
FLATNESS_CEILING = 3.0

#: Hybrid must beat the exact tier by at least this factor at N=20k.
SPEEDUP_FLOOR = 2.0

#: --check fails when a speedup drops below this fraction of committed.
REGRESSION_TOLERANCE = 0.5

#: Where both tiers are affordable, for the speedup measurements.
SPEEDUP_USERS = 20_000
SPEEDUP_DURATION_MS = 10_000.0


def _wall(point, **kwargs) -> float:
    start = time.perf_counter()
    point(**kwargs)
    return time.perf_counter() - start


def _open_point(**kwargs) -> float:
    return _wall(
        run_load_curve_point,
        per_user_bps=LOAD_CURVE_PER_USER_BPS,
        bandwidth_mbps=LOAD_CURVE_BANDWIDTH_MBPS,
        tick_ms=LOAD_CURVE_TICK_MS,
        seed=1,
        **kwargs,
    )


def _closed_point(**kwargs) -> float:
    return _wall(
        run_closed_curve_point,
        think_ms=CLOSED_CURVE_THINK_MS,
        type_ms=CLOSED_CURVE_TYPE_MS,
        burst_keys=CLOSED_CURVE_BURST_KEYS,
        bandwidth_mbps=CLOSED_CURVE_BANDWIDTH_MBPS,
        tick_ms=CLOSED_CURVE_TICK_MS,
        seed=1,
        **kwargs,
    )


def run_points() -> dict:
    """Wall time of one hybrid load-curve point per population."""
    results = {}
    for users in POPULATIONS:
        elapsed = _open_point(
            users=users, duration_ms=LOAD_CURVE_DURATION_MS
        )
        results[str(users)] = {"wall_s": round(elapsed, 3)}
        print(f"  hybrid {users:>9,} users  {elapsed:.2f}s", file=sys.stderr)
    return results


def run_closed_points() -> dict:
    """Wall time of one closed-loop curve point per population."""
    results = {}
    for users in POPULATIONS:
        elapsed = _closed_point(
            users=users,
            duration_ms=CLOSED_CURVE_DURATION_MS,
            warmup_ms=CLOSED_CURVE_WARMUP_MS,
        )
        results[str(users)] = {"wall_s": round(elapsed, 3)}
        print(
            f"  closed {users:>9,} sessions  {elapsed:.2f}s", file=sys.stderr
        )
    return results


def run_speedup() -> dict:
    """Exact vs hybrid wall time at a population both tiers can run."""
    walls = {}
    for mode in ("exact", "hybrid"):
        walls[mode] = _open_point(
            users=SPEEDUP_USERS,
            duration_ms=SPEEDUP_DURATION_MS,
            mode=mode,
        )
        print(
            f"  {mode:<7} {SPEEDUP_USERS:,} users  {walls[mode]:.2f}s",
            file=sys.stderr,
        )
    speedup = walls["exact"] / walls["hybrid"]
    print(f"  hybrid speedup {speedup:.1f}x", file=sys.stderr)
    return {
        "users": SPEEDUP_USERS,
        "exact_wall_s": round(walls["exact"], 3),
        "hybrid_wall_s": round(walls["hybrid"], 3),
        "speedup": round(speedup, 2),
    }


def run_closed_speedup() -> dict:
    """Exact vs hybrid closed-loop wall time at the same population."""
    walls = {}
    for mode in ("exact", "hybrid"):
        walls[mode] = _closed_point(
            users=SPEEDUP_USERS,
            duration_ms=SPEEDUP_DURATION_MS,
            warmup_ms=1_000.0,
            mode=mode,
        )
        print(
            f"  closed {mode:<7} {SPEEDUP_USERS:,} sessions  "
            f"{walls[mode]:.2f}s",
            file=sys.stderr,
        )
    speedup = walls["exact"] / walls["hybrid"]
    print(f"  closed hybrid speedup {speedup:.1f}x", file=sys.stderr)
    return {
        "users": SPEEDUP_USERS,
        "exact_wall_s": round(walls["exact"], 3),
        "hybrid_wall_s": round(walls["hybrid"], 3),
        "speedup": round(speedup, 2),
    }


def _failures(
    points: dict,
    closed_points: dict,
    speedup: dict,
    closed_speedup: dict,
    committed: dict | None,
) -> list:
    failures = []
    mid = points["100000"]["wall_s"]
    if mid > POINT_BUDGET_S:
        failures.append(
            f"10^5-user point took {mid:.2f}s, over the "
            f"{POINT_BUDGET_S:.0f}s budget"
        )
    top_closed = closed_points["1000000"]["wall_s"]
    if top_closed > CLOSED_POINT_BUDGET_S:
        failures.append(
            f"10^6-session closed point took {top_closed:.2f}s, over the "
            f"{CLOSED_POINT_BUDGET_S:.0f}s budget"
        )
    for label, grid in (("", points), ("closed ", closed_points)):
        flatness = grid["1000000"]["wall_s"] / grid["10000"]["wall_s"]
        if flatness > FLATNESS_CEILING:
            failures.append(
                f"{label}10^6 point costs {flatness:.1f}x the 10^4 one "
                f"(ceiling {FLATNESS_CEILING:.1f}x): the hybrid tier is "
                "no longer population-independent"
            )
    for label, key, measured in (
        ("", "speedup", speedup),
        ("closed ", "closed_speedup", closed_speedup),
    ):
        if measured["speedup"] < SPEEDUP_FLOOR:
            failures.append(
                f"{label}hybrid speedup {measured['speedup']:.2f}x is "
                f"below the {SPEEDUP_FLOOR:.1f}x floor"
            )
        if committed is not None:
            baseline = committed.get(key, {}).get("speedup")
            if baseline is not None:
                floor = baseline * REGRESSION_TOLERANCE
                if measured["speedup"] < floor:
                    failures.append(
                        f"{label}hybrid speedup {measured['speedup']:.2f}x "
                        f"is below {floor:.2f}x (>50% regression vs "
                        f"committed {baseline:.2f}x)"
                    )
    return failures


def _measure() -> tuple:
    print("hybrid load-curve points:", file=sys.stderr)
    points = run_points()
    print("closed-loop curve points:", file=sys.stderr)
    closed_points = run_closed_points()
    print("exact vs hybrid:", file=sys.stderr)
    speedup = run_speedup()
    print("closed exact vs hybrid:", file=sys.stderr)
    closed_speedup = run_closed_speedup()
    return points, closed_points, speedup, closed_speedup


def write_bench(path: str) -> int:
    points, closed_points, speedup, closed_speedup = _measure()
    failures = _failures(
        points, closed_points, speedup, closed_speedup, committed=None
    )
    if failures:
        for failure in failures:
            print(f"PERF REGRESSION: {failure}", file=sys.stderr)
        return 1
    doc = {
        "schema": 2,
        "load_curve_points": points,
        "closed_curve_points": closed_points,
        "speedup": speedup,
        "closed_speedup": closed_speedup,
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"-> {path}", file=sys.stderr)
    return 0


def check_bench(path: str) -> int:
    with open(path) as fh:
        committed = json.load(fh)
    points, closed_points, speedup, closed_speedup = _measure()
    failures = _failures(
        points, closed_points, speedup, closed_speedup, committed
    )
    if failures:
        for failure in failures:
            print(f"PERF REGRESSION: {failure}", file=sys.stderr)
        return 1
    print(
        f"perf smoke ok: hybrid speedup {speedup['speedup']:.2f}x, "
        f"closed {closed_speedup['speedup']:.2f}x, "
        f"10^5 point {points['100000']['wall_s']:.2f}s, "
        f"closed 10^6 point {closed_points['1000000']['wall_s']:.2f}s",
        file=sys.stderr,
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--out", metavar="FILE", help="write BENCH_scale.json")
    group.add_argument(
        "--check",
        metavar="FILE",
        help="re-run the suite; fail on budget, flatness, or speedup loss",
    )
    args = parser.parse_args(argv)
    if os.environ.get("REPRO_KERNEL", "fast") not in ("", "fast"):
        parser.error(
            "benchmarks must run with the optimized kernel selected "
            "(unset REPRO_KERNEL)"
        )
    if args.check:
        return check_bench(args.check)
    return write_bench(args.out)


if __name__ == "__main__":
    raise SystemExit(main())
