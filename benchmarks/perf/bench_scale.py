#!/usr/bin/env python
"""Hybrid-tier performance suite — writes and checks BENCH_scale.json.

Three claims, each machine-checkable:

* **Population independence** — a hybrid load-curve point costs the same
  wall time at 10^6 background users as at 10^4 (the background is a
  presampled array, not events).  Checked as a ratio, so the gate is
  stable across differently-sized CI machines.
* **Absolute affordability** — the 10^5-user point of the committed
  ``scale_load_curve`` shape finishes inside ``POINT_BUDGET_S`` seconds
  (the ISSUE's acceptance bound; measured ~50x under it).
* **Hybrid beats exact** — at a population both tiers can run
  (N = 20 000), the hybrid point is at least ``SPEEDUP_FLOOR``x faster
  than the per-event tier, and the committed speedup does not regress by
  more than 50%.

Usage::

    python benchmarks/perf/bench_scale.py --out BENCH_scale.json
    python benchmarks/perf/bench_scale.py --check BENCH_scale.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.scale.experiments import (  # noqa: E402
    LOAD_CURVE_BANDWIDTH_MBPS,
    LOAD_CURVE_DURATION_MS,
    LOAD_CURVE_PER_USER_BPS,
    LOAD_CURVE_TICK_MS,
)
from repro.scale.hybrid import run_load_curve_point  # noqa: E402

#: Populations timed on the committed load-curve shape.
POPULATIONS = (10_000, 100_000, 1_000_000)

#: Absolute wall-time bound on the 10^5-user point (ISSUE acceptance).
POINT_BUDGET_S = 10.0

#: The 10^6-user point may cost at most this multiple of the 10^4 one.
FLATNESS_CEILING = 3.0

#: Hybrid must beat the exact tier by at least this factor at N=20k.
SPEEDUP_FLOOR = 2.0

#: --check fails when the speedup drops below this fraction of committed.
REGRESSION_TOLERANCE = 0.5

#: Where both tiers are affordable, for the speedup measurement.
SPEEDUP_USERS = 20_000
SPEEDUP_DURATION_MS = 10_000.0


def _wall(**kwargs) -> float:
    start = time.perf_counter()
    run_load_curve_point(**kwargs)
    return time.perf_counter() - start


def run_points() -> dict:
    """Wall time of one hybrid load-curve point per population."""
    results = {}
    for users in POPULATIONS:
        elapsed = _wall(
            users=users,
            per_user_bps=LOAD_CURVE_PER_USER_BPS,
            bandwidth_mbps=LOAD_CURVE_BANDWIDTH_MBPS,
            tick_ms=LOAD_CURVE_TICK_MS,
            duration_ms=LOAD_CURVE_DURATION_MS,
            seed=1,
        )
        results[str(users)] = {"wall_s": round(elapsed, 3)}
        print(f"  hybrid {users:>9,} users  {elapsed:.2f}s", file=sys.stderr)
    return results


def run_speedup() -> dict:
    """Exact vs hybrid wall time at a population both tiers can run."""
    walls = {}
    for mode in ("exact", "hybrid"):
        walls[mode] = _wall(
            users=SPEEDUP_USERS,
            per_user_bps=LOAD_CURVE_PER_USER_BPS,
            bandwidth_mbps=LOAD_CURVE_BANDWIDTH_MBPS,
            tick_ms=LOAD_CURVE_TICK_MS,
            duration_ms=SPEEDUP_DURATION_MS,
            seed=1,
            mode=mode,
        )
        print(
            f"  {mode:<7} {SPEEDUP_USERS:,} users  {walls[mode]:.2f}s",
            file=sys.stderr,
        )
    speedup = walls["exact"] / walls["hybrid"]
    print(f"  hybrid speedup {speedup:.1f}x", file=sys.stderr)
    return {
        "users": SPEEDUP_USERS,
        "exact_wall_s": round(walls["exact"], 3),
        "hybrid_wall_s": round(walls["hybrid"], 3),
        "speedup": round(speedup, 2),
    }


def _failures(points: dict, speedup: dict, committed: dict | None) -> list:
    failures = []
    mid = points["100000"]["wall_s"]
    if mid > POINT_BUDGET_S:
        failures.append(
            f"10^5-user point took {mid:.2f}s, over the "
            f"{POINT_BUDGET_S:.0f}s budget"
        )
    flatness = points["1000000"]["wall_s"] / points["10000"]["wall_s"]
    if flatness > FLATNESS_CEILING:
        failures.append(
            f"10^6-user point costs {flatness:.1f}x the 10^4 one "
            f"(ceiling {FLATNESS_CEILING:.1f}x): the hybrid tier is no "
            "longer population-independent"
        )
    if speedup["speedup"] < SPEEDUP_FLOOR:
        failures.append(
            f"hybrid speedup {speedup['speedup']:.2f}x is below the "
            f"{SPEEDUP_FLOOR:.1f}x floor"
        )
    if committed is not None:
        baseline = committed.get("speedup", {}).get("speedup")
        if baseline is not None:
            floor = baseline * REGRESSION_TOLERANCE
            if speedup["speedup"] < floor:
                failures.append(
                    f"hybrid speedup {speedup['speedup']:.2f}x is below "
                    f"{floor:.2f}x (>50% regression vs committed "
                    f"{baseline:.2f}x)"
                )
    return failures


def write_bench(path: str) -> int:
    print("hybrid load-curve points:", file=sys.stderr)
    points = run_points()
    print("exact vs hybrid:", file=sys.stderr)
    speedup = run_speedup()
    failures = _failures(points, speedup, committed=None)
    if failures:
        for failure in failures:
            print(f"PERF REGRESSION: {failure}", file=sys.stderr)
        return 1
    doc = {
        "schema": 1,
        "load_curve_points": points,
        "speedup": speedup,
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"-> {path}", file=sys.stderr)
    return 0


def check_bench(path: str) -> int:
    with open(path) as fh:
        committed = json.load(fh)
    print("hybrid load-curve points:", file=sys.stderr)
    points = run_points()
    print("exact vs hybrid:", file=sys.stderr)
    speedup = run_speedup()
    failures = _failures(points, speedup, committed)
    if failures:
        for failure in failures:
            print(f"PERF REGRESSION: {failure}", file=sys.stderr)
        return 1
    print(
        f"perf smoke ok: hybrid speedup {speedup['speedup']:.2f}x, "
        f"10^5 point {points['100000']['wall_s']:.2f}s",
        file=sys.stderr,
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--out", metavar="FILE", help="write BENCH_scale.json")
    group.add_argument(
        "--check",
        metavar="FILE",
        help="re-run the suite; fail on budget, flatness, or speedup loss",
    )
    args = parser.parse_args(argv)
    if os.environ.get("REPRO_KERNEL", "fast") not in ("", "fast"):
        parser.error(
            "benchmarks must run with the optimized kernel selected "
            "(unset REPRO_KERNEL)"
        )
    if args.check:
        return check_bench(args.check)
    return write_bench(args.out)


if __name__ == "__main__":
    raise SystemExit(main())
