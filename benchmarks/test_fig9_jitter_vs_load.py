"""Figure 9: network latency jitter (RTT variance) as a function of load.

Paper: "while the network is not saturated, RTT remains low and almost
perfectly consistent.  However, as the network nears saturation,
performance suffers dramatically" — the variance explodes.
"""

from conftest import emit, run_once

from repro.core import format_series
from repro.net import run_ping_experiment

LOAD_LEVELS = [0.0, 2.0, 4.0, 6.0, 8.0, 9.0, 9.6]
DURATION_MS = 60_000.0


def test_fig9_jitter_vs_load(benchmark):
    results = run_once(
        benchmark,
        run_ping_experiment,
        LOAD_LEVELS,
        duration_ms=DURATION_MS,
        seed=0,
    )

    emit(
        format_series(
            "offered Mbps",
            "RTT variance (ms^2)",
            [r.offered_mbps for r in results],
            [r.rtt_variance for r in results],
            title="Figure 9: RTT variance vs offered load",
            y_format="{:.2f}",
        )
    )

    var = {r.offered_mbps: r.rtt_variance for r in results}
    # Almost perfectly consistent while unsaturated.
    assert var[0.0] < 0.1
    assert var[4.0] < 10.0
    # Explodes near saturation: orders of magnitude, not a gentle rise.
    assert var[9.6] > 100 * max(var[4.0], 1e-6)
    assert var[9.6] > 10 * var[8.0]
