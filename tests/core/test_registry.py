"""The experiment registry: registration, ordering, groups, lookups."""

import pytest

from repro.core.registry import (
    REGISTRY,
    ExperimentSpec,
    experiment,
    get,
    names,
    register,
    specs,
)
from repro.errors import ExperimentError


@pytest.fixture
def scratch_registry(monkeypatch):
    """Run the test against an empty registry, restoring the real one."""
    monkeypatch.setattr("repro.core.registry.REGISTRY", {})
    import repro.core.registry as registry

    return registry


class TestDecorator:
    def test_registers_and_returns_the_runner(self, scratch_registry):
        @experiment("exp-a", title="A", group="g")
        def runner(ctx):
            """Doc."""

        spec = scratch_registry.REGISTRY["exp-a"]
        assert spec == ExperimentSpec("exp-a", "A", "g", runner)
        assert spec.run is runner

    def test_group_defaults_to_paper(self, scratch_registry):
        @experiment("exp-a", title="A")
        def runner(ctx):
            """Doc."""

        assert scratch_registry.REGISTRY["exp-a"].group == "paper"

    def test_duplicate_name_is_a_hard_error(self, scratch_registry):
        @experiment("exp-a", title="A")
        def runner(ctx):
            """Doc."""

        with pytest.raises(ExperimentError):

            @experiment("exp-a", title="A again")
            def other(ctx):
                """Doc."""


class TestOrdering:
    def test_registration_order_is_iteration_order(self, scratch_registry):
        for name in ("zeta", "alpha", "mid"):
            register(ExperimentSpec(name, name.title(), "g", lambda ctx: None))
        assert list(scratch_registry.REGISTRY) == ["zeta", "alpha", "mid"]

    def test_unregister_keeps_the_rest_in_order(self, scratch_registry):
        for name in ("a", "b", "c"):
            register(ExperimentSpec(name, name, "g", lambda ctx: None))
        scratch_registry.unregister("b")
        assert list(scratch_registry.REGISTRY) == ["a", "c"]

    def test_unregister_unknown_raises(self, scratch_registry):
        with pytest.raises(ExperimentError):
            scratch_registry.unregister("ghost")

    def test_groups_ordered_by_first_registration(self, scratch_registry):
        register(ExperimentSpec("p1", "P1", "paper", lambda ctx: None))
        register(ExperimentSpec("f1", "F1", "fleet", lambda ctx: None))
        register(ExperimentSpec("p2", "P2", "paper", lambda ctx: None))
        grouped = scratch_registry.groups()
        assert list(grouped) == ["paper", "fleet"]
        assert [s.name for s in grouped["paper"]] == ["p1", "p2"]


class TestLiveRegistry:
    """The real registry, as populated by importing the CLI."""

    def test_cli_import_populates_the_registry(self):
        import repro.cli  # noqa: F401  (registers on import)

        assert "fig1" in REGISTRY
        assert "fleet_capacity" in REGISTRY

    def test_lookup_helpers_agree_with_the_mapping(self):
        import repro.cli  # noqa: F401

        assert names() == list(REGISTRY)
        assert specs() == list(REGISTRY.values())
        assert get("fig1") is REGISTRY["fig1"]
        assert get("ghost") is None

    def test_every_spec_is_well_formed(self):
        import repro.cli  # noqa: F401

        for spec in specs():
            assert spec.name and spec.title and spec.group
            assert callable(spec.run)
