"""Tests for the command-line experiment runner and CSV export."""

import csv
import io
import os

import pytest

from repro.cli import EXPERIMENTS, main
from repro.core.report import write_csv


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestList:
    def test_list_names_every_experiment(self):
        code, text = run_cli("list")
        assert code == 0
        for name in EXPERIMENTS:
            assert name in text

    def test_registry_covers_all_figures_and_tables(self):
        figs = {f"fig{i}" for i in range(1, 10)}
        tabs = {"tab-mem", "tab-sessions", "tab-proto", "tab-setup"}
        extras = {
            "chaos",
            "fleet_capacity",
            "fleet_placement",
            "analytic_link",
            "analytic_closed",
            "slo_burst",
            "slo_chaos_grid",
            "slo_fleet",
            "scale_load_curve",
            "scale_closed_curve",
            "scale_fleet",
            "scale_closed_fleet",
        }
        assert figs | tabs | extras == set(EXPERIMENTS)

    def test_run_all_keeps_paper_experiments_first(self):
        """Registration appends new groups, never reorders the paper set.

        ``run all`` executes in registry order, and sweep cache keys embed
        that order's experiment names — so the historical sequence is part
        of the compatibility surface.
        """
        names = list(EXPERIMENTS)
        legacy = (
            [f"fig{i}" for i in range(1, 10)]
            + ["chaos", "tab-mem", "tab-sessions", "tab-proto", "tab-setup"]
        )
        assert names[: len(legacy)] == legacy

    def test_list_shows_group_headers(self):
        code, text = run_cli("list")
        assert code == 0
        for group in ("paper", "chaos", "fleet", "analytic", "slo", "scale"):
            assert f"Available experiments — {group}" in text


class TestRun:
    def test_unknown_experiment_exits_2(self):
        code, text = run_cli("run", "nope")
        assert code == 2
        assert "unknown experiment" in text

    def test_run_tab_sessions(self):
        code, text = run_cli("run", "tab-sessions")
        assert code == 0
        assert "752 KB" in text
        assert "3,244 KB" in text

    def test_run_tab_setup(self):
        code, text = run_cli("run", "tab-setup")
        assert code == 0
        assert "45,328" in text and "16,312" in text

    def test_run_fig7_with_csv(self, tmp_path):
        code, text = run_cli(
            "run", "fig7", "--csv", str(tmp_path / "out")
        )
        assert code == 0
        assert "Figure 7" in text
        with open(tmp_path / "out" / "fig7.csv") as f:
            rows = list(csv.reader(f))
        assert rows[0] == ["frames", "mbps"]
        assert len(rows) > 5

    def test_seed_changes_stochastic_output(self):
        __, a = run_cli("run", "fig8", "--seed", "1")
        __, b = run_cli("run", "fig8", "--seed", "2")
        assert a != b
        __, a2 = run_cli("run", "fig8", "--seed", "1")
        assert a == a2


class TestExecutorRouting:
    def read_all_csvs(self, directory):
        out = {}
        for name in sorted(os.listdir(directory)):
            with open(os.path.join(directory, name), "rb") as f:
                out[name] = f.read()
        return out

    def test_parallel_csvs_byte_identical_to_serial(self, tmp_path):
        """--jobs N must never change what the CLI produces."""
        code, serial_text = run_cli(
            "run", "fig8", "--seed", "3", "--csv", str(tmp_path / "serial")
        )
        assert code == 0
        code, parallel_text = run_cli(
            "run", "fig8", "--seed", "3", "--jobs", "2",
            "--csv", str(tmp_path / "parallel"),
        )
        assert code == 0
        assert parallel_text == serial_text
        assert self.read_all_csvs(tmp_path / "serial") == self.read_all_csvs(
            tmp_path / "parallel"
        )

    def test_cached_rerun_executes_zero_probe_calls(self, tmp_path, monkeypatch):
        import repro.workloads

        real = repro.workloads.run_stall_experiment
        calls = []

        def counting(*args, **kwargs):
            calls.append(args)
            return real(*args, **kwargs)

        monkeypatch.setattr(repro.workloads, "run_stall_experiment", counting)
        cache = str(tmp_path / "cache")
        code, first = run_cli("run", "fig3", "--cache-dir", cache)
        assert code == 0
        first_calls = len(calls)
        assert first_calls > 0
        code, second = run_cli("run", "fig3", "--cache-dir", cache)
        assert code == 0
        assert len(calls) == first_calls  # every point replayed from disk
        assert second == first

    def test_no_cache_forces_recomputation(self, tmp_path, monkeypatch):
        import repro.workloads

        real = repro.workloads.run_stall_experiment
        calls = []

        def counting(*args, **kwargs):
            calls.append(args)
            return real(*args, **kwargs)

        monkeypatch.setattr(repro.workloads, "run_stall_experiment", counting)
        cache = str(tmp_path / "cache")
        run_cli("run", "fig3", "--cache-dir", cache)
        first_calls = len(calls)
        run_cli("run", "fig3", "--cache-dir", cache, "--no-cache")
        assert len(calls) == 2 * first_calls

    def test_cached_output_identical_to_uncached(self, tmp_path):
        __, uncached = run_cli("run", "fig3", "--seed", "2")
        cache = str(tmp_path / "cache")
        run_cli("run", "fig3", "--seed", "2", "--cache-dir", cache)
        __, cached = run_cli("run", "fig3", "--seed", "2", "--cache-dir", cache)
        assert cached == uncached

    def test_bad_jobs_rejected(self):
        code, text = run_cli("run", "fig3", "--jobs", "0")
        assert code == 2
        assert "--jobs" in text

    def test_progress_reports_per_point_timing(self, tmp_path):
        import io

        progress = io.StringIO()
        out = io.StringIO()
        code = main(
            ["run", "fig7", "--cache-dir", str(tmp_path / "c")],
            out=out,
            progress=progress,
        )
        assert code == 0
        lines = progress.getvalue()
        assert "fig7: point 1/10" in lines
        assert "fig7: 10 points in" in lines
        progress2 = io.StringIO()
        main(
            ["run", "fig7", "--cache-dir", str(tmp_path / "c")],
            out=io.StringIO(),
            progress=progress2,
        )
        assert "(10 cached, backend=serial)" in progress2.getvalue()


class TestRunContext:
    def test_serial_by_default(self):
        from repro.exec import RunContext

        ctx = RunContext()
        assert ctx.executor.backend_name == "serial"
        assert ctx.executor.cache is None

    def test_jobs_select_process_backend(self):
        from repro.exec import RunContext

        ctx = RunContext(jobs=4)
        assert ctx.executor.backend_name == "process"
        assert ctx.executor.jobs == 4

    def test_no_cache_overrides_cache_dir(self, tmp_path):
        from repro.exec import RunContext

        ctx = RunContext(cache_dir=str(tmp_path), no_cache=True)
        assert ctx.executor.cache is None
        ctx2 = RunContext(cache_dir=str(tmp_path))
        assert ctx2.executor.cache is not None

    def test_executor_is_built_once(self):
        from repro.exec import RunContext

        ctx = RunContext()
        assert ctx.executor is ctx.executor


class TestWriteCsv:
    def test_writes_headers_and_rows(self, tmp_path):
        path = tmp_path / "nested" / "dir" / "t.csv"
        write_csv(str(path), ["a", "b"], [(1, 2), (3, 4)])
        with open(path) as f:
            rows = list(csv.reader(f))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_relative_path_without_parent(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        write_csv("flat.csv", ["x"], [(1,)])
        assert os.path.exists(tmp_path / "flat.csv")
