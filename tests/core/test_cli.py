"""Tests for the command-line experiment runner and CSV export."""

import csv
import io
import os

import pytest

from repro.cli import EXPERIMENTS, main
from repro.core.report import write_csv


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestList:
    def test_list_names_every_experiment(self):
        code, text = run_cli("list")
        assert code == 0
        for name in EXPERIMENTS:
            assert name in text

    def test_registry_covers_all_figures_and_tables(self):
        figs = {f"fig{i}" for i in range(1, 10)}
        tabs = {"tab-mem", "tab-sessions", "tab-proto", "tab-setup"}
        assert figs | tabs == set(EXPERIMENTS)


class TestRun:
    def test_unknown_experiment_exits_2(self):
        code, text = run_cli("run", "nope")
        assert code == 2
        assert "unknown experiment" in text

    def test_run_tab_sessions(self):
        code, text = run_cli("run", "tab-sessions")
        assert code == 0
        assert "752 KB" in text
        assert "3,244 KB" in text

    def test_run_tab_setup(self):
        code, text = run_cli("run", "tab-setup")
        assert code == 0
        assert "45,328" in text and "16,312" in text

    def test_run_fig7_with_csv(self, tmp_path):
        code, text = run_cli(
            "run", "fig7", "--csv", str(tmp_path / "out")
        )
        assert code == 0
        assert "Figure 7" in text
        with open(tmp_path / "out" / "fig7.csv") as f:
            rows = list(csv.reader(f))
        assert rows[0] == ["frames", "mbps"]
        assert len(rows) > 5

    def test_seed_changes_stochastic_output(self):
        __, a = run_cli("run", "fig8", "--seed", "1")
        __, b = run_cli("run", "fig8", "--seed", "2")
        assert a != b
        __, a2 = run_cli("run", "fig8", "--seed", "1")
        assert a == a2


class TestWriteCsv:
    def test_writes_headers_and_rows(self, tmp_path):
        path = tmp_path / "nested" / "dir" / "t.csv"
        write_csv(str(path), ["a", "b"], [(1, 2), (3, 4)])
        with open(path) as f:
            rows = list(csv.reader(f))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_relative_path_without_parent(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        write_csv("flat.csv", ["x"], [(1,)])
        assert os.path.exists(tmp_path / "flat.csv")
