"""Tests for the composed thin-client server and client."""

import pytest

from repro.core import ServerConfig, ThinClient, ThinClientServer
from repro.errors import ExperimentError
from repro.net.tcpstream import Message
from repro.sim import Simulator


class TestConfig:
    def test_presets(self):
        assert ServerConfig.tse().protocol_name == "rdp"
        assert ServerConfig.linux().protocol_name == "x"
        assert ServerConfig.linux_lbx().protocol_name == "lbx"

    def test_overrides(self):
        cfg = ServerConfig.tse(cpu_speed=4.0, bandwidth_mbps=100.0)
        assert cfg.cpu_speed == 4.0
        assert cfg.bandwidth_mbps == 100.0


class TestThinClient:
    def test_latency_measured_input_to_display(self):
        sim = Simulator()
        client = ThinClient(sim)
        client.input_sent()
        sim.run_until(42.0)
        client.display_received(Message("display", 100))
        assert client.latencies_ms == [42.0]

    def test_unsolicited_display_not_a_latency_sample(self):
        sim = Simulator()
        client = ThinClient(sim)
        client.display_received(Message("display", 100))
        assert client.latencies_ms == []
        assert client.display_messages_received == 1

    def test_one_input_one_sample(self):
        sim = Simulator()
        client = ThinClient(sim)
        client.input_sent()
        client.display_received(Message("display", 10))
        client.display_received(Message("display", 10))
        assert len(client.latencies_ms) == 1


class TestServer:
    def test_connect_creates_session_state(self):
        server = ThinClientServer(ServerConfig.tse(), seed=1)
        session = server.connect("alice")
        assert server.session_count == 1
        assert session.memory.resident_pages > 0
        assert session.echo_thread.name == "alice:app"
        # Session setup bytes went over the wire (§6.1.1).
        server.run(2_000.0)
        assert server.link.bytes_sent > 40_000

    def test_duplicate_session_rejected(self):
        server = ThinClientServer(ServerConfig.tse(), seed=1)
        server.connect("alice")
        with pytest.raises(ExperimentError):
            server.connect("alice")

    def test_keystroke_round_trip_measures_latency(self):
        server = ThinClientServer(ServerConfig.linux(), seed=1)
        session = server.connect("bob")
        server.run(1_000.0)
        session.press_key()
        server.run(1_000.0)
        assert len(session.client.latencies_ms) == 1
        # Unloaded: network transit + 2ms echo burst, well under perception.
        assert session.client.latencies_ms[0] < 20.0

    def test_sustained_typing(self):
        server = ThinClientServer(ServerConfig.tse(), seed=1)
        session = server.connect("carol")
        server.run(500.0)
        session.start_typing()
        with pytest.raises(ExperimentError):
            session.start_typing()
        server.run(3_000.0)
        session.stop_typing()
        assert len(session.client.latencies_ms) > 40
        assessment = session.client.assessment()
        assert assessment.summary.average < 100.0

    def test_all_three_protocol_stacks_work(self):
        for config in (
            ServerConfig.tse(),
            ServerConfig.linux(),
            ServerConfig.linux_lbx(),
        ):
            server = ThinClientServer(config, seed=2)
            session = server.connect("u")
            server.run(500.0)
            session.press_key()
            server.run(500.0)
            assert session.client.latencies_ms, config.protocol_name

    def test_faster_cpu_does_not_hurt(self):
        slow = ThinClientServer(ServerConfig.tse(cpu_speed=1.0), seed=3)
        fast = ThinClientServer(ServerConfig.tse(cpu_speed=4.0), seed=3)
        lat = {}
        for name, server in (("slow", slow), ("fast", fast)):
            session = server.connect("u")
            server.run(500.0)
            session.press_key()
            server.run(500.0)
            lat[name] = session.client.latencies_ms[0]
        assert lat["fast"] <= lat["slow"]

    def test_idle_activity_can_be_disabled(self):
        server = ThinClientServer(
            ServerConfig.tse(include_idle_activity=False), seed=1
        )
        server.run(5_000.0)
        assert server.cpu.busy_trace.total_busy() == 0.0


class TestWebBrowsing:
    def test_open_webpage_streams_display_traffic(self):
        server = ThinClientServer(ServerConfig.tse(), seed=3)
        session = server.connect("web")
        baseline = server.link.bytes_sent
        session.open_webpage()
        server.run(10_000.0)
        assert server.link.bytes_sent > baseline + 100_000

    def test_double_open_rejected(self):
        server = ThinClientServer(ServerConfig.tse(), seed=3)
        session = server.connect("web")
        session.open_webpage()
        with pytest.raises(ExperimentError):
            session.open_webpage()

    def test_unknown_variant_rejected(self):
        server = ThinClientServer(ServerConfig.tse(), seed=3)
        session = server.connect("web")
        with pytest.raises(ExperimentError):
            session.open_webpage("popup")

    def test_close_webpage_stops_traffic(self):
        server = ThinClientServer(ServerConfig.tse(), seed=3)
        session = server.connect("web")
        session.open_webpage()
        server.run(5_000.0)
        session.close_webpage()
        server.run(1_000.0)  # drain the transmit queue
        before = server.link.bytes_sent
        server.run(10_000.0)
        assert server.link.bytes_sent == before

    def test_browsers_degrade_a_typist(self):
        loaded = ThinClientServer(ServerConfig.tse(), seed=3)
        typer = loaded.connect("typist")
        for i in range(6):
            loaded.connect(f"web{i}").open_webpage()
        loaded.run(2_000.0)
        typer.start_typing()
        loaded.run(15_000.0)
        typer.stop_typing()
        loaded.run(3_000.0)
        assert typer.client.assessment().summary.average > 25.0


class TestServerReport:
    def test_report_fields(self):
        server = ThinClientServer(ServerConfig.tse(), seed=8)
        session = server.connect("u")
        server.run(1_000.0)
        session.press_key()
        server.run(1_000.0)
        report = server.report()
        assert report["os"] == "nt_tse"
        assert report["protocol"] == "rdp"
        assert 0.0 <= report["cpu_utilization"] <= 1.0
        assert 0.0 <= report["link_utilization"] <= 1.0
        assert report["page_faults"] > 0  # login working set faulted in
        assert report["sessions"]["u"] is not None
        assert report["sessions"]["u"].summary.count == 1

    def test_report_window(self):
        server = ThinClientServer(ServerConfig.linux(), seed=8)
        server.run(1_000.0)
        report = server.report(500.0, 1_000.0)
        assert report["window_ms"] == (500.0, 1_000.0)
        with pytest.raises(ExperimentError):
            server.report(1_000.0, 1_000.0)

    def test_sessions_without_interaction_report_none(self):
        server = ThinClientServer(ServerConfig.linux(), seed=8)
        server.connect("idle-user")
        server.run(1_000.0)
        assert server.report()["sessions"]["idle-user"] is None


class TestDisconnect:
    def test_disconnect_frees_memory_and_threads(self):
        server = ThinClientServer(ServerConfig.tse(), seed=10)
        used_before = server.vm.pool.used_frames
        session = server.connect("u")
        server.run(500.0)
        session.start_typing()
        session.open_webpage()
        server.run(1_000.0)
        server.disconnect("u")
        assert server.session_count == 0
        assert server.vm.pool.used_frames == used_before
        from repro.cpu import ThreadState

        assert session.echo_thread.state is ThreadState.TERMINATED
        # No further display traffic after the queue drains.
        server.run(1_000.0)
        sent = server.link.bytes_sent
        server.run(5_000.0)
        assert server.link.bytes_sent == sent

    def test_disconnect_unknown_rejected(self):
        server = ThinClientServer(ServerConfig.tse(), seed=10)
        with pytest.raises(ExperimentError):
            server.disconnect("ghost")

    def test_reconnect_after_disconnect(self):
        server = ThinClientServer(ServerConfig.tse(), seed=10)
        server.connect("u")
        server.run(500.0)
        server.disconnect("u")
        session = server.connect("u")
        server.run(500.0)
        session.press_key()
        server.run(500.0)
        assert session.client.latencies_ms
