"""Metrics-summary rendering, including the per-server fleet collapse."""

from repro.core.report import _collapse_fleet_rows, format_metrics_summary


class TestCollapseFleetRows:
    def test_non_fleet_rows_pass_through_verbatim(self):
        rows = [
            ("sim.events_dispatched", "1,234"),
            ("net.bytes_sent", "5,678"),
            ("latency_ms (mean)", "3.21"),
        ]
        assert _collapse_fleet_rows(rows) == rows

    def test_per_server_gauges_collapse_to_one_row(self):
        rows = [
            ("fleet.admitted", "8"),
            ("fleet.load.s00 (peak)", "4"),
            ("fleet.load.s01 (peak)", "2"),
            ("fleet.load.s02 (peak)", "3"),
            ("net.bytes_sent", "99"),
        ]
        collapsed = _collapse_fleet_rows(rows)
        assert len(collapsed) == 3
        assert collapsed[0] == ("fleet.admitted", "8")
        metric, value = collapsed[1]
        assert metric == "fleet.load (per-server peak)"
        assert "n=3" in value
        assert "min=2" in value and "max=4" in value and "mean=3" in value
        assert collapsed[2] == ("net.bytes_sent", "99")

    def test_collapse_anchors_at_first_member(self):
        rows = [
            ("alpha", "1"),
            ("fleet.load.s01 (peak)", "5"),
            ("beta", "2"),
            ("fleet.load.s00 (peak)", "7"),
        ]
        collapsed = _collapse_fleet_rows(rows)
        assert [m for m, __ in collapsed] == [
            "alpha",
            "fleet.load (per-server peak)",
            "beta",
        ]
        # Members sort by server index regardless of arrival order.
        assert "min=5" in collapsed[1][1] and "max=7" in collapsed[1][1]

    def test_unparseable_fleet_value_passes_through(self):
        rows = [("fleet.load.s00 (peak)", "n/a")]
        assert _collapse_fleet_rows(rows) == rows

    def test_counters_with_server_like_names_untouched(self):
        # Only the fleet.* namespace collapses; a non-fleet sNN metric is
        # someone else's naming scheme.
        rows = [("disk.load.s00 (peak)", "4")]
        assert _collapse_fleet_rows(rows) == rows


class TestFormatMetricsSummary:
    def test_renders_collapsed_table(self):
        text = format_metrics_summary(
            "fleet_capacity",
            [
                ("fleet.admitted", "8"),
                ("fleet.load.s00 (peak)", "4"),
                ("fleet.load.s01 (peak)", "2"),
            ],
        )
        assert "fleet_capacity: metrics summary" in text
        assert "fleet.load (per-server peak)" in text
        assert "fleet.load.s00" not in text

    def test_prefleet_rows_byte_identical(self):
        rows = [("sim.events_dispatched", "42"), ("latency_ms (p99)", "9.9")]
        assert format_metrics_summary("fig8", rows) == format_metrics_summary(
            "fig8", list(rows)
        )
        assert "42" in format_metrics_summary("fig8", rows)
