"""Tests for ``repro trace`` and ``repro run --trace-dir``: artifact layout,
the metrics summary table, and byte-identity across executor paths."""

import io
import json
import os

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def read_artifacts(directory, name="fig1"):
    with open(os.path.join(directory, f"{name}.trace.jsonl"), "rb") as f:
        trace = f.read()
    with open(os.path.join(directory, f"{name}.metrics.json"), "rb") as f:
        metrics = f.read()
    return trace, metrics


class TestTraceCommand:
    def test_writes_trace_and_metrics_artifacts(self, tmp_path):
        out_dir = str(tmp_path / "out")
        code, text = run_cli("trace", "fig1", "--seed", "1", "--trace-dir", out_dir)
        assert code == 0
        trace, metrics = read_artifacts(out_dir)
        assert trace  # at least one event line
        for line in trace.decode().splitlines():
            event = json.loads(line)
            assert {"t", "kind", "sweep", "point"} <= set(event)
        doc = json.loads(metrics)
        assert doc["experiment"] == "fig1"
        assert doc["seed"] == 1
        assert doc["totals"]["counters"]["sim.events_dispatched"] > 0

    def test_prints_metrics_summary_table(self, tmp_path):
        code, text = run_cli("trace", "fig1", "--seed", "1")
        assert code == 0
        assert "fig1: metrics summary" in text
        assert "sim.events_dispatched" in text
        assert "trace.events" in text

    def test_unknown_experiment_exits_2(self):
        code, text = run_cli("trace", "nope")
        assert code == 2
        assert "unknown experiment" in text

    def test_run_with_trace_dir_also_emits_artifacts(self, tmp_path):
        out_dir = str(tmp_path / "out")
        code, text = run_cli("run", "fig1", "--seed", "1", "--trace-dir", out_dir)
        assert code == 0
        trace, __ = read_artifacts(out_dir)
        assert trace
        assert "fig1: metrics summary" in text

    def test_plain_run_prints_no_summary(self):
        code, text = run_cli("run", "tab-setup")
        assert code == 0
        assert "metrics summary" not in text


class TestTraceDeterminism:
    """The acceptance criterion: artifacts are byte-identical across
    reruns, ``--jobs N``, and warm-cache replays."""

    def test_rerun_is_byte_identical(self, tmp_path):
        run_cli("trace", "fig1", "--seed", "1", "--trace-dir", str(tmp_path / "a"))
        run_cli("trace", "fig1", "--seed", "1", "--trace-dir", str(tmp_path / "b"))
        assert read_artifacts(str(tmp_path / "a")) == read_artifacts(
            str(tmp_path / "b")
        )

    def test_parallel_run_is_byte_identical_to_serial(self, tmp_path):
        run_cli("trace", "fig1", "--seed", "1", "--trace-dir", str(tmp_path / "a"))
        run_cli(
            "trace", "fig1", "--seed", "1",
            "--trace-dir", str(tmp_path / "b"), "--jobs", "4",
        )
        assert read_artifacts(str(tmp_path / "a")) == read_artifacts(
            str(tmp_path / "b")
        )

    def test_warm_cache_replay_is_byte_identical(self, tmp_path):
        cache = str(tmp_path / "cache")
        args = ("trace", "fig1", "--seed", "1", "--cache-dir", cache)
        code, cold_text = run_cli(*args, "--trace-dir", str(tmp_path / "a"))
        assert code == 0
        code, warm_text = run_cli(*args, "--trace-dir", str(tmp_path / "b"))
        assert code == 0
        assert read_artifacts(str(tmp_path / "a")) == read_artifacts(
            str(tmp_path / "b")
        )
        # The summary table is part of the contract too.
        assert "fig1: metrics summary" in warm_text

    def test_different_seeds_differ(self, tmp_path):
        run_cli("trace", "fig1", "--seed", "1", "--trace-dir", str(tmp_path / "a"))
        run_cli("trace", "fig1", "--seed", "2", "--trace-dir", str(tmp_path / "b"))
        assert read_artifacts(str(tmp_path / "a")) != read_artifacts(
            str(tmp_path / "b")
        )
