"""Tests for capacity planning, sweeps, and report formatting."""

import pytest

from repro.core import CapacityReport, ParameterSweep, plan_capacity
from repro.core.report import format_series, format_table, sparkline
from repro.errors import ExperimentError
from repro.units import mb
from repro.workloads import TASK_WORKER, WEB_BROWSER_USER


class TestCapacity:
    def test_web_users_are_network_limited(self):
        """§6.1.3: 'If just five users open their browsers to a page like
        this, the network link becomes saturated.'"""
        report = plan_capacity("nt_tse", WEB_BROWSER_USER)
        assert report.limiting_resource == "network"
        assert report.max_users == 5  # floor(10 * 0.8 / 1.6)

    def test_fast_network_shifts_the_bottleneck(self):
        report = plan_capacity(
            "nt_tse", WEB_BROWSER_USER, bandwidth_mbps=100.0, cpu_count=2
        )
        assert report.limiting_resource != "network"
        assert report.max_users > 5

    def test_task_workers_fit_more_than_web_users(self):
        light = plan_capacity("linux", TASK_WORKER)
        heavy = plan_capacity("linux", WEB_BROWSER_USER)
        assert light.max_users > heavy.max_users

    def test_linux_memory_dimension_beats_tse(self):
        """Smaller per-login footprint -> more users per MB (§5.1.1)."""
        linux = plan_capacity("linux", TASK_WORKER, physical_bytes=mb(128))
        tse = plan_capacity("nt_tse", TASK_WORKER, physical_bytes=mb(128))
        assert linux.memory_users > tse.memory_users

    def test_more_cpus_raise_cpu_ceiling(self):
        one = plan_capacity("linux", TASK_WORKER, cpu_count=1)
        four = plan_capacity("linux", TASK_WORKER, cpu_count=4)
        assert four.cpu_users > one.cpu_users

    def test_describe_names_the_bottleneck(self):
        report = plan_capacity("nt_tse", WEB_BROWSER_USER)
        assert "network" in report.describe()

    def test_validation(self):
        with pytest.raises(ExperimentError):
            plan_capacity("linux", TASK_WORKER, cpu_count=0)
        with pytest.raises(ExperimentError):
            plan_capacity("linux", TASK_WORKER, cpu_headroom=0.0)

    def test_report_max_users_is_min(self):
        report = CapacityReport("os", "p", 10, 5, 7)
        assert report.max_users == 5
        assert report.limiting_resource == "memory"


class TestParameterSweep:
    def test_sweep_collects_rows(self):
        sweep = ParameterSweep("squares", "n", lambda n: n * n)
        result = sweep.execute([1, 2, 3])
        assert result.values() == [1, 2, 3]
        assert result.results() == [1, 4, 9]
        assert result.result_for(2) == 4

    def test_series_extraction(self):
        sweep = ParameterSweep("s", "n", lambda n: {"metric": n + 0.5})
        result = sweep.execute([1, 2])
        xs, ys = result.series(lambda r: r["metric"])
        assert xs == [1, 2]
        assert ys == [1.5, 2.5]

    def test_missing_row_rejected(self):
        result = ParameterSweep("s", "n", lambda n: n).execute([1])
        with pytest.raises(ExperimentError):
            result.result_for(9)

    def test_missing_row_message_unchanged(self):
        """Regression: the dict-indexed lookup raises the same message the
        old linear scan did."""
        result = ParameterSweep("s", "n", lambda n: n).execute([1])
        with pytest.raises(
            ExperimentError, match=r"sweep 's' has no row for n=9"
        ):
            result.result_for(9)

    def test_empty_values_rejected(self):
        with pytest.raises(ExperimentError):
            ParameterSweep("s", "n", lambda n: n).execute([])

    def test_result_for_sees_rows_appended_directly(self):
        """Regression: code that mutates ``rows`` behind the index's back
        (the pre-index idiom) still gets correct lookups."""
        from repro.core import SweepResult

        result = SweepResult("s", "n")
        result.rows.append((1, "a"))
        assert result.result_for(1) == "a"
        result.rows.append((2, "b"))
        assert result.result_for(2) == "b"
        with pytest.raises(ExperimentError, match="no row for n=3"):
            result.result_for(3)

    def test_result_for_duplicate_values_returns_first(self):
        from repro.core import SweepResult

        result = SweepResult("s", "n")
        result.append(1, "first")
        result.append(1, "second")
        assert result.result_for(1) == "first"

    def test_result_for_unhashable_values_fall_back_to_scan(self):
        from repro.core import SweepResult

        result = SweepResult("s", "n")
        result.append([1, 2], "list-param")
        assert result.result_for([1, 2]) == "list-param"
        with pytest.raises(ExperimentError):
            result.result_for([3])

    def test_index_scales_past_linear_scan(self):
        result = ParameterSweep("s", "n", lambda n: n).execute(range(2000))
        assert result.result_for(1999) == 1999


class TestReport:
    def test_format_table_aligns(self):
        out = format_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "333" in out and "22" in out
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows equally wide

    def test_format_table_validates_row_width(self):
        with pytest.raises(ExperimentError):
            format_table(["a"], [[1, 2]])

    def test_format_series(self):
        out = format_series("x", "y", [1, 2], [0.5, 1.5])
        assert "0.500" in out and "1.500" in out

    def test_format_series_length_mismatch(self):
        with pytest.raises(ExperimentError):
            format_series("x", "y", [1], [1.0, 2.0])

    def test_sparkline(self):
        line = sparkline([0.0, 0.5, 1.0])
        assert len(line) == 3
        assert line[0] == "▁" and line[-1] == "█"
        assert sparkline([2.0, 2.0]) == "▁▁"
        with pytest.raises(ExperimentError):
            sparkline([])


class TestFleetCapacity:
    def test_single_server_wrapper_output_unchanged(self):
        """`plan_capacity` is now a one-server fleet; its report must be
        exactly what the pre-fleet planner produced."""
        from repro.core import plan_fleet_capacity

        single = plan_capacity("nt_tse", WEB_BROWSER_USER)
        fleet = plan_fleet_capacity(
            "nt_tse", WEB_BROWSER_USER, num_servers=1, backbone_mbps=None
        )
        assert fleet.servers == (single,)
        assert single == CapacityReport(
            os_name="nt_tse",
            profile_name=single.profile_name,
            cpu_users=single.cpu_users,
            memory_users=single.memory_users,
            network_users=single.network_users,
        )
        assert fleet.max_users == single.max_users
        assert fleet.limiting_resource == single.limiting_resource

    def test_unconstrained_backbone_scales_linearly(self):
        from repro.core import plan_fleet_capacity

        one = plan_fleet_capacity("nt_tse", TASK_WORKER, num_servers=1)
        four = plan_fleet_capacity("nt_tse", TASK_WORKER, num_servers=4)
        assert four.num_servers == 4
        assert four.server_users == 4 * one.server_users
        assert four.max_users == 4 * one.max_users
        assert four.backbone_users == four.UNLIMITED
        assert four.backbone_headroom == 1.0

    def test_backbone_becomes_the_binding_constraint(self):
        from repro.core import plan_fleet_capacity

        # Per web user: 1.6 Mbps.  An 8 Mbps backbone at the 0.8 cap
        # carries floor(6.4 / 1.6) = 4 users, fewer than even one server.
        fleet = plan_fleet_capacity(
            "nt_tse", WEB_BROWSER_USER, num_servers=8, backbone_mbps=8.0
        )
        assert fleet.backbone_users == 4
        assert fleet.max_users == 4
        assert fleet.limiting_resource == "backbone"
        assert "backbone" in fleet.describe()

    def test_wide_backbone_defers_to_server_resources(self):
        from repro.core import plan_fleet_capacity

        fleet = plan_fleet_capacity(
            "nt_tse", WEB_BROWSER_USER, num_servers=2, backbone_mbps=1000.0
        )
        assert fleet.max_users == fleet.server_users
        assert fleet.limiting_resource == "network"  # per-server LAN
        assert 0.0 < fleet.backbone_headroom <= 1.0

    def test_fleet_validation(self):
        from repro.core import plan_fleet_capacity

        with pytest.raises(ExperimentError):
            plan_fleet_capacity("linux", TASK_WORKER, num_servers=0)
        with pytest.raises(ExperimentError):
            plan_fleet_capacity("linux", TASK_WORKER, backbone_mbps=0.0)
        with pytest.raises(ExperimentError):
            plan_fleet_capacity(
                "linux", TASK_WORKER, backbone_utilization_cap=0.0
            )

    def test_mixed_fleet_wrapper(self):
        from repro.core import plan_fleet_capacity, plan_mixed_fleet_capacity

        mixed = plan_mixed_fleet_capacity(
            "nt_tse",
            {TASK_WORKER: 1, WEB_BROWSER_USER: 1},
            num_servers=2,
            backbone_mbps=10.0,
        )
        pure = plan_fleet_capacity(
            "nt_tse", TASK_WORKER, num_servers=2, backbone_mbps=10.0
        )
        assert mixed.num_servers == 2
        assert mixed.max_users < pure.max_users  # browsers drag the blend


class TestMixedCapacity:
    def test_blend_is_weighted_average(self):
        from repro.core import blend_profiles

        blended = blend_profiles({TASK_WORKER: 3, WEB_BROWSER_USER: 1})
        assert blended.cpu_load == pytest.approx(
            (3 * TASK_WORKER.cpu_load + WEB_BROWSER_USER.cpu_load) / 4
        )
        assert blended.network_mbps == pytest.approx(
            (3 * TASK_WORKER.network_mbps + WEB_BROWSER_USER.network_mbps) / 4
        )

    def test_blend_validation(self):
        from repro.core import blend_profiles

        with pytest.raises(ExperimentError):
            blend_profiles({})
        with pytest.raises(ExperimentError):
            blend_profiles({TASK_WORKER: -1.0})
        with pytest.raises(ExperimentError):
            blend_profiles({TASK_WORKER: 0.0})

    def test_mixed_plan_between_pure_plans(self):
        from repro.core import plan_mixed_capacity

        pure_light = plan_capacity("nt_tse", TASK_WORKER)
        pure_heavy = plan_capacity("nt_tse", WEB_BROWSER_USER)
        mixed = plan_mixed_capacity(
            "nt_tse", {TASK_WORKER: 1, WEB_BROWSER_USER: 1}
        )
        assert pure_heavy.max_users <= mixed.max_users <= pure_light.max_users

    def test_small_web_fraction_collapses_the_network_ceiling(self):
        """A 25% browsing minority drags the network dimension from
        hundreds of task workers down to a couple dozen blended users."""
        from repro.core import plan_mixed_capacity

        pure = plan_capacity("nt_tse", TASK_WORKER)
        mixed = plan_mixed_capacity(
            "nt_tse", {TASK_WORKER: 3, WEB_BROWSER_USER: 1}
        )
        assert mixed.network_users < pure.network_users / 10
        assert mixed.max_users < pure.max_users
