"""Tests for latency metrics and the behaviour→load→latency framework."""

import pytest

from repro.core import (
    LoadKind,
    LoadProfile,
    LoadSource,
    PERCEPTION_THRESHOLD_MS,
    Resource,
    ResourceStudy,
    assess,
    compare,
    evaluate,
    threshold_for,
)
from repro.errors import ExperimentError


class TestThresholds:
    def test_paper_constant(self):
        assert PERCEPTION_THRESHOLD_MS == 100.0

    def test_continuous_tighter_than_discrete(self):
        assert threshold_for("continuous") < threshold_for("discrete")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ExperimentError):
            threshold_for("sporadic")


class TestAssess:
    def test_all_fast_is_acceptable(self):
        a = assess([10.0, 20.0, 30.0])
        assert a.acceptable
        assert a.perceptible_fraction == 0.0
        assert a.worst_case_factor == pytest.approx(0.3)

    def test_perceptible_fraction(self):
        a = assess([50.0, 150.0, 250.0, 90.0])
        assert a.perceptible_fraction == 0.5
        assert not a.acceptable

    def test_worst_case_factor(self):
        """'latencies up to 100 times beyond the threshold of perception'"""
        a = assess([50.0, 10_000.0])
        assert a.worst_case_factor == pytest.approx(100.0)

    def test_jitter_computed(self):
        assert assess([100.0, 100.0]).jitter_ms == 0.0
        assert assess([50.0, 150.0]).jitter_ms > 0.0

    def test_describe_mentions_all_three(self):
        text = assess([50.0, 150.0]).describe()
        assert "threshold" in text and "perceptible" in text and "jitter" in text

    def test_validation(self):
        with pytest.raises(ExperimentError):
            assess([])
        with pytest.raises(ExperimentError):
            assess([1.0], threshold_ms=0.0)


class TestLoadProfile:
    def test_compulsory_vs_dynamic_split(self):
        profile = LoadProfile(Resource.PROCESSOR)
        profile.add(
            LoadSource("clock", LoadKind.COMPULSORY, Resource.PROCESSOR, 0.01)
        )
        profile.add(
            LoadSource("sinks", LoadKind.DYNAMIC, Resource.PROCESSOR, 0.9)
        )
        assert profile.compulsory == pytest.approx(0.01)
        assert profile.dynamic == pytest.approx(0.9)
        assert profile.total() == pytest.approx(0.91)

    def test_wrong_resource_rejected(self):
        profile = LoadProfile(Resource.PROCESSOR)
        with pytest.raises(ExperimentError):
            profile.add(
                LoadSource("traffic", LoadKind.DYNAMIC, Resource.NETWORK, 1.0)
            )

    def test_negative_magnitude_rejected(self):
        with pytest.raises(ExperimentError):
            LoadSource("x", LoadKind.DYNAMIC, Resource.MEMORY, -1.0)


class TestEvaluate:
    def make_study(self, latencies):
        load = LoadProfile(Resource.PROCESSOR)
        load.add(
            LoadSource("idle", LoadKind.COMPULSORY, Resource.PROCESSOR, 0.05)
        )
        return ResourceStudy(
            name="study",
            resource=Resource.PROCESSOR,
            load=load,
            probe=lambda: latencies,
        )

    def test_evaluate_runs_probe_and_assesses(self):
        result = evaluate(self.make_study([10.0, 200.0]))
        assert result.compulsory_load == pytest.approx(0.05)
        assert result.assessment.perceptible_fraction == 0.5

    def test_empty_probe_rejected(self):
        with pytest.raises(ExperimentError):
            evaluate(self.make_study([]))

    def test_compare_indexes_by_name(self):
        r = evaluate(self.make_study([10.0]))
        assert compare([r])["study"] is r
        with pytest.raises(ExperimentError):
            compare([r, r])

    def test_threshold_override_without_rebuilding_the_study(self):
        study = self.make_study([10.0, 200.0])
        default = evaluate(study)
        strict = evaluate(study, threshold_ms=5.0)
        assert default.assessment.perceptible_fraction == 0.5
        assert strict.assessment.perceptible_fraction == 1.0
        # the study itself is untouched
        assert study.threshold_ms == PERCEPTION_THRESHOLD_MS
        assert evaluate(study).assessment == default.assessment

    def test_threshold_override_is_keyword_only(self):
        with pytest.raises(TypeError):
            evaluate(self.make_study([10.0]), 5.0)


class TestRunnable:
    def make_study(self, latencies):
        load = LoadProfile(Resource.PROCESSOR)
        return ResourceStudy(
            name="study",
            resource=Resource.PROCESSOR,
            load=load,
            probe=lambda: latencies,
        )

    def test_resource_study_is_runnable(self):
        from repro.core import Runnable

        assert isinstance(self.make_study([10.0]), Runnable)

    def test_parameter_sweep_is_runnable(self):
        from repro.core import ParameterSweep, Runnable

        assert isinstance(ParameterSweep("s", "n", lambda n: n), Runnable)

    def test_study_run_equals_evaluate(self):
        study = self.make_study([10.0, 200.0])
        assert study.run() == evaluate(study)

    def test_study_run_accepts_threshold_override(self):
        study = self.make_study([10.0, 200.0])
        assert study.run(threshold_ms=5.0) == evaluate(study, threshold_ms=5.0)
