"""Tests for the sweep executor: backends, merge order, fallback."""

import random

import pytest

from repro.core import ParameterSweep
from repro.errors import ExperimentError
from repro.exec import (
    ProcessBackend,
    SerialBackend,
    SweepExecutor,
    make_backend,
    probe_process_backend,
    serial_executor,
)
from repro.sim import derive_point_seed


def square(n):
    """Module-level (picklable) point function."""
    return n * n


def noisy_metric(point):
    """A seeded stochastic point: deterministic given (value, seed)."""
    value, seed = point
    rng = random.Random(derive_point_seed(seed, "noisy", value))
    return value + rng.random()


class TestSerialBackend:
    def test_runs_in_order(self):
        backend = SerialBackend()
        out = list(backend.map(square, [(0, 3), (1, 4)]))
        assert [(i, r) for i, __, r in out] == [(0, 9), (1, 16)]

    def test_timing_is_nonnegative(self):
        backend = SerialBackend()
        ((__, seconds, __2),) = list(backend.map(square, [(0, 2)]))
        assert seconds >= 0.0


class TestProcessBackend:
    def test_matches_serial_results(self):
        tagged = [(i, v) for i, v in enumerate([1, 2, 3, 4, 5, 6, 7])]
        serial = {i: r for i, __, r in SerialBackend().map(square, tagged)}
        parallel = {
            i: r
            for i, __, r in ProcessBackend(jobs=2).map(square, tagged)
        }
        assert parallel == serial

    def test_chunking_covers_every_point(self):
        backend = ProcessBackend(jobs=2, chunk_size=2)
        tagged = [(i, i) for i in range(9)]
        out = {i: r for i, __, r in backend.map(square, tagged)}
        assert out == {i: i * i for i in range(9)}

    def test_rejects_zero_jobs(self):
        with pytest.raises(ExperimentError):
            ProcessBackend(jobs=0)

    def test_probe_rejects_lambdas(self):
        assert probe_process_backend(lambda n: n) is not None
        assert probe_process_backend(square) is None

    def test_make_backend_rejects_unknown_names(self):
        with pytest.raises(ExperimentError):
            make_backend("gpu", jobs=2)


class TestSweepExecutorMap:
    def test_serial_and_process_rows_identical(self):
        """The acceptance property: backends never change results."""
        values = [(v, 7) for v in range(6)]
        serial = SweepExecutor(backend="serial").map("noisy", noisy_metric, values)
        process = SweepExecutor(backend="process", jobs=3).map(
            "noisy", noisy_metric, values
        )
        assert process == serial

    def test_merge_is_by_index_not_completion_order(self):
        executor = SweepExecutor(backend="process", jobs=4, chunk_size=1)
        values = list(range(8))
        assert executor.map("sq", square, values) == [v * v for v in values]

    def test_empty_values_rejected_with_sweep_name(self):
        with pytest.raises(ExperimentError, match="'sq'"):
            serial_executor().map("sq", square, [])

    def test_unpicklable_fn_falls_back_to_serial(self):
        executor = SweepExecutor(backend="process", jobs=2)
        result = executor.map("sq", lambda n: n * n, [1, 2, 3])
        assert result == [1, 4, 9]
        assert executor.last_backend_used == "serial"
        assert "not picklable" in executor.last_fallback_reason

    def test_single_point_skips_the_pool(self):
        executor = SweepExecutor(backend="process", jobs=2)
        assert executor.map("sq", square, [5]) == [25]
        assert executor.last_backend_used == "serial"

    def test_progress_lines_name_every_point(self):
        lines = []
        executor = SweepExecutor(progress=lines.append)
        executor.map("sq", square, [1, 2])
        assert any("point 1/2" in line for line in lines)
        assert any("sq: 2 points in" in line for line in lines)

    def test_progress_accepts_a_stream(self):
        import io

        stream = io.StringIO()
        SweepExecutor(progress=stream).map("sq", square, [1])
        assert "sq" in stream.getvalue()


class TestParameterSweepDelegation:
    def test_execute_with_executor_matches_plain_execute(self):
        sweep = ParameterSweep("squares", "n", square)
        plain = sweep.execute([1, 2, 3])
        routed = sweep.execute([1, 2, 3], executor=serial_executor())
        assert routed.rows == plain.rows
        assert routed.name == plain.name
        assert routed.parameter == plain.parameter

    def test_execute_with_process_executor_matches(self):
        sweep = ParameterSweep("squares", "n", square)
        executor = SweepExecutor(backend="process", jobs=2)
        assert sweep.execute([1, 2, 3, 4], executor=executor).rows == [
            (1, 1),
            (2, 4),
            (3, 9),
            (4, 16),
        ]

    def test_empty_values_still_rejected(self):
        with pytest.raises(ExperimentError):
            ParameterSweep("s", "n", square).execute([], executor=serial_executor())
