"""Executor-equivalence tests for the observation layer.

The acceptance property: observation snapshots are **identical** whether a
sweep runs serially, across processes, or replays from a warm cache — the
snapshot rides with the result through worker pickling and the on-disk
cache, so the trace a user diffs never depends on how the run executed.
"""

import json

from repro.exec import ResultCache, SweepExecutor
from repro.obs import CompactSnapshot, dumps_snapshot
from repro.sim import Simulator


def traced_point(n):
    """Module-level (picklable) point: a tiny sim with observable activity."""
    sim = Simulator()

    def ticker():
        for __ in range(n):
            yield 1.0

    sim.spawn(ticker(), name=f"ticker-{n}")
    sim.run_until(50.0)
    return sim.now


class Sink:
    def __init__(self):
        self.snapshots = {}

    def __call__(self, name, snapshots):
        self.snapshots[name] = snapshots


def run_sweep(*, backend="serial", jobs=1, cache=None):
    sink = Sink()
    executor = SweepExecutor(
        backend=backend, jobs=jobs, cache=cache, observe_sink=sink
    )
    results = executor.map("ticks", traced_point, [1, 2, 3, 4])
    return results, sink.snapshots["ticks"], executor


def serialize(snapshots):
    return [dumps_snapshot(s) for s in snapshots]


class TestBackendEquivalence:
    def test_results_unchanged_by_observation(self):
        plain = SweepExecutor(backend="serial").map(
            "ticks", traced_point, [1, 2, 3, 4]
        )
        observed, __, __2 = run_sweep()
        assert observed == plain

    def test_serial_and_process_snapshots_byte_identical(self):
        __, serial, __2 = run_sweep()
        __, process, executor = run_sweep(backend="process", jobs=2)
        assert executor.last_backend_used == "process"
        assert serialize(process) == serialize(serial)

    def test_one_snapshot_per_point_in_value_order(self):
        __, snapshots, __2 = run_sweep()
        assert len(snapshots) == 4
        dispatched = [s["metrics"]["counters"]["sim.events_dispatched"]
                      for s in snapshots]
        assert dispatched == sorted(dispatched)  # more ticks, more events

    def test_snapshots_are_json_clean(self):
        __, snapshots, __2 = run_sweep()
        for snapshot in snapshots:
            assert json.loads(dumps_snapshot(snapshot)) == snapshot.to_dict()

    def test_snapshots_ship_in_compact_form(self):
        __, snapshots, __2 = run_sweep()
        for snapshot in snapshots:
            assert isinstance(snapshot, CompactSnapshot)


class TestCacheEquivalence:
    def test_warm_cache_replays_identical_snapshots(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cold_results, cold_snaps, __ = run_sweep(cache=cache)
        assert cache.stats.hits == 0
        warm_results, warm_snaps, __2 = run_sweep(cache=cache)
        assert cache.stats.hits == 4
        assert warm_results == cold_results
        assert serialize(warm_snaps) == serialize(cold_snaps)

    def test_observed_and_plain_runs_use_separate_cache_entries(self, tmp_path):
        """A plain run must never replay an observed run's (result, snapshot)
        payload, and vice versa — the namespaces are disjoint."""
        cache = ResultCache(str(tmp_path))
        run_sweep(cache=cache)
        plain = SweepExecutor(backend="serial", cache=cache)
        results = plain.map("ticks", traced_point, [1, 2, 3, 4])
        assert cache.stats.hits == 0  # nothing leaked across namespaces
        assert results == [50.0] * 4  # run_until always advances the clock

    def test_process_run_against_warm_serial_cache_matches(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        __, serial_snaps, __2 = run_sweep(cache=cache)
        __, warm_snaps, __2 = run_sweep(
            backend="process", jobs=2, cache=cache
        )
        assert cache.stats.hits == 4
        assert serialize(warm_snaps) == serialize(serial_snaps)
