"""Tests for the on-disk result cache: hits, corruption, staleness."""

import glob
import os
import pickle

import repro.exec.cache as cache_module
from repro.exec import ResultCache, SweepExecutor, point_key


class CountingFn:
    """A point function that counts how often it actually computes."""

    def __init__(self):
        self.calls = 0

    def __call__(self, n):
        self.calls += 1
        return n * 10


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.store("exp", 3, 0, {"metric": 1.5})
        hit, payload = cache.load("exp", 3, 0)
        assert hit and payload == {"metric": 1.5}

    def test_cold_lookup_misses(self, tmp_path):
        hit, __ = ResultCache(str(tmp_path)).load("exp", 3, 0)
        assert not hit

    def test_key_distinguishes_every_component(self):
        base = point_key("exp", 3, 0, version="1")
        assert point_key("other", 3, 0, version="1") != base
        assert point_key("exp", 4, 0, version="1") != base
        assert point_key("exp", 3, 1, version="1") != base
        assert point_key("exp", 3, 0, version="2") != base

    def test_cached_none_is_a_hit(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.store("exp", 1, 0, None)
        hit, payload = cache.load("exp", 1, 0)
        assert hit and payload is None

    def test_corrupted_entry_is_recomputed_not_trusted(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.store("exp", 3, 0, 42)
        (entry,) = glob.glob(str(tmp_path / "*" / "*.pkl"))
        with open(entry, "wb") as f:
            f.write(b"garbage, not a pickle")
        hit, __ = cache.load("exp", 3, 0)
        assert not hit

    def test_truncated_entry_misses(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.store("exp", 3, 0, list(range(100)))
        (entry,) = glob.glob(str(tmp_path / "*" / "*.pkl"))
        blob = open(entry, "rb").read()
        with open(entry, "wb") as f:
            f.write(blob[: len(blob) // 2])
        hit, __ = cache.load("exp", 3, 0)
        assert not hit

    def test_stale_version_misses(self, tmp_path, monkeypatch):
        cache = ResultCache(str(tmp_path))
        cache.store("exp", 3, 0, 42)
        monkeypatch.setattr(cache_module, "__version__", "999.0.0")
        hit, __ = cache.load("exp", 3, 0)
        assert not hit

    def test_entry_with_wrong_material_misses(self, tmp_path):
        """An entry whose recorded key material disagrees is ignored."""
        cache = ResultCache(str(tmp_path))
        cache.store("exp", 3, 0, 42)
        (entry,) = glob.glob(str(tmp_path / "*" / "*.pkl"))
        with open(entry, "wb") as f:
            pickle.dump({"material": "someone-else's-point", "payload": 13}, f)
        hit, __ = cache.load("exp", 3, 0)
        assert not hit

    def test_unwritable_cache_dir_degrades_to_uncached(self):
        """A bogus --cache-dir must not crash the run (cache is best-effort)."""
        cache = ResultCache(os.devnull + "/nope")
        cache.store("exp", 1, 0, 42)
        hit, __ = cache.load("exp", 1, 0)
        assert not hit
        assert cache.stats.stores == 0

    def test_unpicklable_payload_skipped_silently(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.store("exp", 1, 0, lambda: None)  # not picklable
        hit, __ = cache.load("exp", 1, 0)
        assert not hit

    def test_stats_count_hits_misses_stores(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.load("exp", 1, 0)
        cache.store("exp", 1, 0, 5)
        cache.load("exp", 1, 0)
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.stores) == (1, 1, 1)


class TestExecutorCaching:
    def test_cache_hit_skips_recomputation(self, tmp_path):
        """The acceptance property: a cached rerun executes zero points."""
        fn = CountingFn()
        executor = SweepExecutor(cache=str(tmp_path))
        first = executor.map("exp", fn, [1, 2, 3])
        assert fn.calls == 3
        again = executor.map("exp", fn, [1, 2, 3])
        assert fn.calls == 3  # zero new computations
        assert again == first

    def test_cache_survives_across_executors(self, tmp_path):
        fn = CountingFn()
        SweepExecutor(cache=str(tmp_path)).map("exp", fn, [1, 2])
        fn2 = CountingFn()
        result = SweepExecutor(cache=str(tmp_path)).map("exp", fn2, [1, 2])
        assert fn2.calls == 0
        assert result == [10, 20]

    def test_only_changed_points_recompute(self, tmp_path):
        fn = CountingFn()
        executor = SweepExecutor(cache=str(tmp_path))
        executor.map("exp", fn, [1, 2, 3])
        executor.map("exp", fn, [1, 2, 3, 4, 5])
        assert fn.calls == 5  # the two new points only

    def test_seed_partitions_the_cache(self, tmp_path):
        fn = CountingFn()
        executor = SweepExecutor(cache=str(tmp_path))
        executor.map("exp", fn, [1], seed=0)
        executor.map("exp", fn, [1], seed=1)
        assert fn.calls == 2

    def test_corrupted_entries_recompute(self, tmp_path):
        fn = CountingFn()
        executor = SweepExecutor(cache=str(tmp_path))
        executor.map("exp", fn, [1, 2])
        for entry in glob.glob(str(tmp_path / "*" / "*.pkl")):
            with open(entry, "wb") as f:
                f.write(b"\x00not a pickle")
        assert executor.map("exp", fn, [1, 2]) == [10, 20]
        assert fn.calls == 4

    def test_no_cache_executor_always_recomputes(self, tmp_path):
        fn = CountingFn()
        executor = SweepExecutor(cache=None)
        executor.map("exp", fn, [1])
        executor.map("exp", fn, [1])
        assert fn.calls == 2

    def test_cache_layout_is_sharded_by_key_prefix(self, tmp_path):
        executor = SweepExecutor(cache=str(tmp_path))
        executor.map("exp", CountingFn(), [1])
        (entry,) = glob.glob(str(tmp_path / "*" / "*.pkl"))
        shard = os.path.basename(os.path.dirname(entry))
        assert os.path.basename(entry).startswith(shard)
