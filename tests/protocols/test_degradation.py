"""Graceful-degradation policies: how each protocol rides out a bad wire.

The fault layer (:mod:`repro.net.faults`) notifies protocol encoders of
corruption and outages; each protocol degrades the way its real
implementation would:

* **RDP** — a corrupt frame may have carried a cache install, so the
  client bitmap cache is suspect: the next N draws ship in full even on a
  server-side hit, re-priming the client copy.
* **X** — during an outage Xlib's buffer keeps filling; the encoder
  batches more requests per write until the wire returns.
* **LBX** — the proxy's delta chain desynchronizes on loss; the next N
  input events travel full-size to re-sync, then compression resumes.
"""

from repro.gui.drawing import Bitmap, DrawBitmap, DrawText
from repro.gui.input import KeyPress
from repro.net import FaultPlan, FaultyLink, Packet
from repro.protocols import make_protocol
from repro.protocols.base import RemoteDisplayProtocol
from repro.protocols.lbx import LBX_FULL_EVENT_BYTES, LBX_RESYNC_EVENTS, LBXProtocol
from repro.protocols.rdp import (
    ORDER_MEMBLT,
    RDP_CORRUPTION_BYPASS_DRAWS,
    RDPProtocol,
)
from repro.protocols.x11 import X_OUTAGE_BATCH_FACTOR, XLIB_FLUSH_BYTES, XProtocol
from repro.sim import Simulator

BITMAP = Bitmap("banner", 64, 64)


class TestBaseHooks:
    def test_default_hooks_are_no_ops(self):
        for name in ("rdp", "x", "lbx"):
            proto = make_protocol(name)
            assert isinstance(proto, RemoteDisplayProtocol)
            # The base contract: hooks exist, never raise, report state.
            proto.on_corruption()
            proto.on_outage(True)
            proto.on_outage(False)
            assert isinstance(proto.degradation_state(), dict)

    def test_retry_policy_surface(self):
        for name in ("rdp", "x", "lbx"):
            proto = make_protocol(name)
            assert proto.max_message_retries >= 0
            assert proto.message_timeout_ms is None or proto.message_timeout_ms > 0


class TestRdpCacheBypass:
    def hit_size(self, rdp):
        """Order bytes for a draw of BITMAP (already cached iff hit)."""
        return sum(rdp.order_sizes_for(DrawBitmap(BITMAP)))

    def test_corruption_forces_full_bitmaps_despite_cache_hits(self):
        rdp = RDPProtocol()
        first = self.hit_size(rdp)  # miss: cache install + memblt
        assert self.hit_size(rdp) == ORDER_MEMBLT  # now a pure hit
        rdp.on_corruption()
        assert rdp.degradation_state()["cache_bypass_draws"] == (
            RDP_CORRUPTION_BYPASS_DRAWS
        )
        # A hit during re-sync ships the full bitmap again.
        assert self.hit_size(rdp) == first
        assert rdp.degradation_state()["cache_bypass_draws"] == (
            RDP_CORRUPTION_BYPASS_DRAWS - 1
        )

    def test_bypass_window_expires(self):
        rdp = RDPProtocol()
        self.hit_size(rdp)  # prime
        rdp.on_corruption()
        for __ in range(RDP_CORRUPTION_BYPASS_DRAWS):
            assert self.hit_size(rdp) > ORDER_MEMBLT
        # Window exhausted: hits are cheap again.
        assert self.hit_size(rdp) == ORDER_MEMBLT
        assert rdp.degradation_state()["cache_bypass_draws"] == 0

    def test_non_bitmap_orders_unaffected(self):
        rdp = RDPProtocol()
        before = rdp.order_sizes_for(DrawText(10))
        rdp.on_corruption()
        assert rdp.order_sizes_for(DrawText(10)) == before

    def test_reset_clears_bypass(self):
        rdp = RDPProtocol()
        rdp.on_corruption()
        rdp.reset()
        assert rdp.degradation_state()["cache_bypass_draws"] == 0


class TestXOutageBatching:
    # Enough small text runs to overflow several Xlib buffers.
    OPS = [DrawText(40) for __ in range(120)]

    def test_outage_quadruples_the_flush_threshold(self):
        x = XProtocol()
        assert x.flush_bytes == XLIB_FLUSH_BYTES
        x.on_outage(True)
        assert x.flush_bytes == XLIB_FLUSH_BYTES * X_OUTAGE_BATCH_FACTOR
        x.on_outage(False)
        assert x.flush_bytes == XLIB_FLUSH_BYTES

    def test_batching_produces_fewer_larger_writes(self):
        clean = XProtocol().encode_display_step(self.OPS)
        x = XProtocol()
        x.on_outage(True)
        batched = x.encode_display_step(self.OPS)
        assert len(batched) < len(clean)
        assert sum(m.payload_bytes for m in batched) == sum(
            m.payload_bytes for m in clean
        )

    def test_nested_outages_restore_only_at_depth_zero(self):
        x = XProtocol()
        x.on_outage(True)
        x.on_outage(True)  # overlapping windows
        x.on_outage(False)
        assert x.flush_bytes == XLIB_FLUSH_BYTES * X_OUTAGE_BATCH_FACTOR
        assert x.degradation_state()["outage_depth"] == 1
        x.on_outage(False)
        assert x.flush_bytes == XLIB_FLUSH_BYTES
        assert x.degradation_state()["outage_depth"] == 0

    def test_spurious_outage_end_is_ignored(self):
        x = XProtocol()
        x.on_outage(False)  # no outage open
        assert x.flush_bytes == XLIB_FLUSH_BYTES
        assert x.degradation_state()["outage_depth"] == 0


class TestLbxResync:
    def test_corruption_ships_full_events(self):
        lbx = LBXProtocol()
        lbx.on_corruption()
        assert lbx.degradation_state()["resync_events"] == LBX_RESYNC_EVENTS
        (msg,) = lbx.encode_input_step([KeyPress(65)])
        assert msg.payload_bytes == LBX_FULL_EVENT_BYTES
        assert msg.kind == "full-event"
        assert lbx.degradation_state()["resync_events"] == LBX_RESYNC_EVENTS - 1

    def test_resync_window_expires_and_compression_resumes(self):
        lbx = LBXProtocol()
        baseline = lbx.encode_input_step([KeyPress(65)])
        lbx.on_corruption()
        for __ in range(LBX_RESYNC_EVENTS):
            (msg,) = lbx.encode_input_step([KeyPress(65)])
            assert msg.kind == "full-event"
        after = lbx.encode_input_step([KeyPress(65)])
        assert [m.payload_bytes for m in after] == [
            m.payload_bytes for m in baseline
        ]
        assert lbx.degradation_state()["resync_events"] == 0

    def test_outage_delegates_to_the_proxied_x_stream(self):
        lbx = LBXProtocol()
        lbx.on_outage(True)
        assert lbx.x.flush_bytes == XLIB_FLUSH_BYTES * X_OUTAGE_BATCH_FACTOR
        assert lbx.degradation_state()["outage_depth"] == 1
        lbx.on_outage(False)
        assert lbx.x.flush_bytes == XLIB_FLUSH_BYTES

    def test_reset_clears_resync(self):
        lbx = LBXProtocol()
        lbx.on_corruption()
        lbx.reset()
        assert lbx.degradation_state()["resync_events"] == 0


class TestEndToEndNotification:
    """A FaultyLink actually drives these hooks — no manual calls."""

    def test_corrupt_wire_triggers_rdp_bypass(self):
        sim = Simulator()
        link = FaultyLink(sim, FaultPlan(corrupt=1.0))
        rdp = RDPProtocol()
        link.add_listener(rdp)
        link.send(Packet(200), lambda p: None)
        sim.run_until(1_000.0)
        assert rdp.degradation_state()["cache_bypass_draws"] == (
            RDP_CORRUPTION_BYPASS_DRAWS
        )

    def test_outage_window_batches_x(self):
        sim = Simulator()
        link = FaultyLink(sim, FaultPlan(outages=((10.0, 20.0),)))
        x = XProtocol()
        link.add_listener(x)
        sim.run_until(15.0)
        assert x.flush_bytes == XLIB_FLUSH_BYTES * X_OUTAGE_BATCH_FACTOR
        sim.run_until(1_000.0)
        assert x.flush_bytes == XLIB_FLUSH_BYTES
