"""Tests for the LBX compression model."""

import pytest

from repro.errors import ProtocolError
from repro.protocols import CompressionModel


def test_default_ratios():
    model = CompressionModel()
    assert model.protocol_ratio < model.image_ratio  # protocol squishes better


def test_compress_applies_the_right_ratio():
    model = CompressionModel(protocol_ratio=0.5, image_ratio=0.9)
    assert model.compress(1000) == 500
    assert model.compress(1000, image=True) == 900


def test_floor_prevents_zero_byte_messages():
    model = CompressionModel(min_bytes=4)
    assert model.compress(1) == 4
    assert model.compress(0) == 4


def test_negative_size_rejected():
    with pytest.raises(ProtocolError):
        CompressionModel().compress(-1)


def test_bad_ratio_rejected():
    with pytest.raises(ProtocolError):
        CompressionModel(protocol_ratio=0.0)
    with pytest.raises(ProtocolError):
        CompressionModel(image_ratio=1.5)


def test_compression_never_expands_beyond_floor():
    model = CompressionModel()
    for size in (10, 100, 1000, 100_000):
        assert model.compress(size) <= max(size, model.min_bytes)
