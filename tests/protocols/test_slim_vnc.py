"""Tests for the §7 related-work protocols: SLIM and VNC."""

import pytest

from repro.errors import ProtocolError
from repro.gui import (
    Bitmap,
    CopyArea,
    DrawBitmap,
    DrawText,
    DrawWidget,
    FillRect,
    KeyPress,
    MouseMove,
)
from repro.gui.drawing import RestoreRegion
from repro.protocols import (
    RELATED_PROTOCOL_NAMES,
    SLIMProtocol,
    VNCProtocol,
    XProtocol,
    make_protocol,
)


def test_registry_includes_related_protocols():
    assert set(RELATED_PROTOCOL_NAMES) == {"slim", "vnc"}
    assert make_protocol("slim").name == "slim"
    assert make_protocol("vnc").name == "vnc"


class TestSLIM:
    def test_text_ships_glyph_pixels(self):
        slim = SLIMProtocol()
        (size,) = slim.command_sizes_for(DrawText(10))
        # 10 glyphs at 8x16 1bpp = 160 bytes of pixel data + header.
        assert size == 20 + 160

    def test_fill_and_copy_are_tiny(self):
        slim = SLIMProtocol()
        assert slim.command_sizes_for(FillRect(500, 500)) == [20]
        assert slim.command_sizes_for(CopyArea(500, 500)) == [20]

    def test_bitmap_ships_raw_uncompressed(self):
        slim = SLIMProtocol()
        bitmap = Bitmap("b", 100, 100, 8, compressed_ratio=0.1)
        (size,) = slim.command_sizes_for(DrawBitmap(bitmap))
        assert size == 20 + bitmap.raw_bytes  # stateless: no compression

    def test_restore_resends_region_pixels(self):
        slim = SLIMProtocol()
        (size,) = slim.command_sizes_for(RestoreRegion(100, 50, "k", 10))
        assert size == 20 + 100 * 50

    def test_large_commands_split(self):
        slim = SLIMProtocol()
        msgs = slim.encode_display_step(
            [DrawBitmap(Bitmap("b", 100, 100, 8))]
        )
        assert len(msgs) > 1
        assert all(m.payload_bytes <= 1460 for m in msgs)

    def test_input_fixed_size_reports(self):
        slim = SLIMProtocol()
        msgs = slim.encode_input_step([KeyPress(65), MouseMove()])
        assert [m.payload_bytes for m in msgs] == [22, 22]

    def test_unknown_op_rejected(self):
        class Weird:
            pass

        with pytest.raises(ProtocolError):
            SLIMProtocol().command_sizes_for(Weird())


class TestVNC:
    def test_damage_coalesces_into_one_update_per_step(self):
        vnc = VNCProtocol()
        msgs = vnc.encode_display_step(
            [DrawText(5), FillRect(10, 10), DrawWidget(8)]
        )
        assert len(msgs) == 1
        assert msgs[0].kind == "fb-update"

    def test_empty_step_sends_nothing(self):
        assert VNCProtocol().encode_display_step([]) == []

    def test_copyrect_is_cheap(self):
        vnc = VNCProtocol()
        (size,) = vnc.rect_sizes_for(CopyArea(640, 480))
        assert size == 16

    def test_hextile_compresses_ui_more_than_images(self):
        vnc = VNCProtocol()
        ui = vnc.rect_sizes_for(DrawWidget(10))[0]
        image = vnc.rect_sizes_for(DrawBitmap(Bitmap("b", 76, 76, 8)))[0]
        # Same raw pixel count (10*24*24 == 5760 ~= 76*76), but the photo
        # compresses worse.
        assert image > ui

    def test_input_events_rfb_sized(self):
        vnc = VNCProtocol()
        msgs = vnc.encode_input_step([KeyPress(65), MouseMove()])
        assert [m.payload_bytes for m in msgs] == [8, 6]


class TestSection7Positioning:
    """'roughly equivalent in performance to X, placing it still behind
    RDP and LBX in network load efficiency' (§7 on SLIM)."""

    @pytest.fixture(scope="class")
    def totals(self):
        from repro.workloads.apps import application_workload, replay_workload

        steps = application_workload(0)
        return {
            name: replay_workload(name, steps).trace().total_bytes
            for name in ("rdp", "x", "lbx", "slim", "vnc")
        }

    def test_slim_roughly_equivalent_to_x(self, totals):
        assert 0.7 < totals["slim"] / totals["x"] < 1.5

    def test_vnc_similar_to_slim(self, totals):
        assert 0.5 < totals["vnc"] / totals["slim"] < 1.5

    def test_both_behind_rdp_and_lbx(self, totals):
        for name in ("slim", "vnc"):
            assert totals[name] > 1.4 * totals["lbx"]
            assert totals[name] > 4 * totals["rdp"]

    def test_no_cache_text_rendering_dominates_slim_text(self):
        """SLIM's server-side rendering: text costs pixels, not requests."""
        slim_text = sum(SLIMProtocol().command_sizes_for(DrawText(100)))
        x_text = sum(XProtocol().request_sizes_for(DrawText(100)))
        assert slim_text > x_text
