"""Tests for the RDP, X, and LBX encoders."""

import pytest

from repro.errors import ProtocolError
from repro.gui import (
    Bitmap,
    CopyArea,
    DrawBitmap,
    DrawText,
    DrawWidget,
    FillRect,
    KeyPress,
    KeyRelease,
    MouseMove,
)
from repro.gui.drawing import RestoreRegion
from repro.protocols import (
    LBXProtocol,
    RDPProtocol,
    XProtocol,
    make_protocol,
)
from repro.protocols.base import EncodedMessage
from repro.protocols.x11 import X_EVENT_BYTES


def test_make_protocol():
    assert make_protocol("rdp").name == "rdp"
    assert make_protocol("x").name == "x"
    assert make_protocol("lbx").name == "lbx"
    with pytest.raises(ProtocolError):
        make_protocol("ica")


def test_encoded_message_validation():
    with pytest.raises(ProtocolError):
        EncodedMessage("display", 0)
    with pytest.raises(ProtocolError):
        EncodedMessage("sideband", 10)


class TestX:
    def test_one_event_one_32_byte_message(self):
        x = XProtocol()
        msgs = x.encode_input_step([KeyPress(65), KeyRelease(65), MouseMove()])
        assert len(msgs) == 3
        assert all(m.payload_bytes == X_EVENT_BYTES for m in msgs)
        assert all(m.channel == "input" for m in msgs)

    def test_text_includes_gc_churn(self):
        x = XProtocol()
        sizes = x.request_sizes_for(DrawText(1))
        assert len(sizes) == 2  # ChangeGC + ImageText8

    def test_requests_padded_to_4(self):
        x = XProtocol()
        for op in (DrawText(3), FillRect(5, 5), CopyArea(2, 2)):
            for size in x.request_sizes_for(op):
                assert size % 4 == 0

    def test_widget_costs_one_request_per_element(self):
        x = XProtocol()
        assert len(x.request_sizes_for(DrawWidget(7))) == 7

    def test_bitmap_ships_raw_pixels(self):
        x = XProtocol()
        bitmap = Bitmap("b", 100, 100, 8, compressed_ratio=0.1)
        (size,) = x.request_sizes_for(DrawBitmap(bitmap))
        assert size >= bitmap.raw_bytes  # no compression for X

    def test_restore_region_rerenders_primitives(self):
        x = XProtocol()
        sizes = x.request_sizes_for(RestoreRegion(100, 100, "k", 40))
        assert len(sizes) == 40

    def test_small_requests_pack_into_buffered_messages(self):
        x = XProtocol()
        msgs = x.encode_display_step([DrawText(5), FillRect(3, 3)])
        assert len(msgs) == 1  # all fit one Xlib flush

    def test_large_image_flushes_through(self):
        x = XProtocol()
        msgs = x.encode_display_step(
            [DrawText(5), DrawBitmap(Bitmap("b", 100, 100, 8))]
        )
        kinds = [m.kind for m in msgs]
        assert "put-image" in kinds


class TestRDP:
    def test_input_batches_motion_events(self):
        rdp = RDPProtocol()
        out = []
        for __ in range(30):
            out.extend(rdp.encode_input_step([MouseMove()]))
        # 30 motions with a 24-event flush threshold: exactly one PDU so far.
        assert len(out) == 1
        assert out[0].kind == "input-pdu"

    def test_key_event_flushes_batch(self):
        rdp = RDPProtocol()
        rdp.encode_input_step([MouseMove()])
        msgs = rdp.encode_input_step([KeyPress(65)])
        assert len(msgs) == 1
        # 16 header + 2 events * 12.
        assert msgs[0].payload_bytes == 16 + 2 * 12

    def test_flush_input_drains_buffer(self):
        rdp = RDPProtocol()
        rdp.encode_input_step([MouseMove()])
        msgs = rdp.flush_input()
        assert len(msgs) == 1
        assert rdp.flush_input() == []

    def test_display_batches_across_steps(self):
        rdp = RDPProtocol(display_flush_steps=3)
        assert rdp.encode_display_step([DrawText(1)]) == []
        assert rdp.encode_display_step([DrawText(1)]) == []
        msgs = rdp.encode_display_step([DrawText(1)])
        assert len(msgs) == 1  # three steps' orders in one PDU

    def test_flush_display_drains_orders(self):
        rdp = RDPProtocol(display_flush_steps=10)
        rdp.encode_display_step([FillRect(2, 2)])
        msgs = rdp.flush_display()
        assert len(msgs) == 1
        assert rdp.flush_display() == []

    def test_cached_bitmap_costs_one_small_order(self):
        rdp = RDPProtocol(display_flush_steps=1)
        bitmap = Bitmap("icon", 32, 32, 8)
        first = rdp.encode_display_step([DrawBitmap(bitmap)])
        second = rdp.encode_display_step([DrawBitmap(bitmap)])
        assert sum(m.payload_bytes for m in second) < sum(
            m.payload_bytes for m in first
        )
        assert rdp.cache.stats.hits == 1

    def test_large_bitmap_spans_pdus(self):
        rdp = RDPProtocol(display_flush_steps=1)
        big = Bitmap("big", 200, 200, 8)  # 40KB
        msgs = rdp.encode_display_step([DrawBitmap(big)])
        assert len(msgs) > 2
        assert all(m.payload_bytes <= rdp.pdu_bytes for m in msgs)

    def test_restore_region_is_one_blit(self):
        rdp = RDPProtocol()
        sizes = rdp.order_sizes_for(RestoreRegion(380, 300, "k", 80))
        assert sizes == [17]

    def test_widget_is_one_high_level_order(self):
        rdp = RDPProtocol()
        assert len(rdp.order_sizes_for(DrawWidget(40))) == 1

    def test_reset_clears_state(self):
        rdp = RDPProtocol()
        rdp.encode_input_step([MouseMove()])
        rdp.encode_display_step([DrawText(1)])
        rdp.cache.access(Bitmap("b", 10, 10, 8))
        rdp.reset()
        assert rdp.flush_input() == []
        assert rdp.flush_display() == []
        assert len(rdp.cache) == 0

    def test_config_validation(self):
        with pytest.raises(ProtocolError):
            RDPProtocol(pdu_bytes=10)
        with pytest.raises(ProtocolError):
            RDPProtocol(display_flush_steps=0)


class TestLBX:
    def test_display_compressed_below_x(self):
        ops = [DrawText(10), DrawWidget(20), FillRect(5, 5)]
        x_bytes = sum(
            m.payload_bytes for m in XProtocol().encode_display_step(ops)
        )
        lbx_bytes = sum(
            m.payload_bytes for m in LBXProtocol().encode_display_step(ops)
        )
        assert lbx_bytes < x_bytes

    def test_display_more_messages_than_x(self):
        """LBX re-frames per request: more, smaller display messages."""
        ops = [DrawWidget(30), DrawText(5)]
        x_msgs = XProtocol().encode_display_step(ops)
        lbx_msgs = LBXProtocol().encode_display_step(ops)
        assert len(lbx_msgs) > len(x_msgs)

    def test_image_single_compressed_message(self):
        bitmap = Bitmap("b", 100, 100, 8)
        msgs = LBXProtocol().encode_display_step([DrawBitmap(bitmap)])
        assert len(msgs) == 1
        assert msgs[0].payload_bytes < bitmap.raw_bytes

    def test_input_delta_compressed(self):
        lbx = LBXProtocol()
        msgs = lbx.encode_input_step([KeyPress(65)])
        assert len(msgs) == 1
        assert msgs[0].payload_bytes < X_EVENT_BYTES

    def test_motion_squishing_reduces_message_count(self):
        lbx = LBXProtocol()
        total = []
        for __ in range(100):
            total.extend(lbx.encode_input_step([MouseMove()]))
        assert len(total) < 100

    def test_does_not_pack_display_writes(self):
        assert LBXProtocol.packs_display_writes is False
        assert XProtocol.packs_display_writes is True
        assert RDPProtocol.packs_display_writes is True

    def test_chunk_validation(self):
        with pytest.raises(ProtocolError):
            LBXProtocol(chunk_bytes=4)


def test_encode_cost_scales_with_messages_and_bytes():
    rdp = RDPProtocol()
    small = [EncodedMessage("display", 10)]
    large = [EncodedMessage("display", 10_000)]
    assert rdp.encode_cost_ms(large) > rdp.encode_cost_ms(small)
    assert rdp.encode_cost_ms(small + small) > rdp.encode_cost_ms(small)
    assert rdp.encode_cost_ms([]) == 0.0
