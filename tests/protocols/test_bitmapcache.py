"""Tests for the client bitmap cache, including the loop pathology."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.gui import Bitmap
from repro.protocols import (
    DEFAULT_CACHE_BYTES,
    LoopAwareBitmapCache,
    LRUBitmapCache,
)


def frame(i, size_px=100):
    """A bitmap of size_px*size_px bytes at 8bpp."""
    return Bitmap(f"frame{i}", size_px, size_px, 8)


def test_default_capacity_is_1_5mb():
    assert DEFAULT_CACHE_BYTES == int(1.5 * 1024 * 1024)
    assert LRUBitmapCache().capacity_bytes == DEFAULT_CACHE_BYTES


def test_bad_capacity_rejected():
    with pytest.raises(ProtocolError):
        LRUBitmapCache(0)


def test_first_access_misses_then_hits():
    cache = LRUBitmapCache(100_000)
    b = frame(0)
    assert cache.access(b) is False
    assert cache.access(b) is True
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert b in cache


def test_lru_eviction_order():
    cache = LRUBitmapCache(25_000)  # fits two 10KB frames
    a, b, c = frame(0), frame(1), frame(2)
    cache.access(a)
    cache.access(b)
    cache.access(a)  # a becomes MRU
    cache.access(c)  # evicts b
    assert a in cache and c in cache and b not in cache
    assert cache.stats.evictions == 1


def test_oversized_bitmap_never_cached():
    cache = LRUBitmapCache(1_000)
    big = frame(0)  # 10KB > capacity
    assert cache.access(big) is False
    assert cache.access(big) is False
    assert len(cache) == 0


def test_used_bytes_tracks_contents():
    cache = LRUBitmapCache(100_000)
    cache.access(frame(0))
    assert cache.used_bytes == 10_000
    cache.clear()
    assert cache.used_bytes == 0
    assert len(cache) == 0


def test_cumulative_hit_ratio():
    cache = LRUBitmapCache(100_000)
    assert cache.stats.cumulative_hit_ratio == 0.0
    b = frame(0)
    cache.access(b)
    cache.access(b)
    cache.access(b)
    assert cache.stats.cumulative_hit_ratio == pytest.approx(2 / 3)


class TestLoopPathology:
    """'Looping animations defeat LRU bitmap caches' (§6.1.3)."""

    def loop(self, cache, nframes, cycles):
        hits = 0
        for __ in range(cycles):
            for i in range(nframes):
                if cache.access(frame(i)):
                    hits += 1
        return hits

    def test_loop_fitting_cache_hits_after_warmup(self):
        cache = LRUBitmapCache(100_000)  # holds 10 frames
        hits = self.loop(cache, 8, cycles=5)
        assert hits == 8 * 4  # all but the first cycle hit

    def test_loop_exceeding_cache_never_hits_under_lru(self):
        cache = LRUBitmapCache(100_000)
        hits = self.loop(cache, 11, cycles=5)  # 11 frames > 10 capacity
        assert hits == 0

    def test_loop_aware_cache_recovers_hits(self):
        """The paper's suggested smarter eviction keeps a stable subset."""
        lru_hits = self.loop(LRUBitmapCache(100_000), 12, cycles=10)
        aware = LoopAwareBitmapCache(100_000)
        aware_hits = self.loop(aware, 12, cycles=10)
        assert lru_hits == 0
        assert aware.loop_mode
        assert aware_hits > 12 * 10 * 0.5  # most accesses hit once stable

    def test_loop_aware_behaves_like_lru_without_loops(self):
        aware = LoopAwareBitmapCache(100_000)
        hits = self.loop(aware, 8, cycles=5)
        assert hits == 8 * 4
        assert not aware.loop_mode

    def test_clear_resets_loop_mode(self):
        aware = LoopAwareBitmapCache(100_000)
        self.loop(aware, 12, cycles=3)
        assert aware.loop_mode
        aware.clear()
        assert not aware.loop_mode


@given(st.lists(st.integers(min_value=0, max_value=30), max_size=200))
def test_cache_capacity_invariant(accesses):
    """used_bytes never exceeds capacity; counters always consistent."""
    cache = LRUBitmapCache(50_000)
    for i in accesses:
        cache.access(frame(i))
        assert cache.used_bytes <= cache.capacity_bytes
        assert cache.used_bytes == len(cache) * 10_000
    assert cache.stats.hits + cache.stats.misses == len(accesses)
