"""Property-based tests: encoder invariants over arbitrary op sequences."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gui import (
    Bitmap,
    CopyArea,
    DrawBitmap,
    DrawText,
    DrawWidget,
    FillRect,
    KeyPress,
    KeyRelease,
    MouseButton,
    MouseMove,
)
from repro.gui.drawing import RestoreRegion
from repro.protocols import (
    LBXProtocol,
    RDPProtocol,
    XProtocol,
    make_protocol,
)

ALL_PROTOCOLS = ("rdp", "x", "lbx", "slim", "vnc")

display_ops = st.one_of(
    st.builds(DrawText, chars=st.integers(min_value=1, max_value=200)),
    st.builds(
        FillRect,
        width=st.integers(min_value=1, max_value=800),
        height=st.integers(min_value=1, max_value=600),
    ),
    st.builds(
        CopyArea,
        width=st.integers(min_value=1, max_value=800),
        height=st.integers(min_value=1, max_value=600),
    ),
    st.builds(DrawWidget, elements=st.integers(min_value=1, max_value=64)),
    st.builds(
        DrawBitmap,
        bitmap=st.builds(
            Bitmap,
            bitmap_id=st.text(min_size=1, max_size=8),
            width=st.integers(min_value=1, max_value=200),
            height=st.integers(min_value=1, max_value=200),
            bpp=st.sampled_from([4, 8, 16]),
            compressed_ratio=st.floats(min_value=0.05, max_value=1.0),
        ),
    ),
    st.builds(
        RestoreRegion,
        width=st.integers(min_value=1, max_value=400),
        height=st.integers(min_value=1, max_value=400),
        key=st.just("k"),
        complexity=st.integers(min_value=1, max_value=100),
    ),
)

input_events = st.one_of(
    st.builds(KeyPress, key=st.integers(min_value=0, max_value=255)),
    st.builds(KeyRelease, key=st.integers(min_value=0, max_value=255)),
    st.builds(MouseMove),
    st.builds(MouseButton),
)

op_steps = st.lists(st.lists(display_ops, max_size=5), max_size=10)
event_steps = st.lists(st.lists(input_events, max_size=5), max_size=10)


@settings(max_examples=30, deadline=None)
@given(op_steps, event_steps)
@pytest.mark.parametrize("name", ALL_PROTOCOLS)
def test_encoded_messages_are_well_formed(name, ops_per_step, events_per_step):
    protocol = make_protocol(name)
    for ops in ops_per_step:
        for message in protocol.encode_display_step(ops):
            assert message.payload_bytes > 0
            assert message.channel == "display"
    for events in events_per_step:
        for message in protocol.encode_input_step(events):
            assert message.payload_bytes > 0
            assert message.channel == "input"
    for message in protocol.flush_input() + protocol.flush_display():
        assert message.payload_bytes > 0


@settings(max_examples=30, deadline=None)
@given(op_steps)
def test_lbx_display_payload_never_exceeds_x(ops_per_step):
    """Compression plus small per-chunk headers still beats raw X."""
    x = XProtocol()
    lbx = LBXProtocol()
    x_total = 0
    lbx_total = 0
    for ops in ops_per_step:
        x_total += sum(m.payload_bytes for m in x.encode_display_step(ops))
        lbx_total += sum(
            m.payload_bytes for m in lbx.encode_display_step(ops)
        )
    assert lbx_total <= x_total


@settings(max_examples=30, deadline=None)
@given(op_steps, st.integers(min_value=1, max_value=8))
def test_rdp_order_bytes_conserved_across_batching(ops_per_step, flush_steps):
    """Order bytes in == (message payloads - PDU headers) out, exactly,
    regardless of the flush period; the buffer always drains."""
    reference = RDPProtocol(display_flush_steps=1)
    batched = RDPProtocol(display_flush_steps=flush_steps)

    def total_payload(protocol):
        total = 0
        messages = 0
        for ops in ops_per_step:
            for m in protocol.encode_display_step(ops):
                total += m.payload_bytes
                messages += 1
        for m in protocol.flush_display():
            total += m.payload_bytes
            messages += 1
        assert protocol.flush_display() == []  # fully drained
        return total - 18 * messages  # strip PDU headers

    assert total_payload(reference) == total_payload(batched)


@settings(max_examples=30, deadline=None)
@given(st.lists(input_events, min_size=1, max_size=200))
def test_rdp_input_batch_conserves_events(events):
    """Every input event appears in exactly one flushed input PDU."""
    rdp = RDPProtocol()
    messages = []
    for event in events:
        messages.extend(rdp.encode_input_step([event]))
    messages.extend(rdp.flush_input())
    carried = sum((m.payload_bytes - 16) // 12 for m in messages)
    assert carried == len(events)


@settings(max_examples=30, deadline=None)
@given(st.lists(display_ops, min_size=1, max_size=30))
def test_x_requests_padded_and_bounded(ops):
    x = XProtocol()
    for op in ops:
        for size in x.request_sizes_for(op):
            assert size % 4 == 0
            assert size >= 16
