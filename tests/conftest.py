"""Shared pytest configuration.

Adds ``--update-goldens`` for the golden-trace suite (see
``tests/golden/README.md``): run

    PYTHONPATH=src python -m pytest tests/golden --update-goldens

after an intentional behaviour change to rewrite the committed goldens,
then review the diff like any other code change.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/golden/*.json from current behaviour",
    )
