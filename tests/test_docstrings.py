"""Quality gate: every public item in the library carries a docstring.

The deliverable promises "doc comments on every public item"; this test
keeps that promise enforceable.  Public = importable from a ``repro``
module without a leading underscore.
"""

import importlib
import inspect
import pkgutil

import repro

IGNORED_MODULE_PREFIXES = ("repro.__main__",)


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.startswith(IGNORED_MODULE_PREFIXES):
            continue
        yield importlib.import_module(info.name)


def public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        # Only items *defined in* this module, not re-exports.
        if getattr(obj, "__module__", None) != module.__name__:
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


def test_every_module_has_a_docstring():
    missing = [m.__name__ for m in iter_modules() if not m.__doc__]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_class_and_function_has_a_docstring():
    missing = []
    for module in iter_modules():
        for name, obj in public_members(module):
            if not inspect.getdoc(obj):
                missing.append(f"{module.__name__}.{name}")
    assert not missing, f"undocumented public items: {sorted(set(missing))}"


def test_public_methods_documented():
    """Public methods of public classes need docstrings too (inherited
    docstrings count, per inspect.getdoc)."""
    missing = []
    for module in iter_modules():
        for cls_name, cls in public_members(module):
            if not inspect.isclass(cls):
                continue
            for name, member in vars(cls).items():
                if name.startswith("_"):
                    continue
                func = member
                if isinstance(member, (staticmethod, classmethod)):
                    func = member.__func__
                if isinstance(member, property):
                    func = member.fget
                if not inspect.isfunction(func):
                    continue
                if not inspect.getdoc(func):
                    missing.append(f"{module.__name__}.{cls_name}.{name}")
    assert not missing, f"undocumented public methods: {sorted(set(missing))}"
