"""The fleet composition: lifecycle, closed-loop latency, failures, obs."""

import pytest

from repro.core.server import ServerConfig
from repro.errors import FleetError
from repro.fleet import Fleet, FleetConfig
from repro.obs import observe


def small_fleet(seed=3, **overrides):
    defaults = dict(
        server=ServerConfig.tse(include_idle_activity=False),
        num_servers=2,
        placement="round_robin",
        capacity_per_server=2,
        backbone_mbps=10.0,
    )
    defaults.update(overrides)
    return Fleet(FleetConfig(**defaults), seed=seed)


class TestConfig:
    def test_rejects_empty_pool(self):
        with pytest.raises(FleetError):
            FleetConfig(num_servers=0)

    def test_rejects_nonpositive_backbone(self):
        with pytest.raises(FleetError):
            FleetConfig(backbone_mbps=0.0)

    def test_with_placement_swaps_only_the_policy(self):
        base = FleetConfig(num_servers=3)
        other = base.with_placement("least_loaded")
        assert other.placement == "least_loaded"
        assert other.num_servers == 3
        assert base.placement == "round_robin"

    def test_capacity_defaults_to_the_planner(self):
        from repro.fleet import planned_session_capacity

        config = FleetConfig()
        fleet = Fleet(config)
        assert fleet.admission.policy.capacity == planned_session_capacity(
            config.server, config.profile
        )


class TestSessionLifecycle:
    def test_open_places_and_counts(self):
        fleet = small_fleet()
        session = fleet.open_session("alice", start_typing=False)
        assert session is not None
        assert fleet.session_count == 1
        assert session.placements == [session.state.index]
        assert fleet.servers[session.state.index].active == 1

    def test_duplicate_name_rejected(self):
        fleet = small_fleet()
        fleet.open_session("alice", start_typing=False)
        with pytest.raises(FleetError):
            fleet.open_session("alice", start_typing=False)

    def test_reject_mode_returns_none_above_capacity(self):
        fleet = small_fleet()  # 2 servers x 2 sessions
        admitted = [
            fleet.open_session(f"u{i}", start_typing=False) for i in range(5)
        ]
        assert [s is not None for s in admitted] == [True] * 4 + [False]
        assert fleet.admission.rejected_total == 1

    def test_close_unknown_session_raises(self):
        fleet = small_fleet()
        with pytest.raises(FleetError):
            fleet.close_session("ghost")

    def test_queued_arrival_admitted_on_departure(self):
        fleet = small_fleet(admission_mode="queue")
        for i in range(4):
            fleet.open_session(f"u{i}", start_typing=False)
        assert fleet.open_session("waiter", start_typing=False) is None
        assert list(fleet.admission.waiting) == ["waiter"]
        fleet.close_session("u0")
        assert "waiter" in fleet.sessions
        assert not fleet.admission.waiting
        assert fleet.session_count == 4


class TestClosedLoopLatency:
    def test_typing_produces_paired_latencies(self):
        fleet = small_fleet()
        session = fleet.open_session("alice", rate_hz=4.0)
        fleet.run(3_000.0)
        assert session.latencies_ms, "no interaction completed"
        # Closed loop: completions can never exceed keystrokes offered.
        offered = len(session.latencies_ms) + session.skipped_ticks
        assert offered <= 3_000.0 / 250.0 + 1
        # Every sample crossed the backbone twice plus the server LAN:
        # strictly positive, and well under the watchdog.
        assert all(0.0 < lat < 2_000.0 for lat in session.latencies_ms)
        assert session.abandoned == 0

    def test_at_most_one_interaction_in_flight(self):
        fleet = small_fleet(backbone_mbps=0.01)  # crawlingly slow backbone
        session = fleet.open_session("alice", rate_hz=50.0)
        fleet.run(1_000.0)
        # At 50 Hz on a 10 kbit/s backbone almost every tick lands while
        # the previous interaction is still in flight.
        assert session.skipped_ticks > 0

    def test_same_seed_same_latencies(self):
        def sample():
            fleet = small_fleet(seed=11)
            fleet.open_session("a", rate_hz=4.0)
            fleet.open_session("b", rate_hz=2.0)
            fleet.run(4_000.0)
            return fleet.latencies_ms()

        first, second = sample(), sample()
        assert first == second
        assert first


class TestFailure:
    def test_fail_server_migrates_sessions(self):
        fleet = small_fleet(num_servers=3, capacity_per_server=4)
        for i in range(6):
            fleet.open_session(f"u{i}", start_typing=False)
        victims = [
            name
            for name, s in fleet.sessions.items()
            if s.state.index == 0
        ]
        migrated = fleet.fail_server(0)
        assert migrated == victims
        assert fleet.migrations == len(victims)
        assert fleet.servers[0].active == 0
        for name in victims:
            assert fleet.sessions[name].state.index != 0

    def test_fail_with_no_room_drops_sessions(self):
        fleet = small_fleet(num_servers=2, capacity_per_server=1)
        fleet.open_session("a", start_typing=False)
        fleet.open_session("b", start_typing=False)
        migrated = fleet.fail_server(0)
        assert migrated == []
        assert fleet.session_count == 1
        assert fleet.admission.rejected_total == 1

    def test_double_failure_raises(self):
        fleet = small_fleet()
        fleet.fail_server(0)
        with pytest.raises(FleetError):
            fleet.fail_server(0)

    def test_unknown_index_raises(self):
        fleet = small_fleet()
        with pytest.raises(FleetError):
            fleet.fail_server(9)


class TestObservability:
    def test_counters_gauges_histogram_registered_lazily(self):
        with observe() as obs:
            fleet = small_fleet()
            # No fleet metric exists until its first event happens.
            assert not any(
                name.startswith("fleet.")
                for table in obs.metrics.snapshot().values()
                for name in table
            )
            fleet.open_session("alice", rate_hz=4.0)
            fleet.run(2_000.0)
        snap = obs.metrics.snapshot()
        assert snap["counters"]["fleet.admitted"] == 1
        assert "fleet.rejected" not in snap["counters"]  # never happened
        label = fleet.servers[fleet.sessions["alice"].state.index].label
        assert f"fleet.load.{label}" in snap["gauges"]
        assert snap["histograms"]["fleet.session_latency_ms"]["count"] == len(
            fleet.sessions["alice"].latencies_ms
        )

    def test_untraced_fleet_records_nothing(self):
        fleet = small_fleet()
        fleet.open_session("alice", rate_hz=4.0)
        fleet.run(1_000.0)
        assert fleet.sessions["alice"].latencies_ms  # still measures


class TestReport:
    def test_report_shape(self):
        fleet = small_fleet()
        fleet.open_session("alice", rate_hz=4.0)
        fleet.run(2_000.0)
        report = fleet.report()
        assert report["placement"] == "round_robin"
        assert report["num_servers"] == 2
        assert report["sessions"] == 1
        assert report["admitted"] == 1
        assert len(report["servers"]) == 2
        assert 0.0 < report["backbone_utilization"] < 1.0
        assert report["backbone_bytes"] > 0
        labels = [s["label"] for s in report["servers"]]
        assert labels == ["s00", "s01"]
