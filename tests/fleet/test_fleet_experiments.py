"""The registered fleet experiments: math, determinism, artifact identity."""

import csv
import io
import os

import pytest

from repro.cli import main
from repro.fleet.experiments import (
    CAPACITY_FLEET_SIZES,
    CAPACITY_PER_SERVER,
    PLACEMENT_POLICIES_ORDER,
    _fleet_capacity_point,
    _fleet_placement_point,
    _percentile,
)


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestPercentile:
    def test_empty_is_zero(self):
        assert _percentile([], 99.0) == 0.0

    def test_single_sample_is_every_percentile(self):
        assert _percentile([7.0], 50.0) == 7.0
        assert _percentile([7.0], 99.0) == 7.0

    def test_nearest_rank_on_a_known_list(self):
        samples = list(map(float, range(1, 101)))  # 1..100
        assert _percentile(samples, 50.0) == 51.0  # rank round(0.5*99)=50
        assert _percentile(samples, 99.0) == 99.0
        assert _percentile(samples, 0.0) == 1.0
        assert _percentile(samples, 100.0) == 100.0

    def test_order_independent(self):
        assert _percentile([3.0, 1.0, 2.0], 50.0) == _percentile(
            [1.0, 2.0, 3.0], 50.0
        )


class TestPointFunctions:
    def test_capacity_point_is_deterministic(self):
        a = _fleet_capacity_point((2, 4), seed=9)
        b = _fleet_capacity_point((2, 4), seed=9)
        assert a == b
        p50, p99, admitted, rejected, util = a
        assert 0.0 < p50 <= p99
        assert admitted == 2 * 4  # full grid cell admits to capacity
        assert rejected >= 1  # offered load always exceeds capacity
        assert 0.0 < util <= 1.0

    def test_capacity_point_varies_with_seed(self):
        assert _fleet_capacity_point((2, 4), seed=1) != _fleet_capacity_point(
            (2, 4), seed=2
        )

    def test_placement_point_is_deterministic(self):
        a = _fleet_placement_point("least_loaded", seed=9)
        b = _fleet_placement_point("least_loaded", seed=9)
        assert a == b
        p50, p99, migrations, rejected = a
        assert 0.0 < p50 <= p99
        assert migrations >= 1  # the failed server held sessions

    def test_policies_actually_differ(self):
        results = {
            policy: _fleet_placement_point(policy, seed=1)
            for policy in ("least_loaded", "session_affinity")
        }
        assert len(set(results.values())) == len(results)


class TestArtifactIdentity:
    """The fleet sweeps honor the repo's executor-identity contract."""

    def read_all(self, directory):
        out = {}
        for name in sorted(os.listdir(directory)):
            with open(os.path.join(directory, name), "rb") as f:
                out[name] = f.read()
        return out

    def test_placement_identical_serial_parallel_and_cached(self, tmp_path):
        cache = str(tmp_path / "cache")
        code, serial = run_cli(
            "run", "fleet_placement", "--seed", "1",
            "--csv", str(tmp_path / "a"), "--cache-dir", cache,
        )
        assert code == 0
        code, parallel = run_cli(
            "run", "fleet_placement", "--seed", "1", "--jobs", "4",
            "--csv", str(tmp_path / "b"),
        )
        assert code == 0
        code, warm = run_cli(
            "run", "fleet_placement", "--seed", "1",
            "--csv", str(tmp_path / "c"), "--cache-dir", cache,
        )
        assert code == 0
        assert serial == parallel == warm
        assert (
            self.read_all(tmp_path / "a")
            == self.read_all(tmp_path / "b")
            == self.read_all(tmp_path / "c")
        )

    def test_capacity_trace_artifacts_stable_across_jobs(self, tmp_path):
        code, serial = run_cli(
            "trace", "fleet_capacity", "--seed", "1",
            "--trace-dir", str(tmp_path / "a"),
        )
        assert code == 0
        code, parallel = run_cli(
            "trace", "fleet_capacity", "--seed", "1", "--jobs", "4",
            "--trace-dir", str(tmp_path / "b"),
        )
        assert code == 0
        assert serial == parallel
        assert self.read_all(tmp_path / "a") == self.read_all(tmp_path / "b")
        assert "fleet.admitted" in serial
        assert "fleet.session_latency_ms" in serial


class TestOutputShape:
    def test_capacity_csv_covers_the_grid(self, tmp_path):
        code, text = run_cli(
            "run", "fleet_capacity", "--seed", "1", "--csv", str(tmp_path)
        )
        assert code == 0
        assert "Fleet capacity frontier" in text
        with open(tmp_path / "fleet_capacity.csv") as f:
            rows = list(csv.reader(f))
        assert len(rows) - 1 == len(CAPACITY_FLEET_SIZES) * len(
            CAPACITY_PER_SERVER
        )
        with open(tmp_path / "fleet_capacity_frontier.csv") as f:
            frontier = list(csv.reader(f))
        assert [r[0] for r in frontier[1:]] == [
            str(n) for n in CAPACITY_FLEET_SIZES
        ]
        # The frontier is the point of the experiment: sessions/server must
        # not increase with fleet size (the shared backbone binds).
        per_server = [int(r[1]) for r in frontier[1:]]
        assert per_server == sorted(per_server, reverse=True)
        assert per_server[0] > per_server[-1]

    def test_placement_table_lists_every_policy(self, tmp_path):
        code, text = run_cli(
            "run", "fleet_placement", "--seed", "1", "--csv", str(tmp_path)
        )
        assert code == 0
        for policy in PLACEMENT_POLICIES_ORDER:
            assert policy in text
        with open(tmp_path / "fleet_placement.csv") as f:
            rows = list(csv.reader(f))
        assert [r[0] for r in rows[1:]] == PLACEMENT_POLICIES_ORDER
