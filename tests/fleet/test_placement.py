"""Placement policies: unit behaviour plus the fleet-level invariants."""

import random

import pytest

from repro.errors import FleetError
from repro.fleet import (
    PLACEMENT_POLICIES,
    Fleet,
    FleetConfig,
    LatencyAwarePlacement,
    LeastLoadedPlacement,
    RandomPlacement,
    RoundRobinPlacement,
    SessionAffinityPlacement,
    make_placement,
)


class FakeServer:
    """The candidate surface a policy is allowed to inspect."""

    def __init__(self, index, active=0, capacity=8, latency=None):
        self.index = index
        self.capacity = capacity
        self._active = active
        self._latency = latency

    @property
    def active(self):
        return self._active

    @property
    def latency_estimate_ms(self):
        return self._latency if self._latency is not None else 0.0


def pick(policy, candidates, session_id="u0", total=None, seed=0):
    return policy.choose(
        session_id,
        candidates,
        total_servers=total if total is not None else len(candidates),
        rng=random.Random(seed),
    ).index


class TestFactory:
    def test_every_registered_name_instantiates(self):
        for name in PLACEMENT_POLICIES:
            assert make_placement(name).name == name

    def test_unknown_policy_raises(self):
        with pytest.raises(FleetError):
            make_placement("tarot")


class TestRoundRobin:
    def test_cycles_through_indices(self):
        policy = RoundRobinPlacement()
        pool = [FakeServer(i) for i in range(3)]
        assert [pick(policy, pool) for __ in range(4)] == [0, 1, 2, 0]

    def test_cursor_skips_missing_servers(self):
        policy = RoundRobinPlacement()
        pool = [FakeServer(0), FakeServer(2)]  # server 1 inadmissible
        assert [pick(policy, pool, total=3) for __ in range(3)] == [0, 2, 0]


class TestLeastLoaded:
    def test_fewest_sessions_wins(self):
        policy = LeastLoadedPlacement()
        pool = [FakeServer(0, active=3), FakeServer(1, active=1), FakeServer(2, active=2)]
        assert pick(policy, pool) == 1

    def test_ties_break_on_lowest_index(self):
        policy = LeastLoadedPlacement()
        pool = [FakeServer(2, active=1), FakeServer(0, active=1), FakeServer(1, active=1)]
        assert pick(policy, pool) == 0


class TestLatencyAware:
    def test_prefers_observed_fast_server(self):
        policy = LatencyAwarePlacement()
        pool = [
            FakeServer(0, active=2, latency=40.0),
            FakeServer(1, active=2, latency=8.0),
        ]
        assert pick(policy, pool) == 1

    def test_load_penalty_beats_stale_good_history(self):
        policy = LatencyAwarePlacement(penalty_ms=50.0)
        # s0: great history but full (score 5 + 50*1.0 = 55);
        # s1: never observed, empty (score 0 + 0 = 0).
        pool = [
            FakeServer(0, active=8, capacity=8, latency=5.0),
            FakeServer(1, active=0, capacity=8),
        ]
        assert pick(policy, pool) == 1


class TestRandom:
    def test_deterministic_under_a_seeded_stream(self):
        policy = RandomPlacement()
        pool = [FakeServer(i) for i in range(5)]
        rng_a, rng_b = random.Random(7), random.Random(7)
        picks_a = [
            policy.choose("u", pool, total_servers=5, rng=rng_a).index
            for __ in range(20)
        ]
        picks_b = [
            policy.choose("u", pool, total_servers=5, rng=rng_b).index
            for __ in range(20)
        ]
        assert picks_a == picks_b
        assert len(set(picks_a)) > 1  # actually spreads


class TestSessionAffinity:
    def test_home_index_is_stable(self):
        home = SessionAffinityPlacement.home_index("alice", 4)
        assert home == SessionAffinityPlacement.home_index("alice", 4)
        assert 0 <= home < 4

    def test_chooses_home_when_admissible(self):
        policy = SessionAffinityPlacement()
        pool = [FakeServer(i) for i in range(4)]
        home = SessionAffinityPlacement.home_index("alice", 4)
        assert pick(policy, pool, session_id="alice", total=4) == home

    def test_probes_forward_past_missing_home(self):
        policy = SessionAffinityPlacement()
        home = SessionAffinityPlacement.home_index("alice", 4)
        pool = [FakeServer(i) for i in range(4) if i != home]
        assert pick(policy, pool, session_id="alice", total=4) == (home + 1) % 4


def affinity_fleet(**overrides):
    from repro.core.server import ServerConfig

    defaults = dict(
        server=ServerConfig.tse(include_idle_activity=False),
        num_servers=3,
        placement="session_affinity",
        capacity_per_server=4,
        backbone_mbps=10.0,
    )
    defaults.update(overrides)
    return Fleet(FleetConfig(**defaults), seed=5)


class TestAffinityInvariant:
    """An affinity session never migrates unless its server failed."""

    def test_sessions_stay_put_across_churn(self):
        fleet = affinity_fleet()
        for i in range(6):
            fleet.open_session(f"user{i}", start_typing=False)
        fleet.run(2_000.0)
        # Churn: close two sessions, admit two more, keep running.
        fleet.close_session("user0")
        fleet.close_session("user3")
        fleet.open_session("user6", start_typing=False)
        fleet.run(2_000.0)
        for session in fleet.sessions.values():
            assert len(set(session.placements)) == 1, (
                f"{session.name} moved without a failure: "
                f"{session.placements}"
            )

    def test_failure_is_the_only_move(self):
        fleet = affinity_fleet()
        for i in range(6):
            fleet.open_session(f"user{i}", start_typing=False)
        homes = {
            name: session.placements[0]
            for name, session in fleet.sessions.items()
        }
        failed = fleet.servers[0].index
        migrated = fleet.fail_server(failed)
        for name, session in fleet.sessions.items():
            if homes[name] == failed:
                assert name in migrated
                assert len(session.placements) == 2
                assert session.placements[1] != failed
            else:
                assert session.placements == [homes[name]]
