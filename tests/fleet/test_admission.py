"""Admission control: ceilings, overload modes, and the waiting line."""

import pytest

from repro.core.server import ServerConfig
from repro.errors import FleetError
from repro.fleet import (
    ADMISSION_MODES,
    AdmissionController,
    AdmissionPolicy,
    planned_session_capacity,
)
from repro.workloads.behavior import TASK_WORKER


class FakeServer:
    """The minimal admission-visible surface of a pool member."""

    def __init__(self, index, active=0, failed=False):
        self.index = index
        self.capacity = 0  # unused by admission; kept for the protocol
        self._active = active
        self.failed = failed

    @property
    def active(self):
        return self._active


class TestAdmissionPolicy:
    def test_modes_are_the_documented_pair(self):
        assert ADMISSION_MODES == ("reject", "queue")

    def test_rejects_zero_capacity(self):
        with pytest.raises(FleetError):
            AdmissionPolicy(capacity=0)

    def test_rejects_unknown_mode(self):
        with pytest.raises(FleetError):
            AdmissionPolicy(capacity=1, mode="redirect")

    def test_rejects_negative_queue_bound(self):
        with pytest.raises(FleetError):
            AdmissionPolicy(capacity=1, mode="queue", max_queue=-1)


class TestAdmissionController:
    def controller(self, mode="reject", capacity=2, max_queue=None):
        return AdmissionController(
            AdmissionPolicy(capacity=capacity, mode=mode, max_queue=max_queue)
        )

    def test_admissible_excludes_failed_and_full(self):
        gate = self.controller(capacity=2)
        pool = [
            FakeServer(0, active=2),  # full
            FakeServer(1, active=1),
            FakeServer(2, failed=True),
            FakeServer(3, active=0),
        ]
        assert [s.index for s in gate.admissible(pool)] == [1, 3]

    def test_admit_while_headroom_exists(self):
        gate = self.controller()
        assert gate.decide("u0", [FakeServer(0, active=1)]) == "admitted"
        assert gate.admitted_total == 1

    def test_reject_mode_rejects_when_full(self):
        gate = self.controller(mode="reject", capacity=1)
        assert gate.decide("u0", [FakeServer(0, active=1)]) == "rejected"
        assert gate.rejected_total == 1
        assert not gate.waiting

    def test_queue_mode_queues_when_full(self):
        gate = self.controller(mode="queue", capacity=1)
        assert gate.decide("u0", [FakeServer(0, active=1)]) == "queued"
        assert list(gate.waiting) == ["u0"]
        assert gate.queued_total == 1

    def test_full_queue_rejects_even_in_queue_mode(self):
        gate = self.controller(mode="queue", capacity=1, max_queue=1)
        full = [FakeServer(0, active=1)]
        assert gate.decide("u0", full) == "queued"
        assert gate.decide("u1", full) == "rejected"
        assert list(gate.waiting) == ["u0"]

    def test_release_pops_fifo(self):
        gate = self.controller(mode="queue", capacity=1)
        full = [FakeServer(0, active=1)]
        gate.decide("u0", full)
        gate.decide("u1", full)
        assert gate.release() == "u0"
        assert gate.release() == "u1"
        assert gate.release() is None


class TestPlannedSessionCapacity:
    def test_matches_single_server_planner(self):
        from repro.core import plan_capacity

        config = ServerConfig.tse()
        planned = planned_session_capacity(config, TASK_WORKER)
        report = plan_capacity(
            config.os_name,
            TASK_WORKER,
            physical_bytes=config.physical_bytes,
            bandwidth_mbps=config.bandwidth_mbps,
            cpu_speed=config.cpu_speed,
            session_variant=config.session_variant,
        )
        assert planned == max(1, report.max_users)
        assert planned >= 1
