"""The registered SLO experiments: registration, determinism, artifacts."""

import csv
import io
import os
import subprocess
import sys

import pytest

from repro.cli import EXPERIMENTS, main
from repro.core.registry import REGISTRY
from repro.slo.experiments import (
    BURST_PROCESSES,
    BURST_RHO_LEVELS,
    CHAOS_SCENARIOS,
    CHAOS_SESSIONS,
    FLEET_POLICIES_ORDER,
    _slo_burst_point,
    _slo_chaos_point,
    _slo_fleet_point,
)

SLO_NAMES = ["slo_burst", "slo_chaos_grid", "slo_fleet"]


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestRegistration:
    def test_all_three_experiments_registered_in_order(self):
        names = list(EXPERIMENTS)
        indices = [names.index(n) for n in SLO_NAMES]
        assert indices == sorted(indices)

    def test_slo_experiments_append_after_every_other_group(self):
        names = list(EXPERIMENTS)
        first_slo = names.index(SLO_NAMES[0])
        stragglers = [
            n
            for n in names[first_slo:]
            # The scale group registers after slo in the canonical
            # sequence; anything else after slo_burst is a misplacement.
            if not n.startswith(("slo_", "scale_"))
        ]
        assert not stragglers, f"registered after slo_burst: {stragglers}"

    def test_group_and_titles(self):
        for name in SLO_NAMES:
            assert REGISTRY[name].group == "slo"
            assert REGISTRY[name].title

    @pytest.mark.parametrize(
        "entry",
        [
            "repro.cli",
            "repro.fleet.experiments",
            "repro.analytic.experiments",
            "repro.slo.experiments",
            "repro.scale.experiments",
        ],
    )
    def test_registry_order_is_import_entry_invariant(self, entry):
        """Any first import yields the same canonical registry order.

        Registration is driven by ``repro.cli`` calling each experiments
        module's ``_register`` in sequence; a process whose first import
        is one of the experiments modules must see the identical order —
        an import-time decorator would defer the entry module's
        registrations past the circular CLI import, appending them last.
        """
        code = (
            f"import {entry}\n"
            "from repro.cli import EXPERIMENTS\n"
            "names = list(EXPERIMENTS)\n"
            "assert names[0] == 'fig1', names\n"
            "tail = ['fleet_capacity', 'fleet_placement', 'analytic_link',\n"
            "        'analytic_closed', 'slo_burst', 'slo_chaos_grid',\n"
            "        'slo_fleet', 'scale_load_curve', 'scale_closed_curve',\n"
            "        'scale_fleet', 'scale_closed_fleet']\n"
            "assert names[-11:] == tail, names[-11:]\n"
        )
        subprocess.run(
            [sys.executable, "-c", code],
            check=True,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=os.path.join(os.path.dirname(__file__), "..", ".."),
        )


class TestPointFunctions:
    def test_burst_point_deterministic_and_tail_heavier_under_bursts(self):
        poisson = _slo_burst_point(("poisson", 0.5), seed=3)
        assert poisson == _slo_burst_point(("poisson", 0.5), seed=3)
        onoff = _slo_burst_point(("onoff", 0.5), seed=3)
        # Equal mean rate, heavier tail: p99 and burn both blow up.
        assert onoff[4] > poisson[4]
        assert onoff[6] >= poisson[6]

    def test_chaos_point_outage_shows_the_co_gap(self):
        cell = ("outage", "outage=3000-3500", 8)
        point = _slo_chaos_point(cell, seed=3)
        assert point == _slo_chaos_point(cell, seed=3)
        n_unc, n_cor, p99_unc, p99_cor, viol, burn, missed = point
        assert p99_cor > p99_unc
        assert missed > 0
        assert n_cor >= n_unc

    def test_chaos_point_clean_cell_has_no_gap(self):
        n_unc, n_cor, p99_unc, p99_cor, viol, burn, missed = _slo_chaos_point(
            ("clean", "", 8), seed=3
        )
        assert missed == 0
        assert n_unc == n_cor
        assert p99_cor == pytest.approx(p99_unc)
        assert burn == 0.0

    def test_fleet_point_deterministic_and_policies_differ(self):
        a = _slo_fleet_point("least_loaded", seed=1)
        assert a == _slo_fleet_point("least_loaded", seed=1)
        b = _slo_fleet_point("round_robin", seed=1)
        assert a != b


class TestArtifactIdentity:
    """The SLO sweeps honor the repo's executor-identity contract."""

    def read_all(self, directory):
        out = {}
        for name in sorted(os.listdir(directory)):
            with open(os.path.join(directory, name), "rb") as f:
                out[name] = f.read()
        return out

    def test_chaos_grid_identical_serial_parallel_cold_and_warm(
        self, tmp_path
    ):
        cache = str(tmp_path / "cache")
        code, serial = run_cli(
            "run", "slo_chaos_grid", "--seed", "1",
            "--csv", str(tmp_path / "a"), "--cache-dir", cache,
        )
        assert code == 0
        code, parallel = run_cli(
            "run", "slo_chaos_grid", "--seed", "1", "--jobs", "4",
            "--csv", str(tmp_path / "b"),
        )
        assert code == 0
        code, warm = run_cli(
            "run", "slo_chaos_grid", "--seed", "1",
            "--csv", str(tmp_path / "c"), "--cache-dir", cache,
        )
        assert code == 0
        assert serial == parallel == warm
        assert (
            self.read_all(tmp_path / "a")
            == self.read_all(tmp_path / "b")
            == self.read_all(tmp_path / "c")
        )

    def test_burst_trace_artifacts_stable_across_jobs(self, tmp_path):
        code, serial = run_cli(
            "trace", "slo_burst", "--seed", "1",
            "--trace-dir", str(tmp_path / "a"),
        )
        assert code == 0
        code, parallel = run_cli(
            "trace", "slo_burst", "--seed", "1", "--jobs", "4",
            "--trace-dir", str(tmp_path / "b"),
        )
        assert code == 0
        assert serial == parallel
        assert self.read_all(tmp_path / "a") == self.read_all(tmp_path / "b")

    @pytest.mark.parametrize("kernel", ["", "reference"])
    @pytest.mark.parametrize("recorder", ["", "reference"])
    def test_chaos_grid_identical_across_kernel_and_recorder(
        self, tmp_path, kernel, recorder
    ):
        """Every kernel x recorder combination prints the same bytes.

        The default-default combination runs in-process above; here each
        variant runs in a subprocess (the toggles bind at import) and is
        diffed against the in-process output.
        """
        code, expected = run_cli("run", "slo_chaos_grid", "--seed", "5")
        assert code == 0
        env = {**os.environ, "PYTHONPATH": "src"}
        if kernel:
            env["REPRO_KERNEL"] = kernel
        if recorder:
            env["REPRO_OBS"] = recorder
        result = subprocess.run(
            [sys.executable, "-m", "repro", "run", "slo_chaos_grid",
             "--seed", "5"],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.join(os.path.dirname(__file__), "..", ".."),
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout == expected


class TestOutputShape:
    def test_chaos_csv_covers_the_grid_and_shows_the_gap(self, tmp_path):
        code, text = run_cli(
            "run", "slo_chaos_grid", "--seed", "1", "--csv", str(tmp_path)
        )
        assert code == 0
        assert "p99 uncorr" in text and "p99 corr" in text
        with open(tmp_path / "slo_chaos_grid.csv") as f:
            rows = list(csv.reader(f))
        assert len(rows) - 1 == len(CHAOS_SCENARIOS) * len(CHAOS_SESSIONS)
        header = rows[0]
        unc = header.index("p99_uncorrected_ms")
        cor = header.index("p99_corrected_ms")
        fault = header.index("fault")
        gaps = [
            float(r[cor]) - float(r[unc]) for r in rows[1:] if r[fault] != "clean"
        ]
        # The committed EXPERIMENTS.md table shows this: at least one
        # faulted cell where correction moves p99 by a large margin.
        assert max(gaps) > 100.0

    def test_burst_table_lists_both_processes(self, tmp_path):
        code, text = run_cli(
            "run", "slo_burst", "--seed", "1", "--csv", str(tmp_path)
        )
        assert code == 0
        for process in BURST_PROCESSES:
            assert process in text
        assert "blow-up" in text
        with open(tmp_path / "slo_burst.csv") as f:
            rows = list(csv.reader(f))
        assert len(rows) - 1 == len(BURST_PROCESSES) * len(BURST_RHO_LEVELS)

    def test_fleet_table_lists_every_policy(self, tmp_path):
        code, text = run_cli(
            "run", "slo_fleet", "--seed", "1", "--csv", str(tmp_path)
        )
        assert code == 0
        for policy in FLEET_POLICIES_ORDER:
            assert policy in text
        with open(tmp_path / "slo_fleet.csv") as f:
            rows = list(csv.reader(f))
        assert [r[0] for r in rows[1:]] == FLEET_POLICIES_ORDER
