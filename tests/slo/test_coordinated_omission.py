"""Differential coordinated-omission test.

The same fleet, same seed, same typing schedule, run three ways:

* legacy closed loop (``co_safe_sessions=False``),
* co-safe loop without faults — must be *indistinguishable* from legacy,
* co-safe loop with a 500 ms backbone outage — the corrected series must
  strictly dominate the uncorrected one at the tail, because the
  uncorrected series is blind to exactly the samples the outage hurt.
"""

import math

import pytest

from repro.core.server import ServerConfig
from repro.fleet.cluster import Fleet, FleetConfig
from repro.net.faults import FaultPlan

SEED = 42
SESSIONS = 6
RUN_MS = 6_000.0

#: The injected stall: a hard backbone outage across 2000-2500 ms.
OUTAGE_SPEC = "outage=2000-2500"


def build_fleet(co_safe, faults=None):
    config = FleetConfig(
        server=ServerConfig.tse(include_idle_activity=False),
        num_servers=2,
        capacity_per_server=8,
        backbone_mbps=1.0,
        backbone_faults=faults,
        co_safe_sessions=co_safe,
    )
    fleet = Fleet(config, seed=SEED)
    for i in range(SESSIONS):
        fleet.open_session(f"u{i}", rate_hz=2.0, display_chars=8)
    fleet.run(RUN_MS)
    return fleet


def nearest_rank(xs, pct):
    ordered = sorted(xs)
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[rank - 1]


class TestFaultFreeEquivalence:
    """With no stalls, the co-safe loop is the legacy loop."""

    def test_uncorrected_series_identical_to_legacy(self):
        legacy = build_fleet(co_safe=False)
        co = build_fleet(co_safe=True)
        assert legacy.latencies_ms() == co.latencies_ms()
        per_session_legacy = {
            n: s.latencies_ms for n, s in legacy.sessions.items()
        }
        per_session_co = {n: s.latencies_ms for n, s in co.sessions.items()}
        assert per_session_legacy == per_session_co

    def test_corrected_equals_uncorrected_when_never_blocked(self):
        co = build_fleet(co_safe=True)
        assert co.corrected_latencies_ms() == co.latencies_ms()
        assert sum(s.missed_ticks for s in co.sessions.values()) == 0

    def test_legacy_fleet_records_no_corrected_series(self):
        legacy = build_fleet(co_safe=False)
        assert legacy.corrected_latencies_ms() == []


class TestOutageDominance:
    """A 500 ms outage must show up in the corrected tail, and only there."""

    @pytest.fixture(scope="class")
    def outage_fleet(self):
        return build_fleet(
            co_safe=True, faults=FaultPlan.parse(OUTAGE_SPEC, seed=7)
        )

    def test_corrected_p99_strictly_dominates_uncorrected(self, outage_fleet):
        uncorrected = outage_fleet.latencies_ms()
        corrected = outage_fleet.corrected_latencies_ms()
        assert corrected and uncorrected
        assert nearest_rank(corrected, 99.0) > nearest_rank(uncorrected, 99.0)
        # The stall is ~500 ms; the corrected tail must see at least it,
        # the uncorrected tail must have missed it entirely.
        assert max(corrected) >= 500.0
        assert nearest_rank(uncorrected, 99.0) < 500.0

    def test_blocked_ticks_were_queued_not_dropped(self, outage_fleet):
        missed = sum(s.missed_ticks for s in outage_fleet.sessions.values())
        assert missed > 0
        # Every intent eventually produced a corrected sample (completed,
        # abandoned, or reissued after the stall): the corrected series is
        # at least as long as the uncorrected one.
        assert len(outage_fleet.corrected_latencies_ms()) >= len(
            outage_fleet.latencies_ms()
        )

    def test_outage_run_is_deterministic(self, outage_fleet):
        again = build_fleet(
            co_safe=True, faults=FaultPlan.parse(OUTAGE_SPEC, seed=7)
        )
        assert again.corrected_latencies_ms() == (
            outage_fleet.corrected_latencies_ms()
        )
        assert again.latencies_ms() == outage_fleet.latencies_ms()


class TestSloTrackerWiring:
    def test_fleet_feeds_attached_tracker_with_corrected_samples(self):
        from repro.slo import LatencyBudget, SloTracker

        fleet = build_fleet(co_safe=True)
        tracker = SloTracker(LatencyBudget("interaction", 100.0))
        fleet.slo_tracker = tracker
        fleet.run(2_000.0)
        assert tracker.samples > 0
