"""Budgets, violation accounting, burn rates, and metric publication."""

import pytest

from repro.errors import SloError
from repro.obs import observe
from repro.slo import LatencyBudget, SloTracker


def budget(**kw):
    defaults = dict(operation="echo", budget_ms=100.0, target=0.99)
    defaults.update(kw)
    return LatencyBudget(**defaults)


class TestLatencyBudget:
    def test_error_budget_is_the_target_complement(self):
        assert budget(target=0.999).allowed_violation_fraction == pytest.approx(
            0.001
        )

    @pytest.mark.parametrize(
        "kw",
        [
            dict(operation=""),
            dict(budget_ms=0.0),
            dict(budget_ms=-5.0),
            dict(target=0.0),
            dict(target=1.0),
            dict(target=1.5),
        ],
    )
    def test_invalid_budgets_raise(self, kw):
        with pytest.raises(SloError):
            budget(**kw)


class TestSloTracker:
    def test_counts_violations_strictly_above_budget(self):
        tracker = SloTracker(budget())
        tracker.observe(0.0, 100.0)  # at budget: not a violation
        tracker.observe(1.0, 100.1)
        tracker.observe(2.0, 5.0)
        assert tracker.samples == 3
        assert tracker.violations == 1
        assert tracker.violation_rate == pytest.approx(1 / 3)

    def test_budget_burn_is_violation_rate_over_allowed(self):
        tracker = SloTracker(budget(target=0.9))  # 10% allowed
        for i in range(10):
            tracker.observe(float(i), 500.0 if i < 2 else 1.0)
        # 2/10 violated against 10% allowed: burning 2x the budget.
        assert tracker.budget_burn == pytest.approx(2.0)

    def test_worst_window_burn_finds_the_bad_second(self):
        tracker = SloTracker(budget(target=0.9), window_ms=1_000.0)
        for i in range(10):  # window 0: clean
            tracker.observe(i * 10.0, 1.0)
        for i in range(10):  # window 5: half the samples violate
            tracker.observe(5_000.0 + i * 10.0, 500.0 if i % 2 else 1.0)
        assert tracker.worst_window_burn() == pytest.approx(5.0)
        assert tracker.budget_burn == pytest.approx(2.5)

    def test_report_carries_percentiles_and_burn(self):
        tracker = SloTracker(budget())
        for i in range(100):
            tracker.observe(float(i), 200.0 if i == 0 else 2.0)
        report = tracker.report()
        assert report.samples == 100
        assert report.violations == 1
        assert report.budget_burn == pytest.approx(1.0)
        assert len(report.percentiles) == 4
        assert report.percentiles[0] <= report.percentiles[-1]

    def test_empty_report_raises(self):
        with pytest.raises(SloError):
            SloTracker(budget()).report()

    def test_deterministic_fold(self):
        stream = [(i * 7.0, (i * 37) % 250 / 1.7) for i in range(500)]
        reports = []
        for __ in range(2):
            tracker = SloTracker(budget())
            for t, v in stream:
                tracker.observe(t, v)
            reports.append(tracker.report())
        assert reports[0] == reports[1]


class TestMetricsPublication:
    def test_observed_tracker_publishes_slo_metrics(self):
        with observe() as obs:
            tracker = SloTracker(budget())
            tracker.observe(0.0, 5.0)
            tracker.observe(1.0, 500.0)
            tracker.report()
        snap = obs.metrics.snapshot()
        assert snap["counters"]["slo.echo.samples"] == 2
        assert snap["counters"]["slo.echo.violations"] == 1
        assert snap["histograms"]["slo.echo.latency_ms"]["count"] == 2
        assert snap["gauges"]["slo.echo.burn_rate"]["last"] == pytest.approx(
            50.0
        )

    def test_idle_tracker_registers_nothing(self):
        with observe() as obs:
            SloTracker(budget())
        snap = obs.metrics.snapshot()
        assert not snap["counters"] and not snap["gauges"]
        assert not snap["histograms"]

    def test_unobserved_tracker_still_accounts(self):
        tracker = SloTracker(budget())
        tracker.observe(0.0, 500.0)
        assert tracker.report().violations == 1
