"""Property suite for the windowed percentile tracker.

Pins the three claims :mod:`repro.slo.windows` makes:

1. **Merge exactness** — the quantile over merged windows equals the
   quantile one untiled histogram of the same samples reports, exactly.
2. **Bin-resolution agreement** — the estimate and the exact nearest-rank
   sample percentile always land in the same bucket.
3. **Monotonicity** — quantiles are nondecreasing in the percentile level.
"""

import math
from bisect import bisect_left

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SloError
from repro.obs import bucket_quantile
from repro.obs.metrics import DEFAULT_BOUNDS_MS, Histogram
from repro.slo import PERCENTILE_LEVELS, WindowedPercentiles

#: Latency-like values spanning every default bucket plus the overflow.
values = st.floats(
    min_value=0.0, max_value=10_000.0, allow_nan=False, allow_infinity=False
)

#: Timestamps spread across a handful of 1-second windows.
timestamps = st.floats(min_value=0.0, max_value=8_000.0, allow_nan=False)

samples = st.lists(st.tuples(timestamps, values), min_size=1, max_size=200)

percentiles = st.floats(min_value=0.0, max_value=100.0)

prop = settings(max_examples=60, deadline=None)


def _fill(pairs):
    tracker = WindowedPercentiles()
    for t, v in pairs:
        tracker.observe(t, v)
    return tracker


def _exact_nearest_rank(xs, pct):
    ordered = sorted(xs)
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[rank - 1]


class TestMergeExactness:
    @prop
    @given(pairs=samples, pct=percentiles)
    def test_merge_of_windows_equals_whole_stream_histogram(self, pairs, pct):
        """Tiled-by-time and untiled must answer the same quantile exactly."""
        tracker = _fill(pairs)
        whole = Histogram("whole")
        for __, v in pairs:
            whole.observe(v)
        assert tracker.quantile(pct) == whole.quantile(pct)

    @prop
    @given(pairs=samples, pct=percentiles)
    def test_explicit_window_list_matches_default(self, pairs, pct):
        tracker = _fill(pairs)
        indices = tracker.window_indices()
        assert tracker.quantile(pct) == tracker.quantile(pct, windows=indices)

    @prop
    @given(pairs=samples)
    def test_window_counts_partition_the_stream(self, pairs):
        tracker = _fill(pairs)
        assert tracker.count == len(pairs)
        assert (
            sum(tracker.window_count(i) for i in tracker.window_indices())
            == len(pairs)
        )


class TestBinResolutionAgreement:
    @prop
    @given(pairs=samples, pct=percentiles)
    def test_estimate_shares_a_bucket_with_the_exact_percentile(
        self, pairs, pct
    ):
        """Estimate and exact nearest-rank sample differ by < one bucket."""
        tracker = _fill(pairs)
        estimate = tracker.quantile(pct)
        exact = _exact_nearest_rank([v for __, v in pairs], pct)
        bounds = tracker.bounds
        assert bisect_left(bounds, estimate) == bisect_left(bounds, exact)

    @prop
    @given(pairs=samples, pct=percentiles)
    def test_estimate_stays_inside_the_observed_range(self, pairs, pct):
        tracker = _fill(pairs)
        xs = [v for __, v in pairs]
        assert min(xs) <= tracker.quantile(pct) <= max(xs)


class TestMonotonicity:
    @prop
    @given(pairs=samples, lo=percentiles, hi=percentiles)
    def test_quantiles_nondecreasing_in_pct(self, pairs, lo, hi):
        if lo > hi:
            lo, hi = hi, lo
        tracker = _fill(pairs)
        assert tracker.quantile(lo) <= tracker.quantile(hi)

    @prop
    @given(pairs=samples)
    def test_reported_levels_are_ordered(self, pairs):
        tracker = _fill(pairs)
        qs = [tracker.quantile(p) for p in PERCENTILE_LEVELS]
        assert qs == sorted(qs)


class TestEdgeCases:
    def test_empty_tracker_raises(self):
        with pytest.raises(SloError):
            WindowedPercentiles().quantile(50.0)

    def test_empty_window_selection_raises(self):
        tracker = _fill([(0.0, 1.0)])
        with pytest.raises(SloError):
            tracker.quantile(50.0, windows=[99])

    def test_single_sample_is_every_percentile(self):
        tracker = _fill([(100.0, 7.5)])
        for p in (0.0, 50.0, 99.0, 100.0):
            assert tracker.quantile(p) == 7.5

    @given(v=values, n=st.integers(min_value=1, max_value=50))
    @settings(max_examples=30, deadline=None)
    def test_all_equal_samples_report_that_value_exactly(self, v, n):
        """The vmin/vmax clamp makes constant streams exact, not binned."""
        tracker = _fill([(i * 137.0, v) for i in range(n)])
        assert tracker.quantile(50.0) == v
        assert tracker.quantile(99.9) == v

    def test_rollup_rows_cover_each_window_in_time_order(self):
        tracker = _fill([(2500.0, 1.0), (500.0, 2.0), (2600.0, 300.0)])
        rows = tracker.rollup()
        assert [r[0] for r in rows] == [0, 2]
        assert [r[1] for r in rows] == [1, 2]
        assert all(len(r[2]) == len(PERCENTILE_LEVELS) for r in rows)

    def test_bad_bounds_and_window_raise(self):
        with pytest.raises(SloError):
            WindowedPercentiles(bounds=())
        with pytest.raises(SloError):
            WindowedPercentiles(bounds=(2.0, 1.0))
        with pytest.raises(SloError):
            WindowedPercentiles(window_ms=0.0)

    def test_bucket_quantile_rejects_empty_and_bad_pct(self):
        from repro.obs.metrics import ObservabilityError

        with pytest.raises(ObservabilityError):
            bucket_quantile(DEFAULT_BOUNDS_MS, [0] * 11, 0, 0.0, 0.0, 50.0)
        with pytest.raises(ObservabilityError):
            bucket_quantile(DEFAULT_BOUNDS_MS, [1] + [0] * 10, 1, 1.0, 1.0, 101.0)
