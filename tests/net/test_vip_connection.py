"""End-to-end VIP: the x-kernel stack on a live connection (§6.1.2).

The VIP table is computed analytically by prototap; this file checks the
same effect through the event-driven path — a TcpConnection configured
with the VIP header stack puts measurably fewer bytes on the wire and
delivers measurably sooner on a loaded link.
"""

import pytest

from repro.net import Link, TCPIP, VIP, TcpConnection
from repro.sim import Simulator


def run_session(stack, messages=200, payload=64):
    sim = Simulator()
    link = Link(sim, bandwidth_mbps=10.0, propagation_ms=0.0)
    conn = TcpConnection(sim, link, stack=stack, protocol="x")
    delivered = []
    for __ in range(messages):
        conn.send_message(
            "input", payload, on_delivered=lambda m: delivered.append(sim.now)
        )
    sim.run_until(60_000.0)
    return link.bytes_sent, delivered[-1]


def test_vip_saves_exactly_the_ip_header_per_segment():
    normal_bytes, __ = run_session(TCPIP)
    vip_bytes, __ = run_session(VIP)
    assert normal_bytes - vip_bytes == 200 * 20


def test_vip_finishes_sooner_on_the_wire():
    __, normal_done = run_session(TCPIP)
    __, vip_done = run_session(VIP)
    assert vip_done < normal_done


def test_vip_savings_fraction_matches_small_message_analysis():
    normal_bytes, __ = run_session(TCPIP, payload=64)
    vip_bytes, __ = run_session(VIP, payload=64)
    savings = (normal_bytes - vip_bytes) / normal_bytes
    # 20 bytes off a 122-byte frame: ~16% for keystroke-sized messages.
    assert savings == pytest.approx(20 / 122, rel=1e-6)


def test_vip_matters_less_for_bulk_payloads():
    normal_small, __ = run_session(TCPIP, messages=50, payload=64)
    vip_small, __ = run_session(VIP, messages=50, payload=64)
    normal_big, __ = run_session(TCPIP, messages=50, payload=1400)
    vip_big, __ = run_session(VIP, messages=50, payload=1400)
    small_savings = (normal_small - vip_small) / normal_small
    big_savings = (normal_big - vip_big) / normal_big
    assert small_savings > 5 * big_savings
