"""Unit tests for the shared link and packets."""

import pytest

from repro.errors import NetworkError
from repro.net import Link, Packet
from repro.sim import Simulator


def test_packet_validation():
    with pytest.raises(NetworkError):
        Packet(0)
    with pytest.raises(NetworkError):
        Packet(10, payload_bytes=11)
    p = Packet(100, payload_bytes=60)
    assert p.overhead_bytes == 40


def test_link_validation():
    sim = Simulator()
    with pytest.raises(NetworkError):
        Link(sim, bandwidth_mbps=0)
    with pytest.raises(NetworkError):
        Link(sim, propagation_ms=-1)


def test_transmission_time_10mbps():
    """1250 bytes at 10 Mbps take exactly 1 ms on the wire."""
    sim = Simulator()
    link = Link(sim, bandwidth_mbps=10.0, propagation_ms=0.0)
    delivered = []
    link.send(Packet(1250), lambda p: delivered.append(sim.now))
    sim.run_until(10.0)
    assert delivered == [pytest.approx(1.0)]


def test_propagation_added_after_transmit():
    sim = Simulator()
    link = Link(sim, bandwidth_mbps=10.0, propagation_ms=0.5)
    delivered = []
    link.send(Packet(1250), lambda p: delivered.append(sim.now))
    sim.run_until(10.0)
    assert delivered == [pytest.approx(1.5)]


def test_fifo_queueing_serializes_packets():
    sim = Simulator()
    link = Link(sim, bandwidth_mbps=10.0, propagation_ms=0.0)
    delivered = []
    for _ in range(3):
        link.send(Packet(1250), lambda p: delivered.append(sim.now))
    assert link.queue_depth == 2  # one on the wire, two waiting
    sim.run_until(10.0)
    assert delivered == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)]


def test_delivery_callback_optional():
    sim = Simulator()
    link = Link(sim)
    link.send(Packet(100))
    sim.run_until(10.0)
    assert link.packets_sent == 1
    assert link.bytes_sent == 100


def test_packet_timestamps():
    sim = Simulator()
    link = Link(sim, bandwidth_mbps=10.0, propagation_ms=0.25)
    p = Packet(1250)
    got = []
    link.send(p, got.append)
    sim.run_until(10.0)
    assert p.enqueued_at == 0.0
    assert p.delivered_at == pytest.approx(1.25)
    assert got == [p]


def test_trace_records_at_transmit_complete():
    sim = Simulator()
    link = Link(sim, bandwidth_mbps=10.0)
    link.send(Packet(1250))
    sim.run_until(10.0)
    assert link.trace.times == [pytest.approx(1.0)]
    assert link.trace.sizes == [1250]


def test_utilization():
    sim = Simulator()
    link = Link(sim, bandwidth_mbps=10.0)
    # 5 x 1250B = 5ms of wire time in a 10ms window = 50%
    for _ in range(5):
        link.send(Packet(1250))
    sim.run_until(10.0)
    assert link.utilization(0.0, 10.0) == pytest.approx(0.5)
    with pytest.raises(NetworkError):
        link.utilization(5.0, 5.0)


def test_queue_drains_and_link_goes_idle_then_resumes():
    sim = Simulator()
    link = Link(sim, bandwidth_mbps=10.0, propagation_ms=0.0)
    delivered = []
    link.send(Packet(1250), lambda p: delivered.append(sim.now))
    sim.run_until(5.0)
    link.send(Packet(1250), lambda p: delivered.append(sim.now))
    sim.run_until(10.0)
    assert delivered == [pytest.approx(1.0), pytest.approx(6.0)]
