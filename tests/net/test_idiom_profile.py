"""Tests for Danskin-style kind profiling and framing-overhead analysis."""

import pytest

from repro.errors import NetworkError
from repro.net import (
    DISPLAY_CHANNEL,
    INPUT_CHANNEL,
    KindStats,
    Message,
    ProtoTap,
    RAW,
    TCPIP,
)
from repro.net.framing import framing_overhead_fraction


class TestKindBreakdown:
    def make_tap(self):
        tap = ProtoTap("x")
        tap.observe(Message(DISPLAY_CHANNEL, 100, kind="requests"))
        tap.observe(Message(DISPLAY_CHANNEL, 200, kind="requests"))
        tap.observe(Message(DISPLAY_CHANNEL, 5000, kind="put-image"))
        tap.observe(Message(INPUT_CHANNEL, 32, kind="event"))
        return tap

    def test_groups_by_kind(self):
        breakdown = self.make_tap().kind_breakdown(DISPLAY_CHANNEL)
        assert set(breakdown) == {"requests", "put-image"}
        assert breakdown["requests"].messages == 2
        assert breakdown["requests"].payload_bytes == 300
        assert breakdown["put-image"].payload_bytes == 5000

    def test_channel_isolation(self):
        breakdown = self.make_tap().kind_breakdown(INPUT_CHANNEL)
        assert set(breakdown) == {"event"}

    def test_avg_payload(self):
        breakdown = self.make_tap().kind_breakdown(DISPLAY_CHANNEL)
        assert breakdown["requests"].avg_payload == 150.0

    def test_empty_kind_avg_rejected(self):
        with pytest.raises(NetworkError):
            KindStats(kind="x").avg_payload

    def test_step_observed_messages_keep_kinds(self):
        tap = ProtoTap("rdp")
        tap.observe_step(
            [
                Message(DISPLAY_CHANNEL, 10, kind="orders"),
                Message(DISPLAY_CHANNEL, 20, kind="orders"),
            ]
        )
        breakdown = tap.kind_breakdown(DISPLAY_CHANNEL)
        assert breakdown["orders"].messages == 2

    def test_image_bytes_dominate_x_display_channel(self):
        """Danskin's shape on our workload: X is nearly all image bytes."""
        from repro.workloads import run_protocol_comparison

        tap = run_protocol_comparison(seed=0)["x"]
        breakdown = tap.kind_breakdown(DISPLAY_CHANNEL)
        total = sum(s.payload_bytes for s in breakdown.values())
        assert breakdown["put-image"].payload_bytes > 0.8 * total


class TestFramingOverhead:
    def test_small_messages_mostly_headers(self):
        """A 64-byte keystroke message is ~half framing on TCP/IP."""
        assert framing_overhead_fraction(64) == pytest.approx(58 / 122)

    def test_full_segment_cheap(self):
        assert framing_overhead_fraction(1460) < 0.05

    def test_monotone_decreasing_within_a_segment(self):
        fracs = [framing_overhead_fraction(n) for n in (16, 64, 256, 1024)]
        assert fracs == sorted(fracs, reverse=True)

    def test_raw_stack_free(self):
        assert framing_overhead_fraction(100, RAW) == 0.0

    def test_paper_protocol_averages(self):
        """At the paper's 267-byte average message, overhead is ~18%."""
        frac = framing_overhead_fraction(267 - 58)  # payload of a 267B packet
        assert 0.15 < frac < 0.25
