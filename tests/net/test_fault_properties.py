"""Property-based tests for the fault-injection layer's guarantees.

Two invariants carry the whole chaos-testing design:

* **Determinism** — a :class:`FaultPlan`'s per-packet schedule is a pure
  function of ``(seed, stream name)``: byte-identical whether computed
  twice in one process, in a worker process, or replayed from the result
  cache.
* **Conservation** — every packet offered to a :class:`FaultyLink` lands
  in exactly one fate bucket, so ``delivered + dropped + corrupted ==
  sent`` once in-flight traffic drains.
"""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetworkError
from repro.exec import SweepExecutor, probe_process_backend
from repro.net import FaultPlan, FaultyLink, Packet
from repro.sim import Simulator

# Probabilities on a coarse grid: %g-formatted specs round-trip exactly.
probabilities = st.integers(min_value=0, max_value=100).map(lambda n: n / 100)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def plan_from(loss, burst_enter, corrupt, reorder, jitter, seed):
    return FaultPlan(
        loss=loss,
        burst_enter=burst_enter,
        corrupt=corrupt,
        reorder=reorder,
        jitter_ms=jitter,
        seed=seed,
    )


plans = st.builds(
    plan_from,
    probabilities,
    probabilities,
    probabilities,
    probabilities,
    st.integers(min_value=0, max_value=10).map(float),
    seeds,
)


def schedule_digest(point):
    """Module-level (picklable) sweep point: hash a plan's fate schedule."""
    spec, seed, stream, n = point
    plan = FaultPlan.parse(spec, seed=seed)
    blob = repr(plan.schedule(stream, n)).encode()
    return hashlib.sha256(blob).hexdigest()


class TestScheduleDeterminism:
    @settings(max_examples=60, deadline=None)
    @given(plans, st.integers(min_value=1, max_value=200))
    def test_same_seed_same_schedule(self, plan, n):
        """Two independent iterations of the same plan agree exactly."""
        assert plan.schedule("ether0", n) == plan.schedule("ether0", n)

    @settings(max_examples=60, deadline=None)
    @given(plans, st.integers(min_value=1, max_value=100))
    def test_schedule_is_prefix_stable(self, plan, n):
        """Asking for more fates never rewrites the ones already drawn."""
        assert plan.schedule("ether0", 2 * n)[:n] == plan.schedule("ether0", n)

    @settings(max_examples=40, deadline=None)
    @given(plans)
    def test_spec_round_trips(self, plan):
        """parse(spec()) reproduces the plan — and hence its schedule."""
        parsed = FaultPlan.parse(plan.spec(), seed=plan.seed)
        assert parsed == plan
        assert parsed.schedule("ether0", 64) == plan.schedule("ether0", 64)

    def test_distinct_streams_decorrelate(self):
        plan = FaultPlan(loss=0.5, seed=7)
        assert plan.schedule("ether0", 256) != plan.schedule("ether1", 256)

    def test_distinct_seeds_decorrelate(self):
        a = FaultPlan(loss=0.5, seed=1)
        b = FaultPlan(loss=0.5, seed=2)
        assert a.schedule("ether0", 256) != b.schedule("ether0", 256)

    def test_schedule_identical_across_serial_and_process_backends(self):
        """The --jobs N path sees the exact fault schedule serial runs see."""
        reason = probe_process_backend(schedule_digest)
        if reason is not None:
            pytest.skip(f"process backend unavailable: {reason}")
        points = [
            ("loss=0.1,corrupt=0.02,jitter_ms=1", 7, "ether0", 500),
            ("burst_enter=0.05,burst_exit=0.3", 11, "ether0", 500),
            ("loss=0.3,reorder=0.2", 13, "wan0", 500),
        ]
        serial = SweepExecutor(backend="serial").map(
            "fault-digests", schedule_digest, points
        )
        parallel = SweepExecutor(backend="process", jobs=3).map(
            "fault-digests", schedule_digest, points
        )
        assert serial == parallel


class TestConservationLaw:
    @settings(max_examples=50, deadline=None)
    @given(
        plans,
        st.integers(min_value=1, max_value=120),
        st.floats(min_value=0.1, max_value=5.0),
    )
    def test_every_packet_lands_in_one_bucket(self, plan, n, interval_ms):
        """delivered + dropped + corrupted == sent after the link drains."""
        sim = Simulator()
        link = FaultyLink(sim, plan, bandwidth_mbps=10.0)
        for i in range(n):
            sim.schedule_at(
                i * interval_ms, lambda: link.send(Packet(200), lambda p: None)
            )
        sim.run_until(n * interval_ms + 60_000.0)
        assert link.fault_sent == n
        assert (
            link.fault_delivered + link.fault_dropped + link.fault_corrupted
            == link.fault_sent
        )
        assert link.fault_in_flight == 0

    @settings(max_examples=30, deadline=None)
    @given(plans, st.integers(min_value=1, max_value=60))
    def test_conservation_holds_with_bounded_queue(self, plan, n):
        """Device tail drops are drops in fate accounting too."""
        sim = Simulator()
        link = FaultyLink(
            sim, plan, bandwidth_mbps=0.1, max_queue=2
        )  # slow wire forces queueing
        for __ in range(n):
            link.send(Packet(500), lambda p: None)
        sim.run_until(600_000.0)
        assert (
            link.fault_delivered + link.fault_dropped + link.fault_corrupted
            == link.fault_sent
            == n
        )
        assert link.fault_in_flight == 0
        # The base class saw the same tail drops.
        assert link.packets_dropped <= link.fault_dropped


class TestPlanValidation:
    @settings(max_examples=30, deadline=None)
    @given(
        st.sampled_from(
            ["loss", "burst_enter", "burst_exit", "burst_loss", "corrupt", "reorder"]
        ),
        st.one_of(
            st.floats(max_value=-0.001, min_value=-100),
            st.floats(min_value=1.001, max_value=100),
        ),
    )
    def test_out_of_range_probabilities_rejected(self, name, value):
        with pytest.raises(NetworkError):
            FaultPlan(**{name: value})

    def test_negative_delays_rejected(self):
        with pytest.raises(NetworkError):
            FaultPlan(jitter_ms=-1.0)
        with pytest.raises(NetworkError):
            FaultPlan(reorder_hold_ms=-0.5)

    def test_bad_outage_windows_rejected(self):
        with pytest.raises(NetworkError):
            FaultPlan(outages=((5.0, 5.0),))
        with pytest.raises(NetworkError):
            FaultPlan(outages=((-1.0, 5.0),))

    def test_default_plan_is_disabled(self):
        plan = FaultPlan()
        assert not plan.enabled
        assert plan.spec() == ""

    def test_parse_rejects_malformed_specs(self):
        with pytest.raises(NetworkError):
            FaultPlan.parse("loss")  # no '='
        with pytest.raises(NetworkError):
            FaultPlan.parse("outage=1000")  # no end
        with pytest.raises(NetworkError):
            FaultPlan.parse("teleport=0.5")  # unknown key

    def test_parse_empty_spec_is_disabled(self):
        assert not FaultPlan.parse("").enabled
        assert not FaultPlan.parse("  ,  ").enabled

    def test_outage_at(self):
        plan = FaultPlan(outages=((10.0, 20.0), (30.0, 40.0)))
        assert plan.outage_at(15.0)
        assert plan.outage_at(10.0) and not plan.outage_at(20.0)
        assert not plan.outage_at(25.0)
        assert plan.outage_at(35.0)

    @settings(max_examples=40, deadline=None)
    @given(plans)
    def test_fates_never_mark_lost_and_corrupt_together(self, plan):
        for fate in plan.schedule("ether0", 200):
            assert not (fate.lost and fate.corrupt)
            assert fate.extra_delay_ms >= 0.0
