"""Tests for the TCP stream model and prototap accounting."""

import pytest

from repro.errors import NetworkError
from repro.net import (
    DISPLAY_CHANNEL,
    INPUT_CHANNEL,
    Link,
    Message,
    ProtoTap,
    TCPIP,
    TcpConnection,
    VIP,
    wire_bytes,
)
from repro.sim import Simulator


def make_conn(**kwargs):
    sim = Simulator()
    link = Link(sim, bandwidth_mbps=10.0, propagation_ms=0.0)
    conn = TcpConnection(sim, link, protocol="x", **kwargs)
    return sim, link, conn


def test_message_validation():
    with pytest.raises(NetworkError):
        Message("input", 0)


def test_send_message_single_frame():
    sim, link, conn = make_conn()
    delivered = []
    conn.send_message(INPUT_CHANNEL, 100, on_delivered=delivered.append)
    sim.run_until(10.0)
    assert link.packets_sent == 1
    assert link.bytes_sent == 100 + 58
    assert len(delivered) == 1
    assert delivered[0].delivered_at is not None


def test_send_message_segments_large_payload():
    sim, link, conn = make_conn()
    delivered = []
    conn.send_message(DISPLAY_CHANNEL, 3000, on_delivered=delivered.append)
    sim.run_until(100.0)
    assert link.packets_sent == 3
    assert delivered[0].delivered_at is not None
    # Delivery fires only once, on the final segment.
    assert len(delivered) == 1


def test_ack_packets_optional():
    sim, link, conn = make_conn(ack_bytes=58)
    conn.send_message(INPUT_CHANNEL, 100)
    sim.run_until(10.0)
    assert link.packets_sent == 2  # data + ack


def test_channel_messages_filter():
    sim, __, conn = make_conn()
    conn.send_message(INPUT_CHANNEL, 10)
    conn.send_message(DISPLAY_CHANNEL, 20)
    conn.send_message(DISPLAY_CHANNEL, 30)
    assert len(conn.channel_messages(INPUT_CHANNEL)) == 1
    assert len(conn.channel_messages(DISPLAY_CHANNEL)) == 2


class TestProtoTap:
    def test_per_channel_stats(self):
        tap = ProtoTap("rdp")
        tap.observe(Message(INPUT_CHANNEL, 64))
        tap.observe(Message(INPUT_CHANNEL, 64))
        tap.observe(Message(DISPLAY_CHANNEL, 500))
        trace = tap.trace()
        assert trace.input.messages == 2
        assert trace.input.bytes == 2 * wire_bytes(64, TCPIP)
        assert trace.display.messages == 1
        assert trace.total_messages == 3
        assert trace.total_bytes == trace.input.bytes + trace.display.bytes

    def test_avg_message_size(self):
        tap = ProtoTap("x")
        tap.observe(Message(DISPLAY_CHANNEL, 100))
        tap.observe(Message(DISPLAY_CHANNEL, 200))
        trace = tap.trace()
        expected = (wire_bytes(100, TCPIP) + wire_bytes(200, TCPIP)) / 2
        assert trace.display.avg_message_size == pytest.approx(expected)

    def test_empty_channel_avg_rejected(self):
        tap = ProtoTap("x")
        tap.observe(Message(DISPLAY_CHANNEL, 100))
        with pytest.raises(NetworkError):
            tap.trace().input.avg_message_size

    def test_observe_connection(self):
        sim, __, conn = make_conn()
        conn.send_message(INPUT_CHANNEL, 10)
        conn.send_message(DISPLAY_CHANNEL, 20)
        tap = ProtoTap("x")
        tap.observe_connection(conn)
        assert tap.message_count == 2

    def test_vip_row(self):
        tap = ProtoTap("lbx")
        for _ in range(10):
            tap.observe(Message(DISPLAY_CHANNEL, 64))
        row = tap.vip_table_row()
        assert row["normal_bytes"] == 10 * wire_bytes(64, TCPIP)
        assert row["vip_bytes"] == 10 * wire_bytes(64, VIP)
        assert row["savings"] == pytest.approx(20 / (64 + 58))

    def test_vip_row_empty_rejected(self):
        with pytest.raises(NetworkError):
            ProtoTap("x").vip_table_row()
