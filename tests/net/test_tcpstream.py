"""Dedicated coverage for the TCP stream model and its recovery machinery.

The clean-link path (fire-and-forget segments) predates the fault layer
and must not change; the reliable path adds Jacobson RTO estimation,
exponential backoff, Karn's rule, and bounded retransmission.
"""

import pytest

from repro.errors import NetworkError
from repro.net import (
    DEFAULT_MAX_RETRIES,
    RTO_INITIAL_MS,
    RTO_MAX_MS,
    RTO_MIN_MS,
    FaultPlan,
    FaultyLink,
    Link,
    Message,
    RtoEstimator,
    TcpConnection,
)
from repro.net.tcpstream import RTO_ALPHA, RTO_BETA
from repro.obs import observe
from repro.sim import Simulator


class TestRtoEstimator:
    def test_initial_timeout_before_any_sample(self):
        assert RtoEstimator().rto_ms == RTO_INITIAL_MS

    def test_first_sample_seeds_srtt_and_rttvar(self):
        est = RtoEstimator()
        est.observe(100.0)
        assert est.srtt_ms == 100.0
        assert est.rttvar_ms == 50.0
        assert est.rto_ms == min(RTO_MAX_MS, 100.0 + 4 * 50.0)

    def test_jacobson_smoothing_update(self):
        est = RtoEstimator()
        est.observe(100.0)
        est.observe(200.0)
        # rttvar then srtt, in RFC 6298 order.
        expected_var = 50.0 + RTO_BETA * (abs(200.0 - 100.0) - 50.0)
        expected_srtt = 100.0 + RTO_ALPHA * (200.0 - 100.0)
        assert est.rttvar_ms == pytest.approx(expected_var)
        assert est.srtt_ms == pytest.approx(expected_srtt)
        assert est.rto_ms == pytest.approx(
            expected_srtt + 4.0 * expected_var
        )

    def test_steady_rtt_converges_toward_floor(self):
        est = RtoEstimator()
        for __ in range(200):
            est.observe(5.0)
        # Variance decays to ~0; the floor clamp takes over.
        assert est.rto_ms == RTO_MIN_MS

    def test_ceiling_clamp(self):
        est = RtoEstimator()
        est.observe(10_000.0)
        assert est.rto_ms == RTO_MAX_MS

    def test_validation(self):
        with pytest.raises(NetworkError):
            RtoEstimator(initial_ms=0.0)
        with pytest.raises(NetworkError):
            RtoEstimator(min_ms=20.0, max_ms=10.0)
        with pytest.raises(NetworkError):
            RtoEstimator().observe(-1.0)


class TestUnreliablePath:
    def test_message_delivered_on_clean_link(self):
        sim = Simulator()
        conn = TcpConnection(sim, Link(sim))
        got = []
        msg = conn.send_message("input", 64, kind="key", on_delivered=got.append)
        sim.run_until(1_000.0)
        assert got == [msg]
        assert msg.delivered_at is not None and msg.delivered_at > 0.0
        assert conn.retransmits == conn.timeouts_fired == 0

    def test_large_message_segments_at_mtu(self):
        sim = Simulator()
        link = Link(sim)
        conn = TcpConnection(sim, link)
        conn.send_message("display", 4_000)
        sim.run_until(1_000.0)
        assert link.packets_sent == 3  # 4000 B over a 1460 B MSS

    def test_message_validation(self):
        with pytest.raises(NetworkError):
            Message("input", 0)

    def test_channel_accounting(self):
        sim = Simulator()
        conn = TcpConnection(sim, Link(sim))
        conn.send_message("input", 10)
        conn.send_message("display", 10)
        conn.send_message("input", 10)
        assert len(conn.channel_messages("input")) == 2
        assert len(conn.channel_messages("display")) == 1


class TestReliablePath:
    def test_clean_link_needs_no_retransmits(self):
        sim = Simulator()
        conn = TcpConnection(sim, Link(sim), reliable=True)
        got = []
        conn.send_message("input", 64, on_delivered=got.append)
        sim.run_until(10_000.0)
        assert len(got) == 1
        assert conn.retransmits == conn.timeouts_fired == 0
        # The delivery produced an RTT sample.
        assert conn.rto.srtt_ms is not None

    def test_multi_segment_message_completes_when_all_segments_land(self):
        sim = Simulator()
        conn = TcpConnection(sim, Link(sim), reliable=True)
        got = []
        conn.send_message("display", 4_000, on_delivered=got.append)
        sim.run_until(10_000.0)
        assert len(got) == 1

    def test_loss_is_recovered_by_retransmission(self):
        sim = Simulator()
        link = FaultyLink(sim, FaultPlan(loss=0.3, seed=4))
        conn = TcpConnection(sim, link, reliable=True)
        got = []
        for __ in range(20):
            conn.send_message("input", 64, on_delivered=got.append)
        sim.run_until(60_000.0)
        assert len(got) == 20
        assert conn.retransmits > 0
        assert conn.segments_abandoned == 0

    def test_backoff_doubles_per_attempt(self):
        """RTO backoff timing: with no RTT samples the timer fires at
        rto, 2*rto, 4*rto ... after each (re)transmission."""
        with observe() as obs:
            sim = Simulator()
            link = FaultyLink(sim, FaultPlan(loss=1.0))  # nothing survives
            conn = TcpConnection(sim, link, reliable=True, max_retries=3)
            conn.send_message("input", 64)
            sim.run_until(60_000.0)
        rexmit_times = [
            e["t"] for e in obs.tracer.events if e["kind"] == "net.retransmit"
        ]
        abandon_times = [
            e["t"]
            for e in obs.tracer.events
            if e["kind"] == "net.segment_abandoned"
        ]
        r = RTO_INITIAL_MS
        # Retransmissions at r, r+2r, r+2r+4r; abandonment one 8r wait later.
        assert rexmit_times == pytest.approx([r, 3 * r, 7 * r])
        assert abandon_times == pytest.approx([15 * r])
        assert conn.retransmits == 3
        assert conn.timeouts_fired == 4
        assert conn.segments_abandoned == 1

    def test_backoff_is_capped_at_rto_max(self):
        sim = Simulator()
        link = FaultyLink(sim, FaultPlan(loss=1.0))
        conn = TcpConnection(sim, link, reliable=True)  # 8 retries
        conn.send_message("input", 64)
        sim.run_until(10 * 60_000.0)
        # Sum of the waits: initial*2^k capped at RTO_MAX each round.
        waits = [
            min(RTO_MAX_MS, RTO_INITIAL_MS * (2**k))
            for k in range(DEFAULT_MAX_RETRIES + 1)
        ]
        assert conn.segments_abandoned == 1
        assert conn.timeouts_fired == DEFAULT_MAX_RETRIES + 1
        assert sim.now >= sum(waits)

    def test_abandoned_message_never_reports_delivery(self):
        sim = Simulator()
        link = FaultyLink(sim, FaultPlan(loss=1.0))
        conn = TcpConnection(sim, link, reliable=True, max_retries=1)
        got = []
        msg = conn.send_message("input", 64, on_delivered=got.append)
        sim.run_until(60_000.0)
        assert got == []
        assert msg.delivered_at is None
        assert conn.segments_abandoned == 1

    def test_karns_rule_ignores_retransmitted_samples(self):
        """A segment that was retransmitted must not feed the estimator:
        on a slow wire the original outlives the timer, gets retransmitted,
        then arrives — and srtt stays unseeded."""
        sim = Simulator()
        link = Link(sim, bandwidth_mbps=0.001)  # 64 B wire-framed ~ 850 ms
        conn = TcpConnection(sim, link, reliable=True, max_retries=2)
        got = []
        conn.send_message("input", 64, on_delivered=got.append)
        sim.run_until(60_000.0)
        assert len(got) == 1  # the original did arrive eventually
        assert conn.retransmits >= 1
        assert conn.rto.srtt_ms is None  # Karn: no ambiguous samples

    def test_duplicate_delivery_acks_once(self):
        """The retransmitted copy of an already-acked segment is ignored:
        message completion fires exactly once."""
        sim = Simulator()
        link = Link(sim, bandwidth_mbps=0.001)
        conn = TcpConnection(sim, link, reliable=True, max_retries=3)
        got = []
        conn.send_message("input", 64, on_delivered=got.append)
        sim.run_until(600_000.0)
        assert len(got) == 1

    def test_max_retries_zero_abandons_on_first_timeout(self):
        sim = Simulator()
        link = FaultyLink(sim, FaultPlan(loss=1.0))
        conn = TcpConnection(sim, link, reliable=True, max_retries=0)
        conn.send_message("input", 64)
        sim.run_until(10_000.0)
        assert conn.timeouts_fired == 1
        assert conn.retransmits == 0
        assert conn.segments_abandoned == 1

    def test_negative_max_retries_rejected(self):
        sim = Simulator()
        with pytest.raises(NetworkError):
            TcpConnection(sim, Link(sim), max_retries=-1)

    def test_recovery_counters_reach_the_obs_layer(self):
        with observe() as obs:
            sim = Simulator()
            link = FaultyLink(sim, FaultPlan(loss=1.0))
            conn = TcpConnection(sim, link, reliable=True, max_retries=2)
            conn.send_message("input", 64)
            sim.run_until(60_000.0)
        counters = obs.snapshot()["metrics"]["counters"]
        assert counters["net.retransmits"] == conn.retransmits == 2
        assert counters["net.timeouts_fired"] == conn.timeouts_fired == 3
        assert counters["net.segments_abandoned"] == 1
