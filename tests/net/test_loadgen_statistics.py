"""Statistical pin tests for the Poisson load generator.

The analytic oracle (``tests/analytic/test_oracle.py``) only holds if the
load generator really emits a Poisson process: exponential inter-arrivals
at the advertised rate.  These tests pin that distribution directly — the
sample mean, the coefficient of variation, and a Kolmogorov–Smirnov
distance against the exponential CDF — under a fixed seed so the bounds
are deterministic pins, not flaky statistical gambles.
"""

import math
import random

import pytest

from repro.net import PoissonLoadGenerator
from repro.sim import Simulator
from repro.units import mbps_to_bytes_per_ms


class _ArrivalTap:
    """A link stand-in that records each offered packet's arrival time.

    Tapping at ``send`` (the generator's only link call) observes the
    arrival process itself, uncontaminated by transmission or queueing.
    """

    def __init__(self, sim):
        self.sim = sim
        self.arrivals_ms = []

    def send(self, packet, on_delivered=None):
        """Record the arrival instant; drop the packet."""
        self.arrivals_ms.append(self.sim.now)


def _interarrivals(mbps, *, packet_bytes=1500, seed=0, count=20_000):
    """The first *count* inter-arrival gaps from a fixed-seed generator."""
    sim = Simulator()
    tap = _ArrivalTap(sim)
    gen = PoissonLoadGenerator(
        sim, tap, mbps, random.Random(seed), packet_bytes=packet_bytes
    )
    while len(tap.arrivals_ms) < count + 1:
        sim.step()
    gen.stop()
    times = tap.arrivals_ms[: count + 1]
    return [b - a for a, b in zip(times, times[1:])]


def _ks_distance_vs_exponential(gaps, mean_ms):
    """Kolmogorov–Smirnov distance between *gaps* and Exp(1/mean_ms)."""
    ordered = sorted(gaps)
    n = len(ordered)
    worst = 0.0
    for i, x in enumerate(ordered):
        cdf = 1.0 - math.exp(-x / mean_ms)
        worst = max(worst, abs(cdf - i / n), abs(cdf - (i + 1) / n))
    return worst


class TestInterArrivalDistribution:
    #: 5 Mbps of 1500 B frames: mean gap = 1500 / 625 B/ms = 2.4 ms.
    MBPS = 5.0
    MEAN_MS = 1500 / mbps_to_bytes_per_ms(5.0)

    def test_sample_mean_matches_the_advertised_rate(self):
        gaps = _interarrivals(self.MBPS, seed=1)
        # 20k samples: the standard error of the mean is mean/sqrt(n),
        # ~0.7% here; 2% is a comfortable deterministic pin.
        assert sum(gaps) / len(gaps) == pytest.approx(self.MEAN_MS, rel=0.02)

    def test_coefficient_of_variation_is_one(self):
        """Exponential gaps have CV = 1 — the memoryless signature.

        A uniform generator (CV ~ 0.58) or a batchy one (CV > 1) would
        silently halve / inflate every M/G/1 waiting-time prediction.
        """
        gaps = _interarrivals(self.MBPS, seed=1)
        mu = sum(gaps) / len(gaps)
        var = sum((g - mu) ** 2 for g in gaps) / len(gaps)
        assert math.sqrt(var) / mu == pytest.approx(1.0, rel=0.03)

    def test_ks_distance_to_exponential_is_small(self):
        """The whole CDF matches, not just two moments.

        The 1% critical value for n = 20k is 1.63/sqrt(n) ~ 0.0115; the
        fixed seed makes this a pin, not a hypothesis test.
        """
        gaps = _interarrivals(self.MBPS, seed=1)
        assert _ks_distance_vs_exponential(gaps, self.MEAN_MS) < 0.0115

    def test_gaps_are_not_suspiciously_regular(self):
        """Minimum gap is far below the mean (a clocked generator's tell)."""
        gaps = _interarrivals(self.MBPS, seed=1, count=5_000)
        assert min(gaps) < 0.05 * self.MEAN_MS


class TestRateUnits:
    def test_doubling_the_rate_halves_the_mean_gap(self):
        """Regression for the Mbps -> bytes/ms conversion in the mean."""
        slow = _interarrivals(2.0, seed=3, count=8_000)
        fast = _interarrivals(4.0, seed=3, count=8_000)
        ratio = (sum(slow) / len(slow)) / (sum(fast) / len(fast))
        assert ratio == pytest.approx(2.0, rel=0.05)

    def test_packet_size_scales_the_gap_not_the_load(self):
        """Half-size frames arrive twice as often at equal offered Mbps."""
        small = _interarrivals(2.0, packet_bytes=750, seed=3, count=8_000)
        large = _interarrivals(2.0, packet_bytes=1500, seed=3, count=8_000)
        ratio = (sum(large) / len(large)) / (sum(small) / len(small))
        assert ratio == pytest.approx(2.0, rel=0.05)

    def test_distribution_is_seed_deterministic(self):
        assert _interarrivals(2.0, seed=5, count=500) == _interarrivals(
            2.0, seed=5, count=500
        )
        assert _interarrivals(2.0, seed=5, count=500) != _interarrivals(
            2.0, seed=6, count=500
        )
