"""Tests for synthetic load and the RTT experiment (Figures 8–9)."""

import random

import pytest

from repro.errors import NetworkError
from repro.net import Link, Pinger, PoissonLoadGenerator, run_ping_experiment
from repro.sim import Simulator


def test_generator_validation():
    sim = Simulator()
    link = Link(sim)
    with pytest.raises(NetworkError):
        PoissonLoadGenerator(sim, link, -1.0, random.Random(0))
    with pytest.raises(NetworkError):
        PoissonLoadGenerator(sim, link, 1.0, random.Random(0), packet_bytes=0)


def test_zero_load_sends_nothing():
    sim = Simulator()
    link = Link(sim)
    gen = PoissonLoadGenerator(sim, link, 0.0, random.Random(0))
    sim.run_until(1000.0)
    assert gen.packets_offered == 0


def test_offered_load_close_to_target():
    sim = Simulator()
    link = Link(sim, bandwidth_mbps=100.0)  # plenty of headroom
    gen = PoissonLoadGenerator(sim, link, 5.0, random.Random(1))
    sim.run_until(20_000.0)
    achieved = link.utilization(0.0, 20_000.0) * 100.0
    assert achieved == pytest.approx(5.0, rel=0.1)


def test_generator_stop():
    sim = Simulator()
    link = Link(sim, bandwidth_mbps=100.0)
    gen = PoissonLoadGenerator(sim, link, 5.0, random.Random(1))
    sim.run_until(1000.0)
    count = gen.packets_offered
    gen.stop()
    sim.run_until(5000.0)
    assert gen.packets_offered == count


def test_pinger_on_idle_link_sees_transmission_plus_propagation():
    sim = Simulator()
    link = Link(sim, bandwidth_mbps=10.0, propagation_ms=0.05)
    pinger = Pinger(sim, link)
    sim.run_until(10_000.0)
    pinger.stop()
    assert len(pinger.rtts_ms) == 9  # one per second after t=1000
    # 64 bytes at 10Mbps = 0.0512ms each way, + 2 propagations.
    expected = 2 * (64 / 1250.0) + 2 * 0.05
    assert pinger.rtts_ms[0] == pytest.approx(expected, rel=1e-6)


def test_rtt_grows_with_offered_load():
    """Figure 8's shape: flat then a knee near saturation."""
    results = run_ping_experiment(
        [0.0, 6.0, 9.6], duration_ms=30_000.0, seed=4
    )
    r0, r6, r96 = results
    assert r0.mean_rtt_ms < 1.0
    assert r6.mean_rtt_ms > r0.mean_rtt_ms
    assert r96.mean_rtt_ms > 10 * r6.mean_rtt_ms  # explosion near saturation


def test_jitter_explodes_near_saturation():
    """Figure 9's shape: variance flat, then explodes."""
    results = run_ping_experiment(
        [1.0, 9.6], duration_ms=30_000.0, seed=4
    )
    low, high = results
    assert high.rtt_variance > 100 * max(low.rtt_variance, 1e-9)


def test_ping_experiment_deterministic():
    a = run_ping_experiment([5.0], duration_ms=5_000.0, seed=9)
    b = run_ping_experiment([5.0], duration_ms=5_000.0, seed=9)
    assert a[0].rtts_ms == b[0].rtts_ms
