"""Dedicated coverage for the ping RTT experiment (Figures 8-9 machinery)."""

import pytest

from repro.net import (
    PING_INTERVAL_MS,
    PING_PACKET_BYTES,
    FaultPlan,
    Link,
    Pinger,
    PingResult,
    run_ping_experiment,
)
from repro.sim import Simulator


class TestPinger:
    def test_probe_accounting_on_a_clean_link(self):
        sim = Simulator()
        pinger = Pinger(sim, Link(sim))
        sim.run_until(10 * PING_INTERVAL_MS + 500.0)
        assert pinger.probes_sent == 10
        assert len(pinger.rtts_ms) == 10
        assert pinger.probes_lost == 0

    def test_rtt_is_two_transits(self):
        sim = Simulator()
        link = Link(sim, bandwidth_mbps=10.0, propagation_ms=0.05)
        pinger = Pinger(sim, link)
        sim.run_until(PING_INTERVAL_MS + 500.0)
        (rtt,) = pinger.rtts_ms
        # Out and back on an idle wire: 2 * (serialization + propagation).
        transit = (PING_PACKET_BYTES + 58) / 1250.0 + 0.05  # TCP/IP+Eth framing
        assert rtt == pytest.approx(2 * transit, rel=0.5)
        assert rtt > 0

    def test_stop_halts_probing(self):
        sim = Simulator()
        pinger = Pinger(sim, Link(sim))
        sim.run_until(3 * PING_INTERVAL_MS + 10.0)
        pinger.stop()
        sent = pinger.probes_sent
        sim.run_until(10 * PING_INTERVAL_MS)
        assert pinger.probes_sent == sent

    def test_lossy_link_loses_probes(self):
        from repro.net import FaultyLink

        sim = Simulator()
        link = FaultyLink(sim, FaultPlan(loss=0.5, seed=2))
        pinger = Pinger(sim, link)
        sim.run_until(40 * PING_INTERVAL_MS + 500.0)
        assert pinger.probes_sent == 40
        assert 0 < pinger.probes_lost <= 40


class TestPingResult:
    def test_statistics(self):
        result = PingResult(offered_mbps=5.0, rtts_ms=[1.0, 2.0, 3.0])
        assert result.mean_rtt_ms == pytest.approx(2.0)
        assert result.rtt_variance == pytest.approx(2.0 / 3.0)  # population


class TestRunPingExperiment:
    def test_one_result_per_level_in_order(self):
        results = run_ping_experiment([1.0, 5.0, 9.0], duration_ms=5_000.0)
        assert [r.offered_mbps for r in results] == [1.0, 5.0, 9.0]
        for r in results:
            assert len(r.rtts_ms) > 0

    def test_load_inflates_rtt(self):
        low, high = run_ping_experiment([1.0, 9.5], duration_ms=20_000.0)
        assert high.mean_rtt_ms > low.mean_rtt_ms

    def test_disabled_faults_match_no_faults_exactly(self):
        clean = run_ping_experiment([4.0], duration_ms=5_000.0, seed=1)
        disabled = run_ping_experiment(
            [4.0], duration_ms=5_000.0, seed=1, faults=FaultPlan()
        )
        assert clean[0].rtts_ms == disabled[0].rtts_ms

    def test_faulted_wire_loses_probes_and_is_deterministic(self):
        kwargs = dict(duration_ms=30_000.0, seed=1)
        plan = FaultPlan(loss=0.4, seed=9)
        (clean,) = run_ping_experiment([2.0], **kwargs)
        (faulted,) = run_ping_experiment([2.0], faults=plan, **kwargs)
        (again,) = run_ping_experiment([2.0], faults=plan, **kwargs)
        assert len(faulted.rtts_ms) < len(clean.rtts_ms)
        assert faulted.rtts_ms == again.rtts_ms

    def test_jitter_inflates_rtt_variance(self):
        kwargs = dict(duration_ms=30_000.0, seed=1)
        (clean,) = run_ping_experiment([2.0], **kwargs)
        (jittered,) = run_ping_experiment(
            [2.0], faults=FaultPlan(jitter_ms=5.0, seed=3), **kwargs
        )
        assert jittered.rtt_variance > clean.rtt_variance
