"""Chaos regression suite: fault mechanics, baselines, and monotonicity.

The contract under test, in order of importance:

* with faults disabled, nothing anywhere changes — a no-fault run is
  byte-identical to a pre-fault-layer run;
* each fault mechanism (loss, corruption, jitter, reorder, outage) does
  exactly what its model says;
* the chaos sweep behaves like a network: more loss never *improves*
  tail latency, and the reliable transport keeps delivering.
"""

import json

from repro.net import (
    DEFAULT_REORDER_HOLD_MS,
    FaultPlan,
    FaultyLink,
    Link,
    Packet,
    make_link,
    run_chaos_experiment,
    run_ping_experiment,
)
from repro.obs import observe
from repro.sim import Simulator


def snapshot_bytes(obs):
    return json.dumps(obs.snapshot(), sort_keys=True)


class TestMakeLinkDispatch:
    def test_none_plan_builds_plain_link(self):
        link = make_link(Simulator(), None)
        assert type(link) is Link

    def test_disabled_plan_builds_plain_link(self):
        link = make_link(Simulator(), FaultPlan())
        assert type(link) is Link

    def test_zero_loss_alone_is_disabled(self):
        """loss=0 with nothing else enabled is the clean wire, exactly."""
        link = make_link(Simulator(), FaultPlan(loss=0.0, seed=42))
        assert type(link) is Link

    def test_enabled_plan_builds_faulty_link(self):
        link = make_link(Simulator(), FaultPlan(loss=0.1))
        assert isinstance(link, FaultyLink)

    def test_kwargs_forwarded(self):
        link = make_link(
            Simulator(), FaultPlan(jitter_ms=1.0), bandwidth_mbps=2.0, name="wan0"
        )
        assert link.bandwidth_mbps == 2.0
        assert link.name == "wan0"


class TestNoFaultByteIdentity:
    """ISSUE acceptance: a disabled plan changes nothing, byte for byte."""

    def test_ping_observation_identical_with_disabled_plan(self):
        levels = [2.0, 6.0]
        with observe() as clean:
            baseline = run_ping_experiment(levels, seed=3, faults=None)
        with observe() as faded:
            disabled = run_ping_experiment(
                levels, seed=3, faults=FaultPlan(seed=99)
            )
        assert snapshot_bytes(clean) == snapshot_bytes(faded)
        assert [r.rtts_ms for r in baseline] == [r.rtts_ms for r in disabled]

    def test_chaos_zero_loss_baseline_is_the_clean_transport(self):
        """The loss=0 level of a default-base sweep runs on a plain Link:
        no retransmission machinery, no fault counters, flat latencies."""
        (result,) = run_chaos_experiment([0.0], duration_ms=2_000.0)
        assert result.delivered_fraction == 1.0
        assert result.retransmits == 0
        assert result.timeouts_fired == 0
        assert result.corrupt_drops == 0
        # Steady clock, no jitter: latencies flat to float rounding.
        spread = max(result.latencies_ms) - min(result.latencies_ms)
        assert spread < 1e-9


class TestFaultMechanisms:
    def run_packets(self, plan, n=50, interval_ms=10.0, **link_kwargs):
        sim = Simulator()
        link = FaultyLink(sim, plan, **link_kwargs)
        delivered = []
        for i in range(n):
            sim.schedule_at(
                i * interval_ms,
                lambda: link.send(Packet(200), delivered.append),
            )
        sim.run_until(n * interval_ms + 30_000.0)
        return sim, link, delivered

    def test_total_loss_drops_everything(self):
        __, link, delivered = self.run_packets(FaultPlan(loss=1.0))
        assert delivered == []
        assert link.fault_dropped == link.fault_sent == 50
        assert link.bytes_sent == 0  # lost packets never reach the wire

    def test_total_corruption_burns_bandwidth_but_delivers_nothing(self):
        __, link, delivered = self.run_packets(FaultPlan(corrupt=1.0))
        assert delivered == []
        assert link.fault_corrupted == link.fault_sent == 50
        assert link.bytes_sent > 0  # the checksum fails at the *receiver*

    def test_corruption_notifies_listeners(self):
        class Ear:
            corruptions = 0

            def on_corruption(self):
                self.corruptions += 1

        sim = Simulator()
        link = FaultyLink(sim, FaultPlan(corrupt=1.0))
        ear = Ear()
        link.add_listener(ear)
        link.send(Packet(100), lambda p: None)
        sim.run_until(1_000.0)
        assert ear.corruptions == 1

    def test_jitter_delays_but_delivers(self):
        sim, link, delivered = self.run_packets(FaultPlan(jitter_ms=5.0))
        assert len(delivered) == 50
        clean_sim = Simulator()
        clean = Link(clean_sim)
        base = []
        clean_sim.schedule_at(0.0, lambda: clean.send(Packet(200), base.append))
        clean_sim.run_until(1_000.0)
        # Every jittered delivery is at or after the clean delivery time
        # for the same send instant (exponential jitter is nonnegative).
        sends = [i * 10.0 for i in range(50)]
        clean_transit = base[0].delivered_at
        for send_at, pkt in zip(sends, delivered):
            assert pkt.delivered_at >= send_at + clean_transit - 1e-9

    def test_reorder_holds_packets_back(self):
        __, __, held = self.run_packets(FaultPlan(reorder=1.0), n=10)
        sim = Simulator()
        plain = Link(sim)
        base = []
        sim.schedule_at(0.0, lambda: plain.send(Packet(200), base.append))
        sim.run_until(100.0)
        clean_transit = base[0].delivered_at
        assert len(held) == 10
        for i, pkt in enumerate(held):
            assert pkt.delivered_at - (i * 10.0 + clean_transit) >= (
                DEFAULT_REORDER_HOLD_MS - 1e-9
            )

    def test_outage_window_drops_exactly_inside(self):
        plan = FaultPlan(outages=((100.0, 200.0),))
        sim = Simulator()
        link = FaultyLink(sim, plan)
        delivered = []
        for t in (50.0, 150.0, 199.9, 250.0):
            sim.schedule_at(t, lambda: link.send(Packet(64), delivered.append))
        sim.run_until(1_000.0)
        assert len(delivered) == 2  # 50 ms and 250 ms survive
        assert link.fault_dropped == 2

    def test_outage_edges_notify_listeners_and_count_duration(self):
        class Ear:
            def __init__(self):
                self.edges = []

            def on_outage(self, active):
                self.edges.append(active)

        with observe() as obs:
            sim = Simulator()
            link = FaultyLink(sim, FaultPlan(outages=((100.0, 350.0),)))
            ear = Ear()
            link.add_listener(ear)
            sim.run_until(1_000.0)
        assert ear.edges == [True, False]
        assert obs.metrics.counter("net.outage_ms").value == 250.0
        kinds = [e["kind"] for e in obs.tracer.events]
        assert "net.outage.start" in kinds and "net.outage.end" in kinds

    def test_listeners_without_hooks_are_ignored(self):
        sim = Simulator()
        link = FaultyLink(sim, FaultPlan(corrupt=1.0, outages=((1.0, 2.0),)))
        link.add_listener(object())  # no on_corruption / on_outage
        link.send(Packet(64), lambda p: None)
        sim.run_until(100.0)  # must not raise


class TestChaosSweep:
    LEVELS = [0.0, 0.05, 0.2]

    def results(self):
        return run_chaos_experiment(
            self.LEVELS, seed=0, duration_ms=20_000.0
        )

    def test_higher_loss_never_lowers_tail_latency(self):
        """ISSUE monotone check: p99 latency is nondecreasing in loss."""
        p99s = [r.latency_percentile_ms(99.0) for r in self.results()]
        assert p99s == sorted(p99s)

    def test_higher_loss_never_lowers_mean_latency(self):
        means = [r.mean_latency_ms for r in self.results()]
        assert means == sorted(means)

    def test_reliable_transport_keeps_delivering(self):
        for result in self.results():
            assert result.delivered_fraction == 1.0
            assert result.segments_abandoned == 0

    def test_retransmits_scale_with_loss(self):
        rexmits = [r.retransmits for r in self.results()]
        assert rexmits[0] == 0
        assert rexmits == sorted(rexmits)
        assert rexmits[-1] > rexmits[1] > 0

    def test_sweep_is_seed_deterministic(self):
        a = run_chaos_experiment([0.1], seed=5, duration_ms=5_000.0)
        b = run_chaos_experiment([0.1], seed=5, duration_ms=5_000.0)
        c = run_chaos_experiment([0.1], seed=6, duration_ms=5_000.0)
        assert a == b
        assert a != c

    def test_base_plan_faults_ride_along(self):
        """A corrupt-heavy base plan forces retransmits even at loss=0."""
        (result,) = run_chaos_experiment(
            [0.0],
            base=FaultPlan(corrupt=0.2),
            seed=1,
            duration_ms=10_000.0,
        )
        assert result.corrupt_drops > 0
        assert result.retransmits > 0
        assert result.delivered_fraction == 1.0


class TestTailDropGaugeRegression:
    """net/link.py fix: a tail drop publishes the queue depth that caused
    it *before* the drop counter moves, so metric consumers never observe
    the counter advance against a stale, non-full gauge."""

    def fill_and_overflow(self, max_queue, sends):
        with observe() as obs:
            sim = Simulator()
            # Slow wire: nothing dequeues while we overflow the queue.
            link = Link(sim, bandwidth_mbps=0.001, max_queue=max_queue)
            for __ in range(sends):
                link.send(Packet(1_000))
        return link, obs.snapshot()["metrics"]

    def test_drop_records_a_gauge_sample_at_full_depth(self):
        link, metrics = self.fill_and_overflow(max_queue=3, sends=5)
        assert link.packets_dropped == 1  # 1 on wire, 3 queued, 1 dropped
        gauge = metrics["gauges"]["net.queue_depth"]
        # 4 enqueue samples + 1 drop sample; the drop saw the full queue.
        assert gauge["samples"] == 5
        assert gauge["last"] == 3
        assert metrics["counters"]["net.packets_dropped"] == 1

    def test_zero_capacity_queue_still_gauges_drops(self):
        """max_queue=0 never enqueues: pre-fix the gauge had no samples at
        all while the drop counter climbed."""
        link, metrics = self.fill_and_overflow(max_queue=0, sends=3)
        assert link.packets_dropped == 3
        gauge = metrics["gauges"]["net.queue_depth"]
        assert gauge["samples"] == 3  # one observation per drop
        assert gauge["last"] == 0

    def test_unbounded_link_never_touches_the_drop_path(self):
        """The golden-trace guarantee: no max_queue, no extra gauge samples."""
        with observe() as obs:
            sim = Simulator()
            link = Link(sim, bandwidth_mbps=10.0)
            for __ in range(4):
                link.send(Packet(100))
            sim.run_until(1_000.0)
        gauge = obs.snapshot()["metrics"]["gauges"]["net.queue_depth"]
        assert gauge["samples"] == 4  # enqueues only
        assert link.packets_dropped == 0
