"""Property-based tests for the shared link's queueing guarantees."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Link, Packet
from repro.sim import Simulator

packet_plans = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0),  # enqueue time
        st.integers(min_value=1, max_value=3000),  # wire bytes
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(packet_plans)
def test_fifo_delivery_order(plans):
    """Packets enqueued earlier are always delivered no later."""
    sim = Simulator()
    link = Link(sim, bandwidth_mbps=10.0, propagation_ms=0.1)
    deliveries = []
    order = {"next": 0}

    def make_sender(seq, size):
        def send():
            link.send(
                Packet(size), lambda p, seq=seq: deliveries.append((seq, sim.now))
            )

        return send

    for seq, (when, size) in enumerate(sorted(plans, key=lambda x: x[0])):
        sim.schedule_at(when, make_sender(seq, size))
    sim.run_until(10_000.0)
    assert len(deliveries) == len(plans)
    times = [t for __, t in deliveries]
    assert times == sorted(times)
    # FIFO: sequence numbers of same-instant senders never reorder.
    seqs = [s for s, __ in deliveries]
    assert seqs == sorted(seqs)


@settings(max_examples=60, deadline=None)
@given(packet_plans)
def test_byte_conservation_and_capacity(plans):
    """Every byte offered is eventually sent, and never faster than the
    wire allows."""
    sim = Simulator()
    link = Link(sim, bandwidth_mbps=10.0, propagation_ms=0.0)
    for when, size in plans:
        sim.schedule_at(when, lambda s=size: link.send(Packet(s)))
    sim.run_until(60_000.0)
    total = sum(size for __, size in plans)
    assert link.bytes_sent == total
    assert link.trace.total_bytes == total
    # The last transmit completes no earlier than serialization allows.
    first = min(when for when, __ in plans)
    last_complete = max(link.trace.times)
    assert last_complete >= first + total / 1250.0 - 1e-6


@settings(max_examples=60, deadline=None)
@given(packet_plans)
def test_delivery_never_precedes_transmission(plans):
    sim = Simulator()
    link = Link(sim, bandwidth_mbps=10.0, propagation_ms=0.25)
    packets = []

    def make_sender(size):
        def send():
            p = Packet(size)
            packets.append(p)
            link.send(p, lambda __: None)

        return send

    for when, size in plans:
        sim.schedule_at(when, make_sender(size))
    sim.run_until(60_000.0)
    for p in packets:
        assert p.delivered_at is not None
        # enqueue -> transmit (>= size/rate) -> propagation
        min_delivery = p.enqueued_at + p.wire_bytes / 1250.0 + 0.25
        assert p.delivered_at >= min_delivery - 1e-9
