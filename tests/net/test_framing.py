"""Unit and property tests for header stacks and segmentation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import NetworkError
from repro.net import RAW, TCPIP, VIP, segment, vip_savings, wire_bytes


def test_tcpip_overhead():
    assert TCPIP.per_segment_overhead == 18 + 20 + 20


def test_vip_elides_ip_header():
    assert TCPIP.per_segment_overhead - VIP.per_segment_overhead == 20


def test_max_segment_payload():
    assert TCPIP.max_segment_payload(1500) == 1460
    assert VIP.max_segment_payload(1500) == 1480


def test_mtu_too_small_rejected():
    with pytest.raises(NetworkError):
        TCPIP.max_segment_payload(30)


def test_small_message_is_one_frame():
    frames = segment(100, TCPIP)
    assert frames == [100 + 58]


def test_large_message_segments_at_mss():
    frames = segment(3000, TCPIP)
    # 1460 + 1460 + 80
    assert len(frames) == 3
    assert frames[0] == frames[1] == 1460 + 58
    assert frames[2] == 80 + 58


def test_zero_byte_message_costs_one_header_frame():
    assert segment(0, TCPIP) == [58]


def test_negative_payload_rejected():
    with pytest.raises(NetworkError):
        segment(-1, TCPIP)


def test_raw_stack_has_no_overhead():
    assert segment(64, RAW) == [64]
    assert wire_bytes(64, RAW) == 64


def test_wire_bytes_sums_frames():
    assert wire_bytes(3000, TCPIP) == sum(segment(3000, TCPIP))


def test_vip_savings_small_messages_save_more():
    small = vip_savings([64] * 100)
    large = vip_savings([1400] * 100)
    assert small > large
    # One 64-byte message: 122 -> 102 on the wire, ~16% savings.
    assert small == pytest.approx(20 / (64 + 58))


def test_vip_savings_empty_trace_rejected():
    with pytest.raises(NetworkError):
        vip_savings([])


@given(st.integers(min_value=0, max_value=100_000))
def test_segmentation_conserves_payload(payload):
    frames = segment(payload, TCPIP)
    carried = sum(f - TCPIP.per_segment_overhead for f in frames)
    assert carried == payload


@given(st.integers(min_value=1, max_value=100_000))
def test_vip_never_costs_more(payload):
    assert wire_bytes(payload, VIP) <= wire_bytes(payload, TCPIP)


@given(st.integers(min_value=1, max_value=100_000))
def test_frames_respect_mtu(payload):
    for frame in segment(payload, TCPIP):
        # link header is outside the IP MTU
        assert frame - TCPIP.link_bytes <= 1500
