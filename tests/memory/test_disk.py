"""Unit tests for the paging-disk model."""

import random

import pytest

from repro.errors import MemoryError_
from repro.memory import DiskParameters, PagingDisk


def make_disk(seed=1, **kwargs):
    return PagingDisk(random.Random(seed), DiskParameters(**kwargs))


def test_read_time_within_mechanical_bounds():
    disk = make_disk()
    p = disk.params
    for _ in range(100):
        t = disk.read_ms(1)
        assert p.seek_lo_ms + p.transfer_ms_per_page <= t
        assert t <= p.seek_hi_ms + p.rotation_ms + p.transfer_ms_per_page


def test_mean_service_is_about_13ms():
    """Calibration: the default disk costs ~13 ms per single-page read."""
    disk = make_disk()
    times = [disk.read_ms(1) for _ in range(2000)]
    assert sum(times) / len(times) == pytest.approx(13.0, abs=0.5)
    assert disk.params.mean_service_ms(1) == pytest.approx(13.0, abs=0.5)


def test_clustered_read_amortizes_positioning():
    params = DiskParameters()
    assert params.mean_service_ms(4) < 4 * params.mean_service_ms(1)
    assert params.mean_service_ms(4) == pytest.approx(
        params.mean_service_ms(1) + 3 * params.transfer_ms_per_page
    )


def test_accounting():
    disk = make_disk()
    disk.read_ms(3)
    disk.write_ms(1)
    assert disk.reads == 1
    assert disk.writes == 1
    assert disk.pages_read == 3
    assert disk.pages_written == 1
    assert disk.busy_ms > 0


def test_zero_page_requests_rejected():
    disk = make_disk()
    with pytest.raises(MemoryError_):
        disk.read_ms(0)
    with pytest.raises(MemoryError_):
        disk.write_ms(0)


def test_deterministic_for_same_seed():
    a = [make_disk(seed=9).read_ms() for _ in range(5)]
    b = [make_disk(seed=9).read_ms() for _ in range(5)]
    assert a == b
