"""Tests for the §5.1.1 session-memory tables."""

import pytest

from repro.errors import MemoryError_
from repro.memory import (
    LINUX_SESSION,
    TSE_SESSION_LIGHT,
    TSE_SESSION_TYPICAL,
    idle_memory_bytes,
    session_profile,
    sessions_that_fit,
)
from repro.units import mb


def test_linux_session_total_is_752kb():
    """Paper table (a): in.rshd 204 + xterm 372 + bash 176 = 752 KB."""
    assert LINUX_SESSION.total_kb == 752


def test_tse_typical_total_is_3244kb():
    """Paper table (b): typical TSE login = 3,244 KB."""
    assert TSE_SESSION_TYPICAL.total_kb == 3244


def test_tse_light_total_is_2100kb():
    """Paper table (b): DOS-prompt login = 2,100 KB."""
    assert TSE_SESSION_LIGHT.total_kb == 2100


def test_process_sets_match_paper():
    assert {p.name for p in LINUX_SESSION.processes} == {
        "in.rshd",
        "xterm",
        "bash",
    }
    assert "explorer.exe" in {p.name for p in TSE_SESSION_TYPICAL.processes}
    assert "command.com" in {p.name for p in TSE_SESSION_LIGHT.processes}


def test_idle_memory_figures():
    assert idle_memory_bytes("linux") == mb(17)
    assert idle_memory_bytes("nt_tse") == mb(19)
    with pytest.raises(MemoryError_):
        idle_memory_bytes("beos")


def test_session_profile_lookup():
    assert session_profile("linux") is LINUX_SESSION
    assert session_profile("nt_tse", "light") is TSE_SESSION_LIGHT
    with pytest.raises(MemoryError_):
        session_profile("linux", "light")


def test_sessions_that_fit_orders_linux_above_tse():
    """Linux's smaller per-login footprint supports more users per MB."""
    linux = sessions_that_fit("linux", mb(128))
    tse = sessions_that_fit("nt_tse", mb(128))
    assert linux > tse > 0
    # 128MB - 17MB base over 752KB/user ~ 151 users.
    assert linux == (mb(128) - mb(17)) // (752 * 1024)


def test_sessions_that_fit_with_dynamic_load():
    few = sessions_that_fit("linux", mb(128), per_user_dynamic_bytes=mb(4))
    many = sessions_that_fit("linux", mb(128))
    assert few < many


def test_sessions_that_fit_tiny_server():
    assert sessions_that_fit("nt_tse", mb(16)) == 0
