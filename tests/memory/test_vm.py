"""Unit tests for the virtual-memory manager."""

import random

import pytest

from repro.errors import MemoryError_
from repro.memory import (
    FramePool,
    LRUPolicy,
    PagingDisk,
    VirtualMemory,
    make_policy,
)
from repro.units import kb, mb


def make_vm(pool_kb=64, **kwargs):
    pool = FramePool(kb(pool_kb))
    disk = PagingDisk(random.Random(0))
    vm = VirtualMemory(pool, disk, make_policy("lru"), **kwargs)
    return vm, pool, disk


def test_create_process_rounds_up_pages():
    vm, pool, __ = make_vm()
    space = vm.create_process("p", 4097)
    assert space.num_pages == 2


def test_first_touch_faults_then_hits():
    vm, __, __ = make_vm()
    p = vm.create_process("p", kb(16))
    r1 = vm.touch(p, 0)
    assert r1.faulted and r1.pages_read == 1
    assert r1.latency_ms > 1.0  # disk service
    r2 = vm.touch(p, 0)
    assert not r2.faulted
    assert r2.latency_ms < 0.01  # memory hierarchy hit
    assert p.faults == 1 and p.hits == 1


def test_eviction_when_pool_exhausted():
    vm, pool, __ = make_vm(pool_kb=16)  # 4 frames
    p = vm.create_process("p", kb(32))  # 8 pages
    for vpn in range(8):
        vm.touch(p, vpn)
    assert p.resident_pages == 4
    assert vm.total_evictions == 4
    # LRU: oldest pages 0-3 went out; 4-7 are resident.
    assert p.resident_vpns() == [4, 5, 6, 7]


def test_lru_victims_come_from_coldest_process():
    vm, __, __ = make_vm(pool_kb=16)
    cold = vm.create_process("cold", kb(8))
    vm.touch_sequential(cold, 0, 2)
    hot = vm.create_process("hot", kb(16))
    vm.touch_sequential(hot, 0, 4)  # evicts both cold pages
    assert cold.resident_pages == 0
    assert hot.resident_pages == 4


def test_out_of_memory_with_nothing_evictable():
    vm, pool, __ = make_vm(pool_kb=8)  # 2 frames
    pool.pin(kb(8))
    p = vm.create_process("p", kb(4))
    with pytest.raises(MemoryError_):
        vm.touch(p, 0)


def test_read_cluster_prefetches_following_pages():
    vm, __, __ = make_vm(read_cluster=4)
    p = vm.create_process("p", kb(64))
    r = vm.touch(p, 0)
    assert r.pages_read == 4
    assert p.resident_vpns() == [0, 1, 2, 3]
    # The prefetched pages now hit.
    assert not vm.touch(p, 1).faulted


def test_read_cluster_stops_at_resident_page():
    vm, __, __ = make_vm(read_cluster=4)
    p = vm.create_process("p", kb(64))
    vm.touch(p, 2)  # makes 2..5 resident
    r = vm.touch(p, 0)  # cluster 0,1 then stops at resident 2
    assert r.pages_read == 2


def test_read_cluster_stops_at_space_end():
    vm, __, __ = make_vm(read_cluster=4)
    p = vm.create_process("p", kb(8))  # 2 pages
    r = vm.touch(p, 1)
    assert r.pages_read == 1


def test_dirty_eviction_counts_writeback():
    vm, __, disk = make_vm(pool_kb=16)
    p = vm.create_process("p", kb(32))
    vm.touch_sequential(p, 0, 4, write=True)
    vm.touch_sequential(p, 4, 4)
    assert vm.total_writebacks == 4
    assert disk.writes == 4


def test_synchronous_writeback_adds_latency():
    vm_async, __, __ = make_vm(pool_kb=16)
    vm_sync, __, __ = make_vm(pool_kb=16, synchronous_writeback=True)
    for vm in (vm_async, vm_sync):
        p = vm.create_process("p", kb(32))
        vm.touch_sequential(p, 0, 4, write=True)
    r_async = vm_async.touch(vm_async.spaces[0], 5)
    r_sync = vm_sync.touch(vm_sync.spaces[0], 5)
    assert r_sync.latency_ms > r_async.latency_ms


def test_touch_sequential_wraps_around_space():
    vm, __, __ = make_vm()
    p = vm.create_process("p", kb(8))  # 2 pages
    vm.touch_sequential(p, 0, 5)
    assert p.resident_pages == 2
    assert p.faults == 2
    assert p.hits == 3


def test_destroy_process_frees_frames():
    vm, pool, __ = make_vm()
    p = vm.create_process("p", kb(16))
    vm.touch_sequential(p, 0, 4)
    used = pool.used_frames
    vm.destroy_process(p)
    assert pool.used_frames == used - 4
    assert p not in vm.spaces


def test_resident_fraction():
    vm, __, __ = make_vm()
    p = vm.create_process("p", kb(16))
    vm.touch_sequential(p, 0, 2)
    assert vm.resident_fraction(p) == 0.5


def test_bad_cluster_rejected():
    pool = FramePool(kb(64))
    disk = PagingDisk(random.Random(0))
    with pytest.raises(MemoryError_):
        VirtualMemory(pool, disk, LRUPolicy(), read_cluster=0)


def test_streaming_hog_evicts_idle_interactive_process():
    """The §5.2 pathology at the VM level."""
    vm, pool, __ = make_vm(pool_kb=128)  # 32 frames
    editor = vm.create_process("editor", kb(32), interactive=True)
    vm.touch_sequential(editor, 0, 8)
    hog = vm.create_process("hog", kb(200))
    vm.touch_sequential(hog, 0, 50)
    assert editor.resident_pages == 0  # fully paged out
    # The next keystroke pays disk latency for every page it needs.
    r = vm.touch(editor, 0)
    assert r.faulted
