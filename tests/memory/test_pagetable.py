"""Unit tests for address spaces and page tables."""

import pytest

from repro.errors import MemoryError_
from repro.memory import AddressSpace
from repro.memory.physical import Frame


def test_empty_space():
    space = AddressSpace("p", 10)
    assert space.resident_pages == 0
    assert space.lookup(0) is None


def test_zero_pages_rejected():
    with pytest.raises(MemoryError_):
        AddressSpace("p", 0)


def test_map_and_lookup():
    space = AddressSpace("p", 10)
    frame = Frame(0)
    space.map(3, frame)
    assert space.lookup(3) is frame
    assert frame.owner is space
    assert frame.vpn == 3
    assert space.resident_pages == 1


def test_map_out_of_range_rejected():
    space = AddressSpace("p", 10)
    with pytest.raises(MemoryError_):
        space.map(10, Frame(0))
    with pytest.raises(MemoryError_):
        space.lookup(-1)


def test_double_map_rejected():
    space = AddressSpace("p", 10)
    space.map(1, Frame(0))
    with pytest.raises(MemoryError_):
        space.map(1, Frame(1))


def test_unmap_returns_frame_and_counts_eviction():
    space = AddressSpace("p", 10)
    frame = Frame(0)
    space.map(2, frame)
    out = space.unmap(2)
    assert out is frame
    assert frame.owner is None and frame.vpn is None
    assert space.evicted_pages == 1
    assert space.lookup(2) is None


def test_unmap_nonresident_rejected():
    space = AddressSpace("p", 10)
    with pytest.raises(MemoryError_):
        space.unmap(0)


def test_resident_vpns_sorted():
    space = AddressSpace("p", 10)
    for vpn in (5, 1, 7):
        space.map(vpn, Frame(vpn))
    assert space.resident_vpns() == [1, 5, 7]


def test_interactive_flag():
    assert AddressSpace("e", 1, interactive=True).interactive
    assert not AddressSpace("h", 1).interactive
