"""Unit tests for the physical frame pool."""

import pytest

from repro.errors import MemoryError_
from repro.memory import DEFAULT_PAGE_SIZE, FramePool
from repro.units import kb, mb


def test_frame_count():
    pool = FramePool(mb(1))
    assert pool.total_frames == 256
    assert pool.free_frames == 256
    assert pool.used_frames == 0


def test_page_size_default():
    assert FramePool(mb(1)).page_size == DEFAULT_PAGE_SIZE == 4096


def test_too_small_pool_rejected():
    with pytest.raises(MemoryError_):
        FramePool(100)
    with pytest.raises(MemoryError_):
        FramePool(mb(1), page_size=0)


def test_allocate_and_release():
    pool = FramePool(kb(8))
    a = pool.allocate()
    b = pool.allocate()
    assert a is not None and b is not None
    assert a.index != b.index
    assert pool.allocate() is None  # exhausted
    pool.release(a)
    assert pool.free_frames == 1
    assert pool.allocate() is a


def test_release_clears_frame_state():
    pool = FramePool(kb(8))
    f = pool.allocate()
    f.dirty = True
    f.owner = object()
    f.vpn = 3
    pool.release(f)
    assert f.owner is None and f.vpn is None and not f.dirty


def test_double_free_rejected():
    pool = FramePool(kb(8))
    f = pool.allocate()
    pool.release(f)
    with pytest.raises(MemoryError_):
        pool.release(f)


def test_pin_reserves_frames():
    pool = FramePool(mb(1))
    pinned = pool.pin(kb(12))  # 3 pages
    assert pinned == 3
    assert pool.free_frames == 253
    assert sum(1 for f in pool.frames if f.pinned) == 3


def test_pin_rounds_up():
    pool = FramePool(mb(1))
    assert pool.pin(1) == 1


def test_pin_beyond_capacity_rejected():
    pool = FramePool(kb(8))
    with pytest.raises(MemoryError_):
        pool.pin(kb(12))


def test_pinned_frame_cannot_be_released():
    pool = FramePool(kb(8))
    pool.pin(kb(4))
    pinned = next(f for f in pool.frames if f.pinned)
    with pytest.raises(MemoryError_):
        pool.release(pinned)
