"""Tests for the Evans et al. throttling/protection extension."""

import random

import pytest

from repro.memory import FramePool, PagingDisk, ThrottledVirtualMemory, make_policy
from repro.units import kb


def make_vm(pool_kb=128, **kwargs):
    pool = FramePool(kb(pool_kb))
    disk = PagingDisk(random.Random(0))
    return ThrottledVirtualMemory(pool, disk, make_policy("lru"), **kwargs), pool


def test_interactive_pages_protected_from_streamer():
    vm, __ = make_vm()
    editor = vm.create_process("editor", kb(32), interactive=True)
    vm.touch_sequential(editor, 0, 8)
    hog = vm.create_process("hog", kb(400))
    vm.touch_sequential(hog, 0, 100)
    # Unlike plain VM, the editor's working set survives the stream.
    assert editor.resident_pages == 8
    assert vm.protected_skips > 0


def test_keystroke_fast_after_stream_with_protection():
    vm, __ = make_vm()
    editor = vm.create_process("editor", kb(32), interactive=True)
    vm.touch_sequential(editor, 0, 8)
    hog = vm.create_process("hog", kb(400))
    vm.touch_sequential(hog, 0, 100)
    latency = vm.touch_sequential(editor, 0, 8)
    assert latency < 1.0  # all hits: no paging on the keystroke path


def test_interactive_requester_not_constrained():
    """Interactive faults may still evict anything (plain policy order)."""
    vm, __ = make_vm(pool_kb=16)  # 4 frames
    a = vm.create_process("a", kb(16), interactive=True)
    vm.touch_sequential(a, 0, 4)
    b = vm.create_process("b", kb(16), interactive=True)
    vm.touch_sequential(b, 0, 4)
    assert a.resident_pages == 0
    assert b.resident_pages == 4


def test_fallback_evicts_interactive_when_nothing_else():
    vm, __ = make_vm(pool_kb=16)
    editor = vm.create_process("editor", kb(16), interactive=True)
    vm.touch_sequential(editor, 0, 4)
    hog = vm.create_process("hog", kb(16))
    r = vm.touch(hog, 0)  # only interactive frames exist: must fall back
    assert r.faulted
    assert editor.resident_pages == 3


def test_throttle_penalty_under_pressure():
    vm, pool = make_vm(pool_kb=64, pressure_threshold=0.5, throttle_ms=20.0)
    hog = vm.create_process("hog", kb(128))
    # First faults: plenty free, no penalty.
    r = vm.touch(hog, 0)
    no_penalty = r.latency_ms
    # Drain free memory below the 50% threshold.
    vm.touch_sequential(hog, 1, 12)
    assert vm.under_pressure
    r = vm.touch(hog, 20)
    assert vm.throttled_faults >= 1
    assert r.latency_ms > 20.0  # includes the throttle penalty


def test_interactive_faults_never_throttled():
    vm, __ = make_vm(pool_kb=64, pressure_threshold=1.0, throttle_ms=500.0)
    editor = vm.create_process("editor", kb(16), interactive=True)
    r = vm.touch(editor, 0)
    assert r.latency_ms < 100.0
    assert vm.throttled_faults == 0
