"""Unit and property tests for page replacement policies."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MemoryError_
from repro.memory import ClockPolicy, FIFOPolicy, LRUPolicy, make_policy
from repro.memory.physical import Frame


def frames(n):
    return [Frame(i) for i in range(n)]


class TestLRU:
    def test_evicts_least_recently_used(self):
        policy = LRUPolicy()
        a, b, c = frames(3)
        for f in (a, b, c):
            policy.insert(f)
        policy.access(a)  # order now b, c, a
        assert policy.select_victim() is b
        assert policy.select_victim() is c
        assert policy.select_victim() is a

    def test_select_removes_from_tracking(self):
        policy = LRUPolicy()
        (a,) = frames(1)
        policy.insert(a)
        policy.select_victim()
        assert len(policy) == 0

    def test_double_insert_rejected(self):
        policy = LRUPolicy()
        (a,) = frames(1)
        policy.insert(a)
        with pytest.raises(MemoryError_):
            policy.insert(a)

    def test_access_untracked_rejected(self):
        policy = LRUPolicy()
        with pytest.raises(MemoryError_):
            policy.access(Frame(0))

    def test_empty_victim_rejected(self):
        with pytest.raises(MemoryError_):
            LRUPolicy().select_victim()

    def test_remove_is_tolerant(self):
        policy = LRUPolicy()
        (a,) = frames(1)
        policy.remove(a)  # not tracked: no error
        policy.insert(a)
        policy.remove(a)
        assert len(policy) == 0


class TestClock:
    def test_second_chance(self):
        policy = ClockPolicy()
        a, b = frames(2)
        policy.insert(a)
        policy.insert(b)
        # Both referenced on insert: first sweep clears a and b, evicts a.
        assert policy.select_victim() is a

    def test_accessed_frame_survives_one_sweep(self):
        policy = ClockPolicy()
        a, b, c = frames(3)
        for f in (a, b, c):
            policy.insert(f)
        # Clear all reference bits via one full eviction cycle.
        assert policy.select_victim() is a
        policy.access(b)  # re-reference b
        assert policy.select_victim() is c

    def test_remove(self):
        policy = ClockPolicy()
        a, b = frames(2)
        policy.insert(a)
        policy.insert(b)
        policy.remove(a)
        assert policy.select_victim() is b

    def test_empty_victim_rejected(self):
        with pytest.raises(MemoryError_):
            ClockPolicy().select_victim()

    def test_double_insert_rejected(self):
        policy = ClockPolicy()
        (a,) = frames(1)
        policy.insert(a)
        with pytest.raises(MemoryError_):
            policy.insert(a)


class TestFIFO:
    def test_evicts_in_arrival_order_despite_access(self):
        policy = FIFOPolicy()
        a, b = frames(2)
        policy.insert(a)
        policy.insert(b)
        policy.access(a)
        assert policy.select_victim() is a

    def test_empty_victim_rejected(self):
        with pytest.raises(MemoryError_):
            FIFOPolicy().select_victim()


def test_make_policy():
    assert isinstance(make_policy("lru"), LRUPolicy)
    assert isinstance(make_policy("clock"), ClockPolicy)
    assert isinstance(make_policy("fifo"), FIFOPolicy)
    with pytest.raises(MemoryError_):
        make_policy("arc")


# --- property tests: LRU against a reference model -------------------------

ops = st.lists(
    st.tuples(st.sampled_from(["insert", "access", "victim", "remove"]),
              st.integers(min_value=0, max_value=7)),
    max_size=60,
)


@given(ops)
def test_lru_matches_reference_model(operations):
    """Exact LRU must evict precisely in reference-recency order."""
    policy = LRUPolicy()
    model = []  # list of frame indices, least recent first
    pool = {i: Frame(i) for i in range(8)}
    for op, i in operations:
        frame = pool[i]
        if op == "insert":
            if i in model:
                continue
            policy.insert(frame)
            model.append(i)
        elif op == "access":
            if i not in model:
                continue
            policy.access(frame)
            model.remove(i)
            model.append(i)
        elif op == "remove":
            policy.remove(frame)
            if i in model:
                model.remove(i)
        else:  # victim
            if not model:
                continue
            victim = policy.select_victim()
            assert victim.index == model.pop(0)
    assert len(policy) == len(model)


@given(ops)
def test_clock_tracks_membership(operations):
    """Clock never evicts an untracked frame and keeps counts consistent."""
    policy = ClockPolicy()
    members = set()
    pool = {i: Frame(i) for i in range(8)}
    for op, i in operations:
        frame = pool[i]
        if op == "insert":
            if i in members:
                continue
            policy.insert(frame)
            members.add(i)
        elif op == "access":
            if i not in members:
                continue
            policy.access(frame)
        elif op == "remove":
            policy.remove(frame)
            members.discard(i)
        else:
            if not members:
                continue
            victim = policy.select_victim()
            assert victim.index in members
            members.remove(victim.index)
    assert len(policy) == len(members)
