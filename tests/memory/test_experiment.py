"""Tests for the §5.2 memory-latency experiment."""

import pytest

from repro.errors import MemoryError_
from repro.memory import (
    BASELINE_RESPONSE_MS,
    memory_profile,
    run_memory_latency_experiment,
)


def test_profiles_exist_for_both_systems():
    assert memory_profile("linux").respond_pages_mean < memory_profile(
        "nt_tse"
    ).respond_pages_mean
    with pytest.raises(MemoryError_):
        memory_profile("beos")


def test_low_demand_keeps_baseline_latency():
    """Paper '< 100%' column: every response at the 50 ms baseline."""
    for os_name in ("linux", "nt_tse"):
        result = run_memory_latency_experiment(os_name, 0.5, runs=5, seed=1)
        assert all(l == BASELINE_RESPONSE_MS for l in result.latencies_ms)


def test_high_demand_linux_around_paper_values():
    """Paper: Linux >=100% — min 330, avg 1170, max 3000 ms."""
    result = run_memory_latency_experiment("linux", 1.2, runs=10, seed=0)
    s = result.summary
    assert 100.0 < s.minimum < 1200.0
    assert 600.0 < s.average < 2500.0
    assert s.maximum > s.average * 1.3


def test_high_demand_tse_worse_than_linux():
    """Paper: TSE avg 4,026 ms ~= 3.4x Linux's 1,170 ms."""
    linux = run_memory_latency_experiment("linux", 1.2, runs=10, seed=0)
    tse = run_memory_latency_experiment("nt_tse", 1.2, runs=10, seed=0)
    ratio = tse.summary.average / linux.summary.average
    assert 2.0 < ratio < 6.0
    # Both are 1-2 orders beyond the 100 ms perception threshold.
    assert linux.summary.average > 500.0
    assert tse.summary.average > 2000.0


def test_deterministic_per_seed():
    a = run_memory_latency_experiment("linux", 1.2, runs=3, seed=5)
    b = run_memory_latency_experiment("linux", 1.2, runs=3, seed=5)
    assert a.latencies_ms == b.latencies_ms
    c = run_memory_latency_experiment("linux", 1.2, runs=3, seed=6)
    assert a.latencies_ms != c.latencies_ms


def test_throttling_eliminates_the_pathology():
    """Evans et al.: throttling keeps the keystroke at baseline latency."""
    plain = run_memory_latency_experiment("linux", 1.2, runs=5, seed=2)
    throttled = run_memory_latency_experiment(
        "linux", 1.2, runs=5, seed=2, throttled=True
    )
    assert plain.summary.average > 500.0
    assert all(l == BASELINE_RESPONSE_MS for l in throttled.latencies_ms)


def test_negative_demand_rejected():
    with pytest.raises(MemoryError_):
        run_memory_latency_experiment("linux", -0.1)


def test_result_summary_fields():
    result = run_memory_latency_experiment("linux", 1.2, runs=4, seed=3)
    s = result.summary
    assert s.count == 4
    assert s.minimum <= s.average <= s.maximum
