"""Property-based tests: the VM against a reference LRU paging model.

A dict-based reference model replays the same touch sequence and the two
must agree exactly on: which pages are resident, per-space fault counts,
and the eviction total.  Also checks global conservation invariants under
arbitrary interleavings of touches across processes.
"""

import random
from collections import OrderedDict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import FramePool, PagingDisk, VirtualMemory, make_policy
from repro.units import kb

POOL_FRAMES = 6
SPACE_PAGES = 10


class ReferenceLRU:
    """Trivially correct global-LRU demand paging."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.resident = OrderedDict()  # (space, vpn) -> None
        self.faults = 0
        self.evictions = 0

    def touch(self, space, vpn):
        key = (space, vpn)
        if key in self.resident:
            self.resident.move_to_end(key)
            return False
        self.faults += 1
        if len(self.resident) >= self.capacity:
            self.resident.popitem(last=False)
            self.evictions += 1
        self.resident[key] = None
        return True


touch_sequences = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),  # which process
        st.integers(min_value=0, max_value=SPACE_PAGES - 1),  # vpn
    ),
    max_size=120,
)


@settings(max_examples=60, deadline=None)
@given(touch_sequences)
def test_vm_matches_reference_lru(touches):
    pool = FramePool(POOL_FRAMES * 4096)
    vm = VirtualMemory(pool, PagingDisk(random.Random(0)), make_policy("lru"))
    spaces = [
        vm.create_process(f"p{i}", SPACE_PAGES * 4096) for i in range(3)
    ]
    reference = ReferenceLRU(POOL_FRAMES)

    for which, vpn in touches:
        result = vm.touch(spaces[which], vpn)
        expected_fault = reference.touch(which, vpn)
        assert result.faulted == expected_fault

    # Final residency agrees exactly.
    for i, space in enumerate(spaces):
        expected = sorted(v for s, v in reference.resident if s == i)
        assert space.resident_vpns() == expected
    assert vm.total_faults == reference.faults
    assert vm.total_evictions == reference.evictions


@settings(max_examples=60, deadline=None)
@given(touch_sequences)
def test_vm_conservation_invariants(touches):
    pool = FramePool(POOL_FRAMES * 4096)
    vm = VirtualMemory(pool, PagingDisk(random.Random(0)), make_policy("lru"))
    spaces = [
        vm.create_process(f"p{i}", SPACE_PAGES * 4096) for i in range(3)
    ]
    for which, vpn in touches:
        vm.touch(spaces[which], vpn)
        # Frames are conserved.
        resident = sum(s.resident_pages for s in spaces)
        assert resident == pool.used_frames
        assert resident <= POOL_FRAMES
        # Accounting identities.
        assert vm.total_hits + vm.total_faults == sum(
            s.hits + s.faults for s in spaces
        )
        assert vm.total_faults - vm.total_evictions == pool.used_frames


@settings(max_examples=40, deadline=None)
@given(touch_sequences, st.sampled_from(["lru", "clock", "fifo"]))
def test_all_policies_bound_residency(touches, policy):
    pool = FramePool(POOL_FRAMES * 4096)
    vm = VirtualMemory(pool, PagingDisk(random.Random(0)), make_policy(policy))
    spaces = [
        vm.create_process(f"p{i}", SPACE_PAGES * 4096) for i in range(3)
    ]
    for which, vpn in touches:
        vm.touch(spaces[which], vpn)
        assert pool.used_frames <= POOL_FRAMES
    # Every touched page is either resident or was evicted.
    for space in spaces:
        assert space.resident_pages <= POOL_FRAMES


@settings(max_examples=40, deadline=None)
@given(touch_sequences)
def test_hit_latency_always_below_fault_latency(touches):
    pool = FramePool(POOL_FRAMES * 4096)
    vm = VirtualMemory(pool, PagingDisk(random.Random(0)), make_policy("lru"))
    space = vm.create_process("p", SPACE_PAGES * 4096)
    for __, vpn in touches:
        result = vm.touch(space, vpn)
        if result.faulted:
            assert result.latency_ms > 1.0  # disk service dominates
        else:
            assert result.latency_ms < 0.01  # memory hierarchy hit
