"""Tests for the SVR4 TS/IA scheduler (the Evans et al. baseline)."""

import pytest

from repro.cpu import CPU, Burst, DispatchTable, SVR4Scheduler, Thread, sink_thread
from repro.errors import SchedulerError
from repro.sim import Simulator


def make(table=None):
    sim = Simulator()
    cpu = CPU(sim, SVR4Scheduler(table))
    return sim, cpu


class TestDispatchTable:
    def test_quantum_shrinks_with_priority(self):
        table = DispatchTable()
        assert table.quantum(0) > table.quantum(30) > table.quantum(59)

    def test_tqexp_drops_priority(self):
        table = DispatchTable()
        assert table.tqexp(30) == 20
        assert table.tqexp(5) == 0  # clamped at the bottom

    def test_slpret_raises_priority(self):
        table = DispatchTable()
        assert table.slpret(20) == 45
        assert table.slpret(50) == 59  # clamped at the top


class TestClasses:
    def test_gui_threads_default_to_ia(self):
        sim, cpu = make()
        t = Thread("xterm", gui=True)
        cpu.add_thread(t)
        assert t.sched_class == "ia"

    def test_plain_threads_default_to_ts(self):
        sim, cpu = make()
        t = Thread("cc1")
        cpu.add_thread(t)
        assert t.sched_class == "ts"

    def test_unknown_class_rejected(self):
        sim, cpu = make()
        with pytest.raises(SchedulerError):
            cpu.add_thread(Thread("t", sched_class="rt"))

    def test_ia_boost_applied(self):
        sim, cpu = make()
        ia = Thread("ia", gui=True, base_priority=29)
        ts = Thread("ts", base_priority=29)
        cpu.add_thread(ia)
        cpu.add_thread(ts)
        assert ia.priority == 39  # 29 + ia_boost 10
        assert ts.priority == 29

    def test_sys_class_above_ts(self):
        sim, cpu = make()
        sys_t = Thread("pageout", sched_class="sys", base_priority=5)
        cpu.add_thread(sys_t)
        assert sys_t.priority == 65


class TestInteractiveProtection:
    """Evans et al.: keystroke latency stays small under CPU load."""

    def test_hog_priority_decays(self):
        sim, cpu = make()
        hog = sink_thread("hog")
        cpu.add_thread(hog)
        sim.run_until(5_000.0)
        assert hog.priority == 0  # quantum expiries drove it to the floor

    def test_interactive_thread_preempts_decayed_hogs(self):
        sim, cpu = make()
        for i in range(10):
            cpu.add_thread(sink_thread(f"hog{i}"))
        vim = Thread("vim", gui=True)
        cpu.add_thread(vim)
        sim.run_until(5_000.0)  # let hog priorities decay
        done = []
        cpu.submit(vim, Burst(2.0, on_complete=done.append))
        sim.run_until(5_010.0)
        # Sleep return + IA boost puts vim far above the floor-priority
        # hogs: it preempts immediately, latency ~= its own burst.
        assert done == [pytest.approx(5_002.0)]

    def test_latency_flat_as_load_grows(self):
        """The shape of Evans et al.'s result: stall independent of load."""
        stalls = {}
        for nhogs in (1, 10, 20):
            sim, cpu = make()
            for i in range(nhogs):
                cpu.add_thread(sink_thread(f"hog{i}"))
            vim = Thread("vim", gui=True)
            cpu.add_thread(vim)
            sim.run_until(3_000.0)
            done = []
            cpu.submit(vim, Burst(2.0, on_complete=done.append))
            sim.run_until(4_000.0)
            stalls[nhogs] = done[0] - 3_000.0
        assert stalls[20] == pytest.approx(stalls[1], abs=1.0)
