"""Tests for the SMP composition."""

import pytest

from repro.cpu import Burst, LinuxScheduler, SMPSystem, Thread, sink_thread
from repro.errors import SchedulerError
from repro.sim import Simulator


def make(cpu_count=2, **kwargs):
    sim = Simulator()
    smp = SMPSystem(sim, LinuxScheduler, cpu_count, **kwargs)
    return sim, smp


def test_needs_at_least_one_cpu():
    sim = Simulator()
    with pytest.raises(SchedulerError):
        SMPSystem(sim, LinuxScheduler, 0)


def test_threads_spread_across_cpus():
    sim, smp = make(cpu_count=2)
    a, b = sink_thread("a"), sink_thread("b")
    smp.add_thread(a)
    smp.add_thread(b)
    assert smp.cpu_of(a) is not smp.cpu_of(b)
    sim.run_until(100.0)
    # Perfect parallelism: both hogs get a full CPU.
    assert a.cpu_time == pytest.approx(100.0)
    assert b.cpu_time == pytest.approx(100.0)
    assert smp.utilization(0.0, 100.0) == pytest.approx(1.0)


def test_two_cpus_double_throughput():
    lone_sim, lone = make(cpu_count=1)
    dual_sim, dual = make(cpu_count=2)
    for sim, system in ((lone_sim, lone), (dual_sim, dual)):
        done = []
        for i in range(4):
            t = Thread(f"t{i}")
            t.push_burst(Burst(100.0, on_complete=done.append))
            system.add_thread(t)
        sim.run_until(1_000.0)
        system.last_done = max(done)  # type: ignore[attr-defined]
    assert dual.last_done == pytest.approx(lone.last_done / 2)


def test_explicit_placement():
    sim, smp = make(cpu_count=2)
    t = Thread("pinned")
    smp.add_thread(t, cpu_index=1)
    assert smp.cpu_of(t) is smp.cpus[1]
    with pytest.raises(SchedulerError):
        smp.add_thread(Thread("x"), cpu_index=9)


def test_double_placement_rejected():
    sim, smp = make()
    t = sink_thread("t")
    smp.add_thread(t)
    with pytest.raises(SchedulerError):
        smp.add_thread(t)


def test_submit_routes_by_affinity():
    sim, smp = make(cpu_count=2)
    hog = sink_thread("hog")
    smp.add_thread(hog, cpu_index=0)
    quiet = Thread("quiet")
    smp.add_thread(quiet, cpu_index=1)
    done = []
    sim.run_until(10.0)
    smp.submit(quiet, Burst(5.0, on_complete=done.append))
    sim.run_until(16.0)
    # quiet's CPU is idle: the burst runs immediately despite the hog.
    assert done == [pytest.approx(15.0)]


def test_kill_frees_placement():
    sim, smp = make()
    t = sink_thread("t")
    smp.add_thread(t)
    sim.run_until(5.0)
    smp.kill(t)
    with pytest.raises(SchedulerError):
        smp.cpu_of(t)


def test_load_and_queue_aggregate():
    sim, smp = make(cpu_count=2)
    for i in range(6):
        smp.add_thread(sink_thread(f"s{i}"))
    sim.run_until(1.0)
    assert smp.load == 6
    assert smp.run_queue_length == 4  # two running, four queued
    assert smp.cpu_count == 2


def test_unplaced_thread_lookup_rejected():
    sim, smp = make()
    with pytest.raises(SchedulerError):
        smp.cpu_of(Thread("ghost"))


def test_interactive_latency_improves_with_more_cpus():
    """The sizing story: the same sink load hurts less on more processors."""
    latencies = {}
    for cpus in (1, 2, 4):
        sim, smp = make(cpu_count=cpus)
        for i in range(4):
            smp.add_thread(sink_thread(f"s{i}"))
        echo = Thread("echo")
        smp.add_thread(echo)
        sim.run_until(100.0)
        done = []
        smp.submit(echo, Burst(2.0, on_complete=done.append))
        sim.run_until(500.0)
        latencies[cpus] = done[0] - 100.0
    assert latencies[4] <= latencies[2] <= latencies[1]
    # On 4 CPUs the echo shares with at most one sink: one quantum's wait.
    assert latencies[4] < 15.0


def test_blocked_threads_still_spread_across_cpus():
    """The placement tie-break: a fleet of *blocked* threads (all load 0 at
    placement time) must round-robin across processors, not pile onto cpu0."""
    sim, smp = make(cpu_count=4)
    threads = [Thread(f"idle{i}") for i in range(8)]
    for t in threads:
        smp.add_thread(t)  # no bursts: every CPU reports load 0 throughout
    homes = [smp.cpu_of(t).name for t in threads]
    per_cpu = {name: homes.count(name) for name in set(homes)}
    assert sorted(per_cpu.values()) == [2, 2, 2, 2]
