"""Unit tests for the CPU dispatch engine (using the Linux scheduler as a
simple round-robin policy and NT where priorities matter)."""

import math

import pytest

from repro.cpu import (
    CPU,
    Burst,
    LinuxScheduler,
    NTConfig,
    NTScheduler,
    Thread,
    ThreadState,
    sink_thread,
)
from repro.errors import SchedulerError
from repro.sim import Simulator


def make_cpu(scheduler=None, **kwargs):
    sim = Simulator()
    cpu = CPU(sim, scheduler or LinuxScheduler(), **kwargs)
    return sim, cpu


def test_single_burst_runs_to_completion():
    sim, cpu = make_cpu()
    done = []
    t = Thread("t")
    t.push_burst(Burst(25.0, on_complete=done.append))
    cpu.add_thread(t)
    sim.run_until(100.0)
    assert done == [25.0]
    assert t.state is ThreadState.BLOCKED
    assert t.cpu_time == pytest.approx(25.0)


def test_round_robin_interleaves_equal_threads():
    sim, cpu = make_cpu()
    done = []
    a = Thread("a")
    a.push_burst(Burst(20.0, on_complete=lambda t: done.append(("a", t))))
    b = Thread("b")
    b.push_burst(Burst(20.0, on_complete=lambda t: done.append(("b", t))))
    cpu.add_thread(a)
    cpu.add_thread(b)
    sim.run_until(100.0)
    # 10ms quanta: a(10) b(10) a(10) b(10) -> a done at 30, b at 40.
    assert done == [("a", 30.0), ("b", 40.0)]


def test_idle_cpu_runs_submitted_burst_immediately():
    sim, cpu = make_cpu()
    t = Thread("t")
    cpu.add_thread(t)
    assert t.state is ThreadState.BLOCKED
    sim.run_until(50.0)
    done = []
    cpu.submit(t, Burst(5.0, on_complete=done.append))
    sim.run_until(100.0)
    assert done == [55.0]


def test_sink_never_completes_and_monopolizes():
    sim, cpu = make_cpu()
    s = sink_thread()
    cpu.add_thread(s)
    sim.run_until(500.0)
    assert s.cpu_time == pytest.approx(500.0)
    assert cpu.utilization(0.0, 500.0) == pytest.approx(1.0)


def test_utilization_idle_is_zero():
    sim, cpu = make_cpu()
    sim.run_until(100.0)
    assert cpu.utilization(0.0, 100.0) == 0.0


def test_utilization_window_validation():
    sim, cpu = make_cpu()
    with pytest.raises(SchedulerError):
        cpu.utilization(10.0, 10.0)


def test_speed_scales_demand():
    sim, cpu = make_cpu(speed=2.0)
    done = []
    t = Thread("t")
    t.push_burst(Burst(20.0, on_complete=done.append))
    cpu.add_thread(t)
    sim.run_until(100.0)
    assert done == [10.0]  # 20ms of demand retires in 10ms wall time


def test_priority_preemption_with_nt():
    sim, cpu = make_cpu(NTScheduler(NTConfig.workstation()))
    low = sink_thread("low", base_priority=4)
    cpu.add_thread(low)
    hi = Thread("hi", base_priority=12)
    cpu.add_thread(hi)
    done = []
    sim.run_until(100.0)
    cpu.submit(hi, Burst(5.0, on_complete=done.append))
    sim.run_until(200.0)
    # hi preempts low immediately at t=100 and finishes at 105.
    assert done == [105.0]


def test_preempted_thread_resumes_and_finishes():
    sim, cpu = make_cpu(NTScheduler(NTConfig.workstation()))
    work = Thread("work", base_priority=4)
    done = []
    work.push_burst(Burst(50.0, on_complete=done.append))
    cpu.add_thread(work)
    hi = Thread("hi", base_priority=12)
    cpu.add_thread(hi)
    sim.run_until(20.0)
    cpu.submit(hi, Burst(10.0))
    sim.run_until(200.0)
    # work ran 20ms, was preempted for 10ms, then ran its final 30ms.
    assert done == [60.0]
    assert work.cpu_time == pytest.approx(50.0)


def test_queued_bursts_run_back_to_back():
    sim, cpu = make_cpu()
    done = []
    t = Thread("t")
    t.push_burst(Burst(3.0, on_complete=lambda w: done.append(("1", w))))
    t.push_burst(Burst(4.0, on_complete=lambda w: done.append(("2", w))))
    cpu.add_thread(t)
    sim.run_until(100.0)
    assert done == [("1", 3.0), ("2", 7.0)]


def test_completion_callback_can_submit_more_work():
    sim, cpu = make_cpu()
    t = Thread("t")
    done = []

    def chain(when):
        done.append(when)
        if len(done) < 3:
            cpu.submit(t, Burst(5.0, on_complete=chain))

    t.push_burst(Burst(5.0, on_complete=chain))
    cpu.add_thread(t)
    sim.run_until(100.0)
    assert done == [5.0, 10.0, 15.0]


def test_kill_running_thread_frees_cpu():
    sim, cpu = make_cpu()
    s = sink_thread()
    cpu.add_thread(s)
    t = Thread("t")
    done = []
    t.push_burst(Burst(5.0, on_complete=done.append))
    cpu.add_thread(t)
    sim.run_until(7.0)
    cpu.kill(s)
    sim.run_until(100.0)
    assert s.state is ThreadState.TERMINATED
    assert done  # t eventually ran
    assert s.cpu_time == pytest.approx(7.0)


def test_kill_ready_thread_removed_from_queue():
    sim, cpu = make_cpu()
    a = sink_thread("a")
    b = sink_thread("b")
    cpu.add_thread(a)
    cpu.add_thread(b)
    sim.run_until(5.0)
    cpu.kill(b)
    sim.run_until(110.0)  # quantum boundary, so the last slice is charged
    assert b.cpu_time == 0.0  # b never ran: killed while waiting in queue
    assert a.cpu_time == pytest.approx(110.0)
    assert b.state is ThreadState.TERMINATED


def test_kill_is_idempotent():
    sim, cpu = make_cpu()
    t = Thread("t")
    cpu.add_thread(t)
    cpu.kill(t)
    cpu.kill(t)
    assert t.state is ThreadState.TERMINATED


def test_run_queue_length_counts_waiting_threads():
    sim, cpu = make_cpu()
    for i in range(5):
        cpu.add_thread(sink_thread(f"s{i}"))
    sim.run_until(1.0)
    assert cpu.load == 5
    assert cpu.run_queue_length == 4  # one is on the CPU


def test_add_thread_twice_raises():
    sim, cpu = make_cpu()
    t = Thread("t")
    cpu.add_thread(t)
    with pytest.raises(SchedulerError):
        cpu.add_thread(t)


def test_negative_speed_raises():
    sim = Simulator()
    with pytest.raises(SchedulerError):
        CPU(sim, LinuxScheduler(), speed=0.0)


def test_busy_trace_accounts_all_cpu_time():
    sim, cpu = make_cpu()
    a = Thread("a")
    a.push_burst(Burst(30.0))
    b = Thread("b")
    b.push_burst(Burst(20.0))
    cpu.add_thread(a)
    cpu.add_thread(b)
    sim.run_until(200.0)
    assert cpu.busy_trace.total_busy() == pytest.approx(50.0)


def test_work_conservation_under_load():
    """The CPU never idles while any thread is runnable."""
    sim, cpu = make_cpu()
    for i in range(3):
        t = Thread(f"t{i}")
        t.push_burst(Burst(40.0))
        cpu.add_thread(t)
    sim.run_until(120.0)
    assert cpu.utilization(0.0, 120.0) == pytest.approx(1.0)
    total = sum(t.cpu_time for t in cpu.threads)
    assert total == pytest.approx(120.0)


class TestContextSwitchCost:
    def test_switch_cost_slows_progress(self):
        sim, cpu = make_cpu()
        cpu_cs_sim = Simulator()
        cpu_cs = CPU(cpu_cs_sim, LinuxScheduler(), context_switch_ms=1.0)
        for s, c in ((sim, cpu), (cpu_cs_sim, cpu_cs)):
            a = Thread("a")
            a.push_burst(Burst(50.0))
            b = Thread("b")
            b.push_burst(Burst(50.0))
            c.add_thread(a)
            c.add_thread(b)
            s.run_until(300.0)
        done_free = max(t.last_ran_at for t in cpu.threads)
        done_cs = max(t.last_ran_at for t in cpu_cs.threads)
        assert done_cs > done_free

    def test_switches_counted(self):
        sim = Simulator()
        cpu = CPU(sim, LinuxScheduler(), context_switch_ms=0.5)
        cpu.add_thread(sink_thread("a"))
        cpu.add_thread(sink_thread("b"))
        sim.run_until(100.0)
        assert cpu.context_switches >= 8  # alternating every 10ms quantum

    def test_no_switch_cost_for_continuing_thread(self):
        sim = Simulator()
        cpu = CPU(sim, LinuxScheduler(), context_switch_ms=2.0)
        t = Thread("t")
        done = []
        t.push_burst(Burst(4.0, on_complete=done.append))
        t.push_burst(Burst(4.0, on_complete=done.append))
        cpu.add_thread(t)
        sim.run_until(100.0)
        # One switch charge at first dispatch; none between queued bursts.
        assert done == [pytest.approx(6.0), pytest.approx(10.0)]

    def test_negative_cost_rejected(self):
        sim = Simulator()
        with pytest.raises(SchedulerError):
            CPU(sim, LinuxScheduler(), context_switch_ms=-1.0)
