"""Edge-case tests for SVR4 TS/IA dynamics."""

import pytest

from repro.cpu import CPU, Burst, DispatchTable, SVR4Scheduler, Thread, sink_thread
from repro.sim import Simulator


def make(table=None):
    sim = Simulator()
    cpu = CPU(sim, SVR4Scheduler(table))
    return sim, cpu


def test_quantum_grows_as_priority_decays():
    """A decayed hog gets longer slices — SVR4 trades latency for
    throughput at the bottom of the TS range."""
    sim, cpu = make()
    hog = sink_thread("hog")
    cpu.add_thread(hog)
    other = sink_thread("other")
    cpu.add_thread(other)
    table = cpu.scheduler.table
    # Both decay to the floor; their slices approach the longest quantum.
    sim.run_until(10_000.0)
    assert hog.priority == 0
    assert cpu.scheduler.table.quantum(0) > table.quantum(59)


def test_sleep_return_climbs_the_ladder():
    sim, cpu = make()
    sleeper = Thread("sleeper")  # plain TS, base 29
    cpu.add_thread(sleeper)
    cpu.add_thread(sink_thread("hog"))
    # One short burst, then sleep: slpret rewards it.
    cpu.submit(sleeper, Burst(1.0))
    sim.run_until(500.0)
    cpu.submit(sleeper, Burst(1.0))
    sim.run_until(1_000.0)
    assert sleeper.sched_data["user_priority"] > 29


def test_ia_class_beats_equal_ts_sleeper():
    """The IA boost is precisely what separates Evans et al.'s scheduler
    from vanilla TS for identically behaving threads."""
    sim, cpu = make()
    ia = Thread("ia", gui=True)
    ts = Thread("ts")
    cpu.add_thread(ia)
    cpu.add_thread(ts)
    cpu.add_thread(sink_thread("hog"))
    sim.run_until(1_000.0)
    done = []
    cpu.submit(ts, Burst(5.0, on_complete=lambda w: done.append(("ts", w))))
    cpu.submit(ia, Burst(5.0, on_complete=lambda w: done.append(("ia", w))))
    sim.run_until(2_000.0)
    order = [name for name, __ in done]
    assert order == ["ia", "ts"]


def test_sys_class_never_decays():
    sim, cpu = make()
    daemon = Thread("pageout", sched_class="sys", base_priority=10)
    cpu.add_thread(daemon)
    cpu.add_thread(sink_thread("hog"))
    for __ in range(5):
        cpu.submit(daemon, Burst(50.0))
    sim.run_until(2_000.0)
    assert daemon.priority == 70  # SYS_BASE + 10, untouched by expiries


def test_custom_dispatch_table():
    table = DispatchTable(tqexp_drop=1, slpret_gain=1, ia_boost=0)
    sim, cpu = make(table)
    hog = sink_thread("hog")
    cpu.add_thread(hog)
    sim.run_until(2_000.0)
    # Gentle decay: after ~2s the hog has lost only a few levels.
    assert hog.priority > 0
