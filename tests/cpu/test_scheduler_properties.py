"""Property-based tests: scheduler invariants under random workloads.

Whatever the policy, a work-conserving single CPU must satisfy:

* every finite burst submitted eventually completes (given enough idle
  capacity at the end of the run);
* total charged CPU time equals the merged busy-trace time and never
  exceeds wall time;
* the CPU is never idle while a thread is runnable;
* dynamic priorities stay within the scheduler's legal range.

Random workloads are generated as (arrival time, demand) pairs across a
handful of threads and run against all three schedulers.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import (
    CPU,
    Burst,
    LinuxScheduler,
    NTConfig,
    NTScheduler,
    SVR4Scheduler,
    Thread,
    ThreadState,
)
from repro.cpu.nt import NT_LEVELS
from repro.cpu.svr4 import GLOBAL_LEVELS
from repro.sim import Simulator

SCHEDULERS = {
    "nt": lambda: NTScheduler(NTConfig.workstation()),
    "tse": lambda: NTScheduler(NTConfig.tse()),
    "linux": LinuxScheduler,
    "svr4": SVR4Scheduler,
}

# A workload: per-thread lists of (arrival_ms, demand_ms).
workloads = st.lists(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=500.0),
            st.floats(min_value=0.1, max_value=80.0),
        ),
        min_size=0,
        max_size=6,
    ),
    min_size=1,
    max_size=5,
)

thread_flags = st.tuples(st.booleans(), st.booleans())  # (gui, foreground)


def run_workload(make_scheduler, per_thread, flags):
    sim = Simulator()
    cpu = CPU(sim, make_scheduler())
    threads = []
    completed = []
    expected = 0
    for i, bursts in enumerate(per_thread):
        gui, foreground = flags[i % len(flags)] if flags else (False, False)
        thread = Thread(f"t{i}", gui=gui, foreground=foreground)
        cpu.add_thread(thread)
        threads.append(thread)
        for arrival, demand in bursts:
            expected += 1
            sim.schedule_at(
                arrival,
                lambda t=thread, d=demand: cpu.submit(
                    t, Burst(d, on_complete=completed.append)
                ),
            )
    # Enough tail time for everything to drain: total demand + arrivals.
    total_demand = sum(d for bursts in per_thread for __, d in bursts)
    sim.run_until(500.0 + total_demand + 1_000.0)
    return sim, cpu, threads, completed, expected


@settings(max_examples=25, deadline=None)
@given(workloads, st.lists(thread_flags, min_size=1, max_size=5))
@pytest.mark.parametrize("name", sorted(SCHEDULERS))
def test_all_bursts_complete_and_time_is_conserved(name, per_thread, flags):
    sim, cpu, threads, completed, expected = run_workload(
        SCHEDULERS[name], per_thread, flags
    )
    # (1) nothing is lost: every submitted burst completed.
    assert len(completed) == expected
    # (2) all threads end blocked (no stuck READY/RUNNING state).
    for thread in threads:
        assert thread.state in (ThreadState.BLOCKED, ThreadState.NEW) or (
            not thread.has_work
        )
    # (3) charged time == busy-trace time <= wall time.
    charged = sum(t.cpu_time for t in cpu.threads)
    assert charged == pytest.approx(cpu.busy_trace.total_busy(), abs=1e-6)
    assert charged <= sim.now + 1e-6
    total_demand = sum(d for bursts in per_thread for __, d in bursts)
    assert charged == pytest.approx(total_demand, abs=1e-6)


@settings(max_examples=25, deadline=None)
@given(workloads)
@pytest.mark.parametrize("name", sorted(SCHEDULERS))
def test_work_conservation(name, per_thread):
    """The CPU is busy whenever work is pending: completion time of the
    last burst is never later than last-arrival + total demand."""
    sim, cpu, threads, completed, expected = run_workload(
        SCHEDULERS[name], per_thread, [(False, False)]
    )
    if not expected:
        return
    total_demand = sum(d for bursts in per_thread for __, d in bursts)
    last_arrival = max(a for bursts in per_thread for a, __ in bursts)
    assert max(completed) <= last_arrival + total_demand + 1e-6


@settings(max_examples=25, deadline=None)
@given(workloads, st.lists(thread_flags, min_size=1, max_size=5))
def test_nt_priorities_stay_in_range(per_thread, flags):
    sim = Simulator()
    scheduler = NTScheduler(NTConfig.workstation())
    cpu = CPU(sim, scheduler)
    threads = []
    for i, bursts in enumerate(per_thread):
        gui, fg = flags[i % len(flags)]
        thread = Thread(f"t{i}", gui=gui, foreground=fg)
        cpu.add_thread(thread)
        threads.append(thread)
        for arrival, demand in bursts:
            sim.schedule_at(
                arrival,
                lambda t=thread, d=demand: cpu.submit(t, Burst(d)),
            )

    def check():
        for thread in threads:
            assert 0 <= thread.priority < NT_LEVELS
            # Boosts only ever raise above base; decay stops at base.
            assert thread.priority >= thread.base_priority

    sim.every(25.0, check)
    sim.run_until(2_000.0)


@settings(max_examples=25, deadline=None)
@given(workloads)
def test_svr4_priorities_stay_in_range(per_thread):
    sim = Simulator()
    cpu = CPU(sim, SVR4Scheduler())
    threads = []
    for i, bursts in enumerate(per_thread):
        thread = Thread(f"t{i}", gui=(i % 2 == 0))
        cpu.add_thread(thread)
        threads.append(thread)
        for arrival, demand in bursts:
            sim.schedule_at(
                arrival,
                lambda t=thread, d=demand: cpu.submit(t, Burst(d)),
            )

    def check():
        for thread in threads:
            assert 0 <= thread.priority < GLOBAL_LEVELS

    sim.every(25.0, check)
    sim.run_until(2_000.0)
