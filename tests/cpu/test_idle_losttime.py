"""Tests for idle-activity profiles and lost-time measurement (Figs. 1–2)."""

import pytest

from repro.cpu import (
    CPU,
    LostTimeMonitor,
    OS_NAMES,
    idle_profile,
    make_scheduler,
    run_idle_experiment,
)
from repro.errors import SchedulerError
from repro.sim import RngRegistry, Simulator


class TestProfiles:
    def test_all_oses_have_profiles(self):
        for os_name in OS_NAMES:
            profile = idle_profile(os_name)
            assert profile.os_name == os_name
            assert profile.activities

    def test_unknown_os_rejected(self):
        with pytest.raises(SchedulerError):
            idle_profile("beos")
        with pytest.raises(SchedulerError):
            make_scheduler("beos")

    def test_all_profiles_include_10ms_clock_tick(self):
        for os_name in OS_NAMES:
            ticks = [
                a
                for a in idle_profile(os_name).activities
                if a.name == "clock-interrupt"
            ]
            assert len(ticks) == 1
            assert ticks[0].interval_ms == 10.0

    def test_tse_includes_multiuser_services(self):
        names = {a.name for a in idle_profile("nt_tse").activities}
        assert "session-manager" in names
        assert "terminal-service" in names

    def test_expected_busy_ordering(self):
        """Calibration: expected TSE load ~3x NT and ~7x Linux (§4.2.1)."""
        window = 600_000.0
        nt = idle_profile("nt_workstation").expected_busy(window)
        tse = idle_profile("nt_tse").expected_busy(window)
        linux = idle_profile("linux").expected_busy(window)
        assert tse / nt == pytest.approx(3.0, rel=0.25)
        assert tse / linux == pytest.approx(7.0, rel=0.3)

    def test_install_creates_threads_and_stop_halts_them(self):
        sim = Simulator()
        cpu = CPU(sim, make_scheduler("linux"))
        installed = idle_profile("linux").install(sim, cpu, RngRegistry(1))
        assert len(installed.threads) == len(idle_profile("linux").activities)
        sim.run_until(60_000.0)
        busy_before = cpu.busy_trace.total_busy()
        assert busy_before > 0
        installed.stop()
        sim.run_until(120_000.0)
        # Allow in-flight bursts to finish; no *new* periodic work appears.
        busy_after = cpu.busy_trace.total_busy()
        assert busy_after - busy_before < 100.0


class TestLostTime:
    def test_monitor_merges_close_intervals(self):
        sim = Simulator()
        cpu = CPU(sim, make_scheduler("linux"))
        cpu.busy_trace.record(0.0, 5.0)
        cpu.busy_trace.record(5.5, 8.0)  # 0.5ms gap -> same event
        cpu.busy_trace.record(20.0, 22.0)  # far -> separate event
        monitor = LostTimeMonitor(cpu, merge_gap_ms=1.0)
        assert monitor.event_durations(0.0, 100.0) == [8.0, 2.0]
        assert monitor.total_lost_time(0.0, 100.0) == 10.0

    def test_monitor_clips_to_window(self):
        sim = Simulator()
        cpu = CPU(sim, make_scheduler("linux"))
        cpu.busy_trace.record(0.0, 10.0)
        monitor = LostTimeMonitor(cpu)
        assert monitor.event_durations(5.0, 100.0) == [5.0]


class TestIdleExperiment:
    def test_deterministic_for_fixed_seed(self):
        a = run_idle_experiment("linux", duration_ms=30_000.0, seed=7)
        b = run_idle_experiment("linux", duration_ms=30_000.0, seed=7)
        assert a.event_durations_ms == b.event_durations_ms

    def test_seed_changes_the_trace(self):
        a = run_idle_experiment("linux", duration_ms=30_000.0, seed=1)
        b = run_idle_experiment("linux", duration_ms=30_000.0, seed=2)
        assert a.event_durations_ms != b.event_durations_ms

    def test_fig2_ordering_tse_nt_linux(self):
        """TSE generates ~3x NT's idle load and ~7x Linux's (§4.2.1)."""
        duration = 120_000.0
        nt = run_idle_experiment("nt_workstation", duration, seed=3)
        tse = run_idle_experiment("nt_tse", duration, seed=3)
        linux = run_idle_experiment("linux", duration, seed=3)
        assert tse.total_lost_time_ms > nt.total_lost_time_ms > linux.total_lost_time_ms
        assert tse.total_lost_time_ms / nt.total_lost_time_ms == pytest.approx(
            3.0, rel=0.4
        )
        assert tse.total_lost_time_ms / linux.total_lost_time_ms == pytest.approx(
            7.0, rel=0.5
        )

    def test_tse_has_events_beyond_200ms_nt_does_not(self):
        """Figure 2: TSE sees extra 250ms/400ms events; NT stays <=100ms."""
        duration = 120_000.0
        nt = run_idle_experiment("nt_workstation", duration, seed=3)
        tse = run_idle_experiment("nt_tse", duration, seed=3)
        assert max(nt.event_durations_ms) <= 150.0
        assert any(d > 200.0 for d in tse.event_durations_ms)

    def test_cumulative_curve_monotone_and_ends_at_total(self):
        result = run_idle_experiment("nt_tse", 60_000.0, seed=5)
        thresholds, curve = result.cumulative_latency_curve()
        assert curve == sorted(curve)
        assert curve[-1] == pytest.approx(result.total_lost_time_ms / 1000.0)

    def test_utilization_trace_bounded(self):
        result = run_idle_experiment("nt_tse", 30_000.0, seed=5)
        __, utils = result.utilization_trace(bin_ms=1000.0)
        assert len(utils) == 30
        assert all(0.0 <= u <= 1.0 for u in utils)

    def test_idle_utilization_is_small(self):
        """Even TSE's idle load is a few percent, not a busy system."""
        result = run_idle_experiment("nt_tse", 60_000.0, seed=5)
        assert 0.0 < result.idle_utilization < 0.15


class TestAttribution:
    def test_busy_time_attributed_per_thread(self):
        sim = Simulator()
        cpu = CPU(sim, make_scheduler("linux"))
        from repro.cpu import Burst, Thread

        a = Thread("worker-a")
        a.push_burst(Burst(30.0))
        b = Thread("worker-b")
        b.push_burst(Burst(10.0))
        cpu.add_thread(a)
        cpu.add_thread(b)
        sim.run_until(100.0)
        attribution = LostTimeMonitor(cpu).attribution(0.0, 100.0)
        assert attribution["worker-a"] == pytest.approx(30.0)
        assert attribution["worker-b"] == pytest.approx(10.0)

    def test_attribution_sorted_descending(self):
        result = run_idle_experiment("nt_tse", 60_000.0, seed=2)
        attribution = LostTimeMonitor(result.cpu).attribution(0.0, 60_000.0)
        costs = list(attribution.values())
        assert costs == sorted(costs, reverse=True)

    def test_tse_multiuser_services_dominate(self):
        """The fig2 drill-down: TSE's extra lost time IS the session
        manager and terminal service."""
        result = run_idle_experiment("nt_tse", 120_000.0, seed=2)
        attribution = LostTimeMonitor(result.cpu).attribution(0.0, 120_000.0)
        services = sum(
            busy
            for name, busy in attribution.items()
            if "session-manager" in name or "terminal-service" in name
        )
        assert services > 0.5 * result.total_lost_time_ms

    def test_window_clips_attribution(self):
        sim = Simulator()
        cpu = CPU(sim, make_scheduler("linux"))
        from repro.cpu import Burst, Thread

        t = Thread("t")
        t.push_burst(Burst(20.0))
        cpu.add_thread(t)
        sim.run_until(100.0)
        attribution = LostTimeMonitor(cpu).attribution(10.0, 100.0)
        assert attribution["t"] == pytest.approx(10.0)
