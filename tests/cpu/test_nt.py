"""Tests for the NT/TSE scheduler model."""

import pytest

from repro.cpu import (
    CPU,
    Burst,
    NTConfig,
    NTScheduler,
    NT_BOOST_PRIORITY,
    Thread,
    sink_thread,
)
from repro.errors import SchedulerError
from repro.sim import Simulator


def make(config=None):
    sim = Simulator()
    cpu = CPU(sim, NTScheduler(config or NTConfig.workstation()))
    return sim, cpu


class TestConfig:
    def test_workstation_defaults(self):
        cfg = NTConfig.workstation()
        assert cfg.quantum_ms == 30.0
        assert cfg.gui_wake_boost is True

    def test_tse_boost_cancelled(self):
        cfg = NTConfig.tse()
        assert cfg.quantum_ms == 30.0
        assert cfg.gui_wake_boost is False

    def test_server_long_quantum(self):
        cfg = NTConfig.server()
        assert cfg.quantum_ms == 180.0
        assert cfg.foreground_stretch == 1

    def test_invalid_stretch_rejected(self):
        with pytest.raises(SchedulerError):
            NTConfig(foreground_stretch=4)

    def test_with_stretch(self):
        cfg = NTConfig.workstation().with_stretch(3)
        assert cfg.foreground_stretch == 3


class TestPriorities:
    def test_foreground_default_base_9(self):
        sim, cpu = make()
        t = Thread("fg", foreground=True)
        cpu.add_thread(t)
        assert t.base_priority == 9

    def test_background_default_base_8(self):
        sim, cpu = make()
        t = Thread("bg")
        cpu.add_thread(t)
        assert t.base_priority == 8

    def test_explicit_priority_kept(self):
        sim, cpu = make()
        t = Thread("smss", base_priority=13)
        cpu.add_thread(t)
        assert t.base_priority == 13

    def test_out_of_range_priority_rejected(self):
        sim, cpu = make()
        with pytest.raises(SchedulerError):
            cpu.add_thread(Thread("bad", base_priority=40))


class TestQuantumStretching:
    def test_foreground_quantum_stretched(self):
        sched = NTScheduler(NTConfig.workstation().with_stretch(3))
        sim = Simulator()
        cpu = CPU(sim, sched)
        fg = Thread("fg", foreground=True)
        bg = Thread("bg")
        cpu.add_thread(fg)
        cpu.add_thread(bg)
        assert sched.quantum_for(fg) == 90.0
        assert sched.quantum_for(bg) == 30.0

    def test_stretched_quantum_lengthens_turns(self):
        # Two foreground sinks with stretch 2: each turn is 60ms.
        sim, cpu = make(NTConfig.workstation().with_stretch(2))
        a = sink_thread("a", foreground=True)
        b = sink_thread("b", foreground=True)
        cpu.add_thread(a)
        cpu.add_thread(b)
        sim.run_until(60.0)
        assert a.cpu_time == pytest.approx(60.0)
        assert b.cpu_time == pytest.approx(0.0)


class TestGuiBoost:
    def test_gui_wake_boosted_to_15(self):
        sim, cpu = make()
        hog = sink_thread("hog", base_priority=13)
        cpu.add_thread(hog)
        gui = Thread("gui", gui=True, foreground=True)
        cpu.add_thread(gui)
        sim.run_until(100.0)
        done = []
        cpu.submit(gui, Burst(5.0, on_complete=done.append))
        sim.run_until(100.1)
        # Boost to 15 preempts the priority-13 hog immediately.
        assert gui.priority == NT_BOOST_PRIORITY
        sim.run_until(200.0)
        assert done == [105.0]

    def test_boost_expires_after_two_quanta(self):
        sim, cpu = make()
        gui = Thread("gui", gui=True, foreground=True)
        cpu.add_thread(gui)
        hog = sink_thread("hog", base_priority=13)
        cpu.add_thread(hog)
        sim.run_until(10.0)
        # Long GUI operation: the 500ms window-maximize of §4.2.1.
        cpu.submit(gui, Burst(500.0))
        # Boost grace: 2 quanta * 30ms stretch 2 = 120ms of priority 15,
        # then the thread drops to base 9 < 13 and starves behind the hog.
        sim.run_until(500.0)
        assert gui.priority == gui.base_priority
        assert gui.cpu_time < 500.0
        assert hog.cpu_time > 0.0

    def test_tse_config_gets_no_gui_boost(self):
        sim, cpu = make(NTConfig.tse())
        hog = sink_thread("hog", base_priority=9, foreground=True)
        cpu.add_thread(hog)
        gui = Thread("gui", gui=True, foreground=True)
        cpu.add_thread(gui)
        sim.run_until(100.0)
        done = []
        cpu.submit(gui, Burst(2.0, on_complete=done.append))
        sim.run_until(101.0)
        # No boost: the echo thread waits for the hog's quantum to end.
        assert done == []
        sim.run_until(300.0)
        assert done  # it does run once the hog's turn expires

    def test_non_gui_wake_gets_small_boost(self):
        sim, cpu = make()
        t = Thread("t", foreground=True)
        cpu.add_thread(t)
        cpu.submit(t, Burst(1.0))
        assert t.priority == 10  # base 9 + 1 wake boost
        sim.run_until(50.0)


class TestBalanceSetSweep:
    def test_starved_thread_eventually_boosted(self):
        sim, cpu = make()
        hog = sink_thread("hog", base_priority=12)
        cpu.add_thread(hog)
        starved = Thread("starved", base_priority=4)
        done = []
        starved.push_burst(Burst(5.0, on_complete=done.append))
        cpu.add_thread(starved)
        # Without the sweep, 'starved' would never run under the 12-hog.
        sim.run_until(10_000.0)
        assert done, "balance-set sweep failed to rescue the starved thread"

    def test_sweep_disabled_means_starvation(self):
        cfg = NTConfig(balance_interval_ms=0.0)
        sim, cpu = make(cfg)
        hog = sink_thread("hog", base_priority=12)
        cpu.add_thread(hog)
        starved = Thread("starved", base_priority=4)
        done = []
        starved.push_burst(Burst(5.0, on_complete=done.append))
        cpu.add_thread(starved)
        sim.run_until(10_000.0)
        assert not done


def test_woken_thread_joins_tail_of_its_level():
    """Equal-priority RR: a woken thread waits behind queued peers."""
    sim, cpu = make(NTConfig.tse())
    sinks = [sink_thread(f"s{i}", foreground=True) for i in range(3)]
    for s in sinks:
        cpu.add_thread(s)
    echo = Thread("echo", gui=True, foreground=True)
    cpu.add_thread(echo)
    sim.run_until(100.0)
    done = []
    cpu.submit(echo, Burst(2.0, on_complete=done.append))
    # Stretch 2 -> 60ms quanta; echo waits for the running sink's remaining
    # quantum plus the two queued sinks' quanta.
    sim.run_until(1000.0)
    assert done
    assert done[0] > 100.0 + 60.0  # waited behind at least one full quantum
