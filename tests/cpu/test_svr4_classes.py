"""Class-plumbing coverage for the SVR4 scheduler: SYS class, validation,
queue maintenance (the paths the dynamics-focused tests never touch)."""

import pytest

from repro.cpu import CPU, DispatchTable, SVR4Scheduler, Thread
from repro.cpu.svr4 import GLOBAL_LEVELS, SYS_BASE, TS_LEVELS
from repro.errors import SchedulerError
from repro.sim import Simulator


def make(table=None):
    sim = Simulator()
    cpu = CPU(sim, SVR4Scheduler(table))
    return sim, cpu


def test_sys_class_defaults_to_mid_sys_priority():
    sched = SVR4Scheduler()
    daemon = Thread("pagedaemon", sched_class="sys")
    sched.register(daemon)
    assert daemon.base_priority == 20
    assert daemon.priority == SYS_BASE + 20
    assert daemon.sched_data["user_priority"] is None


def test_sys_priority_out_of_range_rejected():
    sched = SVR4Scheduler()
    too_high = Thread("intr", base_priority=GLOBAL_LEVELS - SYS_BASE, sched_class="sys")
    with pytest.raises(SchedulerError):
        sched.register(too_high)
    negative = Thread("neg", base_priority=-1, sched_class="sys")
    with pytest.raises(SchedulerError):
        sched.register(negative)


def test_ts_priority_out_of_range_rejected():
    sched = SVR4Scheduler()
    with pytest.raises(SchedulerError):
        sched.register(Thread("hot", base_priority=TS_LEVELS))
    with pytest.raises(SchedulerError):
        sched.register(Thread("cold", base_priority=-3))


def test_unknown_class_rejected():
    sched = SVR4Scheduler()
    with pytest.raises(SchedulerError):
        sched.register(Thread("rt", sched_class="rt"))


def test_sys_class_keeps_priority_and_long_quantum():
    """SYS threads neither decay on expiry nor climb on sleep return."""
    sched = SVR4Scheduler()
    daemon = Thread("flusher", base_priority=30, sched_class="sys")
    sched.register(daemon)
    assert daemon.priority == SYS_BASE + 30
    sched.enqueue_expired(daemon)
    assert daemon.priority == SYS_BASE + 30
    assert daemon.remaining_quantum == 100.0
    assert sched.select() is daemon
    sched.enqueue_woken(daemon)
    assert daemon.priority == SYS_BASE + 30
    assert sched.select() is daemon


def test_select_refills_exhausted_quantum():
    sched = SVR4Scheduler()
    thread = Thread("t")
    sched.register(thread)
    sched.enqueue_woken(thread)
    thread.remaining_quantum = 0.0
    selected = sched.select()
    assert selected is thread
    assert selected.remaining_quantum == sched.table.quantum(thread.priority)


def test_preempted_thread_requeues_at_front_keeping_quantum():
    sched = SVR4Scheduler()
    first, second = Thread("first"), Thread("second")
    for thread in (first, second):
        sched.register(thread)
        thread.priority = 10
        sched.enqueue_woken(thread)
    victim = sched.select()
    victim.remaining_quantum = 3.5
    sched.enqueue_preempted(victim)
    assert sched.select() is victim
    assert victim.remaining_quantum == 3.5


def test_preempted_with_spent_quantum_gets_a_fresh_one():
    sched = SVR4Scheduler()
    thread = Thread("t")
    sched.register(thread)
    thread.remaining_quantum = 0.0
    sched.enqueue_preempted(thread)
    assert sched.select() is thread
    assert thread.remaining_quantum > 0.0


def test_runnable_count_and_remove():
    sched = SVR4Scheduler()
    threads = [Thread(f"t{i}") for i in range(3)]
    for thread in threads:
        sched.register(thread)
        sched.enqueue_woken(thread)
    assert sched.runnable_count() == 3
    sched.remove(threads[1])
    assert sched.runnable_count() == 2
    picked = {sched.select() for _ in range(2)}
    assert picked == {threads[0], threads[2]}
    assert sched.select() is None
    assert sched.runnable_count() == 0


def test_dispatch_table_shape():
    table = DispatchTable()
    # Quantum grows as priority drops; tqexp demotes, slpret promotes,
    # both clamped to the TS range.
    assert table.quantum(0) > table.quantum(TS_LEVELS - 1)
    assert table.tqexp(5) == 0
    assert table.tqexp(40) == 30
    assert table.slpret(50) == TS_LEVELS - 1
    assert table.slpret(10) == 35


def test_ia_boost_clamps_at_top_of_ts_range():
    sched = SVR4Scheduler()
    gui = Thread("xterm", base_priority=TS_LEVELS - 1, gui=True)
    sched.register(gui)
    assert gui.sched_class == "ia"
    assert gui.priority == TS_LEVELS - 1  # boost cannot escape the TS band
