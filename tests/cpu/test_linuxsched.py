"""Tests for the Linux 2.0 scheduler model."""

import pytest

from repro.cpu import CPU, Burst, LinuxScheduler, Thread, sink_thread
from repro.errors import SchedulerError
from repro.sim import Simulator


def make(**kwargs):
    sim = Simulator()
    cpu = CPU(sim, LinuxScheduler(**kwargs))
    return sim, cpu


def test_default_class_is_other():
    sim, cpu = make()
    t = Thread("t")
    cpu.add_thread(t)
    assert t.sched_class == "other"


def test_unknown_class_rejected():
    sim, cpu = make()
    with pytest.raises(SchedulerError):
        cpu.add_thread(Thread("t", sched_class="deadline"))


def test_nice_range_enforced():
    sim, cpu = make()
    with pytest.raises(SchedulerError):
        cpu.add_thread(Thread("t", base_priority=21))


def test_rt_priority_range_enforced():
    sim, cpu = make()
    with pytest.raises(SchedulerError):
        cpu.add_thread(Thread("t", sched_class="fifo", base_priority=100))


def test_ten_ms_round_robin():
    sim, cpu = make()
    a = sink_thread("a")
    b = sink_thread("b")
    cpu.add_thread(a)
    cpu.add_thread(b)
    sim.run_until(40.0)
    # a: [0,10) [20,30), b: [10,20) [30,40)
    assert a.cpu_time == pytest.approx(20.0)
    assert b.cpu_time == pytest.approx(20.0)


def test_no_preemption_among_other_threads():
    """§4.2.1: no boosting — a woken interactive thread waits its turn."""
    sim, cpu = make()
    hog = sink_thread("hog")
    cpu.add_thread(hog)
    vim = Thread("vim", gui=True)
    cpu.add_thread(vim)
    sim.run_until(5.0)
    done = []
    cpu.submit(vim, Burst(2.0, on_complete=done.append))
    sim.run_until(9.0)
    assert done == []  # still waiting for the hog's quantum to end
    sim.run_until(20.0)
    assert done == [12.0]  # ran at the 10ms quantum boundary


def test_woken_thread_queues_at_tail():
    sim, cpu = make()
    sinks = [sink_thread(f"s{i}") for i in range(3)]
    for s in sinks:
        cpu.add_thread(s)
    echo = Thread("echo")
    cpu.add_thread(echo)
    sim.run_until(2.0)
    done = []
    cpu.submit(echo, Burst(1.0, on_complete=done.append))
    sim.run_until(100.0)
    # Wakes at t=2: the running sink finishes its slice (t=10), then the
    # two queued sinks run 10ms each -> echo starts at 30.
    assert done == [31.0]


def test_fifo_preempts_other():
    sim, cpu = make()
    hog = sink_thread("hog")
    cpu.add_thread(hog)
    irq = Thread("irq", sched_class="fifo", base_priority=99)
    cpu.add_thread(irq)
    sim.run_until(3.0)
    done = []
    cpu.submit(irq, Burst(0.5, on_complete=done.append))
    sim.run_until(4.0)
    assert done == [3.5]


def test_fifo_runs_to_completion_without_quantum_expiry():
    sim, cpu = make()
    long_rt = Thread("rt", sched_class="fifo", base_priority=50)
    done = []
    long_rt.push_burst(Burst(250.0, on_complete=done.append))
    cpu.add_thread(long_rt)
    other = sink_thread("other")
    cpu.add_thread(other)
    sim.run_until(300.0)
    assert done == [250.0]
    assert other.cpu_time == pytest.approx(50.0)


def test_higher_rt_priority_preempts_lower():
    sim, cpu = make()
    low_rt = Thread("low", sched_class="fifo", base_priority=10)
    low_rt.push_burst(Burst(100.0))
    cpu.add_thread(low_rt)
    hi_rt = Thread("hi", sched_class="fifo", base_priority=90)
    cpu.add_thread(hi_rt)
    sim.run_until(10.0)
    done = []
    cpu.submit(hi_rt, Burst(5.0, on_complete=done.append))
    sim.run_until(20.0)
    assert done == [15.0]


def test_preempted_other_thread_resumes_at_queue_head():
    sim, cpu = make()
    a = sink_thread("a")
    b = sink_thread("b")
    cpu.add_thread(a)
    cpu.add_thread(b)
    irq = Thread("irq", sched_class="fifo", base_priority=99)
    cpu.add_thread(irq)
    sim.run_until(5.0)
    cpu.submit(irq, Burst(1.0))
    sim.run_until(11.0)
    # a was preempted at t=5 for 1ms, resumed at 6, and kept the CPU until
    # its quantum's remaining 5ms elapsed (t=11); b must not sneak in early.
    assert a.cpu_time == pytest.approx(10.0)
    assert b.cpu_time == pytest.approx(0.0)


def test_custom_quantum():
    sim, cpu = make(quantum_ms=20.0)
    a = sink_thread("a")
    b = sink_thread("b")
    cpu.add_thread(a)
    cpu.add_thread(b)
    sim.run_until(20.0)
    assert a.cpu_time == pytest.approx(20.0)
    assert b.cpu_time == pytest.approx(0.0)


def test_bad_quantum_rejected():
    with pytest.raises(SchedulerError):
        LinuxScheduler(quantum_ms=0.0)
