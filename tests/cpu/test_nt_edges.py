"""Edge-case tests for NT scheduler mechanics the main suite skims."""

import pytest

from repro.cpu import (
    CPU,
    Burst,
    NTConfig,
    NTScheduler,
    NT_BOOST_PRIORITY,
    Thread,
    sink_thread,
)
from repro.sim import Simulator


def make(config=None):
    sim = Simulator()
    cpu = CPU(sim, NTScheduler(config or NTConfig.workstation()))
    return sim, cpu


def test_boost_not_stacked_by_repeated_wakes():
    """A re-wake while already boosted never exceeds priority 15."""
    sim, cpu = make()
    gui = Thread("gui", gui=True, foreground=True)
    cpu.add_thread(gui)
    hog = sink_thread("hog", base_priority=13)
    cpu.add_thread(hog)
    sim.run_until(10.0)
    for __ in range(5):
        cpu.submit(gui, Burst(1.0))
        sim.run_until(sim.now + 5.0)
        assert gui.priority <= NT_BOOST_PRIORITY


def test_boost_decays_through_generic_boost_levels():
    """Generic +1 wake boost decays back to base after one quantum."""
    sim, cpu = make()
    worker = Thread("worker", foreground=True)
    cpu.add_thread(worker)
    competitor = sink_thread("competitor", foreground=True)
    cpu.add_thread(competitor)
    sim.run_until(5.0)
    cpu.submit(worker, Burst(200.0))  # long: will expire quanta
    assert worker.priority == 10  # base 9 + 1
    sim.run_until(400.0)
    assert worker.priority == worker.base_priority


def test_preempted_thread_resumes_before_equal_priority_peers():
    """Head-of-queue reinsertion after preemption (NT semantics)."""
    sim, cpu = make()
    a = sink_thread("a", base_priority=8)
    b = sink_thread("b", base_priority=8)
    cpu.add_thread(a)
    cpu.add_thread(b)
    hi = Thread("hi", base_priority=12)
    cpu.add_thread(hi)
    sim.run_until(10.0)  # a is mid-quantum
    cpu.submit(hi, Burst(5.0))
    # a was preempted at t=10 with 20ms of quantum left; after hi's 5ms it
    # resumes at the head of its level and finishes that quantum at t=35.
    sim.run_until(35.0)
    assert a.cpu_time == pytest.approx(30.0)
    assert b.cpu_time == 0.0


def test_balance_sweep_ignores_already_boosted_threads():
    cfg = NTConfig(starvation_ms=100.0, balance_interval_ms=200.0)
    sim, cpu = make(cfg)
    hog = sink_thread("hog", base_priority=14)
    cpu.add_thread(hog)
    starved = Thread("starved", base_priority=4)
    starved.push_burst(Burst(1_000.0))
    cpu.add_thread(starved)
    sim.run_until(5_000.0)
    # The starved thread receives periodic one-quantum rescues: it makes
    # slow progress rather than none, and never exceeds the boost ceiling.
    assert 0.0 < starved.cpu_time < 2_000.0
    assert starved.priority <= NT_BOOST_PRIORITY


def test_server_config_long_quantum_changes_rr_granularity():
    sim, cpu = make(NTConfig.server())
    a = sink_thread("a")
    b = sink_thread("b")
    cpu.add_thread(a)
    cpu.add_thread(b)
    sim.run_until(180.0)
    assert a.cpu_time == pytest.approx(180.0)
    assert b.cpu_time == 0.0


def test_realtime_priority_threads_preempt_everything():
    sim, cpu = make()
    gui = Thread("gui", gui=True, foreground=True)
    cpu.add_thread(gui)
    rt = Thread("rt", base_priority=31)
    cpu.add_thread(rt)
    sim.run_until(5.0)
    cpu.submit(gui, Burst(50.0))  # boosted to 15
    sim.run_until(6.0)
    done = []
    cpu.submit(rt, Burst(2.0, on_complete=done.append))
    sim.run_until(10.0)
    assert done == [pytest.approx(8.0)]
