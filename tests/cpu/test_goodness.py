"""Tests for the Linux 2.0 counter/epoch ("goodness") scheduler."""

import pytest

from repro.cpu import CPU, Burst, Thread, sink_thread
from repro.cpu.goodness import DEFAULT_PRIORITY_MS, LinuxGoodnessScheduler
from repro.errors import SchedulerError
from repro.sim import Simulator


def make(**kwargs):
    sim = Simulator()
    cpu = CPU(sim, LinuxGoodnessScheduler(**kwargs))
    return sim, cpu


def test_bad_priority_rejected():
    with pytest.raises(SchedulerError):
        LinuxGoodnessScheduler(priority_ms=0.0)


def test_hog_runs_a_full_entitlement_per_epoch():
    sim, cpu = make()
    a = sink_thread("a")
    b = sink_thread("b")
    cpu.add_thread(a)
    cpu.add_thread(b)
    sim.run_until(DEFAULT_PRIORITY_MS * 2)
    # Each ran one entitlement; counters exhausted -> new epoch begins.
    assert a.cpu_time == pytest.approx(DEFAULT_PRIORITY_MS)
    assert b.cpu_time == pytest.approx(DEFAULT_PRIORITY_MS)


def test_epochs_counted():
    sim, cpu = make()
    cpu.add_thread(sink_thread("a"))
    sim.run_until(DEFAULT_PRIORITY_MS * 3 + 1.0)
    assert cpu.scheduler.epochs >= 3


def test_sleeper_accumulates_credit():
    sim, cpu = make()
    hog = sink_thread("hog")
    cpu.add_thread(hog)
    sleeper = Thread("sleeper")
    cpu.add_thread(sleeper)
    # Let several epochs pass while the sleeper sleeps.
    sim.run_until(DEFAULT_PRIORITY_MS * 6)
    counter = sleeper.sched_data["counter"]
    assert counter > DEFAULT_PRIORITY_MS
    assert counter <= 2 * DEFAULT_PRIORITY_MS  # capped


def test_woken_sleeper_selected_before_hog_at_next_point():
    sim, cpu = make()
    hog = sink_thread("hog")
    cpu.add_thread(hog)
    sleeper = Thread("sleeper")
    cpu.add_thread(sleeper)
    sim.run_until(900.0)
    done = []
    cpu.submit(sleeper, Burst(2.0, on_complete=done.append))
    # No preempt-on-wake in 2.0: waits for the hog's counter to drain,
    # then wins on goodness.
    sim.run_until(1_500.0)
    assert done
    assert done[0] - 900.0 <= DEFAULT_PRIORITY_MS + 5.0


def test_preempt_on_wake_variant_is_immediate():
    sim, cpu = make(preempt_on_wake=True)
    hog = sink_thread("hog")
    cpu.add_thread(hog)
    sleeper = Thread("sleeper")
    cpu.add_thread(sleeper)
    sim.run_until(900.0)  # sleeper banks ~2x credit over epochs
    done = []
    cpu.submit(sleeper, Burst(2.0, on_complete=done.append))
    sim.run_until(910.0)
    assert done == [pytest.approx(902.0)]


def test_sustained_interaction_erodes_credit_under_heavy_load():
    """The epoch pathology: with many hogs, an interactive thread that
    consumes its credit mid-epoch starves until the epoch turns over."""
    sim, cpu = make()
    for i in range(25):
        cpu.add_thread(sink_thread(f"s{i}"))
    echo = Thread("echo")
    cpu.add_thread(echo)
    latencies = []

    def key():
        t0 = sim.now
        cpu.submit(
            echo, Burst(2.0, on_complete=lambda w, t0=t0: latencies.append(w - t0))
        )

    sim.every(50.0, key)
    sim.run_until(20_000.0)
    assert max(latencies) > 1_000.0  # epoch-length stalls appear


def test_remove_from_ready_and_registry():
    sim, cpu = make()
    a = sink_thread("a")
    b = sink_thread("b")
    cpu.add_thread(a)
    cpu.add_thread(b)
    sim.run_until(5.0)
    cpu.kill(b)
    sim.run_until(DEFAULT_PRIORITY_MS * 3)
    assert b.cpu_time < DEFAULT_PRIORITY_MS
    assert a.cpu_time > DEFAULT_PRIORITY_MS
