"""Unit tests for threads and bursts."""

import math

import pytest

from repro.cpu import Burst, Thread, ThreadState, sink_thread
from repro.errors import SchedulerError


def test_thread_starts_new_with_no_work():
    t = Thread("t")
    assert t.state is ThreadState.NEW
    assert not t.has_work


def test_thread_ids_are_unique():
    a, b = Thread("a"), Thread("b")
    assert a.tid != b.tid


def test_push_and_take_burst():
    t = Thread("t")
    b = Burst(5.0)
    t.push_burst(b)
    assert t.has_work
    assert t.take_next_burst() is b
    assert t.current_burst is b
    assert t.has_work


def test_take_next_burst_empty_returns_none():
    assert Thread("t").take_next_burst() is None


def test_take_with_burst_in_progress_raises():
    t = Thread("t")
    t.push_burst(Burst(1.0))
    t.take_next_burst()
    t.push_burst(Burst(1.0))
    with pytest.raises(SchedulerError):
        t.take_next_burst()


def test_negative_demand_raises():
    with pytest.raises(SchedulerError):
        Burst(-1.0)


def test_infinite_burst():
    b = Burst(math.inf)
    assert b.is_infinite
    assert not Burst(10.0).is_infinite


def test_sink_thread_has_infinite_work():
    s = sink_thread("s1", foreground=True)
    assert s.foreground
    assert s.has_work
    assert s.bursts[0].is_infinite


def test_push_to_terminated_thread_raises():
    t = Thread("t")
    t.state = ThreadState.TERMINATED
    with pytest.raises(SchedulerError):
        t.push_burst(Burst(1.0))
