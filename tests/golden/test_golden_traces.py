"""Golden-trace regression suite.

Runs one small CPU, memory, and network scenario at a fixed seed under the
observation layer and compares the serialized snapshot byte-for-byte with
a committed golden.  See README.md in this directory for the update
workflow (``--update-goldens``).
"""

import os

import pytest

from repro.memory.experiment import run_memory_latency_experiment
from repro.net.ping import run_ping_experiment
from repro.obs import dumps_snapshot, observe
from repro.workloads.typing import run_stall_experiment

GOLDEN_DIR = os.path.dirname(os.path.abspath(__file__))

SCENARIOS = {
    "cpu_stall": lambda: run_stall_experiment(
        "nt_tse", [2], duration_ms=1000.0, seed=1
    ),
    "memory_latency": lambda: run_memory_latency_experiment(
        "nt_tse", 1.2, runs=3, seed=1
    ),
    "net_ping": lambda: run_ping_experiment(
        [4.0], duration_ms=2000.0, seed=1
    ),
}


def observed_document(name):
    with observe() as obs:
        SCENARIOS[name]()
        snapshot = obs.snapshot()
    return dumps_snapshot(snapshot)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_snapshot_matches_golden(name, request):
    path = os.path.join(GOLDEN_DIR, f"{name}.golden.json")
    document = observed_document(name)
    if request.config.getoption("--update-goldens"):
        with open(path, "w") as f:
            f.write(document)
        pytest.skip(f"rewrote {os.path.basename(path)}")
    assert os.path.exists(path), (
        f"missing golden {path}; generate it with "
        "pytest tests/golden --update-goldens"
    )
    with open(path) as f:
        expected = f.read()
    assert document == expected, (
        f"observation snapshot for {name!r} diverged from its golden; if "
        "the behaviour change is intentional, rerun with --update-goldens "
        "and review the diff"
    )


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_snapshot_is_rerun_stable(name):
    """The same scenario serializes identically twice in one process."""
    assert observed_document(name) == observed_document(name)


def test_goldens_contain_no_wallclock_keys():
    """Goldens must stay environment-free: no timestamps, hosts, or paths."""
    import json

    for name in sorted(SCENARIOS):
        path = os.path.join(GOLDEN_DIR, f"{name}.golden.json")
        if not os.path.exists(path):
            pytest.skip("goldens not generated yet")
        with open(path) as f:
            text = f.read()
        json.loads(text)  # must be valid JSON
        for banned in ("wallclock", "hostname", "timestamp", "/root/", "/home/"):
            assert banned not in text
