"""Unit and property tests for the closed-form open-queue models."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analytic import (
    md1_prediction,
    mg1_prediction,
    mm1_prediction,
    service_mix,
)
from repro.errors import AnalyticError

rhos = st.floats(min_value=0.01, max_value=0.95)
services = st.floats(min_value=0.1, max_value=100.0)


class TestMm1:
    def test_textbook_point(self):
        # rho = 0.5, E[S] = 1: Wq = rho*S/(1-rho) = 1, W = 2, L = 1.
        p = mm1_prediction(0.5, 1.0)
        assert p.utilization == pytest.approx(0.5)
        assert p.wait_ms == pytest.approx(1.0)
        assert p.response_ms == pytest.approx(2.0)
        assert p.queue_length == pytest.approx(0.5)
        assert p.in_system == pytest.approx(1.0)

    @given(rho=rhos, service=services)
    def test_littles_law_everywhere(self, rho, service):
        p = mm1_prediction(rho / service, service)
        assert p.queue_length == pytest.approx(p.arrival_rate * p.wait_ms)
        assert p.in_system == pytest.approx(p.arrival_rate * p.response_ms)
        # L = Lq + rho: the in-service customer is the utilization.
        assert p.in_system == pytest.approx(p.queue_length + p.utilization)

    @given(service=services)
    def test_wait_grows_with_utilization(self, service):
        waits = [
            mm1_prediction(rho / service, service).wait_ms
            for rho in (0.1, 0.3, 0.5, 0.7, 0.9)
        ]
        assert waits == sorted(waits)
        assert waits[0] < waits[-1]

    def test_saturation_raises(self):
        with pytest.raises(AnalyticError):
            mm1_prediction(1.0, 1.0)
        with pytest.raises(AnalyticError):
            mm1_prediction(2.0, 1.0)


class TestMg1:
    @given(rho=rhos, service=services)
    def test_scv_one_reduces_to_mm1(self, rho, service):
        pk = mg1_prediction(rho / service, service, 2.0 * service**2)
        mm1 = mm1_prediction(rho / service, service)
        assert pk.wait_ms == pytest.approx(mm1.wait_ms)
        assert pk.in_system == pytest.approx(mm1.in_system)

    @given(rho=rhos, service=services)
    def test_deterministic_service_waits_half_as_long(self, rho, service):
        md1 = md1_prediction(rho / service, service)
        mm1 = mm1_prediction(rho / service, service)
        assert md1.wait_ms == pytest.approx(mm1.wait_ms / 2.0)

    def test_impossible_second_moment_raises(self):
        with pytest.raises(AnalyticError):
            mg1_prediction(0.1, 2.0, 1.0)  # E[S^2] < E[S]^2

    def test_negative_rate_raises(self):
        with pytest.raises(AnalyticError):
            mg1_prediction(-0.1, 1.0, 1.0)

    def test_zero_service_raises(self):
        with pytest.raises(AnalyticError):
            mg1_prediction(0.1, 0.0, 0.0)


class TestServiceMix:
    def test_single_class_is_deterministic(self):
        mix = service_mix([(0.5, 2.0)])
        assert mix.mean_ms == pytest.approx(2.0)
        assert mix.second_moment == pytest.approx(4.0)
        assert mix.scv == pytest.approx(0.0)
        assert mix.total_rate == pytest.approx(0.5)

    def test_two_class_moments(self):
        # Equal rates of 1 ms and 3 ms service: E[S]=2, E[S^2]=5.
        mix = service_mix([(0.1, 1.0), (0.1, 3.0)])
        assert mix.mean_ms == pytest.approx(2.0)
        assert mix.second_moment == pytest.approx(5.0)
        assert mix.scv == pytest.approx(0.25)

    @given(
        classes=st.lists(
            st.tuples(
                st.floats(min_value=0.001, max_value=1.0),
                st.floats(min_value=0.1, max_value=10.0),
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_mixture_scv_is_nonnegative(self, classes):
        mix = service_mix(classes)
        assert mix.second_moment >= mix.mean_ms**2 - 1e-12
        assert mix.scv >= -1e-9

    def test_empty_mix_raises(self):
        with pytest.raises(AnalyticError):
            service_mix([])

    def test_zero_rate_mix_raises(self):
        with pytest.raises(AnalyticError):
            service_mix([(0.0, 1.0)])

    def test_bad_class_raises(self):
        with pytest.raises(AnalyticError):
            service_mix([(0.1, -1.0)])


def test_prediction_is_frozen():
    p = mm1_prediction(0.1, 1.0)
    with pytest.raises(Exception):
        p.wait_ms = 0.0


def test_md1_matches_hand_computation():
    # rho = 0.8, S = 1.2 ms: Wq = rho*S / (2*(1-rho)) = 2.4 ms.
    p = md1_prediction(0.8 / 1.2, 1.2)
    assert p.wait_ms == pytest.approx(0.8 * 1.2 / (2 * 0.2))
    assert math.isclose(p.response_ms, p.wait_ms + 1.2)
