"""The comparison harness: rows, mappings, and workbench validation."""

import pytest

from repro.analytic import (
    ComparisonRow,
    compare_open_queue,
    predict_link_probe,
    simulate_closed_loop,
    simulate_link_probe,
    simulate_open_queue,
)
from repro.errors import AnalyticError


class TestComparisonRow:
    def test_relative_error(self):
        row = ComparisonRow("x", predicted=2.0, simulated=2.2)
        assert row.relative_error == pytest.approx(0.1)

    def test_relative_error_is_symmetric_in_sign(self):
        low = ComparisonRow("x", predicted=2.0, simulated=1.8)
        high = ComparisonRow("x", predicted=2.0, simulated=2.2)
        assert low.relative_error == pytest.approx(high.relative_error)


class TestLinkMapping:
    def test_unloaded_link_prediction_is_transmit_plus_propagation(self):
        """At vanishing load the probe only pays its own service + wire."""
        delay, in_system = predict_link_probe(
            1e-9, probe_interval_ms=1e9, propagation_ms=0.05
        )
        # 64 bytes at 10 Mbps = 0.0512 ms, plus 0.05 ms propagation.
        assert delay == pytest.approx(64 / 1250.0 + 0.05, rel=1e-3)
        assert in_system == pytest.approx(0.0, abs=1e-3)

    def test_probe_traffic_contributes_to_the_mixture(self):
        """Densest probing must predict strictly more queueing."""
        sparse_delay, __ = predict_link_probe(0.3, probe_interval_ms=100.0)
        dense_delay, __ = predict_link_probe(0.3, probe_interval_ms=1.0)
        assert dense_delay > sparse_delay


class TestWorkbenchValidation:
    def test_open_queue_rejects_bad_parameters(self):
        with pytest.raises(AnalyticError):
            simulate_open_queue(0.0, 1.0)
        with pytest.raises(AnalyticError):
            simulate_open_queue(0.1, -1.0)
        with pytest.raises(AnalyticError):
            simulate_open_queue(0.1, 1.0, service="uniform")
        with pytest.raises(AnalyticError):
            simulate_open_queue(0.1, 1.0, duration_ms=10.0, warmup_ms=20.0)

    def test_link_probe_rejects_bad_parameters(self):
        with pytest.raises(AnalyticError):
            simulate_link_probe(0.0)
        with pytest.raises(AnalyticError):
            simulate_link_probe(1.5)
        with pytest.raises(AnalyticError):
            simulate_link_probe(0.5, probe_interval_ms=0.0)

    def test_closed_loop_rejects_bad_parameters(self):
        with pytest.raises(AnalyticError):
            simulate_closed_loop(0)
        with pytest.raises(AnalyticError):
            simulate_closed_loop(1, think_ms=0.0)
        with pytest.raises(AnalyticError):
            simulate_closed_loop(1, duration_ms=1.0, warmup_ms=2.0)

    def test_workbench_points_are_deterministic(self):
        a = simulate_open_queue(0.05, 5.0, duration_ms=5_000.0, seed=3)
        b = simulate_open_queue(0.05, 5.0, duration_ms=5_000.0, seed=3)
        assert a == b
        c = simulate_open_queue(0.05, 5.0, duration_ms=5_000.0, seed=4)
        assert a != c

    def test_compare_returns_one_row_per_observable(self):
        rows, observed = compare_open_queue(
            0.05, 5.0, duration_ms=10_000.0, seed=1
        )
        assert [row.metric for row in rows] == [
            "wait_ms",
            "sojourn_ms",
            "in_system",
        ]
        assert observed.samples > 0

    def test_deterministic_service_is_exactly_deterministic(self):
        """M/D/1 points must not consume service-stream randomness."""
        observed = simulate_open_queue(
            0.01,
            2.0,
            service="deterministic",
            duration_ms=20_000.0,
            seed=7,
        )
        # Every sojourn is exactly wait + 2 ms: the service stream draws
        # no randomness, so the decomposition is exact, not statistical.
        assert observed.mean_sojourn_ms == pytest.approx(
            observed.mean_wait_ms + 2.0
        )
        # At 1% utilization queueing is rare: the mean wait is tiny.
        assert observed.mean_wait_ms < 0.1
