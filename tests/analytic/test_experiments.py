"""The registered analytic experiments: registry, shape, artifact identity."""

import csv
import io
import os
import subprocess
import sys

from repro.analytic.experiments import (
    CLOSED_SESSION_COUNTS,
    LINK_RHO_LEVELS,
    _analytic_closed_point,
    _analytic_link_point,
)
from repro.cli import main
from repro.core.registry import REGISTRY


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestRegistration:
    def test_both_experiments_registered_in_analytic_group(self):
        for name in ("analytic_link", "analytic_closed"):
            spec = REGISTRY[name]
            assert spec.group == "analytic"
            assert spec.title

    def test_registered_after_fleet(self):
        """New groups append; the historical run order is untouched.

        Registry order is import order, so the canonical sequence is the
        one a fresh CLI process produces — check via ``list`` output there
        rather than this process (whose import order pytest perturbs).
        """
        listing = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True,
            text=True,
            check=True,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        ).stdout
        for earlier, later in (
            ("fleet_placement", "analytic_link"),
            ("analytic_link", "analytic_closed"),
        ):
            assert listing.index(earlier) < listing.index(later)


class TestPointFunctions:
    def test_link_point_is_deterministic(self):
        a = _analytic_link_point(0.3, seed=9)
        b = _analytic_link_point(0.3, seed=9)
        assert a == b
        pred_delay, sim_delay, pred_l, sim_l, util, samples = a
        assert pred_delay > 0 and sim_delay > 0
        assert samples > 1_000
        assert 0.0 < util < 1.0

    def test_link_point_varies_with_seed(self):
        assert _analytic_link_point(0.3, seed=1) != _analytic_link_point(
            0.3, seed=2
        )

    def test_closed_point_is_deterministic(self):
        a = _analytic_closed_point(4, seed=9)
        b = _analytic_closed_point(4, seed=9)
        assert a == b
        pred_x, sim_x, pred_r, sim_r, completions = a
        assert completions > 1_000
        assert pred_r > 0 and sim_r > 0


class TestArtifactIdentity:
    """The analytic sweeps honor the repo's executor-identity contract."""

    def read_all(self, directory):
        out = {}
        for name in sorted(os.listdir(directory)):
            with open(os.path.join(directory, name), "rb") as f:
                out[name] = f.read()
        return out

    def test_link_identical_serial_parallel_and_cached(self, tmp_path):
        cache = str(tmp_path / "cache")
        code, serial = run_cli(
            "run", "analytic_link", "--seed", "1",
            "--csv", str(tmp_path / "a"), "--cache-dir", cache,
        )
        assert code == 0
        code, parallel = run_cli(
            "run", "analytic_link", "--seed", "1", "--jobs", "4",
            "--csv", str(tmp_path / "b"),
        )
        assert code == 0
        code, warm = run_cli(
            "run", "analytic_link", "--seed", "1",
            "--csv", str(tmp_path / "c"), "--cache-dir", cache,
        )
        assert code == 0
        assert serial == parallel == warm
        assert (
            self.read_all(tmp_path / "a")
            == self.read_all(tmp_path / "b")
            == self.read_all(tmp_path / "c")
        )

    def test_closed_trace_artifacts_stable_across_jobs(self, tmp_path):
        code, serial = run_cli(
            "trace", "analytic_closed", "--seed", "1",
            "--trace-dir", str(tmp_path / "a"),
        )
        assert code == 0
        code, parallel = run_cli(
            "trace", "analytic_closed", "--seed", "1", "--jobs", "4",
            "--trace-dir", str(tmp_path / "b"),
        )
        assert code == 0
        assert serial == parallel
        assert self.read_all(tmp_path / "a") == self.read_all(tmp_path / "b")


class TestOutputShape:
    def test_link_overlay_covers_the_rho_grid(self, tmp_path):
        code, text = run_cli(
            "run", "analytic_link", "--seed", "1", "--csv", str(tmp_path)
        )
        assert code == 0
        assert "M/G/1 (P-K) vs simulation" in text
        assert "delay_ms pred" in text and "delay_ms err" in text
        with open(tmp_path / "analytic_link.csv") as f:
            rows = list(csv.reader(f))
        assert len(rows) - 1 == len(LINK_RHO_LEVELS)
        # Prediction and simulation both show the saturation blow-up:
        # delay strictly grows along the rho grid in each column.
        predicted = [float(r[1]) for r in rows[1:]]
        simulated = [float(r[2]) for r in rows[1:]]
        assert predicted == sorted(predicted)
        assert simulated == sorted(simulated)
        assert simulated[-1] > 5 * simulated[0]

    def test_closed_overlay_covers_the_session_grid(self, tmp_path):
        code, text = run_cli(
            "run", "analytic_closed", "--seed", "1", "--csv", str(tmp_path)
        )
        assert code == 0
        assert "exact MVA vs simulation" in text
        with open(tmp_path / "analytic_closed.csv") as f:
            rows = list(csv.reader(f))
        assert len(rows) - 1 == len(CLOSED_SESSION_COUNTS)
        # Throughput saturates at 1/D = 0.1/ms; response blows up past
        # the knee — in both the predicted and simulated columns.
        pred_x = [float(r[1]) for r in rows[1:]]
        sim_r = [float(r[4]) for r in rows[1:]]
        assert pred_x == sorted(pred_x)
        assert pred_x[-1] <= 0.1 + 1e-9
        assert sim_r[-1] > 5 * sim_r[0]

    def test_every_overlay_row_is_inside_the_reporting_band(self, tmp_path):
        """Even at high rho the finite-window error stays single-digit %."""
        code, __ = run_cli(
            "run", "analytic_link", "--seed", "1", "--csv", str(tmp_path)
        )
        assert code == 0
        with open(tmp_path / "analytic_link.csv") as f:
            rows = list(csv.reader(f))
        for row in rows[1:]:
            predicted, simulated = float(row[1]), float(row[2])
            assert abs(simulated - predicted) / predicted < 0.15
