"""Cross-check: the capacity planner agrees with the MVA saturation knee.

``plan_capacity`` computes its network ceiling with back-of-envelope
bandwidth division; MVA derives the saturation population N* = (Z+D)/D of
the equivalent closed network from first principles.  For a user class
offering ``network_mbps`` to a ``bandwidth_mbps`` link, a user's cycle
splits into D ms of link demand and Z ms of think time per interaction,
with D/(Z+D) = network_mbps/bandwidth — so the knee must equal
``bandwidth / network_mbps`` no matter how the cycle is split, and the
planner's ceiling must be ``floor(cap * N*)``.

Tolerance: ceilings are integers produced by ``floor`` on float ratios, so
the cross-check allows the models to disagree by at most **one user**
(an edge ratio landing within one ulp of an integer flips the floor);
the continuous quantities agree to 1e-9.
"""

import math

import pytest

from repro.analytic import saturation_population, solve_mva
from repro.core.capacity import plan_capacity, plan_fleet_capacity
from repro.units import mbps_to_bytes_per_ms
from repro.workloads.behavior import (
    KNOWLEDGE_WORKER,
    TASK_WORKER,
    WEB_BROWSER_USER,
)

PROFILES = (TASK_WORKER, KNOWLEDGE_WORKER, WEB_BROWSER_USER)


def _cycle_split(profile, bandwidth_mbps):
    """(think_ms, demand_ms) of one interaction cycle on the link.

    Each interaction moves ``network_mbps``-worth of one cycle's bytes;
    the rest of the cycle is think time.
    """
    cycle_ms = 1000.0 / profile.interactions_per_sec
    bytes_per_cycle = mbps_to_bytes_per_ms(profile.network_mbps) * cycle_ms
    demand_ms = bytes_per_cycle / mbps_to_bytes_per_ms(bandwidth_mbps)
    return cycle_ms - demand_ms, demand_ms


class TestKneeEqualsBandwidthRatio:
    @pytest.mark.parametrize("profile", PROFILES, ids=lambda p: p.name)
    @pytest.mark.parametrize("bandwidth", [10.0, 100.0])
    def test_knee_is_split_invariant(self, profile, bandwidth):
        """N* = bandwidth/network_mbps regardless of the Z/D split."""
        think, demand = _cycle_split(profile, bandwidth)
        knee = saturation_population(think, [demand])
        assert knee == pytest.approx(
            bandwidth / profile.network_mbps, rel=1e-9
        )
        # Sanity on the construction itself: one user's utilization of
        # the link is exactly the profile's bandwidth fraction.
        one = solve_mva(1, think, [demand])
        assert one.utilizations[0] == pytest.approx(
            profile.network_mbps / bandwidth, rel=1e-9
        )


class TestSingleServerPlanner:
    @pytest.mark.parametrize("profile", PROFILES, ids=lambda p: p.name)
    @pytest.mark.parametrize("bandwidth", [10.0, 100.0])
    @pytest.mark.parametrize("cap", [0.5, 0.8, 1.0])
    def test_network_ceiling_is_capped_knee(self, profile, bandwidth, cap):
        report = plan_capacity(
            "linux",
            profile,
            bandwidth_mbps=bandwidth,
            network_utilization_cap=cap,
        )
        think, demand = _cycle_split(profile, bandwidth)
        knee = saturation_population(think, [demand])
        assert abs(report.network_users - math.floor(cap * knee)) <= 1

    @pytest.mark.parametrize("profile", PROFILES, ids=lambda p: p.name)
    def test_planner_ceiling_keeps_the_link_below_the_cap(self, profile):
        """MVA confirms the admitted population can't exceed the cap."""
        cap = 0.8
        report = plan_capacity(
            "linux", profile, network_utilization_cap=cap
        )
        think, demand = _cycle_split(profile, 10.0)
        n = report.network_users
        if n >= 10**9:  # profile offers no network load
            return
        admitted = solve_mva(max(1, n), think, [demand])
        assert admitted.utilizations[0] <= cap + 1e-9
        # One more user than the ceiling would cross it (the ceiling is
        # tight, not merely safe) — in the fluid limit; MVA's stochastic
        # queueing keeps measured utilization slightly below n*u.
        over = n + 1
        assert over * (profile.network_mbps / 10.0) > cap - 1e-9


class TestFleetPlanner:
    def test_backbone_ceiling_is_capped_backbone_knee(self):
        """The fleet's backbone dimension is the same arithmetic again."""
        backbone = 100.0
        cap = 0.8
        fleet = plan_fleet_capacity(
            "linux",
            KNOWLEDGE_WORKER,
            num_servers=8,
            backbone_mbps=backbone,
            backbone_utilization_cap=cap,
        )
        think, demand = _cycle_split(KNOWLEDGE_WORKER, backbone)
        knee = saturation_population(think, [demand])
        assert abs(fleet.backbone_users - math.floor(cap * knee)) <= 1

    def test_fleet_binds_on_whichever_knee_is_lower(self):
        """Adding servers past the backbone knee buys nothing — and MVA
        says why: the shared station's ceiling is 1/D, not N/(Z+D)."""
        small = plan_fleet_capacity(
            "linux", KNOWLEDGE_WORKER, num_servers=2, backbone_mbps=20.0
        )
        large = plan_fleet_capacity(
            "linux", KNOWLEDGE_WORKER, num_servers=64, backbone_mbps=20.0
        )
        assert large.limiting_resource == "backbone"
        assert large.max_users == large.backbone_users
        assert large.max_users <= small.server_users * 32
        think, demand = _cycle_split(KNOWLEDGE_WORKER, 20.0)
        knee = saturation_population(think, [demand])
        assert abs(large.backbone_users - math.floor(0.8 * knee)) <= 1
