"""The tail oracle: simulated percentiles must agree with M/M/1 tail laws.

The mean-based oracle (:mod:`test_oracle`) cannot tell a thin tail from a
fat one — two queues with the same Wq can have wildly different p99s.
This suite pins the *quantiles*: the simulated p90/p99 of wait and
sojourn must agree with the closed-form M/M/1 tail laws

* sojourn: exactly ``Exponential(mu - lambda)``, so
  ``t_p = -ln(1 - p) / (mu - lambda)``;
* wait: an atom of mass ``1 - rho`` at zero plus an exponential, so
  ``w_p = 0`` for ``p <= 1 - rho`` and
  ``-ln((1 - p) / rho) / (mu - lambda)`` above.

Seeds are pinned per-case (same ``derive_seed`` discipline as the mean
oracle) so CI reruns see identical sample paths.  Sampling math: for an
exponential tail the relative standard error of the p-quantile estimate
is ``sqrt(p / ((1 - p) n)) / ln(1 / (1 - p))`` — about 2% at p99 with
n = 24k — so the 10% band holds with ~5x headroom.  (The *wait* p99 is
noisier: only the ``rho`` fraction of arrivals wait at all, so the window
is sized for the conditional sample count, not the raw one.)
"""

import math

import pytest

from repro.analytic import (
    compare_link_probe,
    compare_open_queue_quantiles,
    mg1_wait_quantile_bound,
    mm1_sojourn_quantile,
    mm1_wait_quantile,
    predict_link_probe,
)
from repro.errors import AnalyticError
from repro.sim.rng import derive_seed

TOLERANCE = 0.10

#: ~24k serviced customers per point keeps the wait-p99 SE near 2%.
TARGET_SAMPLES = 24_000

RHO_LEVELS = (0.2, 0.35, 0.5)
MEAN_SERVICE_MS = 2.5


def _seed(*parts) -> int:
    return derive_seed(0, "tail-oracle:" + ":".join(repr(p) for p in parts))


def _assert_within(rows, tolerance=TOLERANCE):
    failures = [
        f"{row.metric}: predicted={row.predicted:.6g} "
        f"simulated={row.simulated:.6g} "
        f"err={row.relative_error * 100:.1f}%"
        for row in rows
        if row.relative_error > tolerance
    ]
    assert not failures, "simulated tail disagrees with theory: " + "; ".join(
        failures
    )


class TestQuantileFormulas:
    """Unit properties of the closed forms themselves."""

    def test_sojourn_quantile_is_the_exponential_inverse_cdf(self):
        lam, s = 0.2, 2.5  # rho = 0.5, mu - lambda = 0.2 per ms
        assert mm1_sojourn_quantile(lam, s, 0.5) == pytest.approx(
            math.log(2.0) / 0.2
        )
        assert mm1_sojourn_quantile(lam, s, 0.99) == pytest.approx(
            math.log(100.0) / 0.2
        )

    def test_wait_quantile_has_an_atom_at_zero(self):
        lam, s = 0.12, 2.5  # rho = 0.3: 70% of arrivals never wait
        assert mm1_wait_quantile(lam, s, 0.0) == 0.0
        assert mm1_wait_quantile(lam, s, 0.69) == 0.0
        assert mm1_wait_quantile(lam, s, 0.70) == 0.0
        assert mm1_wait_quantile(lam, s, 0.71) > 0.0

    def test_quantiles_monotone_in_p_and_rho(self):
        levels = [0.5, 0.9, 0.99, 0.999]
        for lam in (0.08, 0.14, 0.2):
            qs = [mm1_sojourn_quantile(lam, 2.5, p) for p in levels]
            assert qs == sorted(qs)
            ws = [mm1_wait_quantile(lam, 2.5, p) for p in levels]
            assert ws == sorted(ws)
        # Heavier load pushes every positive quantile up.
        assert mm1_wait_quantile(0.2, 2.5, 0.99) > mm1_wait_quantile(
            0.08, 2.5, 0.99
        )

    def test_saturation_and_bad_levels_raise(self):
        with pytest.raises(AnalyticError):
            mm1_sojourn_quantile(0.4, 2.5, 0.99)  # rho = 1
        with pytest.raises(AnalyticError):
            mm1_wait_quantile(0.5, 2.5, 0.99)  # rho > 1
        with pytest.raises(AnalyticError):
            mm1_sojourn_quantile(0.2, 2.5, 1.0)  # p must be < 1
        with pytest.raises(AnalyticError):
            mm1_wait_quantile(0.2, 2.5, -0.1)

    def test_markov_bound_dominates_and_rejects_bad_levels(self):
        from repro.analytic.queueing import mm1_prediction

        prediction = mm1_prediction(0.2, 2.5)
        bound = mg1_wait_quantile_bound(prediction, 0.99)
        assert bound == pytest.approx(prediction.wait_ms / 0.01)
        assert bound >= mm1_wait_quantile(0.2, 2.5, 0.99)
        with pytest.raises(AnalyticError):
            mg1_wait_quantile_bound(prediction, 1.0)


class TestOpenQueueTailOracle:
    """Simulated p90/p99 vs the M/M/1 tail laws at rho <= 0.5."""

    @pytest.mark.parametrize("rho", RHO_LEVELS)
    def test_tail_quantiles_agree(self, rho):
        arrival_rate = rho / MEAN_SERVICE_MS
        duration = TARGET_SAMPLES / arrival_rate
        rows, observed = compare_open_queue_quantiles(
            arrival_rate,
            MEAN_SERVICE_MS,
            duration_ms=duration,
            seed=_seed("mm1-tail", rho),
        )
        assert observed.samples > 20_000
        # p90 and p99 of the sojourn always compare; the p90 wait row
        # only exists once the zero atom is below 90% (rho > 0.1).
        metrics = {row.metric for row in rows}
        assert {"sojourn_p90_ms", "sojourn_p99_ms", "wait_p99_ms"} <= metrics
        _assert_within(rows)

    def test_pinned_seed_reproduces_exactly(self):
        runs = [
            compare_open_queue_quantiles(
                0.2,
                MEAN_SERVICE_MS,
                duration_ms=60_000.0,
                seed=_seed("repro", 0.5),
            )[0]
            for __ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_rejects_unknown_levels(self):
        with pytest.raises(ValueError):
            compare_open_queue_quantiles(
                0.1, MEAN_SERVICE_MS, levels=(0.5,), seed=0
            )


class TestLinkTailBound:
    """The shared link's probe p99 obeys the Markov quantile bound.

    The link's service mixture is M/G/1, where no closed tail form
    exists; the distribution-free bound ``w_p <= Wq / (1 - p)`` still
    must hold for the simulated percentiles.
    """

    @pytest.mark.parametrize("rho", RHO_LEVELS)
    def test_probe_p99_below_markov_bound(self, rho):
        from repro.analytic.queueing import mg1_prediction, service_mix
        from repro.analytic.workbench import LOAD_FRAME_BYTES, PROBE_BYTES
        from repro.units import mbps_to_bytes_per_ms

        __, observed = compare_link_probe(
            rho, duration_ms=41_000.0, seed=_seed("link-tail", rho)
        )
        bytes_per_ms = mbps_to_bytes_per_ms(10.0)
        mix = service_mix(
            [
                (rho * bytes_per_ms / LOAD_FRAME_BYTES,
                 LOAD_FRAME_BYTES / bytes_per_ms),
                (1.0 / 5.0, PROBE_BYTES / bytes_per_ms),
            ]
        )
        prediction = mg1_prediction(
            mix.total_rate, mix.mean_ms, mix.second_moment
        )
        bound = mg1_wait_quantile_bound(prediction, 0.99)
        probe_floor, __ = predict_link_probe(rho)
        # The probe delay includes its own service + propagation on top
        # of the wait, so compare the waiting component only.
        overhead = probe_floor - prediction.wait_ms
        assert observed.delay_p99_ms - overhead <= bound
        assert observed.delay_p90_ms <= observed.delay_p99_ms
