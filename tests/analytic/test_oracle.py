"""The analytic oracle: simulation must agree with queueing theory.

The differential-equivalence suites prove the optimized kernel matches the
frozen reference byte-for-byte; this suite is the *independent* check that
either of them matches reality.  Every property asserts a simulated point
agrees with its closed-form prediction within :data:`TOLERANCE` in the
light-traffic regime (station utilization <= 0.5), where the models'
assumptions hold and finite windows sample tightly.

The suite runs on whichever kernel/recorder the process imported
(``REPRO_KERNEL`` / ``REPRO_OBS``); the CI ``analytic-oracle`` job runs it
under every combination, so a future perf PR that changes simulated
*behaviour* — not just speed — fails here even if it updates both kernels
consistently.

Determinism: every example derives its RNG seed from its own parameters,
so hypothesis re-runs and CI shards see identical sample paths; windows
are sized in *samples* (events), not wall time, so shrunk examples stay
fast and the sampling error stays inside the tolerance band with margin
(measured headroom is ~3x at the noisiest corners).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analytic import (
    compare_closed_loop,
    compare_link_probe,
    compare_open_queue,
)
from repro.obs import observe
from repro.sim.rng import derive_seed

#: The oracle band: simulation within 10% of theory in light traffic.
TOLERANCE = 0.10

#: Light-traffic utilizations for the open-queue and link oracles.
light_rhos = st.floats(min_value=0.1, max_value=0.5)

#: Service scales (ms); relative errors are scale-invariant, this just
#: proves nothing in the substrate secretly depends on the time unit.
service_scales = st.floats(min_value=0.5, max_value=20.0)

oracle_settings = settings(
    deadline=None,
    max_examples=8,
    suppress_health_check=[HealthCheck.too_slow],
)


def _seed(*parts) -> int:
    """A deterministic per-example seed from the example's parameters."""
    return derive_seed(0, "oracle:" + ":".join(repr(p) for p in parts))


def _assert_within(rows, tolerance=TOLERANCE):
    failures = [
        f"{row.metric}: predicted={row.predicted:.6g} "
        f"simulated={row.simulated:.6g} "
        f"err={row.relative_error * 100:.1f}%"
        for row in rows
        if row.relative_error > tolerance
    ]
    assert not failures, "simulation disagrees with theory: " + "; ".join(
        failures
    )


class TestOpenQueueOracle:
    """M/M/1 and M/D/1 vs Poisson arrivals on raw kernel timers."""

    @oracle_settings
    @given(rho=light_rhos, service=service_scales)
    def test_mm1_agrees_in_light_traffic(self, rho, service):
        arrival_rate = rho / service
        # Window sized in arrivals: ~12k samples holds sampling error ~3%.
        duration = 12_000 / arrival_rate
        rows, observed = compare_open_queue(
            arrival_rate,
            service,
            service="exponential",
            duration_ms=duration,
            seed=_seed("mm1", rho, service),
        )
        assert observed.samples > 10_000
        _assert_within([r for r in rows if r.metric != "wait_ms"])

    @oracle_settings
    @given(rho=light_rhos, service=service_scales)
    def test_md1_agrees_in_light_traffic(self, rho, service):
        arrival_rate = rho / service
        duration = 12_000 / arrival_rate
        rows, observed = compare_open_queue(
            arrival_rate,
            service,
            service="deterministic",
            duration_ms=duration,
            seed=_seed("md1", rho, service),
        )
        _assert_within([r for r in rows if r.metric != "wait_ms"])

    def test_mean_wait_agrees_at_moderate_load(self):
        """Wq itself (small denominator at light load) pins at rho = 0.5."""
        rows, __ = compare_open_queue(
            0.05, 10.0, duration_ms=400_000.0, seed=_seed("wait", 0.5)
        )
        _assert_within(rows)


class TestLinkOracle:
    """M/G/1 (P-K, mixed packet sizes) vs the real shared link."""

    @oracle_settings
    @given(rho=light_rhos)
    def test_probe_delay_agrees_in_light_traffic(self, rho):
        rows, observed = compare_link_probe(
            rho,
            duration_ms=41_000.0,  # ~8k Poisson probes at 5 ms mean spacing
            seed=_seed("link", rho),
        )
        assert observed.samples > 6_000
        _assert_within(rows)

    def test_measured_utilization_tracks_offered_load(self):
        """The link's busy fraction matches rho plus the probe traffic."""
        __, observed = compare_link_probe(
            0.4, duration_ms=41_000.0, seed=_seed("util", 0.4)
        )
        # Probes add 64 B / 5 ms = 12.8 B/ms on a 1250 B/ms wire (~1%).
        expected = 0.4 + 12.8 / 1250.0
        assert observed.utilization == pytest.approx(expected, rel=0.05)

    def test_agrees_under_observation_too(self):
        """The instrumented link path obeys the same physics.

        Runs the comparison inside an observation so the recorder selected
        by ``REPRO_OBS`` is on the hot path; the CI matrix runs this under
        both recorders and both kernels.
        """
        with observe():
            rows, __ = compare_link_probe(
                0.3, duration_ms=41_000.0, seed=_seed("obs", 0.3)
            )
        _assert_within(rows)


class TestClosedLoopOracle:
    """Exact MVA vs the fleet-shaped closed loop on the real kernel."""

    @oracle_settings
    @given(
        sessions=st.integers(min_value=1, max_value=10),
        think_ratio=st.floats(min_value=20.0, max_value=50.0),
    )
    def test_mva_agrees_in_light_traffic(self, sessions, think_ratio):
        service = 10.0
        think = think_ratio * service
        # Light traffic: population at most half the saturation knee.
        if sessions > 0.5 * (think_ratio + 1.0):
            sessions = max(1, int(0.5 * (think_ratio + 1.0)))
        duration = 3_000 * (think + 2 * service) / sessions
        rows, observed = compare_closed_loop(
            sessions,
            think_ms=think,
            service_ms=service,
            duration_ms=duration,
            seed=_seed("mva", sessions, think_ratio),
        )
        assert observed.completions > 2_000
        _assert_within(rows)

    def test_saturated_population_still_tracks_mva(self):
        """Past the knee the product-form model stays exact; so must we."""
        rows, __ = compare_closed_loop(
            32,
            think_ms=200.0,
            service_ms=10.0,
            duration_ms=300_000.0,
            seed=_seed("saturated", 32),
        )
        _assert_within(rows)
