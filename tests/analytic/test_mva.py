"""Unit and property tests for the exact MVA solver."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analytic import (
    saturation_population,
    solve_mva,
    solve_mva_curve,
)
from repro.errors import AnalyticError

thinks = st.floats(min_value=0.0, max_value=1000.0)
demand_lists = st.lists(
    st.floats(min_value=0.1, max_value=50.0), min_size=1, max_size=4
)
populations = st.integers(min_value=1, max_value=40)


class TestExactPoints:
    def test_single_customer_never_queues(self):
        s = solve_mva(1, 100.0, [10.0, 5.0])
        assert s.response_ms == pytest.approx(15.0)
        assert s.throughput == pytest.approx(1.0 / 115.0)
        assert s.station_response_ms == pytest.approx((10.0, 5.0))

    def test_no_think_single_station_saturates_immediately(self):
        # Z = 0, one station: every customer is always at the station, so
        # X = 1/D at every population and R(n) = n*D.
        for n in (1, 2, 5):
            s = solve_mva(n, 0.0, [4.0])
            assert s.throughput == pytest.approx(1.0 / 4.0)
            assert s.response_ms == pytest.approx(n * 4.0)

    def test_two_customer_hand_recursion(self):
        # Z=10, D=2: n=1: R=2, X=1/12, Q=1/6.
        # n=2: R=2*(1+1/6)=7/3, X=2/(10+7/3)=6/37, Q=14/37.
        s = solve_mva(2, 10.0, [2.0])
        assert s.response_ms == pytest.approx(7.0 / 3.0)
        assert s.throughput == pytest.approx(6.0 / 37.0)
        assert s.station_queue[0] == pytest.approx(14.0 / 37.0)


class TestProperties:
    @given(n=populations, think=thinks, demands=demand_lists)
    def test_asymptotic_bounds_hold(self, n, think, demands):
        s = solve_mva(n, think, demands)
        bottleneck = max(demands)
        assert s.throughput <= 1.0 / bottleneck + 1e-12
        assert s.throughput <= n / (think + sum(demands)) + 1e-12
        assert s.throughput > 0

    @given(n=populations, think=thinks, demands=demand_lists)
    def test_population_is_conserved(self, n, think, demands):
        # N = X*Z (thinking) + sum Q_i (at stations): Little over the cycle.
        s = solve_mva(n, think, demands)
        assert s.throughput * think + sum(s.station_queue) == pytest.approx(
            float(n)
        )

    @given(think=thinks, demands=demand_lists)
    def test_throughput_monotone_response_monotone(self, think, demands):
        curve = solve_mva_curve(30, think, demands)
        throughputs = [s.throughput for s in curve]
        responses = [s.response_ms for s in curve]
        assert all(b >= a - 1e-12 for a, b in zip(throughputs, throughputs[1:]))
        assert all(b >= a - 1e-12 for a, b in zip(responses, responses[1:]))

    @given(n=populations, think=thinks, demands=demand_lists)
    def test_utilizations_below_one(self, n, think, demands):
        s = solve_mva(n, think, demands)
        assert all(u <= 1.0 + 1e-12 for u in s.utilizations)

    @given(n=populations, think=thinks, demands=demand_lists)
    def test_curve_point_matches_direct_solve(self, n, think, demands):
        assert solve_mva_curve(n, think, demands)[-1] == solve_mva(
            n, think, demands
        )


class TestSaturation:
    def test_knee_formula(self):
        assert saturation_population(200.0, [10.0]) == pytest.approx(21.0)
        assert saturation_population(0.0, [4.0, 2.0]) == pytest.approx(1.5)

    @given(think=thinks, demands=demand_lists)
    def test_throughput_near_ceiling_beyond_knee(self, think, demands):
        """Well past N*, the bottleneck ceiling is approached from below."""
        knee = saturation_population(think, demands)
        n = max(2, int(knee * 4) + 2)
        s = solve_mva(n, think, demands)
        ceiling = 1.0 / max(demands)
        assert s.throughput <= ceiling + 1e-12
        assert s.throughput >= 0.5 * ceiling

    def test_validation(self):
        with pytest.raises(AnalyticError):
            saturation_population(-1.0, [1.0])
        with pytest.raises(AnalyticError):
            saturation_population(1.0, [])
        with pytest.raises(AnalyticError):
            saturation_population(1.0, [0.0])


class TestValidation:
    def test_zero_population_raises(self):
        with pytest.raises(AnalyticError):
            solve_mva(0, 1.0, [1.0])

    def test_negative_think_raises(self):
        with pytest.raises(AnalyticError):
            solve_mva(1, -1.0, [1.0])

    def test_no_stations_raises(self):
        with pytest.raises(AnalyticError):
            solve_mva(1, 1.0, [])

    def test_nonpositive_demand_raises(self):
        with pytest.raises(AnalyticError):
            solve_mva(1, 1.0, [1.0, 0.0])
