"""The hybrid tier against the closed forms: an independent oracle.

The differential suite (tests/scale/test_hybrid_equivalence.py) proves
hybrid == exact at small N; this suite proves hybrid == *theory* at the
populations where no exact run is affordable.  The bridge is
:func:`repro.scale.hybrid.simulate_hybrid_link_probe`: a 100k-source
batch-Poisson background is superposition-exact (N sources at λ is one
Poisson stream at N·λ), so the M/G/1 load+probe mixture closed form
applies unchanged, and the fluid integrator's probe delays must land on
the P–K prediction in light traffic — same 10% band, same rho range as
the pre-scale link oracle in test_oracle.py.
"""

import pytest

pytest.importorskip("numpy")

from repro.analytic.validate import predict_link_probe
from repro.analytic.workbench import LOAD_FRAME_BYTES, PROBE_BYTES
from repro.errors import NetworkError
from repro.scale.hybrid import simulate_hybrid_link_probe

#: The oracle band, shared with tests/analytic/test_oracle.py.
TOLERANCE = 0.10

#: Light-traffic loads: the regime where P-K sampling error is small
#: within a 30 s window (two seeds averaged for margin).
RHOS = (0.3, 0.5)

SEEDS = (0, 1)


def averaged(rho):
    rows = [simulate_hybrid_link_probe(rho, seed=seed) for seed in SEEDS]
    return {
        "delay": sum(r.mean_delay_ms for r in rows) / len(rows),
        "seen": sum(r.mean_seen_in_system for r in rows) / len(rows),
        "util": sum(r.utilization for r in rows) / len(rows),
    }


class TestHybridLinkOracle:
    @pytest.mark.parametrize("rho", RHOS)
    def test_probe_delay_matches_the_mg1_mixture(self, rho):
        predicted, _ = predict_link_probe(rho)
        simulated = averaged(rho)["delay"]
        assert simulated == pytest.approx(predicted, rel=TOLERANCE)

    @pytest.mark.parametrize("rho", RHOS)
    def test_workload_seen_matches_the_pk_wait(self, rho):
        """W(t) at probe send times is the P-K wait, in frame services."""
        bytes_per_ms = 10.0 * 1e6 / 8.0 / 1000.0
        frame_service = LOAD_FRAME_BYTES / bytes_per_ms
        probe_service = PROBE_BYTES / bytes_per_ms
        predicted_delay, _ = predict_link_probe(rho)
        predicted_wait = predicted_delay - probe_service - 0.05
        simulated = averaged(rho)["seen"] * frame_service
        assert simulated == pytest.approx(predicted_wait, rel=TOLERANCE)

    @pytest.mark.parametrize("rho", RHOS)
    def test_utilization_reports_offered_plus_probe_load(self, rho):
        probe_share = (PROBE_BYTES / 5.0) / (10.0 * 1e6 / 8.0 / 1000.0)
        assert averaged(rho)["util"] == pytest.approx(
            rho + probe_share, abs=0.02
        )

    def test_validation(self):
        with pytest.raises(NetworkError):
            simulate_hybrid_link_probe(0.0)
        with pytest.raises(NetworkError):
            simulate_hybrid_link_probe(1.0)
        with pytest.raises(NetworkError):
            simulate_hybrid_link_probe(0.3, users=0)
        with pytest.raises(NetworkError):
            simulate_hybrid_link_probe(
                0.3, duration_ms=100.0, warmup_ms=200.0
            )
