"""The hybrid tier against the closed forms: an independent oracle.

The differential suites (tests/scale/test_hybrid_equivalence.py and
test_closed_equivalence.py) prove hybrid == exact at small N; this suite
proves hybrid == *theory* at the populations where no exact run is
affordable.  Two bridges:

* **Open tier**: :func:`repro.scale.hybrid.simulate_hybrid_link_probe` —
  a 100k-source batch-Poisson background is superposition-exact (N
  sources at λ is one Poisson stream at N·λ), so the M/G/1 load+probe
  mixture closed form applies unchanged, and the fluid integrator's
  probe delays must land on the P–K prediction in light traffic — same
  10% band, same rho range as the pre-scale link oracle in
  test_oracle.py.
* **Closed tier**: a :class:`~repro.net.loadgen.BatchClosedLoopSampler`
  over a shared single-server echo station *is* the machine-repairman
  network the exact MVA recursion solves (think+type = the Z delay,
  the echo station = the queueing center), so its simulated X(N) and
  R(N) = L/X must track :func:`~repro.analytic.mva.solve_mva_curve`
  across the knee, and the knee backed out of the simulated curve via
  the asymptote intercepts must land on
  :func:`~repro.analytic.mva.saturation_population` within one user.
"""

from functools import lru_cache

import pytest

pytest.importorskip("numpy")

from repro.analytic.mva import saturation_population, solve_mva_curve
from repro.analytic.validate import predict_link_probe
from repro.analytic.workbench import LOAD_FRAME_BYTES, PROBE_BYTES
from repro.errors import NetworkError
from repro.net.loadgen import BatchClosedLoopSampler
from repro.scale.hybrid import simulate_hybrid_link_probe

#: The oracle band, shared with tests/analytic/test_oracle.py.
TOLERANCE = 0.10

#: Light-traffic loads: the regime where P-K sampling error is small
#: within a 30 s window (two seeds averaged for margin).
RHOS = (0.3, 0.5)

SEEDS = (0, 1)


def averaged(rho):
    rows = [simulate_hybrid_link_probe(rho, seed=seed) for seed in SEEDS]
    return {
        "delay": sum(r.mean_delay_ms for r in rows) / len(rows),
        "seen": sum(r.mean_seen_in_system for r in rows) / len(rows),
        "util": sum(r.utilization for r in rows) / len(rows),
    }


class TestHybridLinkOracle:
    @pytest.mark.parametrize("rho", RHOS)
    def test_probe_delay_matches_the_mg1_mixture(self, rho):
        predicted, _ = predict_link_probe(rho)
        simulated = averaged(rho)["delay"]
        assert simulated == pytest.approx(predicted, rel=TOLERANCE)

    @pytest.mark.parametrize("rho", RHOS)
    def test_workload_seen_matches_the_pk_wait(self, rho):
        """W(t) at probe send times is the P-K wait, in frame services."""
        bytes_per_ms = 10.0 * 1e6 / 8.0 / 1000.0
        frame_service = LOAD_FRAME_BYTES / bytes_per_ms
        probe_service = PROBE_BYTES / bytes_per_ms
        predicted_delay, _ = predict_link_probe(rho)
        predicted_wait = predicted_delay - probe_service - 0.05
        simulated = averaged(rho)["seen"] * frame_service
        assert simulated == pytest.approx(predicted_wait, rel=TOLERANCE)

    @pytest.mark.parametrize("rho", RHOS)
    def test_utilization_reports_offered_plus_probe_load(self, rho):
        probe_share = (PROBE_BYTES / 5.0) / (10.0 * 1e6 / 8.0 / 1000.0)
        assert averaged(rho)["util"] == pytest.approx(
            rho + probe_share, abs=0.02
        )

    def test_validation(self):
        with pytest.raises(NetworkError):
            simulate_hybrid_link_probe(0.0)
        with pytest.raises(NetworkError):
            simulate_hybrid_link_probe(1.0)
        with pytest.raises(NetworkError):
            simulate_hybrid_link_probe(0.3, users=0)
        with pytest.raises(NetworkError):
            simulate_hybrid_link_probe(
                0.3, duration_ms=100.0, warmup_ms=200.0
            )


#: The machine-repairman network the MVA recursion solves exactly:
#: think 190 ms + type 10 ms = a 200 ms delay center, one shared echo
#: server at 10 ms per visit.  Knee N* = (Z + D)/D = 21 users.
MVA_THINK_MS = 190.0
MVA_TYPE_MS = 10.0
MVA_ECHO_MS = 10.0
MVA_Z_MS = MVA_THINK_MS + MVA_TYPE_MS
MVA_TAU_MS = 2.0
MVA_POPULATIONS = (5, 12, 21, 40)
MVA_SEEDS = (3, 17, 29)
MVA_WARMUP_TICKS = 20_000  # 40 s: the shared station starts cold
MVA_MEASURE_TICKS = 300_000  # 600 s: CLT spread well under tolerance


@lru_cache(maxsize=None)
def simulated_closed_point(population):
    """Seed-averaged (X per ms, R ms) from the vectorized chain."""
    xs, rs = [], []
    for seed in MVA_SEEDS:
        sampler = BatchClosedLoopSampler(
            MVA_THINK_MS,
            MVA_TYPE_MS,
            MVA_ECHO_MS,
            MVA_TAU_MS,
            sources=population,
            seed=seed,
            burst_keys=1.0,
            echo_servers=1,
        )
        sampler.advance(MVA_WARMUP_TICKS)
        sampler.ticks_sampled = 0
        sampler.keystrokes_total = 0
        sampler.completions_total = 0
        sampler.thinking_ticks = 0
        sampler.typing_ticks = 0
        sampler.blocked_ticks = 0
        sampler.advance(MVA_MEASURE_TICKS)
        throughput = sampler.throughput_per_ms
        xs.append(throughput)
        rs.append(sampler.mean_blocked / throughput)  # Little: R = L/X
    return sum(xs) / len(xs), sum(rs) / len(rs)


class TestClosedLoopMvaOracle:
    """X(N)/R(N) from the count chain vs the exact MVA recursion.

    Tolerances calibrated to the tau-leap: X is nearly unbiased (< 1.5%
    observed across the grid); R carries the ~tau/2 within-tick smear,
    largest in light traffic where R itself is small (~8% at N = 5),
    vanishing past the knee where queueing dominates.
    """

    X_TOLERANCE = 0.03
    R_TOLERANCE = 0.12

    @pytest.fixture(scope="class")
    def mva_curve(self):
        solutions = solve_mva_curve(
            max(MVA_POPULATIONS), MVA_Z_MS, [MVA_ECHO_MS]
        )
        return {s.population: s for s in solutions}

    @pytest.mark.parametrize("population", MVA_POPULATIONS)
    def test_throughput_lands_on_the_recursion(self, population, mva_curve):
        simulated, _ = simulated_closed_point(population)
        assert simulated == pytest.approx(
            mva_curve[population].throughput, rel=self.X_TOLERANCE
        )

    @pytest.mark.parametrize("population", MVA_POPULATIONS)
    def test_response_lands_on_the_recursion(self, population, mva_curve):
        _, simulated = simulated_closed_point(population)
        assert simulated == pytest.approx(
            mva_curve[population].response_ms, rel=self.R_TOLERANCE
        )

    def test_simulated_knee_matches_saturation_population(self):
        """Back the knee out of the simulated curve alone.

        Light-traffic intercept: N/X(N) - R(N) estimates Z.  Heavy-
        traffic asymptote: 1/X(N) estimates D.  Their ratio must land on
        the analytic knee within one user — the cross-check that the
        simulated curve bends exactly where closed-network theory says.
        """
        light_n = MVA_POPULATIONS[0]
        heavy_n = MVA_POPULATIONS[-1]
        light_x, light_r = simulated_closed_point(light_n)
        heavy_x, _ = simulated_closed_point(heavy_n)
        z_hat = light_n / light_x - light_r
        d_hat = 1.0 / heavy_x
        knee_hat = (z_hat + d_hat) / d_hat
        knee = saturation_population(MVA_Z_MS, [MVA_ECHO_MS])
        assert knee == 21.0
        assert abs(knee_hat - knee) < 1.0

    def test_throughput_respects_the_asymptotic_bounds(self, mva_curve):
        """X(N) <= min(N/(Z+D), 1/D) — the bound the tables overlay."""
        for population in MVA_POPULATIONS:
            simulated, _ = simulated_closed_point(population)
            bound = min(
                population / (MVA_Z_MS + MVA_ECHO_MS), 1.0 / MVA_ECHO_MS
            )
            assert simulated <= 1.01 * bound
