"""Differential equivalence: optimized kernel vs. the frozen reference.

Every CLI experiment runs twice in subprocesses — once on the optimized
kernel (the default) and once with ``REPRO_KERNEL=reference`` selecting the
frozen seed kernel — and every artifact the run produces (stdout, CSV
series, trace JSONL, metrics JSON) must be **byte-identical** between the
two.  This is the lock on the ISSUE 4 speedup: the fast path is only
allowed to be fast, never different.

Set ``REPRO_EQUIV_JOBS=4`` (the CI differential job does) to re-run the
whole suite through the process-pool executor path as well.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = str(REPO_ROOT / "src")

#: Extra --jobs N to push both kernels through the parallel executor.
JOBS = os.environ.get("REPRO_EQUIV_JOBS", "1")

CHAOS_SPEC = "loss=0.05,corrupt=0.01,jitter_ms=2,outage=5000-6000"


def _run_cli(args, kernel, out_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    if kernel == "reference":
        env["REPRO_KERNEL"] = "reference"
    else:
        env.pop("REPRO_KERNEL", None)
    stdout_path = out_dir / "stdout.txt"
    with open(stdout_path, "w") as stdout:
        proc = subprocess.run(
            [sys.executable, "-m", "repro", *args],
            stdout=stdout,
            stderr=subprocess.PIPE,
            env=env,
            cwd=str(REPO_ROOT),
            text=True,
        )
    assert proc.returncode == 0, (
        f"{kernel} kernel run failed for {args}:\n{proc.stderr[-2000:]}"
    )


def _artifact_map(root: Path):
    """Every regular file under *root*, keyed by relative path."""
    return {
        str(path.relative_to(root)): path
        for path in sorted(root.rglob("*"))
        if path.is_file()
    }


def _assert_dirs_identical(fast_dir: Path, ref_dir: Path):
    fast_files = _artifact_map(fast_dir)
    ref_files = _artifact_map(ref_dir)
    assert set(fast_files) == set(ref_files), (
        "kernel paths produced different artifact sets: "
        f"only-fast={sorted(set(fast_files) - set(ref_files))} "
        f"only-reference={sorted(set(ref_files) - set(fast_files))}"
    )
    for rel, fast_path in fast_files.items():
        assert fast_path.read_bytes() == ref_files[rel].read_bytes(), (
            f"artifact {rel} differs between optimized and reference kernels"
        )


@pytest.fixture(scope="module")
def equivalence_runs(tmp_path_factory):
    """One batched run of every experiment per (command, kernel) pair.

    ``run all`` exercises the untraced hot path (the one the speedup claims
    target); ``trace all`` exercises the instrumented path and emits the
    trace JSONL + metrics JSON artifacts.  Batching all experiments into a
    single CLI invocation keeps the suite to four subprocesses.
    """
    root = tmp_path_factory.mktemp("kernel_equiv")
    layout = {}
    for command in ("run", "trace"):
        for kernel in ("fast", "reference"):
            out_dir = root / f"{command}-{kernel}"
            csv_dir = out_dir / "csv"
            out_dir.mkdir()
            args = [command, "all", "--seed", "1", "--csv", str(csv_dir)]
            if JOBS != "1":
                args += ["--jobs", JOBS]
            if command == "trace":
                args += ["--trace-dir", str(out_dir / "artifacts")]
            _run_cli(args, kernel, out_dir)
            layout[(command, kernel)] = out_dir
    return layout


@pytest.mark.parametrize("command", ["run", "trace"])
def test_stdout_byte_identical(equivalence_runs, command):
    fast = (equivalence_runs[(command, "fast")] / "stdout.txt").read_bytes()
    ref = (equivalence_runs[(command, "reference")] / "stdout.txt").read_bytes()
    assert fast == ref


@pytest.mark.parametrize("command", ["run", "trace"])
def test_csv_artifacts_byte_identical(equivalence_runs, command):
    _assert_dirs_identical(
        equivalence_runs[(command, "fast")] / "csv",
        equivalence_runs[(command, "reference")] / "csv",
    )


def test_trace_and_metrics_artifacts_byte_identical(equivalence_runs):
    fast_dir = equivalence_runs[("trace", "fast")] / "artifacts"
    ref_dir = equivalence_runs[("trace", "reference")] / "artifacts"
    fast_files = _artifact_map(fast_dir)
    # Sanity: the batched run really produced per-experiment trace+metrics.
    kinds = {Path(rel).suffix for rel in fast_files}
    assert ".jsonl" in kinds and ".json" in kinds
    assert any("fig8" in rel for rel in fast_files)
    _assert_dirs_identical(fast_dir, ref_dir)


def test_faulted_chaos_byte_identical(tmp_path):
    """The chaos experiment under an active fault plan, both kernels."""
    dirs = {}
    for kernel in ("fast", "reference"):
        out_dir = tmp_path / kernel
        out_dir.mkdir()
        _run_cli(
            [
                "trace", "chaos", "--seed", "1",
                "--faults", CHAOS_SPEC, "--fault-seed", "7",
                "--csv", str(out_dir / "csv"),
                "--trace-dir", str(out_dir / "artifacts"),
            ],
            kernel,
            out_dir,
        )
        dirs[kernel] = out_dir
    assert (
        (dirs["fast"] / "stdout.txt").read_bytes()
        == (dirs["reference"] / "stdout.txt").read_bytes()
    )
    _assert_dirs_identical(dirs["fast"], dirs["reference"])


def test_reference_toggle_actually_selects_reference_kernel():
    """REPRO_KERNEL=reference must swap the implementation, not just a flag.

    Otherwise every diff above compares the optimized kernel to itself.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_KERNEL"] = "reference"
    probe = (
        "import repro.sim.engine as e, repro.sim.engine_reference as r;"
        "print(e.Simulator is r.Simulator, e.KERNEL)"
    )
    out = subprocess.run(
        [sys.executable, "-c", probe],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
    )
    assert out.returncode == 0, out.stderr
    assert out.stdout.split() == ["True", "reference"]
    env.pop("REPRO_KERNEL")
    out = subprocess.run(
        [sys.executable, "-c", probe],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
    )
    assert out.returncode == 0, out.stderr
    assert out.stdout.split() == ["False", "fast"]
