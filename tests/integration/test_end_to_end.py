"""Integration tests: the paper's findings reproduced through the full stack."""

import pytest

from repro.core import ServerConfig, ThinClientServer
from repro.cpu import run_idle_experiment
from repro.memory import run_memory_latency_experiment
from repro.net import run_ping_experiment
from repro.workloads import (
    SinkFleet,
    run_frame_count_sweep,
    run_protocol_comparison,
    run_stall_experiment,
)


class TestHeadlineFindings:
    """Each of the paper's abstract claims, end to end."""

    def test_latency_up_to_100x_threshold_under_load(self):
        """'we observed user-perceived latencies up to 100 times beyond
        the threshold of perception' — the memory pathology gets there."""
        tse = run_memory_latency_experiment("nt_tse", 1.2, runs=10, seed=0)
        worst_factor = tse.summary.maximum / 100.0
        assert worst_factor > 20.0  # tens of times beyond perception

    def test_tse_performs_particularly_poorly_under_cpu_load(self):
        (tse,) = run_stall_experiment("nt_tse", [15], duration_ms=30_000.0)
        (linux,) = run_stall_experiment("linux", [15], duration_ms=30_000.0)
        assert tse.average_stall_ms > 3 * linux.average_stall_ms

    def test_rdp_outperforms_x_by_up_to_six_times(self):
        taps = run_protocol_comparison(seed=0)
        ratio = taps["x"].trace().total_bytes / taps["rdp"].trace().total_bytes
        assert ratio > 4.0  # paper: ~6x

    def test_bitmap_cache_reduces_animation_load_over_an_order_of_magnitude(self):
        """'can reduce network load in these cases by up to 2000%'"""
        rows = dict(run_frame_count_sweep([60, 70], duration_ms=45_000.0))
        assert rows[70] / rows[60] > 20.0

    def test_idle_systems_induce_unnecessary_latency(self):
        """'even in the idle state these systems induce unnecessary latency'"""
        tse = run_idle_experiment("nt_tse", 60_000.0, seed=1)
        assert any(d > 100.0 for d in tse.event_durations_ms)


class TestMultiUserServer:
    def test_ten_typing_users_on_one_server(self):
        server = ThinClientServer(ServerConfig.tse(), seed=4)
        sessions = [server.connect(f"user{i}") for i in range(10)]
        server.run(1_000.0)
        for session in sessions:
            session.start_typing()
        server.run(10_000.0)
        for session in sessions:
            session.stop_typing()
        server.run(2_000.0)
        for session in sessions:
            assert len(session.client.latencies_ms) > 100
        # 10 typing users don't saturate CPU; echoes stay fast on average.
        all_lat = [
            l for s in sessions for l in s.client.latencies_ms
        ]
        assert sum(all_lat) / len(all_lat) < 150.0

    def test_cpu_load_degrades_interactive_latency_through_full_stack(self):
        quiet = ThinClientServer(ServerConfig.tse(), seed=5)
        loaded = ThinClientServer(ServerConfig.tse(), seed=5)
        SinkFleet(loaded.cpu, 12, foreground=True)
        results = {}
        for name, server in (("quiet", quiet), ("loaded", loaded)):
            session = server.connect("u")
            server.run(1_000.0)
            session.start_typing()
            server.run(8_000.0)
            session.stop_typing()
            server.run(3_000.0)
            results[name] = session.client.assessment()
        assert (
            results["loaded"].summary.average
            > 3 * results["quiet"].summary.average
        )
        assert results["loaded"].perceptible_fraction > 0.3

    def test_session_memory_accumulates_per_login(self):
        server = ThinClientServer(ServerConfig.tse(), seed=6)
        before = server.vm.pool.used_frames
        server.connect("a")
        server.connect("b")
        after = server.vm.pool.used_frames
        # Two TSE logins: 2 x 3,244 KB = ~1622 frames.
        assert after - before == pytest.approx(2 * 811, abs=4)


class TestNetworkSaturationEndToEnd:
    def test_network_knee_confirms_figures_8_and_9(self):
        results = run_ping_experiment(
            [2.0, 9.6], duration_ms=30_000.0, seed=7
        )
        low, high = results
        assert high.mean_rtt_ms > 10 * low.mean_rtt_ms
        assert high.rtt_variance > 100 * low.rtt_variance


class TestMemoryPathologyThroughFullStack:
    def test_streamer_delays_the_next_keystroke_end_to_end(self):
        """§5.2 through the composed server: page the session out, then
        measure the user's next keystroke at the client."""
        from repro.workloads import MemoryHog

        server = ThinClientServer(
            ServerConfig.tse(include_idle_activity=False), seed=9
        )
        session = server.connect("reader")
        server.run(1_000.0)
        # Warm interaction: fast echoes.
        session.press_key()
        server.run(1_000.0)
        fast = session.client.latencies_ms[-1]

        # The streaming hog pages everything (including the session) out.
        hog = MemoryHog(server.vm, server.vm.pool.total_frames * 4096 * 2)
        hog.run_to_completion()
        assert session.memory.resident_pages == 0

        session.press_key()
        server.run(5_000.0)
        slow = session.client.latencies_ms[-1]
        # Four page-ins at ~13ms each dominate the echo.
        assert slow > fast + 30.0
        # The page-ins also brought the hot pages back: next echo is fast.
        session.press_key()
        server.run(5_000.0)
        assert session.client.latencies_ms[-1] < slow / 2


class TestFaultedWireEndToEnd:
    """The composed server on a bad wire: faults, recovery, degradation."""

    def test_typing_survives_a_lossy_wire(self):
        from repro.net import FaultPlan, FaultyLink

        clean = ThinClientServer(ServerConfig.tse(), seed=11)
        faulted = ThinClientServer(
            ServerConfig.tse(faults=FaultPlan(loss=0.1, seed=11)), seed=11
        )
        assert isinstance(faulted.link, FaultyLink)
        results = {}
        for name, server in (("clean", clean), ("faulted", faulted)):
            session = server.connect("u")
            server.run(1_000.0)
            session.start_typing()
            server.run(8_000.0)
            session.stop_typing()
            server.run(4_000.0)
            results[name] = session
        faulted_session = results["faulted"]
        # The reliable transport recovered the losses end to end.
        assert faulted_session.connection.reliable
        assert faulted_session.connection.retransmits > 0
        assert len(faulted_session.client.latencies_ms) > 100
        # Recovery costs latency; the faulted user waits longer on average.
        mean = lambda xs: sum(xs) / len(xs)
        assert mean(faulted_session.client.latencies_ms) > mean(
            results["clean"].client.latencies_ms
        )

    def test_corruption_triggers_rdp_cache_fallback_in_situ(self):
        from repro.net import FaultPlan
        from repro.protocols.rdp import RDP_CORRUPTION_BYPASS_DRAWS

        server = ThinClientServer(
            ServerConfig.tse(faults=FaultPlan(corrupt=0.5, seed=3)), seed=3
        )
        session = server.connect("u")
        server.run(1_000.0)
        for __ in range(20):
            session.press_key()
        server.run(5_000.0)
        state = session.protocol.degradation_state()
        assert 0 < state["cache_bypass_draws"] <= RDP_CORRUPTION_BYPASS_DRAWS

    def test_clean_config_builds_the_plain_stack(self):
        from repro.net import FaultyLink

        server = ThinClientServer(ServerConfig.tse(), seed=1)
        session = server.connect("u")
        assert not isinstance(server.link, FaultyLink)
        assert not session.connection.reliable
