"""Smoke tests: every example script parses, imports, and defines main().

Full runs take minutes (they reproduce multiple figures); the unit suite
verifies the scripts are importable and structured correctly.  The
examples themselves are exercised in CI-style by running them directly.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_module(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_expected_example_set():
    names = {p.stem for p in EXAMPLE_FILES}
    assert {
        "quickstart",
        "capacity_planning",
        "animation_cache_study",
        "scheduler_comparison",
        "memory_pathology",
        "framework_tour",
    } <= names
    assert len(EXAMPLE_FILES) >= 6


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_imports_and_has_main(path):
    module = load_module(path)
    assert callable(getattr(module, "main", None)), path.stem
    assert module.__doc__, "examples must explain themselves"
