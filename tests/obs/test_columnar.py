"""Differential properties of the columnar recorder and template encoder.

The columnar pipeline (``Tracer`` → ``CompactSnapshot`` →
``_compact_trace_lines``) must be observationally identical to the seed
pipeline (``ReferenceTracer`` → per-event ``json.dumps``): same kept
events, same drop accounting, same artifact bytes.  These tests drive both
sides with the same adversarial inputs — hypothesis-generated shapes,
scalars (including NaN/inf floats and escape-heavy strings), caps, and
reserved-name collisions — and require byte equality, not just structural
equality.
"""

import math
import os
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    CompactSnapshot,
    Histogram,
    NullTracer,
    Observation,
    ReferenceTracer,
    Tracer,
)
from repro.obs.metrics import DEFAULT_BOUNDS_MS
from repro.obs.serialize import trace_lines, write_run_artifacts
from repro.obs import tracer as tracer_mod

# -- event-stream strategies ------------------------------------------------

#: Scalars a trace field may carry, including values the template encoder
#: must punt to json.dumps: non-finite floats, quotes/backslashes/control
#: characters/non-ASCII in strings, bools (an int subclass), huge ints.
scalars = st.one_of(
    st.integers(min_value=-(10**20), max_value=10**20),
    st.floats(allow_nan=True, allow_infinity=True),
    st.text(max_size=12),
    st.sampled_from(["", "plain", 'quo"te', "back\\slash", "new\nline", "√", "%s %"]),
    st.booleans(),
)

#: Field-name tuples for the positional channel API.  Deliberately includes
#: the reserved tag keys (t/kind/sweep/point) and duplicates, both of which
#: must disable the template and fall back to the dict encoder.
channel_names = st.lists(
    st.sampled_from(["x", "y", "z", "proc", "t", "kind", "sweep", "point"]),
    max_size=4,
).map(tuple)

kinds = st.sampled_from(["a", "cpu.switch", "k%d", 'odd"kind', "√kind"])

#: One recorded call: (kind, names, values) applied via channel().
channel_events = st.tuples(kinds, channel_names, st.lists(scalars, max_size=4)).map(
    lambda e: (e[0], e[1], tuple(e[2][: len(e[1])] + [0] * (len(e[1]) - len(e[2]))))
)


def _replay(recorder, events):
    """Apply the same channel calls to *recorder*, reusing channels per shape."""
    channels = {}
    for i, (kind, names, values) in enumerate(events):
        ch = channels.get((kind, names))
        if ch is None:
            ch = channels[(kind, names)] = recorder.channel(kind, *names)
        ch(float(i), *values)


def _events_equal(a, b):
    """Event-list equality that treats NaN as equal to itself."""
    sa, sb = pickle.dumps(a), pickle.dumps(b)
    if sa == sb:
        return True
    return repr(a) == repr(b)


class TestDropPathDeterminism:
    """Satellite: the cap drops the identical tail on both recorders."""

    @settings(max_examples=150, deadline=None)
    @given(
        events=st.lists(channel_events, max_size=20),
        max_events=st.integers(min_value=0, max_value=25),
    )
    def test_kept_prefix_and_dropped_count_match_reference(
        self, events, max_events
    ):
        columnar = Tracer(max_events=max_events)
        reference = ReferenceTracer(max_events=max_events)
        _replay(columnar, events)
        _replay(reference, events)
        assert len(columnar) == len(reference)
        assert columnar.dropped == reference.dropped
        assert columnar.dropped == max(0, len(events) - max_events)
        assert _events_equal(columnar.events, reference.events)

    @settings(max_examples=50, deadline=None)
    @given(events=st.lists(channel_events, max_size=12))
    def test_emit_and_channel_agree(self, events):
        """emit(**fields) and channel(...) record identically (safe shapes)."""
        via_emit = Tracer()
        via_channel = Tracer()
        for i, (kind, names, values) in enumerate(events):
            # emit() passes fields as kwargs, so only unique non-reserved
            # names can go that route.
            if len(set(names)) != len(names) or {"t", "kind"} & set(names):
                continue
            via_emit.emit(float(i), kind, **dict(zip(names, values)))
            via_channel.channel(kind, *names)(float(i), *values)
        assert _events_equal(via_emit.events, via_channel.events)


class TestTemplateEncoderRoundTrip:
    """The template JSONL encoder is byte-identical to the dict encoder."""

    @settings(max_examples=150, deadline=None)
    @given(
        events=st.lists(channel_events, max_size=16),
        sweep=st.sampled_from(["s", 'we"ird', "√sweep", "%d %s", ""]),
    )
    def test_columnar_lines_match_reference_lines(self, events, sweep):
        obs_columnar = Observation()
        reference = ReferenceTracer()
        _replay(obs_columnar.tracer, events)
        _replay(reference, events)
        reference_snapshot = {
            "events": reference.events,
            "dropped_events": reference.dropped,
            "metrics": obs_columnar.metrics.snapshot(),
        }
        fast = list(trace_lines({sweep: [obs_columnar.snapshot_compact()]}))
        slow = list(trace_lines({sweep: [reference_snapshot]}))
        assert fast == slow

    def test_duplicate_field_names_fall_back(self):
        tracer = Tracer()
        tracer.channel("k", "x", "x")(1.0, 1, 2)
        snap = CompactSnapshot(
            tracer.snapshot_columns(), tracer.snapshot_order(), 0, {}
        )
        (line,) = trace_lines({"s": [snap]})
        # The dict path resolves duplicates by last-write-wins.
        assert line == '{"kind":"k","point":0,"sweep":"s","t":1.0,"x":2}'

    def test_reserved_key_collision_falls_back(self):
        tracer = Tracer()
        tracer.channel("k", "sweep")(2.0, "hijack")
        snap = CompactSnapshot(
            tracer.snapshot_columns(), tracer.snapshot_order(), 0, {}
        )
        (line,) = trace_lines({"real": [snap]})
        # Tag keys win over event fields, matching the dict encoder.
        assert '"sweep":"real"' in line


class TestCompactSnapshotTransport:
    def _snapshot(self, n=3):
        obs = Observation()
        ch = obs.channel("k", "i", "name")
        for i in range(n):
            ch(float(i), i, f"n{i}")
        obs.metrics.counter("c").inc(2)
        return obs.snapshot_compact()

    def test_pickle_round_trip_small_is_raw(self):
        snap = self._snapshot()
        assert snap.__getstate__()[0] == "r"
        clone = pickle.loads(pickle.dumps(snap))
        assert clone == snap
        assert clone.to_dict() == snap.to_dict()

    def test_pickle_round_trip_large_is_compressed(self):
        snap = self._snapshot(n=5000)
        assert snap.__getstate__()[0] == "z"
        clone = pickle.loads(pickle.dumps(snap))
        assert clone == snap
        assert clone.event_count == 5000

    def test_dict_style_access(self):
        snap = self._snapshot()
        assert snap["metrics"]["counters"] == {"c": 2}
        assert snap["dropped_events"] == 0
        assert snap["events"][0] == {"t": 0.0, "kind": "k", "i": 0, "name": "n0"}
        with pytest.raises(KeyError):
            snap["nope"]

    def test_metrics_access_never_materializes(self):
        snap = self._snapshot()
        _ = snap["metrics"], snap["dropped_events"], snap.event_count
        assert snap._dict is None

    def test_to_dict_matches_classic_snapshot(self):
        obs = Observation()
        obs.trace(1.0, "e", x=1)
        obs.metrics.gauge("g").set(4)
        assert obs.snapshot_compact().to_dict() == obs.snapshot()


class TestRecorderSelection:
    def test_reference_recorder_via_module_switch(self, monkeypatch):
        monkeypatch.setattr(tracer_mod, "RECORDER", "reference")
        obs = Observation()
        assert isinstance(obs.tracer, ReferenceTracer)
        obs.trace(1.0, "e", x=1)
        # No columnar form: the compact snapshot degrades to the classic dict.
        snap = obs.snapshot_compact()
        assert isinstance(snap, dict)
        assert snap == obs.snapshot()

    def test_columnar_is_the_default(self):
        obs = Observation()
        assert type(obs.tracer) is Tracer
        assert isinstance(obs.snapshot_compact(), CompactSnapshot)

    def test_null_tracer_channel_discards(self):
        tracer = NullTracer()
        tracer.channel("k", "x")(1.0, 1)
        tracer.emit(2.0, "k", x=2)
        assert tracer.events == []
        assert tracer.dropped == 0


class TestHistogramBoundaries:
    """Satellite: bisect bucketing matches the linear first-edge scan."""

    @staticmethod
    def _linear_bucket(bounds, v):
        for i, edge in enumerate(bounds):
            if v <= edge:
                return i
        return len(bounds)

    def test_every_default_edge_is_inclusive(self):
        for i, edge in enumerate(DEFAULT_BOUNDS_MS):
            h = Histogram("h")
            h.observe(edge)
            assert h.bucket_counts[i] == 1, f"edge {edge} landed off-bucket"

    def test_boundary_neighborhoods(self):
        values = [0.0, -1.0, math.inf]
        for edge in DEFAULT_BOUNDS_MS:
            values += [edge, math.nextafter(edge, -math.inf), math.nextafter(edge, math.inf)]
        for v in values:
            h = Histogram("h")
            h.observe(v)
            expected = self._linear_bucket(DEFAULT_BOUNDS_MS, v)
            assert h.bucket_counts[expected] == 1, f"value {v}"

    @settings(max_examples=200, deadline=None)
    @given(v=st.floats(allow_nan=False, min_value=-1e7, max_value=1e7))
    def test_bisect_equals_linear_scan(self, v):
        h = Histogram("h")
        h.observe(v)
        assert h.bucket_counts[self._linear_bucket(h.bounds, v)] == 1


class TestStreamingArtifacts:
    """Satellite: write_run_artifacts streams and stays byte-identical."""

    def test_trace_lines_is_a_generator(self):
        gen = trace_lines({})
        assert iter(gen) is gen
        assert list(gen) == []

    def test_artifacts_byte_identical_to_reference_pipeline(self, tmp_path):
        def build(recorder_cls):
            obs = Observation()
            obs.tracer = recorder_cls()
            obs.trace = obs.tracer.emit
            ch = obs.channel("net.drop", "link", "bytes")
            for i in range(50):
                ch(float(i) / 3.0, "ether0", i * 117)
                obs.trace(float(i), "tick", n=i, label=f"v{i}")
            obs.metrics.counter("c").inc(7)
            obs.metrics.histogram("h").observe(4.0)
            return obs

        paths = {}
        for tag, cls in (("columnar", Tracer), ("reference", ReferenceTracer)):
            obs = build(cls)
            snapshot = (
                obs.snapshot_compact() if tag == "columnar" else obs.snapshot()
            )
            out = tmp_path / tag
            paths[tag] = write_run_artifacts(
                str(out), "exp", 1, {"sweep": [snapshot]}
            )
        for a, b in zip(paths["columnar"], paths["reference"]):
            with open(a, "rb") as fa, open(b, "rb") as fb:
                assert fa.read() == fb.read(), os.path.basename(a)
