"""Tests for the tracer, the observation unit, and the ambient context."""

import pickle

import pytest

from repro.obs import (
    DEFAULT_MAX_EVENTS,
    NullTracer,
    Observation,
    ObservabilityError,
    Tracer,
    current_observation,
    observe,
)


class TestTracer:
    def test_records_events_in_emission_order(self):
        tracer = Tracer()
        tracer.emit(1.0, "a", x=1)
        tracer.emit(2.0, "b", y="z")
        assert tracer.events == [
            {"t": 1.0, "kind": "a", "x": 1},
            {"t": 2.0, "kind": "b", "y": "z"},
        ]
        assert len(tracer) == 2

    def test_caps_events_and_counts_the_dropped_tail(self):
        tracer = Tracer(max_events=2)
        for i in range(5):
            tracer.emit(float(i), "tick")
        assert len(tracer.events) == 2
        assert tracer.dropped == 3
        # The *first* events survive — dropping is deterministic tail-drop.
        assert [e["t"] for e in tracer.events] == [0.0, 1.0]

    def test_rejects_negative_cap(self):
        with pytest.raises(ObservabilityError):
            Tracer(max_events=-1)

    def test_default_cap(self):
        assert Tracer().max_events == DEFAULT_MAX_EVENTS


class TestNullTracer:
    def test_discards_everything(self):
        tracer = NullTracer()
        tracer.emit(1.0, "a", x=1)
        assert tracer.events == []
        assert tracer.dropped == 0


class TestObservation:
    def test_snapshot_combines_trace_and_metrics(self):
        obs = Observation()
        obs.trace(5.0, "cpu.switch", cpu="c0")
        obs.metrics.counter("n").inc()
        snap = obs.snapshot()
        assert snap["events"] == [{"t": 5.0, "kind": "cpu.switch", "cpu": "c0"}]
        assert snap["dropped_events"] == 0
        assert snap["metrics"]["counters"] == {"n": 1}

    def test_snapshot_is_picklable(self):
        obs = Observation()
        obs.trace(1.0, "e")
        obs.metrics.histogram("h").observe(2.0)
        snap = obs.snapshot()
        assert pickle.loads(pickle.dumps(snap)) == snap

    def test_snapshot_copies_the_event_list(self):
        obs = Observation()
        obs.trace(1.0, "e")
        snap = obs.snapshot()
        obs.trace(2.0, "e")
        assert len(snap["events"]) == 1


class TestAmbientContext:
    def test_no_observation_by_default(self):
        assert current_observation() is None

    def test_observe_installs_and_restores(self):
        with observe() as obs:
            assert current_observation() is obs
        assert current_observation() is None

    def test_nested_observe_shadows_then_restores(self):
        with observe() as outer:
            with observe() as inner:
                assert inner is not outer
                assert current_observation() is inner
            assert current_observation() is outer

    def test_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with observe():
                raise RuntimeError("boom")
        assert current_observation() is None

    def test_max_events_threads_through(self):
        with observe(max_events=1) as obs:
            obs.trace(1.0, "a")
            obs.trace(2.0, "b")
        assert len(obs.tracer.events) == 1
        assert obs.tracer.dropped == 1
