"""Tests for deterministic trace/metrics serialization and artifacts."""

import json
import os

from repro.obs import (
    Observation,
    dumps_event,
    dumps_snapshot,
    merge_counters,
    metrics_document,
    summary_rows,
    trace_lines,
    write_run_artifacts,
)


def sample_observations():
    """Two sweeps, the first with two points — covers tagging and totals."""
    a0 = Observation()
    a0.trace(1.0, "cpu.switch", cpu="c0")
    a0.metrics.counter("cpu.dispatches").inc(3)
    a0.metrics.gauge("net.queue_depth").set(2)
    a1 = Observation()
    a1.metrics.counter("cpu.dispatches").inc(4)
    a1.metrics.gauge("net.queue_depth").set(5)
    b0 = Observation()
    b0.trace(2.0, "net.drop", link="wan")
    b0.metrics.counter("net.packets_dropped").inc()
    b0.metrics.histogram("mem.fault_latency_ms", bounds=(10.0,)).observe(4.0)
    return {
        "sweep-a": [a0.snapshot(), a1.snapshot()],
        "sweep-b": [b0.snapshot()],
    }


class TestEncoders:
    def test_dumps_event_is_compact_and_key_sorted(self):
        line = dumps_event({"t": 1.0, "kind": "e", "b": 2, "a": 1})
        assert line == '{"a":1,"b":2,"kind":"e","t":1.0}'

    def test_dumps_snapshot_is_key_sorted_and_newline_terminated(self):
        text = dumps_snapshot({"b": 1, "a": {"z": 2, "y": 3}})
        assert text.endswith("\n")
        assert text.index('"a"') < text.index('"b"')
        assert json.loads(text) == {"b": 1, "a": {"z": 2, "y": 3}}

    def test_equal_content_serializes_to_equal_bytes(self):
        assert dumps_snapshot({"a": 1, "b": 2}) == dumps_snapshot({"b": 2, "a": 1})


class TestTraceLines:
    def test_tags_each_event_with_sweep_and_point(self):
        lines = list(trace_lines(sample_observations()))
        parsed = [json.loads(line) for line in lines]
        assert [(e["sweep"], e["point"], e["kind"]) for e in parsed] == [
            ("sweep-a", 0, "cpu.switch"),
            ("sweep-b", 0, "net.drop"),
        ]

    def test_empty_observations_yield_no_lines(self):
        assert list(trace_lines({})) == []


class TestMetricsDocument:
    def test_merge_counters_sums_across_sweeps_and_points(self):
        totals = merge_counters(sample_observations())
        assert totals == {"cpu.dispatches": 7, "net.packets_dropped": 1}
        assert list(totals) == sorted(totals)

    def test_document_shape(self):
        doc = metrics_document("fig1", 7, sample_observations())
        assert doc["experiment"] == "fig1"
        assert doc["seed"] == 7
        assert doc["trace"] == {"events": 2, "dropped": 0}
        assert doc["totals"]["counters"]["cpu.dispatches"] == 7
        assert set(doc["sweeps"]) == {"sweep-a", "sweep-b"}
        assert len(doc["sweeps"]["sweep-a"]) == 2


class TestWriteRunArtifacts:
    def test_writes_trace_and_metrics_files(self, tmp_path):
        trace_path, metrics_path = write_run_artifacts(
            str(tmp_path / "out"), "fig1", 1, sample_observations()
        )
        assert os.path.basename(trace_path) == "fig1.trace.jsonl"
        assert os.path.basename(metrics_path) == "fig1.metrics.json"
        with open(trace_path) as f:
            lines = f.read().splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)
        with open(metrics_path) as f:
            doc = json.load(f)
        assert doc["experiment"] == "fig1"

    def test_rewriting_produces_identical_bytes(self, tmp_path):
        observations = sample_observations()

        def write(sub):
            t, m = write_run_artifacts(str(tmp_path / sub), "x", 1, observations)
            with open(t, "rb") as tf, open(m, "rb") as mf:
                return tf.read(), mf.read()

        assert write("a") == write("b")


class TestSummaryRows:
    def test_rows_cover_every_instrument_kind(self):
        rows = dict(summary_rows(sample_observations()))
        assert rows["cpu.dispatches"] == "7"
        assert rows["net.queue_depth (peak)"] == "5"
        assert rows["mem.fault_latency_ms"] == "n=1 mean=4 min=4 max=4"
        assert rows["trace.events"] == "2"
        assert rows["trace.dropped"] == "0"

    def test_large_counters_render_with_thousands_separators(self):
        obs = Observation()
        obs.metrics.counter("big").inc(1234567)
        rows = dict(summary_rows({"s": [obs.snapshot()]}))
        assert rows["big"] == "1,234,567"
