"""Integration tests: instrumented components record into the ambient
observation — and record nothing, at no cost, when observation is off."""

import random

import pytest

from repro.memory import FramePool, PagingDisk, VirtualMemory, make_policy
from repro.gui.drawing import Bitmap, DrawBitmap
from repro.net import Link, Packet
from repro.obs import observe
from repro.protocols import make_protocol
from repro.sim import Simulator
from repro.units import kb


def run_two_tickers(ticks=3):
    sim = Simulator()

    def ticker():
        for __ in range(ticks):
            yield 1.0

    sim.spawn(ticker(), name="t0")
    sim.spawn(ticker(), name="t1")
    sim.run_until(100.0)


class TestEngineInstrumentation:
    def test_counts_dispatched_events(self):
        with observe() as obs:
            run_two_tickers()
        assert obs.metrics.counter("sim.events_dispatched").value > 0

    def test_emits_process_lifecycle_events(self):
        with observe() as obs:
            run_two_tickers(ticks=2)
        kinds = [e["kind"] for e in obs.tracer.events]
        assert kinds.count("proc.spawn") == 2
        assert kinds.count("proc.exit") == 2
        assert "proc.wake" in kinds
        assert "proc.sleep" in kinds

    def test_sleep_events_carry_the_delay(self):
        with observe() as obs:
            run_two_tickers(ticks=1)
        sleeps = [e for e in obs.tracer.events if e["kind"] == "proc.sleep"]
        assert sleeps and all(e["delay_ms"] == 1.0 for e in sleeps)

    def test_events_are_time_ordered(self):
        with observe() as obs:
            run_two_tickers()
        times = [e["t"] for e in obs.tracer.events]
        assert times == sorted(times)


class TestLinkInstrumentation:
    def test_counts_sent_packets_and_bytes(self):
        with observe() as obs:
            sim = Simulator()
            link = Link(sim)
            link.send(Packet(100))
            link.send(Packet(300))
            sim.run_until(10.0)
        counters = obs.metrics.snapshot()["counters"]
        assert counters["net.packets_sent"] == 2
        assert counters["net.bytes_sent"] == 400
        assert obs.metrics.gauge("net.queue_depth").samples == 2

    def test_bounded_queue_drops_are_counted_and_traced(self):
        delivered = []
        with observe() as obs:
            sim = Simulator()
            link = Link(sim, max_queue=1)
            # First packet goes on the wire, second waits, third drops.
            link.send(Packet(1000))
            link.send(Packet(1000))
            link.send(Packet(1000), on_delivered=delivered.append)
            sim.run_until(50.0)
        assert link.packets_dropped == 1
        assert link.packets_sent == 2
        assert delivered == []  # dropped packet's callback never fires
        counters = obs.metrics.snapshot()["counters"]
        assert counters["net.packets_dropped"] == 1
        drops = [e for e in obs.tracer.events if e["kind"] == "net.drop"]
        assert len(drops) == 1
        assert drops[0]["link"] == "ether0"
        assert drops[0]["wire_bytes"] == 1000

    def test_unbounded_queue_never_drops(self):
        with observe():
            sim = Simulator()
            link = Link(sim)
            for __ in range(50):
                link.send(Packet(10_000))
            sim.run_until(1_000.0)
        assert link.packets_dropped == 0
        assert link.packets_sent == 50


class TestMemoryInstrumentation:
    def make_vm(self):
        pool = FramePool(kb(16))
        disk = PagingDisk(random.Random(0))
        return VirtualMemory(pool, disk, make_policy("lru"))

    def test_counts_hits_faults_and_fault_latency(self):
        with observe() as obs:
            vm = self.make_vm()
            p = vm.create_process("p", kb(8))
            vm.touch(p, 0)  # fault
            vm.touch(p, 0)  # hit
        counters = obs.metrics.snapshot()["counters"]
        assert counters["mem.faults"] == 1
        assert counters["mem.hits"] == 1
        hist = obs.metrics.histogram("mem.fault_latency_ms")
        assert hist.count == 1
        assert hist.mean > 1.0  # disk service, not a memory hit

    def test_counts_evictions_and_writebacks(self):
        with observe() as obs:
            vm = self.make_vm()
            big = vm.create_process("big", kb(64))
            for vpn in range(big.num_pages):
                vm.touch(big, vpn, write=True)  # dirty pages force writebacks
        counters = obs.metrics.snapshot()["counters"]
        assert counters["mem.evictions"] > 0
        assert counters["mem.evictions"] == vm.total_evictions
        assert counters["mem.writebacks"] > 0


class TestProtocolInstrumentation:
    def test_rdp_cache_hits_and_misses_are_counted(self):
        banner = Bitmap("banner", 100, 100)
        with observe() as obs:
            rdp = make_protocol("rdp")
            rdp.order_sizes_for(DrawBitmap(banner))  # miss
            rdp.order_sizes_for(DrawBitmap(banner))  # hit
        counters = obs.metrics.snapshot()["counters"]
        assert counters["proto.rdp.cache_misses"] == 1
        assert counters["proto.rdp.cache_hits"] == 1

    @pytest.mark.parametrize("name", ["x", "lbx", "rdp"])
    def test_wire_metrics_count_messages_and_bytes(self, name):
        banner = Bitmap("banner", 100, 100)
        with observe() as obs:
            proto = make_protocol(name)
            messages = []
            for __ in range(8):  # enough steps to cross RDP's flush period
                messages += proto.encode_display_step([DrawBitmap(banner)])
            messages += proto.flush_display()
        counters = obs.metrics.snapshot()["counters"]
        assert counters[f"proto.{proto.name}.messages"] == len(messages) > 0
        assert counters[f"proto.{proto.name}.bytes"] == sum(
            m.payload_bytes for m in messages
        )


class TestZeroCostDisabledPath:
    def test_components_record_nothing_without_observation(self):
        sim = Simulator()
        link = Link(sim, max_queue=0)
        link.send(Packet(100))  # dropped, but nowhere to record it
        run_two_tickers()
        assert link.packets_dropped == 1  # plain attributes still work

    def test_observation_opened_later_does_not_see_earlier_components(self):
        """Components capture the ambient observation at construction."""
        sim = Simulator()
        link = Link(sim)
        with observe() as obs:
            link.send(Packet(100))
            sim.run_until(10.0)
        # The link was built outside the block, so it records nothing —
        # only the simulator events could appear, and that sim was outside too.
        assert "net.packets_sent" not in obs.metrics.snapshot()["counters"]
