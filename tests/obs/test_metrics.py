"""Tests for counters, gauges, histograms, and the metrics registry."""

import pytest

from repro.obs import (
    DEFAULT_BOUNDS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ObservabilityError,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("c")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative_increments(self):
        with pytest.raises(ObservabilityError, match="cannot decrease"):
            Counter("c").inc(-1)

    def test_accepts_zero_and_float_increments(self):
        c = Counter("c")
        c.inc(0)
        c.inc(2.5)
        assert c.value == 2.5


class TestGauge:
    def test_tracks_last_peak_and_samples(self):
        g = Gauge("g")
        for v in (3, 7, 2):
            g.set(v)
        assert (g.last, g.peak, g.samples) == (2, 7, 3)

    def test_peak_honours_negative_first_sample(self):
        """The first reading is the peak even when it is below zero."""
        g = Gauge("g")
        g.set(-5)
        assert g.peak == -5
        g.set(-9)
        assert g.peak == -5


class TestHistogram:
    def test_buckets_by_inclusive_upper_bound(self):
        h = Histogram("h", bounds=(1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 100.0):
            h.observe(v)
        assert h.bucket_counts == [2, 1, 1]  # 1.0 lands in the <=1.0 bucket

    def test_tracks_count_sum_min_max_mean(self):
        h = Histogram("h", bounds=(10.0,))
        for v in (2.0, 4.0, 12.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 18.0
        assert (h.vmin, h.vmax) == (2.0, 12.0)
        assert h.mean == 6.0

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram("h").mean == 0.0

    def test_default_bounds_cover_the_paper_latency_range(self):
        h = Histogram("h")
        assert h.bounds == DEFAULT_BOUNDS_MS
        assert len(h.bucket_counts) == len(DEFAULT_BOUNDS_MS) + 1

    @pytest.mark.parametrize("bounds", [(), (5.0, 1.0), (1.0, 1.0)])
    def test_rejects_bad_bounds(self, bounds):
        with pytest.raises(ObservabilityError, match="bounds"):
            Histogram("h", bounds=bounds)


class TestMetricsRegistry:
    def test_accessors_create_then_return_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")
        assert len(reg) == 3

    def test_name_cannot_span_instrument_kinds(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ObservabilityError, match="already a counter"):
            reg.gauge("x")
        with pytest.raises(ObservabilityError, match="already a counter"):
            reg.histogram("x")

    def test_histogram_rebounds_must_match(self):
        reg = MetricsRegistry()
        reg.histogram("h", bounds=(1.0, 2.0))
        assert reg.histogram("h").bounds == (1.0, 2.0)
        assert reg.histogram("h", bounds=(1.0, 2.0)) is reg.histogram("h")
        with pytest.raises(ObservabilityError, match="different bounds"):
            reg.histogram("h", bounds=(1.0, 3.0))

    def test_snapshot_key_order_ignores_registration_order(self):
        ab = MetricsRegistry()
        ab.counter("a").inc()
        ab.counter("b").inc()
        ba = MetricsRegistry()
        ba.counter("b").inc()
        ba.counter("a").inc()
        assert ab.snapshot() == ba.snapshot()
        assert list(ab.snapshot()["counters"]) == ["a", "b"]

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(7)
        reg.histogram("h", bounds=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap == {
            "counters": {"c": 2},
            "gauges": {"g": {"last": 7, "peak": 7, "samples": 1}},
            "histograms": {
                "h": {
                    "bounds": [1.0],
                    "buckets": [1, 0],
                    "count": 1,
                    "max": 0.5,
                    "min": 0.5,
                    "sum": 0.5,
                }
            },
        }

    def test_snapshot_is_plain_data(self):
        import json
        import pickle

        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1)
        reg.histogram("h").observe(3.0)
        snap = reg.snapshot()
        assert pickle.loads(pickle.dumps(snap)) == snap
        assert json.loads(json.dumps(snap)) == snap
