"""Tests for display operations and input events."""

import pytest

from repro.errors import ProtocolError
from repro.gui import (
    Bitmap,
    CopyArea,
    DrawBitmap,
    DrawText,
    DrawWidget,
    FillRect,
    KeyPress,
    KeyRelease,
    MouseButton,
    MouseMove,
)
from repro.gui.drawing import RestoreRegion


class TestBitmap:
    def test_raw_bytes(self):
        assert Bitmap("b", 468, 60, 8).raw_bytes == 28_080
        assert Bitmap("b", 468, 60, 4).raw_bytes == 14_040

    def test_compressed_bytes(self):
        b = Bitmap("b", 468, 60, 8, compressed_ratio=0.85)
        assert b.compressed_bytes == 23_868

    def test_compressed_bytes_at_least_one(self):
        assert Bitmap("b", 1, 1, 8, compressed_ratio=0.01).compressed_bytes == 1

    def test_validation(self):
        with pytest.raises(ProtocolError):
            Bitmap("b", 0, 10, 8)
        with pytest.raises(ProtocolError):
            Bitmap("b", 10, 10, 7)
        with pytest.raises(ProtocolError):
            Bitmap("b", 10, 10, 8, compressed_ratio=0.0)
        with pytest.raises(ProtocolError):
            Bitmap("b", 10, 10, 8, compressed_ratio=1.5)

    def test_banner_frame_calibration(self):
        """65 banner-class frames fit the 1.5 MB cache; 66 do not."""
        frame = Bitmap("f", 468, 60, 8, compressed_ratio=0.85)
        cache_bytes = int(1.5 * 1024 * 1024)
        assert 65 * frame.compressed_bytes <= cache_bytes
        assert 66 * frame.compressed_bytes > cache_bytes


class TestOps:
    def test_validation(self):
        with pytest.raises(ProtocolError):
            DrawText(0)
        with pytest.raises(ProtocolError):
            FillRect(0, 5)
        with pytest.raises(ProtocolError):
            CopyArea(5, 0)
        with pytest.raises(ProtocolError):
            DrawWidget(0)
        with pytest.raises(ProtocolError):
            RestoreRegion(0, 5, "k", 3)
        with pytest.raises(ProtocolError):
            RestoreRegion(5, 5, "k", 0)

    def test_ops_are_frozen_values(self):
        assert DrawText(3) == DrawText(3)
        assert FillRect(2, 2) != FillRect(2, 3)


def test_input_events_are_values():
    assert KeyPress(65) == KeyPress(65)
    assert KeyRelease(65) != KeyRelease(66)
    assert MouseMove(1, 2) == MouseMove(1, 2)
    assert MouseButton(1, True) != MouseButton(1, False)
