"""Tests for session setup costs (§6.1.1)."""

import pytest

from repro.errors import ProtocolError
from repro.gui import TO_CLIENT, TO_SERVER, TSE_SETUP, X_SETUP, session_setup


def test_tse_setup_total_matches_paper():
    """Paper: TSE session setup cost 45,328 bytes."""
    assert TSE_SETUP.total_bytes == 45_328


def test_x_setup_total_matches_paper():
    """Paper: Linux/X session setup cost 16,312 bytes."""
    assert X_SETUP.total_bytes == 16_312


def test_setup_has_both_directions():
    for setup in (TSE_SETUP, X_SETUP):
        by_dir = setup.bytes_by_direction()
        assert by_dir[TO_SERVER] > 0
        assert by_dir[TO_CLIENT] > 0
        assert by_dir[TO_SERVER] + by_dir[TO_CLIENT] == setup.total_bytes


def test_lookup():
    assert session_setup("nt_tse") is TSE_SETUP
    assert session_setup("linux") is X_SETUP
    with pytest.raises(ProtocolError):
        session_setup("beos")
