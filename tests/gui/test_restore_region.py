"""RestoreRegion: the occlusion-repaint op and its package export."""

import pytest

import repro.gui as gui
from repro.errors import ProtocolError
from repro.gui import RestoreRegion


def test_exported_from_package():
    assert "RestoreRegion" in gui.__all__
    assert gui.RestoreRegion is RestoreRegion


def test_is_a_display_op():
    op = RestoreRegion(width=200, height=150, key="menu", complexity=12)
    assert isinstance(op, gui.DisplayOp)
    assert op.width * op.height == 30_000


def test_rejects_degenerate_regions():
    with pytest.raises(ProtocolError):
        RestoreRegion(width=0, height=10, key="k", complexity=1)
    with pytest.raises(ProtocolError):
        RestoreRegion(width=10, height=-1, key="k", complexity=1)


def test_rejects_nonpositive_complexity():
    with pytest.raises(ProtocolError):
        RestoreRegion(width=10, height=10, key="k", complexity=0)


def test_frozen_and_hashable():
    op = RestoreRegion(width=8, height=8, key="dialog", complexity=3)
    assert op == RestoreRegion(width=8, height=8, key="dialog", complexity=3)
    assert hash(op) == hash(RestoreRegion(width=8, height=8, key="dialog", complexity=3))
    with pytest.raises(Exception):
        op.width = 9  # type: ignore[misc]
