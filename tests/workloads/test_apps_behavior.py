"""Tests for the application scripts and behaviour profiles."""

import pytest

from repro.errors import WorkloadError
from repro.sim import RngRegistry
from repro.workloads import (
    KNOWLEDGE_WORKER,
    TASK_WORKER,
    WEB_BROWSER_USER,
    application_workload,
    behavior_profile,
    control_panel,
    gimp_painting,
    run_protocol_comparison,
    wordperfect_editing,
)


class TestScripts:
    def test_scripts_produce_steps(self):
        rngs = RngRegistry(0)
        for builder, stream in (
            (wordperfect_editing, "wp"),
            (gimp_painting, "gimp"),
            (control_panel, "cpl"),
        ):
            steps = builder(rngs.stream(stream))
            assert len(steps) > 50
            assert any(step.events for step in steps)
            assert any(step.ops for step in steps)

    def test_workload_deterministic_per_seed(self):
        assert application_workload(1) == application_workload(1)
        assert application_workload(1) != application_workload(2)

    def test_wordperfect_is_typing_heavy(self):
        from repro.gui import KeyPress

        steps = wordperfect_editing(RngRegistry(0).stream("wp"))
        keys = sum(
            1
            for step in steps
            for e in step.events
            if isinstance(e, KeyPress)
        )
        assert keys >= 1800


class TestProtocolComparison:
    @pytest.fixture(scope="class")
    def taps(self):
        return run_protocol_comparison(seed=0)

    def test_rdp_most_efficient_in_bytes(self, taps):
        """Paper: RDP generates <30% of LBX's bytes and <15-20% of X's."""
        rdp = taps["rdp"].trace().total_bytes
        x = taps["x"].trace().total_bytes
        lbx = taps["lbx"].trace().total_bytes
        assert rdp < 0.25 * x
        assert rdp < 0.35 * lbx
        assert lbx < 0.75 * x

    def test_rdp_fewest_messages(self, taps):
        rdp = taps["rdp"].trace().total_messages
        x = taps["x"].trace().total_messages
        lbx = taps["lbx"].trace().total_messages
        assert rdp < x < lbx

    def test_lbx_more_display_messages_than_x(self, taps):
        """Paper: LBX's compression costs an ~80% display-message increase."""
        ratio = (
            taps["lbx"].trace().display.messages
            / taps["x"].trace().display.messages
        )
        assert 1.3 < ratio < 2.5

    def test_lbx_smallest_average_message(self, taps):
        assert (
            taps["lbx"].trace().avg_message_size
            < taps["x"].trace().avg_message_size
        )
        assert (
            taps["lbx"].trace().avg_message_size
            < taps["rdp"].trace().avg_message_size
        )

    def test_vip_savings_lbx_beats_rdp(self, taps):
        """Small messages benefit most from eliding the IP header."""
        lbx = taps["lbx"].vip_table_row()["savings"]
        rdp = taps["rdp"].vip_table_row()["savings"]
        assert lbx > rdp > 0.0

    def test_both_channels_active_for_all_protocols(self, taps):
        for name in ("rdp", "x", "lbx"):
            trace = taps[name].trace()
            assert trace.input.messages > 0
            assert trace.display.messages > 0


class TestBehaviorProfiles:
    def test_lookup(self):
        assert behavior_profile("task-worker") is TASK_WORKER
        with pytest.raises(WorkloadError):
            behavior_profile("gamer")

    def test_web_user_is_network_heavy(self):
        """§6.1.3: the animated page alone sustains ~1.6 Mbps."""
        assert WEB_BROWSER_USER.network_mbps == pytest.approx(1.6)
        assert WEB_BROWSER_USER.network_mbps > 10 * TASK_WORKER.network_mbps

    def test_profiles_ordered_by_weight(self):
        assert (
            TASK_WORKER.memory_bytes
            < KNOWLEDGE_WORKER.memory_bytes
            < WEB_BROWSER_USER.memory_bytes
        )

    def test_validation(self):
        from repro.workloads.behavior import BehaviorProfile

        with pytest.raises(WorkloadError):
            BehaviorProfile("bad", 1.5, 0, 0.0, 1.0)
        with pytest.raises(WorkloadError):
            BehaviorProfile("bad", 0.5, -1, 0.0, 1.0)
