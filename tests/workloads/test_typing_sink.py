"""Tests for the typing workload, sink fleet, and the Figure 3 experiment."""

import pytest

from repro.cpu import CPU, LinuxScheduler
from repro.errors import WorkloadError
from repro.sim import Simulator
from repro.workloads import SinkFleet, TypingSession, run_stall_experiment


def make_cpu():
    sim = Simulator()
    return sim, CPU(sim, LinuxScheduler())


class TestSinkFleet:
    def test_grow_and_len(self):
        sim, cpu = make_cpu()
        fleet = SinkFleet(cpu, 3)
        assert len(fleet) == 3
        assert cpu.load == 3

    def test_shrink_kills_sinks(self):
        sim, cpu = make_cpu()
        fleet = SinkFleet(cpu, 3)
        sim.run_until(10.0)
        fleet.shrink(2)
        assert len(fleet) == 1
        sim.run_until(20.0)
        assert cpu.load == 1

    def test_resize_both_directions(self):
        sim, cpu = make_cpu()
        fleet = SinkFleet(cpu)
        fleet.resize(5)
        assert len(fleet) == 5
        fleet.resize(2)
        assert len(fleet) == 2
        with pytest.raises(WorkloadError):
            fleet.resize(-1)

    def test_shrink_too_many_rejected(self):
        sim, cpu = make_cpu()
        fleet = SinkFleet(cpu, 1)
        with pytest.raises(WorkloadError):
            fleet.shrink(2)

    def test_negative_count_rejected(self):
        sim, cpu = make_cpu()
        with pytest.raises(WorkloadError):
            SinkFleet(cpu, -1)


class TestTypingSession:
    def test_unloaded_updates_every_50ms(self):
        sim, cpu = make_cpu()
        session = TypingSession(sim, cpu)
        sim.run_until(1000.0)
        session.stop()
        # ~19 updates, each 2ms after its keystroke.
        assert len(session.update_times) == 19
        assert session.stalls() == []

    def test_stall_detection_with_hog(self):
        sim, cpu = make_cpu()
        fleet = SinkFleet(cpu, 10)
        session = TypingSession(sim, cpu)
        sim.run_until(5000.0)
        session.stop()
        stalls = session.stalls()
        assert stalls
        assert all(s > TypingSession.STALL_EPSILON_MS for s in stalls)


class TestStallExperiment:
    def test_figure3_tse_blows_up_linux_linear(self):
        """The headline Figure 3 shapes."""
        tse = run_stall_experiment("nt_tse", [0, 10, 15], duration_ms=30_000.0)
        linux = run_stall_experiment("linux", [0, 10, 50], duration_ms=30_000.0)
        tse_by_load = {r.queue_length: r.average_stall_ms for r in tse}
        linux_by_load = {r.queue_length: r.average_stall_ms for r in linux}
        # TSE collapses by 15 sinks (paper: "barely usable").
        assert tse_by_load[15] > 600.0
        # Linux at the same load is far gentler...
        assert linux_by_load[10] < tse_by_load[10] / 3
        # ...and grows roughly linearly out to 50.
        assert 200.0 < linux_by_load[50] < 700.0

    def test_svr4_baseline_flat(self):
        """Evans et al.: interactive class keeps stalls at zero."""
        results = run_stall_experiment("svr4", [0, 20], duration_ms=20_000.0)
        assert all(r.average_stall_ms < 5.0 for r in results)

    def test_results_carry_jitter(self):
        (r,) = run_stall_experiment("nt_tse", [10], duration_ms=20_000.0)
        assert r.jitter_ms > 0.0

    def test_negative_load_rejected(self):
        with pytest.raises(WorkloadError):
            run_stall_experiment("linux", [-1])

    def test_deterministic(self):
        a = run_stall_experiment("linux", [5], duration_ms=10_000.0, seed=3)
        b = run_stall_experiment("linux", [5], duration_ms=10_000.0, seed=3)
        assert a[0].stalls_ms == b[0].stalls_ms
