"""Tests for animation workloads and the Figures 4–7 experiments."""

import pytest

from repro.errors import WorkloadError
from repro.sim import Simulator
from repro.workloads import (
    AnimationPlayer,
    banner_ad,
    dateline_animation,
    gif_10_frame,
    marquee,
    run_cache_overflow_experiment,
    run_frame_count_sweep,
    run_gif_protocol_comparison,
    run_webpage_experiment,
)
from repro.workloads.animation import AnimationSpec, FIG4_VARIANTS


class TestSpecs:
    def test_banner_frame_calibration(self):
        """Banner-class frames cache at 23,868 bytes: the 65-frame cliff."""
        assert banner_ad().frame_cached_bytes == 23_868

    def test_fresh_frames_get_new_ids_each_cycle(self):
        spec = marquee()
        fresh0 = spec.frame_bitmap(0, cycle=0)
        fresh1 = spec.frame_bitmap(0, cycle=1)
        assert fresh0.bitmap_id != fresh1.bitmap_id
        stable0 = spec.frame_bitmap(10, cycle=0)
        stable1 = spec.frame_bitmap(10, cycle=1)
        assert stable0.bitmap_id == stable1.bitmap_id

    def test_cycle_time_includes_pause(self):
        spec = marquee(phases=10, frame_interval_ms=100.0, pause_ms=500.0)
        assert spec.cycle_ms == 1500.0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            AnimationSpec("a", 10, 10, 8, 1.0, 0, 100.0)
        with pytest.raises(WorkloadError):
            AnimationSpec("a", 10, 10, 8, 1.0, 5, 0.0)
        with pytest.raises(WorkloadError):
            AnimationSpec("a", 10, 10, 8, 1.0, 5, 100.0, fresh_frames_per_cycle=6)
        with pytest.raises(WorkloadError):
            marquee().frame_bitmap(1000, 0)


class TestPlayer:
    def test_plays_frames_at_interval(self):
        sim = Simulator()
        frames = []
        spec = gif_10_frame()
        player = AnimationPlayer(sim, spec, frames.append)
        sim.run_until(499.0)  # 10 frames in [0, 500) at 20Hz
        player.stop()
        assert len(frames) == 10

    def test_loops_with_pause(self):
        sim = Simulator()
        frames = []
        spec = AnimationSpec("a", 10, 10, 8, 1.0, 2, 100.0, pause_ms=300.0)
        AnimationPlayer(sim, spec, frames.append)
        # cycle: f0@0, f1@100, pause, f0@500, f1@600 ...
        sim.run_until(650.0)
        assert len(frames) == 4

    def test_non_looping_stops(self):
        sim = Simulator()
        frames = []
        spec = AnimationSpec("a", 10, 10, 8, 1.0, 3, 50.0, loop=False)
        AnimationPlayer(sim, spec, frames.append)
        sim.run_until(5000.0)
        assert len(frames) == 3

    def test_stop_halts_playback(self):
        sim = Simulator()
        frames = []
        player = AnimationPlayer(sim, gif_10_frame(), frames.append)
        sim.run_until(200.0)
        player.stop()
        count = len(frames)
        sim.run_until(1000.0)
        assert len(frames) == count


class TestFig4:
    def test_each_element_alone_is_cheap(self):
        m = run_webpage_experiment("marquee", duration_ms=120_000.0)
        b = run_webpage_experiment("banner", duration_ms=120_000.0)
        assert m.average_mbps() < 0.3
        assert b.average_mbps() < 0.05

    def test_combined_overflows_nonlinearly(self):
        """The paper's headline: together they cost ~10-20x the sum."""
        m = run_webpage_experiment("marquee", duration_ms=120_000.0)
        b = run_webpage_experiment("banner", duration_ms=120_000.0)
        both = run_webpage_experiment("both", duration_ms=120_000.0)
        assert both.average_mbps() > 4 * (m.average_mbps() + b.average_mbps())
        assert both.average_mbps() > 0.8  # paper: 1.60 Mbps sustained

    def test_unknown_variant_rejected(self):
        with pytest.raises(WorkloadError):
            run_webpage_experiment("popup")
        assert set(FIG4_VARIANTS) == {"both", "marquee", "banner"}


class TestFig5:
    def test_protocol_ordering(self):
        """X retransmits every frame; LBX compresses; RDP's cache wins."""
        results = run_gif_protocol_comparison(duration_ms=3_000.0)
        x = results["x"].average_mbps(500.0)
        lbx = results["lbx"].average_mbps(500.0)
        rdp = results["rdp"].average_mbps(500.0)
        assert x > lbx > rdp
        assert x > 1.5  # full bitmaps at 20 Hz
        assert rdp < 0.1  # swap messages only after warmup


class TestFig6:
    def test_hit_ratio_decays_and_cpu_stays_busy(self):
        result = run_cache_overflow_experiment(
            frame_count=66, duration_ms=45_000.0
        )
        # Cumulative ratio starts high during UI warmup...
        early = result.cumulative_hit_ratio[4]
        late = result.cumulative_hit_ratio[-1]
        assert early > 0.5
        # ...then decays asymptotically toward zero with each miss.
        assert late < early / 2
        ratios = result.cumulative_hit_ratio[5:]
        assert all(b <= a + 1e-9 for a, b in zip(ratios, ratios[1:]))
        # CPU never falls back to idle: it re-sends evicted frames forever.
        assert result.cpu_utilization[-1] > 0.05


class TestFig7:
    def test_cliff_at_65_frames(self):
        """Paper: 0.01 Mbps through 65 frames, ~0.96 Mbps above."""
        rows = dict(run_frame_count_sweep([60, 65, 66, 70], duration_ms=45_000.0))
        assert rows[60] < 0.02
        assert rows[65] < 0.02
        assert rows[66] > 0.5
        assert rows[70] > 0.5

    def test_loop_aware_cache_removes_the_cliff(self):
        """The paper's suggested eviction scheme tames looping animations."""
        lru = dict(run_frame_count_sweep([70], duration_ms=45_000.0))
        aware = dict(
            run_frame_count_sweep(
                [70], duration_ms=45_000.0, loop_aware_cache=True
            )
        )
        assert aware[70] < lru[70] / 2

    def test_duration_must_cover_warmup(self):
        with pytest.raises(WorkloadError):
            run_frame_count_sweep([100], duration_ms=10_000.0)


def test_dateline_spec_is_5fps():
    assert dateline_animation(50).frame_interval_ms == 200.0
