"""Tests for the simulation-driven server-sizing experiment."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.sizing import max_users_under_sla, run_sizing_experiment


def test_latency_flat_then_cliff_at_saturation():
    results = run_sizing_experiment(
        "nt_tse", [5, 20, 30], duration_ms=10_000.0
    )
    by_users = {r.users: r for r in results}
    # 2ms per 50ms keystroke = 4% per user: 25 users saturate one CPU.
    assert by_users[5].average_latency_ms < 10.0
    assert by_users[20].average_latency_ms < 20.0
    assert by_users[30].average_latency_ms > 200.0
    assert by_users[30].utilization > 0.99


def test_second_cpu_roughly_doubles_capacity():
    counts = [10, 22, 30, 45]
    one = run_sizing_experiment("nt_tse", counts, cpu_count=1, duration_ms=10_000.0)
    two = run_sizing_experiment("nt_tse", counts, cpu_count=2, duration_ms=10_000.0)
    assert max_users_under_sla(one) == 22
    assert max_users_under_sla(two) == 45


def test_p95_at_least_average():
    (r,) = run_sizing_experiment("linux", [10], duration_ms=5_000.0)
    assert r.p95_latency_ms >= r.average_latency_ms * 0.5
    assert r.latencies_ms


def test_sla_helper():
    results = run_sizing_experiment(
        "linux", [5, 30], duration_ms=5_000.0
    )
    assert max_users_under_sla(results, sla_ms=100.0) == 5
    assert max_users_under_sla(results, sla_ms=0.0001) == 0
    with pytest.raises(WorkloadError):
        max_users_under_sla(results, sla_ms=0.0)


def test_validation_and_determinism():
    with pytest.raises(WorkloadError):
        run_sizing_experiment("linux", [0])
    a = run_sizing_experiment("linux", [5], duration_ms=3_000.0, seed=1)
    b = run_sizing_experiment("linux", [5], duration_ms=3_000.0, seed=1)
    assert a[0].latencies_ms == b[0].latencies_ms
