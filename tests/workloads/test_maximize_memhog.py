"""Tests for the maximize-operation ablation and the memory hog."""

import random

import pytest

from repro.cpu import NTConfig
from repro.errors import WorkloadError
from repro.memory import FramePool, PagingDisk, VirtualMemory, make_policy
from repro.sim import Simulator
from repro.units import kb
from repro.workloads import MemoryHog, run_maximize_experiment
from repro.workloads.maximize import MAXIMIZE_DEMAND_MS


class TestMaximize:
    def test_slow_cpu_pays_for_the_service_event(self):
        """§4.2.1's worked example: 500ms op + 400ms priority-13 event
        lands near 900ms once the boost grace expires."""
        result = run_maximize_experiment(cpu_speed=1.0)
        assert result.completion_ms == pytest.approx(900.0, rel=0.1)
        assert result.added_latency_ms > 300.0

    def test_fast_cpu_fits_in_boost_grace(self):
        """A CPU fast enough to finish within the boosted quanta never
        yields to the service thread: 'upgrading to a faster processor...
        can tangibly improve user-perceived latency with no modifications
        to the scheduler.'"""
        result = run_maximize_experiment(cpu_speed=6.0)
        assert result.completion_ms == pytest.approx(
            MAXIMIZE_DEMAND_MS / 6.0, rel=0.05
        )
        assert result.added_latency_ms < 5.0

    def test_monotone_in_speed(self):
        latencies = [
            run_maximize_experiment(cpu_speed=s).completion_ms
            for s in (1.0, 2.0, 4.0, 8.0)
        ]
        assert latencies == sorted(latencies, reverse=True)

    def test_bad_speed_rejected(self):
        with pytest.raises(WorkloadError):
            run_maximize_experiment(cpu_speed=0.0)


class TestMemoryHog:
    def make_vm(self, pool_kb=256):
        pool = FramePool(kb(pool_kb))
        return VirtualMemory(pool, PagingDisk(random.Random(0)), make_policy("lru"))

    def test_run_to_completion_touches_all_pages(self):
        vm = self.make_vm()
        hog = MemoryHog(vm, kb(64))
        hog.run_to_completion()
        assert hog.space.faults == 16

    def test_touch_next_wraps(self):
        vm = self.make_vm()
        hog = MemoryHog(vm, kb(8))  # 2 pages
        hog.touch_next(3)
        assert hog.space.faults == 2
        assert hog.space.hits == 1

    def test_paced_streaming_on_simulator(self):
        vm = self.make_vm()
        sim = Simulator()
        hog = MemoryHog(vm, kb(64))
        task = hog.run_paced(sim, pages_per_tick=2, tick_ms=10.0)
        sim.run_until(100.0)
        task.stop()
        assert hog.space.faults == 16  # 10 ticks x 2 pages, wrapped past 16

    def test_validation(self):
        vm = self.make_vm()
        with pytest.raises(WorkloadError):
            MemoryHog(vm, 0)
        hog = MemoryHog(vm, kb(8))
        with pytest.raises(WorkloadError):
            hog.touch_next(0)
