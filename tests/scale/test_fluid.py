"""FluidBackground: the piecewise-linear workload math, deterministically.

Every case here is closed-form: constant-rate ticks make W(t) a sequence
of linear ramps, so build-up, drain, idle tails, discrete steps, and the
pro-rata window accounting can all be asserted exactly — no sampling, no
tolerance.
"""

import pytest

from repro.errors import NetworkError
from repro.net.link import Link
from repro.net.packet import Packet
from repro.scale.fluid import FluidBackground
from repro.sim.engine import Simulator


def make_link(**kwargs):
    return Link(Simulator(), **kwargs)


class TestWorkloadIntegration:
    def test_overloaded_ticks_build_then_drain(self):
        link = make_link(bandwidth_mbps=10.0)
        cap = link.bytes_per_ms
        # rho = 2 for 10 ticks of 1 ms: W grows 1 ms per ms, then drains.
        fluid = FluidBackground(link, 1.0, [2.0 * cap] * 10, attach=False)
        assert fluid.queueing_delay_ms(5.0) == pytest.approx(5.0)
        assert fluid.queueing_delay_ms(10.0) == pytest.approx(10.0)
        assert fluid.queueing_delay_ms(15.0) == pytest.approx(5.0)
        assert fluid.queueing_delay_ms(25.0) == 0.0
        assert fluid.peak_backlog_ms == pytest.approx(10.0)

    def test_subcritical_load_never_accumulates(self):
        link = make_link(bandwidth_mbps=10.0)
        cap = link.bytes_per_ms
        fluid = FluidBackground(link, 1.0, [0.5 * cap] * 100, attach=False)
        for t in (0.25, 1.0, 7.5, 60.0, 100.0, 150.0):
            assert fluid.queueing_delay_ms(t) == 0.0

    def test_queries_interleave_with_exact_boundaries(self):
        link = make_link(bandwidth_mbps=10.0)
        cap = link.bytes_per_ms
        # Bytes are per 2 ms tick: rho = bytes / (tick * capacity).
        fluid = FluidBackground(
            link, 2.0, [6.0 * cap, 0.0, 3.0 * cap, 0.0], attach=False
        )
        # Tick 0 (rho=3): +2 per tick of 2ms -> W(2)=4.
        assert fluid.queueing_delay_ms(1.0) == pytest.approx(2.0)
        assert fluid.queueing_delay_ms(2.0) == pytest.approx(4.0)
        # Tick 1 (rho=0): drains 1/ms.
        assert fluid.queueing_delay_ms(3.5) == pytest.approx(2.5)
        # Tick 2 (rho=1.5): +0.5/ms from t=4 (W(4)=2).
        assert fluid.queueing_delay_ms(6.0) == pytest.approx(3.0)
        # Tick 3 and beyond: drains to empty and stays there.
        assert fluid.queueing_delay_ms(11.0) == 0.0
        assert fluid.queueing_delay_ms(1000.0) == 0.0

    def test_time_never_runs_backwards(self):
        link = make_link(bandwidth_mbps=10.0)
        cap = link.bytes_per_ms
        fluid = FluidBackground(link, 1.0, [2.0 * cap] * 4, attach=False)
        assert fluid.queueing_delay_ms(4.0) == pytest.approx(4.0)
        # A query at an earlier time returns current state, unchanged.
        assert fluid.queueing_delay_ms(2.0) == pytest.approx(4.0)

    def test_discrete_work_adds_a_step(self):
        link = make_link(bandwidth_mbps=10.0)
        fluid = FluidBackground(link, 1.0, [0.0] * 10, attach=False)
        fluid.add_work_ms(3.0)
        assert fluid.queueing_delay_ms(0.0) == pytest.approx(3.0)
        # The step drains at full capacity through the idle ticks.
        assert fluid.queueing_delay_ms(2.0) == pytest.approx(1.0)
        assert fluid.queueing_delay_ms(4.0) == 0.0

    def test_step_on_top_of_fluid_sums(self):
        link = make_link(bandwidth_mbps=10.0)
        cap = link.bytes_per_ms
        fluid = FluidBackground(link, 1.0, [1.0 * cap] * 20, attach=False)
        # rho = 1 exactly: fluid neither builds nor drains, so the
        # discrete step survives verbatim.
        fluid.add_work_ms(2.0)
        assert fluid.queueing_delay_ms(10.0) == pytest.approx(2.0)


class TestWindowAccounting:
    def test_offered_bytes_pro_rata_at_edges(self):
        link = make_link(bandwidth_mbps=10.0)
        fluid = FluidBackground(
            link, 10.0, [1000.0, 2000.0, 4000.0], attach=False
        )
        assert fluid.offered_bytes(0.0, 30.0) == pytest.approx(7000.0)
        assert fluid.offered_bytes(5.0, 15.0) == pytest.approx(1500.0)
        assert fluid.offered_bytes(25.0, 95.0) == pytest.approx(2000.0)
        assert fluid.offered_bytes(100.0, 200.0) == 0.0

    def test_utilization_is_offered_over_capacity(self):
        link = make_link(bandwidth_mbps=10.0)
        cap = link.bytes_per_ms
        fluid = FluidBackground(link, 1.0, [0.5 * cap] * 10, attach=False)
        assert fluid.utilization(0.0, 10.0) == pytest.approx(0.5)
        assert fluid.utilization(0.0, 20.0) == pytest.approx(0.25)

    def test_totals_and_horizon(self):
        link = make_link(bandwidth_mbps=10.0)
        fluid = FluidBackground(link, 2.5, [100.0, 300.0], attach=False)
        assert fluid.offered_bytes_total == pytest.approx(400.0)
        assert fluid.n_ticks == 2
        assert fluid.end_ms == pytest.approx(5.0)

    def test_empty_window_rejected(self):
        link = make_link(bandwidth_mbps=10.0)
        fluid = FluidBackground(link, 1.0, [0.0], attach=False)
        with pytest.raises(NetworkError):
            fluid.offered_bytes(5.0, 5.0)


class TestLinkIntegration:
    def test_quiet_background_means_plain_delay(self):
        sim = Simulator()
        link = Link(sim, bandwidth_mbps=10.0, propagation_ms=0.05)
        FluidBackground(link, 1.0, [0.0] * 100)
        packet = Packet(64, channel="probe")
        delivered = []
        link.send(packet, lambda p: delivered.append(sim.now))
        sim.run(10.0)
        service = packet.wire_bytes / link.bytes_per_ms
        assert delivered == [pytest.approx(service + 0.05)]

    def test_probe_waits_behind_fluid_backlog(self):
        sim = Simulator()
        link = Link(sim, bandwidth_mbps=10.0, propagation_ms=0.0)
        cap = link.bytes_per_ms
        FluidBackground(link, 1.0, [2.0 * cap] * 4)
        packet = Packet(64, channel="probe")
        delivered = []

        def fire():
            link.send(packet, lambda p: delivered.append(sim.now))

        sim.schedule(4.0, fire)
        sim.run(20.0)
        # Sent at t=4 into W(4) = 4 ms of backlog, then its own service.
        service = packet.wire_bytes / cap
        assert delivered == [pytest.approx(4.0 + 4.0 + service)]

    def test_consecutive_probes_keep_fifo_order(self):
        sim = Simulator()
        link = Link(sim, bandwidth_mbps=10.0, propagation_ms=0.0)
        FluidBackground(link, 1.0, [0.0] * 10)
        order = []
        for name in ("a", "b", "c"):
            link.send(
                Packet(1250, channel=name),
                lambda p, n=name: order.append((n, sim.now)),
            )
        sim.run(20.0)
        service = 1250 / link.bytes_per_ms
        assert [n for n, _ in order] == ["a", "b", "c"]
        # Each packet queues behind its predecessors' unfinished work.
        for i, (_, at) in enumerate(order):
            assert at == pytest.approx((i + 1) * service)

    def test_hybrid_path_still_counts_packets(self):
        sim = Simulator()
        link = Link(sim, bandwidth_mbps=10.0)
        FluidBackground(link, 1.0, [0.0] * 10)
        link.send(Packet(64, channel="probe"))
        sim.run(10.0)
        assert link.packets_sent == 1
        assert link.bytes_sent == 64
        assert link.trace.times  # trace records hybrid sends too

    def test_attach_guards(self):
        sim = Simulator()
        link = Link(sim, bandwidth_mbps=10.0)
        FluidBackground(link, 1.0, [0.0])
        with pytest.raises(NetworkError):
            link.attach_background(object())
        busy = Link(sim, bandwidth_mbps=10.0)
        busy.send(Packet(1500))
        with pytest.raises(NetworkError):
            busy.attach_background(object())

    def test_constructor_validation(self):
        link = make_link()
        with pytest.raises(NetworkError):
            FluidBackground(link, 0.0, [0.0], attach=False)
        with pytest.raises(NetworkError):
            FluidBackground(link, 1.0, [0.0], start_ms=-1.0, attach=False)
        fluid = FluidBackground(link, 1.0, [0.0], attach=False)
        with pytest.raises(NetworkError):
            fluid.add_work_ms(-1.0)
