"""Batch samplers vs the per-event generators: the statistics contract.

Three layers of assertion, strongest first:

* **Exact invariances** (Hypothesis over splits and populations): batch
  boundaries never change a sequence — drawing ``a`` ticks then ``b``
  ticks equals drawing ``a + b`` at once, element for element — and the
  Poisson superposition law holds *exactly* (N sources at λ is one
  source at N·λ, same seed → same array).
* **Law checks** (pinned seeds, CLT-width tolerances): per-tick means,
  interarrival mean and CV, and on-off burstiness (variance strictly
  above equal-mean Poisson) match the distributions the per-event
  generators realize one event at a time.
* **Cross-tier totals**: a per-event :class:`PoissonLoadGenerator` run
  and a batch sampler at the same rate offer statistically equal packet
  totals.

numpy is required here (the batch tier is the subject under test); the
whole module skips if it is absent, mirroring the lazy import in
:mod:`repro.net.loadgen`.
"""

import math

import pytest

np = pytest.importorskip("numpy")
hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import NetworkError
from repro.net.loadgen import (
    BatchClosedLoopSampler,
    BatchOnOffSampler,
    BatchPoissonSampler,
    PoissonLoadGenerator,
)

COMMON = dict(
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
    max_examples=25,
)


class TestBoundaryInvariance:
    @given(
        split=st.integers(min_value=0, max_value=200),
        total=st.integers(min_value=1, max_value=200),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(**COMMON)
    def test_poisson_tick_counts_split_free(self, split, total, seed):
        split = min(split, total)
        one = BatchPoissonSampler(0.4, 2.0, sources=977, seed=seed)
        two = BatchPoissonSampler(0.4, 2.0, sources=977, seed=seed)
        whole = one.tick_counts(total)
        parts = np.concatenate(
            [two.tick_counts(split), two.tick_counts(total - split)]
        )
        assert np.array_equal(whole, parts)

    @given(
        split=st.integers(min_value=0, max_value=150),
        total=st.integers(min_value=1, max_value=150),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(**COMMON)
    def test_onoff_tick_counts_split_free(self, split, total, seed):
        split = min(split, total)
        kw = dict(sources=500, seed=seed, on_fraction=0.25, cycle_ms=100.0)
        one = BatchOnOffSampler(0.2, 5.0, **kw)
        two = BatchOnOffSampler(0.2, 5.0, **kw)
        whole = one.tick_counts(total)
        parts = np.concatenate(
            [two.tick_counts(split), two.tick_counts(total - split)]
        )
        assert np.array_equal(whole, parts)

    @given(
        split=st.integers(min_value=0, max_value=500),
        total=st.integers(min_value=1, max_value=500),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(**COMMON)
    def test_interarrival_gaps_split_free(self, split, total, seed):
        split = min(split, total)
        one = BatchPoissonSampler(0.5, 1.0, sources=10, seed=seed)
        two = BatchPoissonSampler(0.5, 1.0, sources=10, seed=seed)
        whole = one.interarrivals(total)
        parts = np.concatenate(
            [two.interarrivals(split), two.interarrivals(total - split)]
        )
        assert np.array_equal(whole, parts)

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(**COMMON)
    def test_counts_and_gaps_use_independent_streams(self, seed):
        """Interleaving gap draws never perturbs the count sequence."""
        plain = BatchPoissonSampler(0.4, 2.0, sources=100, seed=seed)
        mixed = BatchPoissonSampler(0.4, 2.0, sources=100, seed=seed)
        first = plain.tick_counts(50)
        mixed.interarrivals(37)
        second = mixed.tick_counts(50)
        assert np.array_equal(first, second)


class TestSuperposition:
    @given(
        sources=st.integers(min_value=1, max_value=100_000),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(**COMMON)
    def test_n_sources_equal_one_fat_stream_exactly(self, sources, seed):
        """Poisson superposition is exact, not approximate: same law,
        and with split-stable streams the same seed gives the same draw."""
        rate = 0.001
        many = BatchPoissonSampler(rate, 10.0, sources=sources, seed=seed)
        one = BatchPoissonSampler(rate * sources, 10.0, sources=1, seed=seed)
        assert many.mean_per_tick == pytest.approx(one.mean_per_tick)
        assert np.array_equal(many.tick_counts(64), one.tick_counts(64))

    def test_aggregate_totals_follow_the_population(self):
        """Doubling the population doubles the offered totals (to CLT noise)."""
        base = BatchPoissonSampler(0.01, 10.0, sources=10_000, seed=7)
        double = BatchPoissonSampler(0.01, 10.0, sources=20_000, seed=7)
        n = 2_000
        a, b = base.tick_counts(n).sum(), double.tick_counts(n).sum()
        assert b / a == pytest.approx(2.0, rel=0.02)


class TestLaws:
    def test_poisson_tick_mean_and_variance(self):
        sampler = BatchPoissonSampler(0.02, 5.0, sources=1_000, seed=11)
        n = 20_000
        counts = sampler.tick_counts(n)
        m = sampler.mean_per_tick  # 100 packets/tick
        # CLT bounds: sd of the sample mean is sqrt(m/n).
        assert counts.mean() == pytest.approx(m, abs=6 * math.sqrt(m / n))
        # Poisson: variance == mean (index of dispersion 1).
        assert counts.var() / counts.mean() == pytest.approx(1.0, rel=0.05)

    def test_interarrival_mean_and_cv_are_exponential(self):
        sampler = BatchPoissonSampler(0.5, 1.0, sources=8, seed=13)
        gaps = sampler.interarrivals(200_000)
        expected = 1.0 / sampler.aggregate_rate_per_ms
        assert gaps.mean() == pytest.approx(expected, rel=0.02)
        cv = gaps.std() / gaps.mean()
        assert cv == pytest.approx(1.0, rel=0.02)

    def test_onoff_long_run_mean_matches_spec(self):
        sampler = BatchOnOffSampler(
            0.004, 10.0, sources=5_000, seed=17, on_fraction=0.25,
            cycle_ms=200.0,
        )
        counts = sampler.tick_counts(30_000)
        assert counts.mean() == pytest.approx(sampler.mean_per_tick, rel=0.05)

    def test_onoff_is_burstier_than_equal_mean_poisson(self):
        """Equal means, unequal variance: the tail argument, batch-side."""
        # Burstiness needs whole bursts per tick: the variance excess over
        # Poisson is f(1-f) * (burst_rate * tick)^2 / mean_per_tick, so a
        # source must land many packets per tick while ON to show it.
        onoff = BatchOnOffSampler(
            0.2, 10.0, sources=500, seed=19, on_fraction=0.25,
            cycle_ms=500.0,
        )
        poisson = BatchPoissonSampler(0.2, 10.0, sources=500, seed=19)
        a, b = onoff.tick_counts(20_000), poisson.tick_counts(20_000)
        assert a.mean() == pytest.approx(b.mean(), rel=0.05)
        assert a.var() > 2.0 * b.var()

    def test_onoff_all_on_degenerates_to_poisson_law(self):
        sampler = BatchOnOffSampler(
            0.01, 10.0, sources=1_000, seed=23, on_fraction=1.0
        )
        counts = sampler.tick_counts(20_000)
        assert counts.mean() == pytest.approx(sampler.mean_per_tick, rel=0.03)
        assert counts.var() / counts.mean() == pytest.approx(1.0, rel=0.05)

    def test_tick_bytes_scale_counts(self):
        a = BatchPoissonSampler(0.1, 1.0, sources=10, seed=3, packet_bytes=200)
        b = BatchPoissonSampler(0.1, 1.0, sources=10, seed=3, packet_bytes=200)
        assert np.array_equal(a.tick_bytes(100), b.tick_counts(100) * 200)


def closed_sampler(seed, *, sources=500, tick_ms=5.0, echo_servers=None):
    return BatchClosedLoopSampler(
        2_000.0,
        100.0,
        50.0,
        tick_ms,
        sources=sources,
        seed=seed,
        burst_keys=4.0,
        echo_servers=echo_servers,
    )


class TestClosedLoopInvariants:
    @given(
        sources=st.integers(min_value=1, max_value=100_000),
        ticks=st.integers(min_value=1, max_value=200),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(**COMMON)
    def test_state_counts_are_conserved_every_tick(
        self, sources, ticks, seed
    ):
        """Sessions move between states; they never appear or vanish."""
        sampler = closed_sampler(seed, sources=sources)
        for __ in range(ticks):
            sampler.step()
            assert (
                sampler.thinking + sampler.typing + sampler.blocked == sources
            )
            assert sampler.thinking >= 0
            assert sampler.typing >= 0
            assert sampler.blocked >= 0

    @given(
        split=st.integers(min_value=0, max_value=200),
        total=st.integers(min_value=1, max_value=200),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(**COMMON)
    def test_advance_is_split_free(self, split, total, seed):
        """Batch boundaries never change the trajectory, key for key."""
        split = min(split, total)
        one = closed_sampler(seed)
        two = closed_sampler(seed)
        whole_keys, whole_done = one.advance(total)
        a_keys, a_done = two.advance(split)
        b_keys, b_done = two.advance(total - split)
        assert np.array_equal(whole_keys, np.concatenate([a_keys, b_keys]))
        assert np.array_equal(whole_done, np.concatenate([a_done, b_done]))
        assert (one.thinking, one.typing, one.blocked) == (
            two.thinking, two.typing, two.blocked
        )

    @given(
        split=st.integers(min_value=0, max_value=200),
        total=st.integers(min_value=1, max_value=200),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(**COMMON)
    def test_shared_echo_station_is_split_free_too(self, split, total, seed):
        split = min(split, total)
        one = closed_sampler(seed, echo_servers=4)
        two = closed_sampler(seed, echo_servers=4)
        whole_keys, whole_done = one.advance(total)
        parts = [two.advance(split), two.advance(total - split)]
        assert np.array_equal(
            whole_keys, np.concatenate([parts[0][0], parts[1][0]])
        )
        assert np.array_equal(
            whole_done, np.concatenate([parts[0][1], parts[1][1]])
        )

    @given(
        tick_ms=st.floats(min_value=0.5, max_value=50.0),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(**{**COMMON, "max_examples": 10})
    def test_stationary_think_fraction_at_any_tick_width(
        self, tick_ms, seed
    ):
        """The discretized chain keeps the exact stationary law no matter
        how coarse the tick: the geometric holding times rescale with the
        per-tick hazards, so occupancy fractions are tick-free."""
        sampler = closed_sampler(seed, sources=20_000, tick_ms=tick_ms)
        sampler.advance(max(400, int(6_000.0 / tick_ms)))
        expected = sampler.stationary_fractions()
        total = float(
            sampler.thinking_ticks
            + sampler.typing_ticks
            + sampler.blocked_ticks
        )
        for observed_ticks, pi in zip(
            (
                sampler.thinking_ticks,
                sampler.typing_ticks,
                sampler.blocked_ticks,
            ),
            expected,
        ):
            assert observed_ticks / total == pytest.approx(pi, abs=0.02)

    def test_external_completions_drive_the_unblocking(self):
        sampler = closed_sampler(11, sources=1_000)
        sampler.advance(200)
        blocked = sampler.blocked
        keys, done = sampler.step(completions=blocked + 50)
        assert done == blocked  # clamped: can't complete more than blocked
        keys, done = sampler.step(completions=0)
        assert done == 0  # starved echoes leave everyone blocked

    def test_closed_sampler_rejects_bad_parameters(self):
        with pytest.raises(NetworkError):
            BatchClosedLoopSampler(0.0, 100.0, 50.0, 5.0)
        with pytest.raises(NetworkError):
            BatchClosedLoopSampler(2_000.0, 0.0, 50.0, 5.0)
        with pytest.raises(NetworkError):
            BatchClosedLoopSampler(2_000.0, 100.0, 0.0, 5.0)
        with pytest.raises(NetworkError):
            BatchClosedLoopSampler(2_000.0, 100.0, 50.0, 0.0)
        with pytest.raises(NetworkError):
            BatchClosedLoopSampler(2_000.0, 100.0, 50.0, 5.0, sources=0)
        with pytest.raises(NetworkError):
            BatchClosedLoopSampler(2_000.0, 100.0, 50.0, 5.0, burst_keys=0.5)
        with pytest.raises(NetworkError):
            BatchClosedLoopSampler(
                2_000.0, 100.0, 50.0, 5.0, echo_servers=0
            )
        sampler = closed_sampler(1)
        with pytest.raises(NetworkError):
            sampler.advance(-1)
        with pytest.raises(NetworkError):
            sampler.step(completions=-1)


class TestCrossTier:
    def test_batch_totals_match_per_event_generator(self):
        """The two tiers offer the same load, measured end to end."""
        import random

        from repro.net.link import Link
        from repro.sim.engine import Simulator

        mbps, duration_ms = 5.0, 30_000.0
        sim = Simulator()
        link = Link(sim, bandwidth_mbps=100.0)
        generator = PoissonLoadGenerator(
            sim, link, mbps, random.Random(29), packet_bytes=1500
        )
        sim.run_until(duration_ms)
        rate_per_ms = mbps * 1e6 / 8.0 / 1000.0 / 1500
        sampler = BatchPoissonSampler(
            rate_per_ms, 10.0, sources=1, seed=29, packet_bytes=1500
        )
        batch_total = int(sampler.tick_counts(int(duration_ms / 10.0)).sum())
        expected = rate_per_ms * duration_ms
        sd = math.sqrt(expected)
        assert abs(generator.packets_offered - expected) < 6 * sd
        assert abs(batch_total - expected) < 6 * sd


class TestValidation:
    def test_poisson_sampler_rejects_bad_parameters(self):
        with pytest.raises(NetworkError):
            BatchPoissonSampler(-1.0, 1.0)
        with pytest.raises(NetworkError):
            BatchPoissonSampler(1.0, 0.0)
        with pytest.raises(NetworkError):
            BatchPoissonSampler(1.0, 1.0, sources=0)
        with pytest.raises(NetworkError):
            BatchPoissonSampler(1.0, 1.0, packet_bytes=0)
        sampler = BatchPoissonSampler(0.0, 1.0)
        with pytest.raises(NetworkError):
            sampler.interarrivals(1)
        with pytest.raises(NetworkError):
            sampler.tick_counts(-1)

    def test_onoff_sampler_rejects_bad_parameters(self):
        with pytest.raises(NetworkError):
            BatchOnOffSampler(1.0, 1.0, on_fraction=0.0)
        with pytest.raises(NetworkError):
            BatchOnOffSampler(1.0, 1.0, on_fraction=1.5)
        with pytest.raises(NetworkError):
            BatchOnOffSampler(1.0, 1.0, cycle_ms=0.0)
        sampler = BatchOnOffSampler(1.0, 1.0)
        with pytest.raises(NetworkError):
            sampler.tick_counts(-1)
