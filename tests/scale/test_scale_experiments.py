"""The registered scale experiments: registration, determinism, artifacts.

Mirrors ``tests/slo/test_slo_experiments.py`` — the scale group joins the
same compatibility surface: canonical registry order, executor identity
(serial == ``--jobs`` == cold == warm, byte for byte), kernel and
recorder invariance, and CSV artifacts that cover the whole grid.
"""

import csv
import io
import os
import subprocess
import sys

import pytest

pytest.importorskip("numpy")

from repro.cli import EXPERIMENTS, main
from repro.core.registry import REGISTRY
from repro.core.server import ServerConfig
from repro.errors import FleetError
from repro.fleet.cluster import Fleet, FleetConfig
from repro.scale.experiments import (
    CLOSED_CURVE_USERS,
    CLOSED_FLEET_BG_SESSIONS,
    FLEET_BG_USERS,
    FLEET_PROCESSES,
    LOAD_CURVE_PROCESSES,
    LOAD_CURVE_USERS,
    _scale_closed_curve_point,
    _scale_closed_fleet_point,
    _scale_fleet_point,
    _scale_load_curve_point,
)
from repro.scale.population import ClosedLoopSpec, PopulationSpec

SCALE_NAMES = [
    "scale_load_curve",
    "scale_closed_curve",
    "scale_fleet",
    "scale_closed_fleet",
]


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def small_fleet(**overrides):
    kwargs = dict(
        server=ServerConfig.tse(include_idle_activity=False),
        num_servers=2,
        placement="round_robin",
        admission_mode="reject",
        capacity_per_server=2,
        backbone_mbps=100.0,
        co_safe_sessions=True,
    )
    kwargs.update(overrides)
    return Fleet(FleetConfig(**kwargs), seed=1)


def small_spec(**overrides):
    kwargs = dict(users=1_000, per_user_bps=100.0, tick_ms=10.0)
    kwargs.update(overrides)
    return PopulationSpec(**kwargs)


def small_closed_spec(**overrides):
    kwargs = dict(
        users=2_000,
        think_ms=5_000.0,
        type_ms=300.0,
        burst_keys=2.0,
        tick_ms=10.0,
    )
    kwargs.update(overrides)
    return ClosedLoopSpec(**kwargs)


class TestRegistration:
    def test_scale_experiments_close_the_registry(self):
        names = list(EXPERIMENTS)
        assert names[-4:] == SCALE_NAMES

    def test_group_and_titles(self):
        for name in SCALE_NAMES:
            assert REGISTRY[name].group == "scale"
            assert REGISTRY[name].title


class TestPointFunctions:
    def test_load_curve_point_deterministic(self):
        point = _scale_load_curve_point(("poisson", 10_000), seed=3)
        assert point == _scale_load_curve_point(("poisson", 10_000), seed=3)

    def test_load_curve_knee_bends_upward(self):
        quiet = _scale_load_curve_point(("poisson", 10_000), seed=3)
        busy = _scale_load_curve_point(("poisson", 900_000), seed=3)
        # Columns: (n, offered, util, mean, p50, p99, p99.9, viol, burn).
        assert busy[2] > 5 * quiet[2]  # utilization tracks the population
        assert busy[5] > 4 * quiet[5]  # p99 has left the flat region

    def test_fleet_point_deterministic_and_cliff_is_sharp(self):
        low = _scale_fleet_point(("poisson", 20_000), seed=3)
        assert low == _scale_fleet_point(("poisson", 20_000), seed=3)
        over = _scale_fleet_point(("poisson", 95_000), seed=3)
        n, cpu, lan, p50, p99, viol, burn = over
        assert cpu > 0.99  # past saturation
        assert viol == pytest.approx(1.0)
        assert p99 > 100.0  # the budget is unreachable over the cliff
        assert low[5] == 0.0  # and trivially met below it

    def test_closed_curve_point_deterministic(self):
        point = _scale_closed_curve_point(10_000, seed=3)
        assert point == _scale_closed_curve_point(10_000, seed=3)

    def test_closed_curve_bends_at_the_mva_knee(self):
        light = _scale_closed_curve_point(10_000, seed=3)
        heavy = _scale_closed_curve_point(1_000_000, seed=3)
        # Columns: (n, util, p50, p99, X/s, X/s/session, R, mvaX/s, viol, burn).
        assert heavy[1] > 0.95  # the wire is saturated past the knee
        assert light[1] < 0.10  # and idle well below it
        assert light[5] > 3 * heavy[5]  # per-session rate decays ~1/N
        # Aggregate throughput never beats the MVA asymptote (plus CLT slack).
        assert heavy[4] <= 1.05 * heavy[7]

    def test_closed_fleet_point_deterministic_and_self_throttles(self):
        low = _scale_closed_fleet_point(20_000, seed=3)
        assert low == _scale_closed_fleet_point(20_000, seed=3)
        over = _scale_closed_fleet_point(95_000, seed=3)
        n, cpu, lan, keys_per_s, p50, p99, viol, burn = over
        # Closed-loop load clamps at capacity instead of running away.
        assert cpu > 0.9
        assert low[1] < cpu
        assert keys_per_s > low[3]  # throughput still rose toward the ceiling
        assert p99 > low[5]  # but the probes paid for it


class TestFleetIntegration:
    def test_pinned_sessions_land_on_their_server(self):
        fleet = small_fleet()
        for index in range(2):
            session = fleet.open_session(f"p{index}", pin_server=index)
            assert session.state is fleet.servers[index]

    def test_pinning_out_of_range_raises(self):
        with pytest.raises(FleetError):
            small_fleet().open_session("p", pin_server=9)

    def test_pinning_to_a_full_server_raises(self):
        fleet = small_fleet(capacity_per_server=1)
        fleet.open_session("a", pin_server=0)
        with pytest.raises(FleetError):
            fleet.open_session("b", pin_server=0)

    def test_attach_background_guards(self):
        fleet = small_fleet()
        fleet.attach_background(0, small_spec(), horizon_ms=1_000.0)
        with pytest.raises(FleetError):
            fleet.attach_background(0, small_spec(), horizon_ms=1_000.0)
        with pytest.raises(FleetError):
            fleet.attach_background(9, small_spec(), horizon_ms=1_000.0)

    def test_report_counts_background_users(self):
        fleet = small_fleet()
        fleet.attach_background(0, small_spec(users=1_000), horizon_ms=500.0)
        fleet.attach_background(1, small_spec(users=2_000), horizon_ms=500.0)
        fleet.run(500.0)
        assert fleet.report()["background_users"] == 3_000

    def test_populations_get_independent_derived_seeds(self):
        fleet = small_fleet()
        a = fleet.attach_background(0, small_spec(), horizon_ms=500.0)
        b = fleet.attach_background(1, small_spec(), horizon_ms=500.0)
        assert a.seed != b.seed

    def test_attach_background_dispatches_on_spec_type(self):
        from repro.scale.population import (
            BackgroundPopulation,
            ClosedLoopPopulation,
        )

        fleet = small_fleet()
        open_pop = fleet.attach_background(0, small_spec(), horizon_ms=500.0)
        closed = fleet.attach_background(
            1, small_closed_spec(), horizon_ms=500.0
        )
        assert isinstance(open_pop, BackgroundPopulation)
        assert isinstance(closed, ClosedLoopPopulation)

    def test_report_counts_closed_loop_throughput(self):
        fleet = small_fleet()
        fleet.attach_background(
            0,
            small_closed_spec(cpu_ms_per_echo=0.05),
            horizon_ms=2_000.0,
        )
        fleet.run(2_000.0)
        report = fleet.report()
        assert report["background_users"] == 2_000
        assert report["background_keys_per_s"] > 0.0
        assert report["background_backlog_ms"] >= 0.0


class TestArtifactIdentity:
    """The scale sweeps honor the repo's executor-identity contract."""

    def read_all(self, directory):
        out = {}
        for name in sorted(os.listdir(directory)):
            with open(os.path.join(directory, name), "rb") as f:
                out[name] = f.read()
        return out

    def test_fleet_identical_serial_parallel_cold_and_warm(self, tmp_path):
        cache = str(tmp_path / "cache")
        code, serial = run_cli(
            "run", "scale_fleet", "--seed", "1",
            "--csv", str(tmp_path / "a"), "--cache-dir", cache,
        )
        assert code == 0
        code, parallel = run_cli(
            "run", "scale_fleet", "--seed", "1", "--jobs", "4",
            "--csv", str(tmp_path / "b"),
        )
        assert code == 0
        code, warm = run_cli(
            "run", "scale_fleet", "--seed", "1",
            "--csv", str(tmp_path / "c"), "--cache-dir", cache,
        )
        assert code == 0
        assert serial == parallel == warm
        assert (
            self.read_all(tmp_path / "a")
            == self.read_all(tmp_path / "b")
            == self.read_all(tmp_path / "c")
        )

    def test_closed_curve_identical_serial_parallel_cold_and_warm(
        self, tmp_path
    ):
        cache = str(tmp_path / "cache")
        code, serial = run_cli(
            "run", "scale_closed_curve", "--seed", "1",
            "--csv", str(tmp_path / "a"), "--cache-dir", cache,
        )
        assert code == 0
        code, parallel = run_cli(
            "run", "scale_closed_curve", "--seed", "1", "--jobs", "4",
            "--csv", str(tmp_path / "b"),
        )
        assert code == 0
        code, warm = run_cli(
            "run", "scale_closed_curve", "--seed", "1",
            "--csv", str(tmp_path / "c"), "--cache-dir", cache,
        )
        assert code == 0
        assert serial == parallel == warm
        assert (
            self.read_all(tmp_path / "a")
            == self.read_all(tmp_path / "b")
            == self.read_all(tmp_path / "c")
        )

    @pytest.fixture(scope="class")
    def fleet_stdout(self):
        code, expected = run_cli("run", "scale_fleet", "--seed", "5")
        assert code == 0
        return expected

    @pytest.mark.parametrize("kernel", ["", "reference"])
    @pytest.mark.parametrize("recorder", ["", "reference"])
    def test_fleet_identical_across_kernel_and_recorder(
        self, fleet_stdout, kernel, recorder
    ):
        """Every kernel x recorder combination prints the same bytes."""
        env = {**os.environ, "PYTHONPATH": "src"}
        if kernel:
            env["REPRO_KERNEL"] = kernel
        if recorder:
            env["REPRO_OBS"] = recorder
        result = subprocess.run(
            [sys.executable, "-m", "repro", "run", "scale_fleet",
             "--seed", "5"],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.join(os.path.dirname(__file__), "..", ".."),
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout == fleet_stdout

    @pytest.fixture(scope="class")
    def closed_curve_stdout(self):
        code, expected = run_cli("run", "scale_closed_curve", "--seed", "5")
        assert code == 0
        return expected

    @pytest.mark.parametrize("kernel", ["", "reference"])
    @pytest.mark.parametrize("recorder", ["", "reference"])
    def test_closed_curve_identical_across_kernel_and_recorder(
        self, closed_curve_stdout, kernel, recorder
    ):
        env = {**os.environ, "PYTHONPATH": "src"}
        if kernel:
            env["REPRO_KERNEL"] = kernel
        if recorder:
            env["REPRO_OBS"] = recorder
        result = subprocess.run(
            [sys.executable, "-m", "repro", "run", "scale_closed_curve",
             "--seed", "5"],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.join(os.path.dirname(__file__), "..", ".."),
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout == closed_curve_stdout


class TestOutputShape:
    def test_load_curve_csv_covers_the_grid(self, tmp_path):
        code, text = run_cli(
            "run", "scale_load_curve", "--seed", "1", "--csv", str(tmp_path)
        )
        assert code == 0
        assert "knee" in text
        with open(tmp_path / "scale_load_curve.csv") as f:
            rows = list(csv.reader(f))
        assert len(rows) - 1 == len(LOAD_CURVE_PROCESSES) * len(
            LOAD_CURVE_USERS
        )
        header = rows[0]
        users = header.index("users")
        p99 = header.index("rtt_p99_ms")
        by_users = {
            int(r[users]): float(r[p99])
            for r in rows[1:]
            if r[0] == "poisson"
        }
        # The committed EXPERIMENTS.md curve: flat, then the knee.
        assert by_users[1_000_000] > 10 * by_users[10_000]

    def test_fleet_csv_covers_the_frontier(self, tmp_path):
        code, text = run_cli(
            "run", "scale_fleet", "--seed", "1", "--csv", str(tmp_path)
        )
        assert code == 0
        for process in FLEET_PROCESSES:
            assert process in text
        with open(tmp_path / "scale_fleet.csv") as f:
            rows = list(csv.reader(f))
        assert len(rows) - 1 == len(FLEET_PROCESSES) * len(FLEET_BG_USERS)
        viol = rows[0].index("violation_rate")
        rates = [float(r[viol]) for r in rows[1:]]
        assert min(rates) == 0.0 and max(rates) == 1.0

    def test_closed_curve_csv_covers_the_grid(self, tmp_path):
        code, text = run_cli(
            "run", "scale_closed_curve", "--seed", "1", "--csv", str(tmp_path)
        )
        assert code == 0
        assert "MVA knee" in text
        with open(tmp_path / "scale_closed_curve.csv") as f:
            rows = list(csv.reader(f))
        assert len(rows) - 1 == len(CLOSED_CURVE_USERS)
        header = rows[0]
        sessions = header.index("sessions")
        per_session = header.index("per_session_keys_per_s")
        by_sessions = {
            int(r[sessions]): float(r[per_session]) for r in rows[1:]
        }
        # The committed EXPERIMENTS.md curve: flat until the knee, then 1/N.
        assert by_sessions[10_000] > 3 * by_sessions[1_000_000]

    def test_closed_fleet_csv_covers_the_frontier(self, tmp_path):
        code, text = run_cli(
            "run", "scale_closed_fleet", "--seed", "1", "--csv", str(tmp_path)
        )
        assert code == 0
        assert "frontier" in text
        with open(tmp_path / "scale_closed_fleet.csv") as f:
            rows = list(csv.reader(f))
        assert len(rows) - 1 == len(CLOSED_FLEET_BG_SESSIONS)
        header = rows[0]
        cpu = header.index("cpu_utilization")
        utils = [float(r[cpu]) for r in rows[1:]]
        # Self-throttling: utilization climbs toward (and clamps at) 1.0.
        assert utils == sorted(utils)
        assert max(utils) <= 1.05
