"""Differential equivalence: the hybrid tier against the exact tier.

The hybrid tier's whole claim is that a presampled fluid background is
*statistically* interchangeable with per-event background users while the
probes stay exact packets.  This suite pins that claim where both tiers
are affordable (N = 32 users, the exact tier's comfortable range):

* **Distributional equivalence** — seed-averaged RTT mean/p50/p90/p99
  and utilization agree within tolerances calibrated to three seeds'
  Monte-Carlo spread (p50 is byte-identical: at rho < 0.5 the median
  probe sees an empty queue in both tiers).
* **Shared probe stream** — both modes draw probe times from the same
  named stream, so the sample *count* matches exactly, seed for seed.
* **Purity** — a point is a pure function of (parameters, seed): same
  seed, same observation object; the kernel and recorder toggles do not
  change a single field (subprocess matrix, toggles bind at import).

Tolerances are deliberately asymmetric with the suite's purpose: tight
enough to catch a broken integrator (the fluid tier off by a tick width
shifts p99 by 2x at these loads), loose enough to pass forever on the
pinned seeds.
"""

import os
import subprocess
import sys
from functools import lru_cache

import pytest

pytest.importorskip("numpy")

from repro.errors import NetworkError
from repro.scale.hybrid import MODES, run_load_curve_point

#: Small-N point both tiers can afford; ~42% utilization, where queues
#: are real but stable (the regime the curve's knee grows out of).
N_USERS = 32
POINT_KW = dict(
    per_user_bps=131_250.0,
    bandwidth_mbps=10.0,
    tick_ms=0.2,
    duration_ms=20_000.0,
    warmup_ms=1_000.0,
)
SEEDS = (7, 42, 1234)
STATS = ("rtt_mean_ms", "rtt_p50_ms", "rtt_p90_ms", "rtt_p99_ms",
         "utilization")


@lru_cache(maxsize=None)
def observation(process, mode, seed):
    return run_load_curve_point(
        N_USERS, process=process, mode=mode, seed=seed, **POINT_KW
    )


def seed_averaged(process, mode):
    rows = [observation(process, mode, seed) for seed in SEEDS]
    return {
        stat: sum(getattr(row, stat) for row in rows) / len(rows)
        for stat in STATS
    }


class TestDistributionalEquivalence:
    #: Calibrated against three-seed Monte-Carlo spread; see module doc.
    TOLERANCES = {
        "rtt_mean_ms": 0.20,
        "rtt_p50_ms": 0.02,
        "rtt_p90_ms": 0.20,
        "rtt_p99_ms": 0.35,
        "utilization": 0.05,
    }

    @pytest.mark.parametrize("process", ["poisson", "onoff"])
    def test_hybrid_matches_exact_statistics(self, process):
        exact = seed_averaged(process, "exact")
        hybrid = seed_averaged(process, "hybrid")
        for stat, tolerance in self.TOLERANCES.items():
            assert hybrid[stat] == pytest.approx(
                exact[stat], rel=tolerance
            ), f"{process} {stat}: hybrid {hybrid[stat]} vs exact {exact[stat]}"

    @pytest.mark.parametrize("process", ["poisson", "onoff"])
    def test_probe_stream_is_mode_independent(self, process):
        """Both tiers see the identical probe schedule: same count."""
        for seed in SEEDS:
            exact = observation(process, "exact", seed)
            hybrid = observation(process, "hybrid", seed)
            assert exact.samples == hybrid.samples
            assert exact.samples > 2_000  # CO-safe: the stream never stalls

    def test_busier_wire_means_slower_probes(self):
        """The hybrid curve bends the right way (Figure 8's shape)."""
        points = [
            run_load_curve_point(
                users, per_user_bps=100.0, duration_ms=10_000.0, seed=11
            )
            for users in (10_000, 50_000, 90_000)
        ]
        means = [p.rtt_mean_ms for p in points]
        assert means == sorted(means)
        assert points[-1].rtt_p99_ms > 2.0 * points[0].rtt_p99_ms


class TestPurity:
    def test_same_seed_same_observation(self):
        a = run_load_curve_point(1_000, duration_ms=5_000.0, seed=3)
        b = run_load_curve_point(1_000, duration_ms=5_000.0, seed=3)
        assert a == b  # frozen dataclass: field-for-field identity

    def test_different_seeds_differ(self):
        a = run_load_curve_point(1_000, duration_ms=5_000.0, seed=3)
        b = run_load_curve_point(1_000, duration_ms=5_000.0, seed=4)
        assert a != b

    @pytest.mark.parametrize("kernel", ["", "reference"])
    @pytest.mark.parametrize("recorder", ["", "reference"])
    def test_kernel_and_recorder_leave_every_field_alone(
        self, kernel, recorder
    ):
        """The toggles bind at import, so each variant is a subprocess."""
        expected = repr(
            run_load_curve_point(1_000, duration_ms=5_000.0, seed=9)
        )
        env = {**os.environ, "PYTHONPATH": "src"}
        if kernel:
            env["REPRO_KERNEL"] = kernel
        if recorder:
            env["REPRO_OBS"] = recorder
        code = (
            "from repro.scale.hybrid import run_load_curve_point\n"
            "print(repr(run_load_curve_point("
            "1_000, duration_ms=5_000.0, seed=9)))\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.join(os.path.dirname(__file__), "..", ".."),
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == expected


class TestValidation:
    def test_mode_vocabulary(self):
        assert MODES == ("exact", "hybrid")
        with pytest.raises(NetworkError):
            run_load_curve_point(10, mode="fluid")

    def test_bad_windows_rejected(self):
        with pytest.raises(NetworkError):
            run_load_curve_point(10, duration_ms=500.0, warmup_ms=1_000.0)
        with pytest.raises(NetworkError):
            run_load_curve_point(10, probe_interval_ms=0.0)

    def test_bad_process_rejected(self):
        with pytest.raises(NetworkError):
            run_load_curve_point(10, process="pareto")
