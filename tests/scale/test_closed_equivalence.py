"""Differential equivalence: vectorized closed-loop vs per-event sessions.

The closed-loop tier's claim is stronger than the open one's: not only is
the background mass statistically interchangeable with per-event typing
sessions, the *feedback* is too — sessions that block on their echoes
must throttle the offered load the same way whether they are carried as
three counts or as N per-event state machines.  This suite pins that
claim at N = 32 sessions on a 1 Mbps wire, where both tiers are
affordable and the echo service time (D ~ 2.1 ms) dominates the hybrid
tick (0.5 ms), so the documented tick-floor error stays a correction,
not the signal:

* **Distributional equivalence** — seed-averaged probe RTT statistics,
  utilization, and the MVA quantities (X, per-session keys/s, R) agree
  within tolerances calibrated to three seeds' Monte-Carlo spread.  The
  closed-loop response carries the modeled discretization bias (echo
  completions drain at tick boundaries, a >= 1-tick blocked floor plus
  within-tick smearing — see MODELING.md), so its tolerance is wider
  than the probes'.
* **Shared probe stream** — both modes draw probe times from the same
  named stream: identical sample counts, seed for seed.
* **Purity** — a point is a pure function of (parameters, seed); kernel
  and recorder toggles change nothing (subprocess matrix, toggles bind
  at import).
"""

import os
import subprocess
import sys
from functools import lru_cache

import pytest

pytest.importorskip("numpy")

from repro.errors import NetworkError
from repro.scale.hybrid import MODES, run_closed_curve_point

#: Small-N point both tiers can afford: ~32% utilization, echo service
#: ~4x the hybrid tick, ~500 think cycles per session-window so the
#: seed-averaged statistics have sub-tolerance Monte-Carlo spread.
N_SESSIONS = 32
POINT_KW = dict(
    think_ms=2_000.0,
    type_ms=200.0,
    burst_keys=5.0,
    bandwidth_mbps=1.0,
    keystroke_bytes=64,
    echo_bytes=200,
    tick_ms=0.5,
    probe_interval_ms=5.0,
    duration_ms=60_000.0,
    warmup_ms=4_000.0,
)
SEEDS = (7, 42, 1234)
STATS = (
    "rtt_mean_ms",
    "rtt_p50_ms",
    "rtt_p90_ms",
    "rtt_p99_ms",
    "utilization",
    "throughput_per_ms",
    "per_session_keys_per_s",
    "response_ms",
    "mean_blocked",
)


@lru_cache(maxsize=None)
def observation(mode, seed):
    return run_closed_curve_point(
        N_SESSIONS, mode=mode, seed=seed, **POINT_KW
    )


def seed_averaged(mode):
    rows = [observation(mode, seed) for seed in SEEDS]
    return {
        stat: sum(getattr(row, stat) for row in rows) / len(rows)
        for stat in STATS
    }


class TestDistributionalEquivalence:
    #: Calibrated against three-seed spread.  Probe-side stats inherit the
    #: open suite's widths; the closed-loop MVA quantities are tight (the
    #: chain is exact); response/mean_blocked carry the tick-floor bias
    #: (0.5 ms floor on a ~2.6 ms response) and get the widest bands.
    TOLERANCES = {
        "rtt_mean_ms": 0.10,
        "rtt_p50_ms": 0.02,
        "rtt_p90_ms": 0.20,
        "rtt_p99_ms": 0.35,
        "utilization": 0.05,
        "throughput_per_ms": 0.06,
        "per_session_keys_per_s": 0.06,
        "response_ms": 0.25,
        "mean_blocked": 0.30,
    }

    def test_hybrid_matches_exact_statistics(self):
        exact = seed_averaged("exact")
        hybrid = seed_averaged("hybrid")
        for stat, tolerance in self.TOLERANCES.items():
            assert hybrid[stat] == pytest.approx(
                exact[stat], rel=tolerance
            ), f"{stat}: hybrid {hybrid[stat]} vs exact {exact[stat]}"

    def test_probe_stream_is_mode_independent(self):
        """Both tiers see the identical probe schedule: same count."""
        for seed in SEEDS:
            exact = observation("exact", seed)
            hybrid = observation("hybrid", seed)
            assert exact.samples == hybrid.samples
            assert exact.samples > 2_000  # CO-safe: the stream never stalls

    def test_self_throttling_caps_both_tiers_identically(self):
        """Past the knee neither tier can offer more than the wire drains:
        utilization saturates instead of diverging (the closed-network
        behaviour the open tier cannot show)."""
        for mode in MODES:
            point = run_closed_curve_point(
                2_000, mode=mode, seed=11, **{
                    **POINT_KW, "duration_ms": 20_000.0, "warmup_ms": 4_000.0,
                }
            )
            assert 0.95 < point.utilization < 1.05, mode
            # X clamps at the 1/D asymptote (plus estimation noise).
            assert point.throughput_per_ms <= 1.1 * point.mva_throughput_per_ms


class TestPurity:
    def test_same_seed_same_observation(self):
        a = run_closed_curve_point(1_000, duration_ms=5_000.0, seed=3)
        b = run_closed_curve_point(1_000, duration_ms=5_000.0, seed=3)
        assert a == b  # frozen dataclass: field-for-field identity

    def test_different_seeds_differ(self):
        a = run_closed_curve_point(1_000, duration_ms=5_000.0, seed=3)
        b = run_closed_curve_point(1_000, duration_ms=5_000.0, seed=4)
        assert a != b

    @pytest.mark.parametrize("kernel", ["", "reference"])
    @pytest.mark.parametrize("recorder", ["", "reference"])
    def test_kernel_and_recorder_leave_every_field_alone(
        self, kernel, recorder
    ):
        """The toggles bind at import, so each variant is a subprocess."""
        expected = repr(
            run_closed_curve_point(1_000, duration_ms=5_000.0, seed=9)
        )
        env = {**os.environ, "PYTHONPATH": "src"}
        if kernel:
            env["REPRO_KERNEL"] = kernel
        if recorder:
            env["REPRO_OBS"] = recorder
        code = (
            "from repro.scale.hybrid import run_closed_curve_point\n"
            "print(repr(run_closed_curve_point("
            "1_000, duration_ms=5_000.0, seed=9)))\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.join(os.path.dirname(__file__), "..", ".."),
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == expected


class TestValidation:
    def test_mode_vocabulary(self):
        with pytest.raises(NetworkError):
            run_closed_curve_point(10, mode="fluid")

    def test_bad_windows_rejected(self):
        with pytest.raises(NetworkError):
            run_closed_curve_point(10, duration_ms=500.0, warmup_ms=1_000.0)
        with pytest.raises(NetworkError):
            run_closed_curve_point(10, probe_interval_ms=0.0)

    def test_bad_population_rejected(self):
        with pytest.raises(NetworkError):
            run_closed_curve_point(0)
