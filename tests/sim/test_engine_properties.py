"""Property-based tests for the event kernel's ordering guarantees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator

times = st.lists(
    st.floats(min_value=0.0, max_value=1_000.0, allow_nan=False),
    max_size=60,
)


@settings(max_examples=100, deadline=None)
@given(times)
def test_events_fire_in_timestamp_order(schedule_times):
    sim = Simulator()
    fired = []
    for t in schedule_times:
        sim.schedule_at(t, lambda t=t: fired.append((t, sim.now)))
    sim.run_until(2_000.0)
    # Every callback sees the clock at exactly its own timestamp...
    assert all(t == now for t, now in fired)
    # ...and firing order is non-decreasing in time.
    observed = [t for t, __ in fired]
    assert observed == sorted(observed)
    assert len(fired) == len(schedule_times)


@settings(max_examples=100, deadline=None)
@given(times, times)
def test_interleaved_scheduling_preserves_order(first_batch, second_batch):
    """Events scheduled from inside callbacks still fire in time order."""
    sim = Simulator()
    fired = []

    def note():
        fired.append(sim.now)

    for t in first_batch:
        sim.schedule_at(t, note)
    # At t=500, inject the second batch (only future times are legal).
    future = [t + 500.0 for t in second_batch]

    def inject():
        for t in future:
            sim.schedule_at(t, note)

    sim.schedule_at(500.0, inject)
    sim.run_until(3_000.0)
    assert fired == sorted(fired)
    assert len(fired) == len(first_batch) + len(second_batch)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=59), max_size=60))
def test_equal_time_events_fire_fifo(indices):
    """Ties at one timestamp break by scheduling order, always."""
    sim = Simulator()
    fired = []
    for i, __ in enumerate(indices):
        sim.schedule_at(100.0, lambda i=i: fired.append(i))
    sim.run_until(200.0)
    assert fired == list(range(len(indices)))


@settings(max_examples=50, deadline=None)
@given(times, st.sets(st.integers(min_value=0, max_value=59)))
def test_cancellation_removes_exactly_the_cancelled(schedule_times, to_cancel):
    sim = Simulator()
    fired = []
    events = []
    for i, t in enumerate(schedule_times):
        events.append(sim.schedule_at(t, lambda i=i: fired.append(i)))
    for i in to_cancel:
        if i < len(events):
            events[i].cancel()
    sim.run_until(2_000.0)
    expected = [
        i for i in range(len(schedule_times)) if i not in to_cancel
    ]
    assert sorted(fired) == expected
