"""Unit tests for trace recorders."""

import pytest

from repro.errors import SimulationError
from repro.sim import ByteTrace, IntervalTrace, TimeSeries


class TestTimeSeries:
    def test_record_and_iterate(self):
        ts = TimeSeries("s")
        ts.record(0.0, 1.0)
        ts.record(1.0, 2.0)
        assert list(ts) == [(0.0, 1.0), (1.0, 2.0)]
        assert len(ts) == 2
        assert ts.last() == (1.0, 2.0)

    def test_time_must_not_go_backwards(self):
        ts = TimeSeries()
        ts.record(5.0, 0.0)
        with pytest.raises(SimulationError):
            ts.record(4.0, 0.0)

    def test_last_of_empty_raises(self):
        with pytest.raises(SimulationError):
            TimeSeries().last()


class TestIntervalTrace:
    def test_durations(self):
        tr = IntervalTrace()
        tr.record(0.0, 10.0)
        tr.record(20.0, 25.0)
        assert tr.durations() == [10.0, 5.0]

    def test_zero_length_intervals_dropped(self):
        tr = IntervalTrace()
        tr.record(1.0, 1.0)
        assert tr.durations() == []

    def test_backwards_interval_raises(self):
        tr = IntervalTrace()
        with pytest.raises(SimulationError):
            tr.record(2.0, 1.0)

    def test_merged_coalesces_overlaps(self):
        tr = IntervalTrace()
        tr.record(0.0, 10.0)
        tr.record(5.0, 15.0)
        tr.record(20.0, 30.0)
        assert tr.merged() == [(0.0, 15.0), (20.0, 30.0)]
        assert tr.total_busy() == 25.0

    def test_merged_handles_out_of_order_recording(self):
        tr = IntervalTrace()
        tr.record(20.0, 30.0)
        tr.record(0.0, 10.0)
        assert tr.merged() == [(0.0, 10.0), (20.0, 30.0)]

    def test_utilization_bins(self):
        tr = IntervalTrace()
        tr.record(0.0, 5.0)  # half of first 10ms bin
        tr.record(10.0, 20.0)  # all of second bin
        times, utils = tr.utilization(0.0, 30.0, 10.0)
        assert times == [0.0, 10.0, 20.0]
        assert utils == pytest.approx([0.5, 1.0, 0.0])

    def test_utilization_clips_to_window(self):
        tr = IntervalTrace()
        tr.record(-5.0, 5.0)
        tr.record(25.0, 100.0)
        __, utils = tr.utilization(0.0, 30.0, 10.0)
        assert utils == pytest.approx([0.5, 0.0, 0.5])

    def test_utilization_never_exceeds_one(self):
        tr = IntervalTrace()
        tr.record(0.0, 10.0)
        tr.record(0.0, 10.0)  # duplicate busy interval, merged away
        __, utils = tr.utilization(0.0, 10.0, 10.0)
        assert utils == [1.0]

    def test_utilization_rejects_bad_args(self):
        tr = IntervalTrace()
        with pytest.raises(SimulationError):
            tr.utilization(0.0, 10.0, 0.0)
        with pytest.raises(SimulationError):
            tr.utilization(10.0, 10.0, 1.0)


class TestByteTrace:
    def test_totals(self):
        bt = ByteTrace()
        bt.record(0.0, 100)
        bt.record(1.0, 200)
        assert bt.total_bytes == 300
        assert bt.count == 2

    def test_negative_bytes_raise(self):
        with pytest.raises(SimulationError):
            ByteTrace().record(0.0, -1)

    def test_load_series_windows(self):
        bt = ByteTrace()
        # 1250 bytes in one ms-window of 1 ms = 10 Mbps
        bt.record(0.5, 1250)
        bt.record(1.5, 625)
        times, mbps = bt.load_series(0.0, 3.0, 1.0)
        assert times == [0.0, 1.0, 2.0]
        assert mbps == pytest.approx([10.0, 5.0, 0.0])

    def test_average_mbps(self):
        bt = ByteTrace()
        bt.record(0.0, 1250)
        bt.record(999.0, 1250)
        # 2500 bytes over 1000 ms = 2.5 bytes/ms = 0.02 Mbps
        assert bt.average_mbps(0.0, 1000.0) == pytest.approx(0.02)

    def test_load_series_ignores_out_of_window_records(self):
        bt = ByteTrace()
        bt.record(100.0, 999)
        __, mbps = bt.load_series(0.0, 10.0, 1.0)
        assert all(m == 0.0 for m in mbps)
