"""Property tests pinning ``sim.stats`` to independent reference models.

Each property checks the library implementation against a brute-force
reference written a different way (sorted-list indexing, the ``statistics``
module, explicit edge scans) so a shared bug can't hide in both sides.
"""

import math
import statistics

import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.sim import Histogram, Summary, ecdf, percentile

values = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
samples = st.lists(values, min_size=1, max_size=60)
percentages = st.floats(min_value=0.0, max_value=100.0)


class TestPercentileAgainstSortedListReference:
    @given(xs=samples)
    def test_extremes_are_min_and_max(self, xs):
        assert percentile(xs, 0.0) == min(xs)
        assert percentile(xs, 100.0) == max(xs)

    @given(xs=samples)
    def test_grid_points_index_the_sorted_list_exactly(self, xs):
        """At p = 100*k/(n-1) the interpolation must hit element k.

        "Hit" up to the double rounding in ``rank = (p/100)*(n-1)``: the
        round trip ``k -> p -> rank`` can land ~1e-14 grid steps off k, and
        the interpolation then mixes in that fraction of the *neighboring*
        element — so the slack must scale with both n and the data's span,
        not just the element's magnitude.
        """
        ordered = sorted(xs)
        n = len(ordered)
        assume(n > 1)
        span = ordered[-1] - ordered[0]
        slack = 1e-13 * (n - 1) * span + 1e-9
        for k in range(n):
            p = 100.0 * k / (n - 1)
            assert percentile(xs, p) == pytest.approx(ordered[k], abs=slack)

    @given(xs=samples, p=percentages)
    def test_bounded_and_order_invariant(self, xs, p):
        q = percentile(xs, p)
        # Interpolation between equal neighbours can lose one ulp, so the
        # bounds hold up to float rounding.
        slack = 1e-12 * max(abs(min(xs)), abs(max(xs)), 1.0)
        assert min(xs) - slack <= q <= max(xs) + slack
        assert percentile(sorted(xs, reverse=True), p) == q

    @given(xs=samples, lo=percentages, hi=percentages)
    def test_monotone_in_p(self, xs, lo, hi):
        if lo > hi:
            lo, hi = hi, lo
        q_lo, q_hi = percentile(xs, lo), percentile(xs, hi)
        # Interpolating between equal neighbours can lose one ulp, so
        # monotonicity holds up to float rounding, not exactly.
        assert q_lo <= q_hi or math.isclose(q_lo, q_hi, rel_tol=1e-12)

    @given(xs=samples)
    def test_median_matches_statistics_module(self, xs):
        """p50 with linear interpolation is exactly ``statistics.median``."""
        assert percentile(xs, 50.0) == pytest.approx(
            statistics.median(xs), rel=1e-9, abs=1e-9
        )

    @given(xs=samples, p=percentages, shift=values)
    def test_translation_equivariance(self, xs, p, shift):
        shifted = [x + shift for x in xs]
        assert percentile(shifted, p) == pytest.approx(
            percentile(xs, p) + shift, rel=1e-6, abs=1e-6
        )


class TestSummaryAgainstStatisticsModule:
    @given(xs=samples)
    def test_fields_match_the_reference_library(self, xs):
        s = Summary.of(xs)
        assert s.count == len(xs)
        assert s.minimum == min(xs)
        assert s.maximum == max(xs)
        assert s.average == pytest.approx(statistics.fmean(xs), rel=1e-9)
        assert s.std == pytest.approx(
            statistics.pstdev(xs), rel=1e-9, abs=1e-6
        )

    @given(xs=samples)
    def test_std_of_constant_padding_shrinks(self, xs):
        """Appending the mean never increases the population deviation."""
        mu = statistics.fmean(xs)
        padded = Summary.of(xs + [mu])
        assert padded.std <= Summary.of(xs).std + 1e-9


class TestHistogramAgainstEdgeScan:
    bounds = st.tuples(
        st.floats(min_value=-100.0, max_value=100.0),
        st.floats(min_value=0.5, max_value=200.0),
        st.integers(min_value=1, max_value=20),
    )

    def _reference_counts(self, xs, edges):
        """Brute-force bin assignment by scanning the edge list."""
        counts = [0] * (len(edges) - 1)
        under = over = 0
        for x in xs:
            if x < edges[0]:
                under += 1
            elif x >= edges[-1]:
                over += 1
            else:
                for i in range(len(edges) - 1):
                    if edges[i] <= x < edges[i + 1]:
                        counts[i] += 1
                        break
                else:  # float rounding put x on the final edge
                    over += 1
        return counts, under, over

    @given(xs=samples, bounds=bounds)
    def test_counts_match_the_edge_scan(self, xs, bounds):
        lo, width, nbins = bounds
        hi = lo + width * nbins
        h = Histogram(lo, hi, nbins)
        # Keep samples off the interior edges: the library bins by
        # division, the reference by comparison, and the two can
        # legitimately disagree only within one ulp of an edge.
        edges = h.bin_edges()
        for x in xs:
            assume(all(abs(x - e) > 1e-6 * max(1.0, abs(e)) for e in edges))
            h.add(x)
        counts, under, over = self._reference_counts(xs, edges)
        assert h.counts == counts
        assert h.underflow == under
        assert h.overflow == over

    @given(xs=samples, bounds=bounds)
    def test_every_sample_is_counted_exactly_once(self, xs, bounds):
        lo, width, nbins = bounds
        h = Histogram(lo, lo + width * nbins, nbins)
        for x in xs:
            h.add(x)
        assert h.total == len(xs)

    @given(xs=samples, bounds=bounds, weight=st.integers(2, 5))
    def test_weights_scale_linearly(self, xs, bounds, weight):
        lo, width, nbins = bounds
        plain = Histogram(lo, lo + width * nbins, nbins)
        weighted = Histogram(lo, lo + width * nbins, nbins)
        for x in xs:
            plain.add(x)
            weighted.add(x, weight=weight)
        assert weighted.counts == [c * weight for c in plain.counts]
        assert weighted.total == plain.total * weight


class TestEcdfReference:
    @given(xs=samples)
    def test_ecdf_matches_rank_counting(self, xs):
        """F(v) equals the fraction of samples <= v at each step's top.

        With duplicates, only the *last* occurrence of a value carries the
        step's height — earlier occurrences are interior points of the
        vertical riser — so the rank-count reference applies there.
        """
        points, fractions = ecdf(xs)
        n = len(xs)
        for i, (v, frac) in enumerate(zip(points, fractions)):
            if i + 1 < n and points[i + 1] == v:
                continue
            assert frac == pytest.approx(
                sum(1 for x in xs if x <= v) / n, rel=1e-12
            )
        assert fractions[-1] == pytest.approx(1.0)
        assert points == sorted(xs)
        assert math.isclose(min(fractions), fractions[0])
