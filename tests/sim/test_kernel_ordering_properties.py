"""Property tests for the kernel's ordering invariants, on both kernels.

The optimized kernel replaced the seed's event heap with a hashed timer
wheel (a heap of distinct timestamps plus FIFO buckets).  These properties
pin the contract the experiments depend on — and run each invariant against
*both* implementations, plus differentially (same random program, firing
sequences must match exactly).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import engine, engine_reference

KERNELS = [
    pytest.param(engine, id="fast"),
    pytest.param(engine_reference, id="reference"),
]

# Millisecond-ish timestamps; bounded so run_until horizons stay cheap.
times = st.floats(
    min_value=0.0, max_value=50.0, allow_nan=False, allow_infinity=False
)


@pytest.mark.parametrize("mod", KERNELS)
@given(ts=st.lists(times, min_size=1, max_size=40))
@settings(max_examples=100, deadline=None)
def test_equal_timestamps_fire_in_schedule_order(mod, ts):
    """FIFO tie-break: (time, seq) order, stable for equal timestamps."""
    sim = mod.Simulator()
    fired = []
    for i, t in enumerate(ts):
        sim.schedule_at(t, lambda i=i: fired.append(i))
    sim.run_until(100.0)
    expected = [i for __, i in sorted((t, i) for i, t in enumerate(ts))]
    assert fired == expected


@pytest.mark.parametrize("mod", KERNELS)
@given(
    ts=st.lists(times, min_size=1, max_size=40),
    cancel_mask=st.lists(st.booleans(), min_size=1, max_size=40),
)
@settings(max_examples=100, deadline=None)
def test_cancel_before_fire_is_idempotent_and_silent(mod, ts, cancel_mask):
    """Cancelled events never fire, however many times they're cancelled,
    and the survivors still fire in (time, seq) order."""
    sim = mod.Simulator()
    fired = []
    events = [
        sim.schedule_at(t, lambda i=i: fired.append(i))
        for i, t in enumerate(ts)
    ]
    cancelled = set()
    for i, (event, cancel) in enumerate(zip(events, cancel_mask)):
        if cancel:
            event.cancel()
            event.cancel()  # idempotent: double-cancel must be harmless
            cancelled.add(i)
    sim.run_until(100.0)
    expected = [
        i
        for __, i in sorted((t, i) for i, t in enumerate(ts))
        if i not in cancelled
    ]
    assert fired == expected


@pytest.mark.parametrize("mod", KERNELS)
@given(n=st.integers(min_value=1, max_value=30), at=times)
@settings(max_examples=100, deadline=None)
def test_signal_wakes_waiters_in_registration_order(mod, n, at):
    sim = mod.Simulator()
    sig = mod.Signal(sim)
    woken = []
    for i in range(n):
        sig.add_waiter(lambda value, i=i: woken.append((i, value)))
    sim.schedule_at(at, lambda: sig.succeed("v"))
    sim.run_until(at + 1.0)
    assert woken == [(i, "v") for i in range(n)]


@given(
    interval=st.floats(min_value=0.5, max_value=5.0, allow_nan=False),
    cancel_at=st.floats(min_value=0.0, max_value=40.0, allow_nan=False),
)
@settings(max_examples=100, deadline=None)
def test_cancel_while_queued_in_timer_lane(interval, cancel_at):
    """Stopping a periodic task cancels the tick sitting in the wheel: no
    tick after the stop time ever fires, on either kernel, and both kernels
    observe the identical tick sequence (stop-vs-tick tie-breaks included)."""

    def execute(mod):
        sim = mod.Simulator()
        ticks = []
        task = sim.every(interval, lambda: ticks.append(sim.now))
        sim.schedule_at(cancel_at, task.stop)
        sim.run_until(60.0)
        return ticks

    fast_ticks = execute(engine)
    assert fast_ticks == execute(engine_reference)
    assert all(t <= cancel_at for t in fast_ticks)
    assert fast_ticks == sorted(set(fast_ticks))  # strictly increasing


# -- differential: random programs, identical firing sequences ----------------


@given(
    program=st.lists(
        st.tuples(times, st.integers(min_value=0, max_value=3)),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=100, deadline=None)
def test_random_schedule_cancel_programs_fire_identically(program):
    """Run one random schedule/cancel program on both kernels; the observed
    (time, id) firing sequences must be exactly equal."""

    def execute(mod):
        sim = mod.Simulator()
        fired = []
        events = []
        for i, (t, op) in enumerate(program):
            event = sim.schedule_at(t, lambda i=i: fired.append((sim.now, i)))
            events.append(event)
            if op == 1 and events:
                events[i // 2].cancel()
            elif op == 2:
                event.cancel()
            elif op == 3 and i % 3 == 0:
                # Nested schedule from inside an action, same timestamp.
                def chain(i=i, t=t):
                    fired.append((sim.now, 1000 + i))
                sim.schedule_at(t, chain)
        sim.run_until(100.0)
        return fired

    assert execute(engine) == execute(engine_reference)


@given(
    sleeps=st.lists(
        st.floats(min_value=0.1, max_value=3.0, allow_nan=False),
        min_size=1,
        max_size=15,
    )
)
@settings(max_examples=50, deadline=None)
def test_process_sleep_sequences_match_reference(sleeps):
    def execute(mod):
        sim = mod.Simulator()
        log = []

        def proc():
            for s in sleeps:
                yield s
                log.append(round(sim.now, 9))

        mod.Process(sim, proc())
        sim.run_until(1_000.0)
        return log

    assert execute(engine) == execute(engine_reference)
