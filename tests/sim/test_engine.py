"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator, all_of


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_schedule_and_run_until_fires_in_order():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, lambda: fired.append("b"))
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(9.0, lambda: fired.append("c"))
    sim.run_until(10.0)
    assert fired == ["a", "b", "c"]
    assert sim.now == 10.0


def test_equal_timestamps_fire_fifo():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(3.0, lambda i=i: fired.append(i))
    sim.run_until(3.0)
    assert fired == list(range(10))


def test_run_until_sets_clock_even_when_queue_empty():
    sim = Simulator()
    sim.run_until(123.5)
    assert sim.now == 123.5


def test_schedule_in_past_raises():
    sim = Simulator()
    sim.run_until(10.0)
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule_at(5.0, lambda: None)


def test_run_until_in_past_raises():
    sim = Simulator()
    sim.run_until(10.0)
    with pytest.raises(SimulationError):
        sim.run_until(5.0)


def test_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append(1))
    event.cancel()
    sim.run_until(2.0)
    assert fired == []


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run_until(2.0)


def test_events_scheduled_during_run_fire_in_same_run():
    sim = Simulator()
    fired = []

    def outer():
        fired.append("outer")
        sim.schedule(1.0, lambda: fired.append("inner"))

    sim.schedule(1.0, outer)
    sim.run_until(10.0)
    assert fired == ["outer", "inner"]


def test_run_is_relative():
    sim = Simulator()
    sim.run(50.0)
    sim.run(50.0)
    assert sim.now == 100.0


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False
    sim.schedule(1.0, lambda: None)
    assert sim.step() is True
    assert sim.now == 1.0


def test_drain_counts_events():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1.0, lambda: None)
    assert sim.drain() == 5


def test_drain_limit_guards_infinite_loops():
    sim = Simulator()

    def reschedule():
        sim.schedule(1.0, reschedule)

    sim.schedule(1.0, reschedule)
    with pytest.raises(SimulationError):
        sim.drain(limit=100)


def test_pending_counts_only_live_events():
    sim = Simulator()
    keep = sim.schedule(1.0, lambda: None)
    gone = sim.schedule(2.0, lambda: None)
    gone.cancel()
    assert sim.pending == 1
    keep.cancel()
    assert sim.pending == 0


def test_periodic_task_fires_on_interval():
    sim = Simulator()
    fired = []
    task = sim.every(10.0, lambda: fired.append(sim.now))
    sim.run_until(35.0)
    assert fired == [10.0, 20.0, 30.0]
    task.stop()
    sim.run_until(100.0)
    assert len(fired) == 3


def test_periodic_task_custom_start():
    sim = Simulator()
    fired = []
    sim.every(10.0, lambda: fired.append(sim.now), start=0.0)
    sim.run_until(25.0)
    assert fired == [0.0, 10.0, 20.0]


def test_periodic_task_jitter_applied():
    sim = Simulator()
    fired = []
    sim.every(10.0, lambda: fired.append(sim.now), jitter=lambda: 1.0)
    sim.run_until(25.0)
    assert fired == [11.0, 22.0]


def test_periodic_interval_must_be_positive():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.every(0.0, lambda: None)


class TestSignal:
    def test_succeed_wakes_waiters_with_value(self):
        sim = Simulator()
        got = []
        sig = sim.signal()
        sig.add_waiter(got.append)
        sig.add_waiter(got.append)
        sim.schedule(5.0, lambda: sig.succeed("v"))
        sim.run_until(6.0)
        assert got == ["v", "v"]

    def test_waiting_on_fired_signal_resumes_immediately(self):
        sim = Simulator()
        sig = sim.signal()
        sig.succeed(7)
        got = []
        sig.add_waiter(got.append)
        sim.run_until(1.0)
        assert got == [7]

    def test_double_succeed_raises(self):
        sim = Simulator()
        sig = sim.signal()
        sig.succeed()
        with pytest.raises(SimulationError):
            sig.succeed()


class TestProcess:
    def test_process_sleeps_on_yielded_delay(self):
        sim = Simulator()
        marks = []

        def proc():
            marks.append(sim.now)
            yield 10.0
            marks.append(sim.now)
            yield 5.0
            marks.append(sim.now)

        sim.spawn(proc())
        sim.run_until(100.0)
        assert marks == [0.0, 10.0, 15.0]

    def test_process_waits_on_signal_and_receives_value(self):
        sim = Simulator()
        sig = sim.signal()
        got = []

        def proc():
            value = yield sig
            got.append((sim.now, value))

        sim.spawn(proc())
        sim.schedule(42.0, lambda: sig.succeed("hello"))
        sim.run_until(50.0)
        assert got == [(42.0, "hello")]

    def test_process_done_signal_carries_return_value(self):
        sim = Simulator()

        def child():
            yield 5.0
            return "result"

        def parent(results):
            proc = sim.spawn(child())
            value = yield proc.done
            results.append(value)

        results = []
        sim.spawn(parent(results))
        sim.run_until(10.0)
        assert results == ["result"]

    def test_negative_delay_raises(self):
        sim = Simulator()

        def proc():
            yield -1.0

        sim.spawn(proc())
        with pytest.raises(SimulationError):
            sim.run_until(1.0)

    def test_bad_yield_type_raises(self):
        sim = Simulator()

        def proc():
            yield "nope"

        sim.spawn(proc())
        with pytest.raises(SimulationError):
            sim.run_until(1.0)

    def test_timeout_helper(self):
        sim = Simulator()
        marks = []

        def proc():
            yield sim.timeout(30.0)
            marks.append(sim.now)

        sim.spawn(proc())
        sim.run_until(31.0)
        assert marks == [30.0]


def test_all_of_fires_after_every_signal():
    sim = Simulator()
    sigs = [sim.signal() for _ in range(3)]
    got = []
    all_of(sim, sigs).add_waiter(got.append)
    sim.schedule(1.0, lambda: sigs[2].succeed("c"))
    sim.schedule(2.0, lambda: sigs[0].succeed("a"))
    sim.run_until(3.0)
    assert got == []
    sim.schedule(1.0, lambda: sigs[1].succeed("b"))
    sim.run_until(10.0)
    assert got == [["a", "b", "c"]]


def test_all_of_empty_is_already_fired():
    sim = Simulator()
    combined = all_of(sim, [])
    assert combined.fired
    assert combined.value == []
