"""Heap hygiene: cancelled entries are lazily dropped, never fired or counted.

The optimized kernel uses lazy deletion — ``cancel()`` flags the entry and
the drain loop discards it when its bucket comes due.  These tests pin the
observable consequences: a cancelled entry never fires, never inflates
``pending`` / ``len(sim)``, never bumps the observed dispatch counter, and
the wheel's internal structures drain back to empty.
"""

from __future__ import annotations

import pytest

from repro.obs import observe
from repro.sim import engine, engine_reference
from repro.sim.engine import Simulator

KERNELS = [
    pytest.param(engine, id="fast"),
    pytest.param(engine_reference, id="reference"),
]


@pytest.mark.parametrize("mod", KERNELS)
def test_cancelled_events_dropped_without_firing(mod):
    sim = mod.Simulator()
    fired = []
    live = [sim.schedule_at(float(i), lambda i=i: fired.append(i)) for i in range(10)]
    dead = [sim.schedule_at(float(i), lambda: fired.append("dead")) for i in range(10)]
    for event in dead:
        event.cancel()
    sim.run_until(20.0)
    assert fired == list(range(10))
    assert all(event.canceled for event in dead)
    assert sim.pending == 0
    del live


@pytest.mark.parametrize("mod", KERNELS)
def test_pending_never_counts_cancelled_entries(mod):
    sim = mod.Simulator()
    events = [sim.schedule_at(5.0, lambda: None) for _ in range(8)]
    assert sim.pending == 8
    for event in events[:5]:
        event.cancel()
    # Lazily deleted: the entries still physically sit in the queue, but
    # introspection must not count them.
    assert sim.pending == 3
    events[0].cancel()  # double-cancel must not double-subtract
    assert sim.pending == 3
    sim.run_until(10.0)
    assert sim.pending == 0


def test_len_matches_pending_on_fast_kernel():
    sim = Simulator()
    events = [sim.schedule_at(1.0, lambda: None) for _ in range(4)]
    events[0].cancel()
    assert len(sim) == sim.pending == 3
    sim.run_until(2.0)
    assert len(sim) == 0


@pytest.mark.parametrize("mod", KERNELS)
def test_dispatch_counter_never_counts_cancelled_events(mod):
    with observe() as obs:
        sim = mod.Simulator()
        for i in range(6):
            sim.schedule_at(float(i), lambda: None)
        for i in range(4):
            sim.schedule_at(float(i), lambda: None).cancel()
        sim.run_until(10.0)
    metrics = obs.snapshot()["metrics"]
    assert metrics["counters"]["sim.events_dispatched"] == 6


def test_wheel_internals_drain_clean():
    """After a full drain the fast kernel's wheel holds no garbage: no
    leftover timestamps in the heap, no buckets, cancelled or otherwise."""
    sim = Simulator()
    for i in range(50):
        event = sim.schedule_at(float(i % 7), lambda: None)
        if i % 3 == 0:
            event.cancel()
    sim.run_until(100.0)
    assert sim._times == []
    assert sim._buckets == {}
    assert sim.pending == 0


def test_all_cancelled_bucket_is_discarded_by_step():
    """step() must skip over a bucket whose entries were all cancelled and
    fire the next live event instead of reporting an empty queue."""
    sim = Simulator()
    fired = []
    for _ in range(3):
        sim.schedule_at(1.0, lambda: fired.append("dead")).cancel()
    sim.schedule_at(2.0, lambda: fired.append("live"))
    assert sim.step() is True
    assert fired == ["live"]
    assert sim.now == 2.0
    assert sim.step() is False


@pytest.mark.parametrize("mod", KERNELS)
def test_cancel_from_within_same_timestamp_bucket(mod):
    """An action cancelling a later event at the *same* timestamp prevents
    that event from firing, even though both sit in one wheel bucket."""
    sim = mod.Simulator()
    fired = []
    victim = {}

    def assassin():
        fired.append("assassin")
        victim["event"].cancel()

    sim.schedule_at(1.0, assassin)  # lower seq: fires before the victim
    victim["event"] = sim.schedule_at(1.0, lambda: fired.append("victim"))
    sim.run_until(2.0)
    assert fired == ["assassin"]
    assert victim["event"].canceled
    assert sim.pending == 0
