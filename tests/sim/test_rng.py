"""Unit tests for named RNG streams."""

from repro.sim import RngRegistry, derive_seed


def test_same_name_returns_same_stream_object():
    rngs = RngRegistry(seed=1)
    assert rngs.stream("a") is rngs.stream("a")


def test_streams_are_deterministic_across_registries():
    a = RngRegistry(seed=99).stream("disk")
    b = RngRegistry(seed=99).stream("disk")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_give_different_sequences():
    rngs = RngRegistry(seed=5)
    xs = [rngs.stream("x").random() for _ in range(5)]
    ys = [rngs.stream("y").random() for _ in range(5)]
    assert xs != ys


def test_different_seeds_give_different_sequences():
    a = RngRegistry(seed=1).stream("s")
    b = RngRegistry(seed=2).stream("s")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_adding_a_stream_does_not_perturb_existing_one():
    solo = RngRegistry(seed=7)
    first = [solo.stream("main").random() for _ in range(5)]

    shared = RngRegistry(seed=7)
    shared.stream("other").random()  # interleaved consumer
    second = [shared.stream("main").random() for _ in range(5)]
    assert first == second


def test_derive_seed_is_stable():
    assert derive_seed(42, "x") == derive_seed(42, "x")
    assert derive_seed(42, "x") != derive_seed(42, "y")
    assert derive_seed(42, "x") != derive_seed(43, "x")


def test_fork_creates_independent_namespace():
    parent = RngRegistry(seed=3)
    child = parent.fork("component")
    assert child.seed == derive_seed(3, "component")
    xs = [child.stream("s").random() for _ in range(3)]
    ys = [parent.stream("s").random() for _ in range(3)]
    assert xs != ys
