"""Unit and property tests for summary statistics."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import (
    Histogram,
    Summary,
    cumulative_latency_by_duration,
    ecdf,
    mean,
    percentile,
    stddev,
    variance,
)
from repro.sim.stats import jitter, rate_per_second

floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


def test_mean_simple():
    assert mean([1.0, 2.0, 3.0]) == 2.0


def test_mean_empty_raises():
    with pytest.raises(SimulationError):
        mean([])


def test_variance_and_stddev():
    xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
    assert variance(xs) == pytest.approx(4.0)
    assert stddev(xs) == pytest.approx(2.0)


def test_variance_of_constant_is_zero():
    assert variance([3.0] * 10) == 0.0


def test_percentile_endpoints_and_median():
    xs = [1.0, 2.0, 3.0, 4.0]
    assert percentile(xs, 0) == 1.0
    assert percentile(xs, 100) == 4.0
    assert percentile(xs, 50) == pytest.approx(2.5)


def test_percentile_single_element():
    assert percentile([7.0], 30) == 7.0


def test_percentile_out_of_range():
    with pytest.raises(SimulationError):
        percentile([1.0], 101)


@given(st.lists(floats, min_size=1, max_size=50))
def test_percentile_bounded_by_min_max(xs):
    for p in (0, 25, 50, 75, 100):
        value = percentile(xs, p)
        assert min(xs) - 1e-9 <= value <= max(xs) + 1e-9


@given(st.lists(floats, min_size=1, max_size=50))
def test_mean_between_min_and_max(xs):
    assert min(xs) - 1e-6 <= mean(xs) <= max(xs) + 1e-6


@given(st.lists(floats, min_size=1, max_size=50))
def test_variance_nonnegative(xs):
    assert variance(xs) >= 0.0


def test_summary_of():
    s = Summary.of([1.0, 2.0, 3.0])
    assert s.count == 3
    assert s.minimum == 1.0
    assert s.average == 2.0
    assert s.maximum == 3.0
    assert "avg=2.0" in str(s)


class TestHistogram:
    def test_binning(self):
        h = Histogram(0.0, 10.0, 10)
        h.add(0.5)
        h.add(9.9)
        h.add(-1.0)
        h.add(10.0)
        assert h.counts[0] == 1
        assert h.counts[9] == 1
        assert h.underflow == 1
        assert h.overflow == 1
        assert h.total == 4

    def test_weighted_add(self):
        h = Histogram(0.0, 1.0, 1)
        h.add(0.5, weight=5)
        assert h.counts[0] == 5

    def test_bin_edges(self):
        h = Histogram(0.0, 10.0, 2)
        assert h.bin_edges() == [0.0, 5.0, 10.0]

    def test_bad_bounds_raise(self):
        with pytest.raises(SimulationError):
            Histogram(1.0, 1.0, 10)
        with pytest.raises(SimulationError):
            Histogram(0.0, 1.0, 0)


def test_ecdf():
    values, fracs = ecdf([3.0, 1.0, 2.0])
    assert values == [1.0, 2.0, 3.0]
    assert fracs == pytest.approx([1 / 3, 2 / 3, 1.0])


def test_ecdf_empty_raises():
    with pytest.raises(SimulationError):
        ecdf([])


def test_cumulative_latency_by_duration():
    durations = [10.0, 100.0, 400.0]
    out = cumulative_latency_by_duration(durations, [0.0, 50.0, 100.0, 500.0])
    assert out == pytest.approx([0.0, 0.01, 0.11, 0.51])


def test_cumulative_latency_is_monotone():
    durations = [5.0, 7.0, 3.0, 100.0]
    thresholds = [1.0, 5.0, 10.0, 1000.0]
    out = cumulative_latency_by_duration(durations, thresholds)
    assert out == sorted(out)
    assert out[-1] == pytest.approx(sum(durations) / 1000.0)


def test_jitter_is_stddev():
    xs = [1.0, 2.0, 3.0]
    assert jitter(xs) == pytest.approx(stddev(xs))


def test_rate_per_second():
    assert rate_per_second(20, 1000.0) == 20.0
    assert rate_per_second(20, 500.0) == 40.0
    with pytest.raises(SimulationError):
        rate_per_second(1, 0.0)
