"""Property-based tests for the trace recorders' conservation laws.

These pin down the arithmetic the paper's figures depend on:

* utilization bins conserve busy time — what lands in the bins is exactly
  the merged busy time inside the binned span;
* load series conserve bytes — every byte recorded in the window appears in
  exactly one bin;
* overlap merging is idempotent and produces a sorted, disjoint cover.

Plus regression tests for the degenerate-window bug: a window narrower than
half a bin used to round to **zero** bins and silently return empty series.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.trace import ByteTrace, IntervalTrace
from repro.units import mbps_to_bytes_per_ms

intervals = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
    ).map(lambda pair: (min(pair), max(pair))),
    max_size=40,
)

byte_records = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
        st.integers(min_value=0, max_value=100_000),
    ),
    max_size=60,
)


def make_interval_trace(pairs):
    trace = IntervalTrace("prop")
    for start, end in pairs:
        trace.record(start, end)
    return trace


class TestIntervalTraceProperties:
    @settings(max_examples=200, deadline=None)
    @given(intervals)
    def test_merged_is_idempotent(self, pairs):
        trace = make_interval_trace(pairs)
        once = trace.merged()
        again = make_interval_trace(once).merged()
        assert once == again

    @settings(max_examples=200, deadline=None)
    @given(intervals)
    def test_merged_is_sorted_and_disjoint(self, pairs):
        merged = make_interval_trace(pairs).merged()
        for (s0, e0), (s1, e1) in zip(merged, merged[1:]):
            assert e0 < s1  # strictly disjoint, in order
        assert all(s < e for s, e in merged)

    @settings(max_examples=200, deadline=None)
    @given(intervals)
    def test_total_busy_matches_merged_cover(self, pairs):
        trace = make_interval_trace(pairs)
        assert math.isclose(
            trace.total_busy(),
            sum(e - s for s, e in trace.merged()),
            rel_tol=1e-9,
            abs_tol=1e-9,
        )

    @settings(max_examples=200, deadline=None)
    @given(
        intervals,
        st.floats(min_value=1.0, max_value=50.0, allow_nan=False),
    )
    def test_utilization_bins_conserve_busy_time(self, pairs, bin_ms):
        """Bin coverage sums to the merged busy time inside the binned span.

        The series covers ``[t0, t0 + nbins * bin_ms)``; busy time inside
        that span must land in the bins exactly once.
        """
        trace = make_interval_trace(pairs)
        t0, t1 = 0.0, 500.0
        times, utils = trace.utilization(t0, t1, bin_ms)
        assert len(times) == len(utils) >= 1
        span_end = times[-1] + bin_ms
        covered_busy = sum(
            max(0.0, min(end, span_end) - max(start, t0))
            for start, end in trace.merged()
        )
        binned_busy = sum(u * bin_ms for u in utils)
        assert math.isclose(binned_busy, covered_busy, rel_tol=1e-9, abs_tol=1e-6)

    @settings(max_examples=100, deadline=None)
    @given(intervals, st.floats(min_value=1.0, max_value=50.0))
    def test_utilization_never_exceeds_one_per_bin(self, pairs, bin_ms):
        trace = make_interval_trace(pairs)
        __, utils = trace.utilization(0.0, 500.0, bin_ms)
        assert all(-1e-9 <= u <= 1.0 + 1e-9 for u in utils)


class TestByteTraceProperties:
    @settings(max_examples=200, deadline=None)
    @given(
        byte_records,
        st.floats(min_value=1.0, max_value=100.0, allow_nan=False),
    )
    def test_load_series_conserves_bytes(self, records, window_ms):
        """Every byte recorded inside the window lands in exactly one bin."""
        trace = ByteTrace("prop")
        for time, nbytes in records:
            trace.record(time, nbytes)
        t0, t1 = 0.0, 500.0
        times, mbps = trace.load_series(t0, t1, window_ms)
        assert len(times) == len(mbps) >= 1
        binned_bytes = sum(
            rate * mbps_to_bytes_per_ms(1.0) * window_ms for rate in mbps
        )
        window_bytes = sum(
            nbytes for time, nbytes in records if t0 <= time < t1
        )
        assert math.isclose(
            binned_bytes, window_bytes, rel_tol=1e-9, abs_tol=1e-6
        )

    @settings(max_examples=100, deadline=None)
    @given(byte_records)
    def test_average_matches_series_mean_on_exact_bins(self, records):
        """With bins tiling the window exactly, mean(series) == average."""
        trace = ByteTrace("prop")
        for time, nbytes in records:
            trace.record(time, nbytes)
        t0, t1, window = 0.0, 500.0, 50.0
        __, mbps = trace.load_series(t0, t1, window)
        assert math.isclose(
            sum(mbps) / len(mbps),
            trace.average_mbps(t0, t1),
            rel_tol=1e-9,
            abs_tol=1e-9,
        )


class TestDegenerateWindowRegression:
    """A window smaller than half a bin must not yield an empty series."""

    def test_utilization_clamps_to_one_bin(self):
        trace = IntervalTrace("r")
        trace.record(0.0, 0.3)
        times, utils = trace.utilization(0.0, 0.4, 1.0)  # window < bin/2
        assert times == [0.0]
        assert len(utils) == 1
        assert math.isclose(utils[0], 0.3)  # 0.3ms busy over a 1ms bin

    def test_load_series_clamps_to_one_bin(self):
        trace = ByteTrace("r")
        trace.record(0.1, 1000)
        times, mbps = trace.load_series(0.0, 0.4, 1.0)  # window < bin/2
        assert times == [0.0]
        assert len(mbps) == 1
        assert mbps[0] > 0.0

    def test_utilization_counts_busy_time_past_the_clamped_bin_span(self):
        """All busy time inside [t0, t1) is attributed to the single bin."""
        trace = IntervalTrace("r")
        trace.record(0.0, 0.4)
        __, utils = trace.utilization(0.0, 0.4, 1.0)
        assert math.isclose(utils[0], 0.4)

    def test_exact_half_bin_still_rounds_up(self):
        trace = ByteTrace("r")
        trace.record(0.2, 10)
        times, __ = trace.load_series(0.0, 0.5, 1.0)
        assert len(times) == 1
