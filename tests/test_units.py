"""Tests for unit conversions (the constants everything else builds on)."""

import pytest

from repro import units
from repro.errors import ReproError, SimulationError


def test_time_constants():
    assert units.SEC == 1000.0
    assert units.MINUTE == 60_000.0
    assert units.US == pytest.approx(0.001)


def test_size_helpers():
    assert units.kb(1) == 1024
    assert units.mb(1) == 1024 * 1024
    assert units.kb(1.5) == 1536
    assert units.mb(1.5) == int(1.5 * 1024 * 1024)


def test_bandwidth_round_trip():
    bpm = units.mbps_to_bytes_per_ms(10.0)
    assert bpm == pytest.approx(1250.0)
    assert units.bytes_per_ms_to_mbps(bpm) == pytest.approx(10.0)


def test_transmit_time():
    # 1250 bytes at 10 Mbps = exactly 1 ms.
    assert units.transmit_time_ms(1250, 10.0) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        units.transmit_time_ms(100, 0.0)


def test_average_rate():
    assert units.bytes_over_ms_to_mbps(1250, 1.0) == pytest.approx(10.0)
    with pytest.raises(ValueError):
        units.bytes_over_ms_to_mbps(1, 0.0)


def test_error_hierarchy():
    """Every package error is catchable as ReproError."""
    from repro.errors import (
        ExperimentError,
        MemoryError_,
        NetworkError,
        ProtocolError,
        SchedulerError,
        WorkloadError,
    )

    for exc_type in (
        SimulationError,
        SchedulerError,
        MemoryError_,
        NetworkError,
        ProtocolError,
        WorkloadError,
        ExperimentError,
    ):
        assert issubclass(exc_type, ReproError)
        assert not issubclass(exc_type, AssertionError)
