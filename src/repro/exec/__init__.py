"""Parallel, cached execution of parameter sweeps.

The package's experiments are deterministic pure functions of
(configuration, seed), which buys two things for free: points can run on
any worker in any order and merge back deterministically, and finished
points can replay from an on-disk cache instead of recomputing.  This
subpackage is the engine that exploits both:

* :class:`SweepExecutor` — maps a point function over parameter values
  through a pluggable backend (``serial`` or ``process``), merging results
  in index order;
* :class:`ResultCache` — content-hash-keyed pickle store of finished
  points, invalidated by experiment name, value, seed, or package version;
* :class:`RunContext` — the single-argument context the CLI hands each
  experiment (seed, streams, jobs, cache policy).

``python -m repro run all --jobs 8 --cache-dir .repro-cache`` is the
canonical consumer; see DESIGN.md §5 for the determinism argument.
"""

from .backends import (
    BACKEND_NAMES,
    BackendUnavailable,
    ProcessBackend,
    SerialBackend,
    make_backend,
    probe_process_backend,
)
from .cache import CacheStats, ResultCache, point_key
from .context import RunContext
from .executor import ObserveSink, SweepExecutor, serial_executor

__all__ = [
    "BACKEND_NAMES",
    "BackendUnavailable",
    "CacheStats",
    "ObserveSink",
    "ProcessBackend",
    "ResultCache",
    "RunContext",
    "SerialBackend",
    "SweepExecutor",
    "make_backend",
    "point_key",
    "probe_process_backend",
    "serial_executor",
]
