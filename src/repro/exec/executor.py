"""The sweep executor: cache, fan out, merge deterministically.

:class:`SweepExecutor` is the one engine behind every parameter sweep in the
package — the CLI, :class:`repro.core.ParameterSweep`, benches and examples
all funnel through :meth:`SweepExecutor.map`.  Its contract:

* **Determinism.**  Results are keyed by parameter *index* and merged in
  index order, never completion order, so ``--jobs 8`` reproduces the
  serial run bit-for-bit.
* **Caching.**  With a :class:`~repro.exec.cache.ResultCache` attached,
  previously computed points replay from disk and only changed points
  recompute.
* **Graceful degradation.**  If the requested backend cannot run (the
  point function doesn't pickle, the sandbox denies process pools), the
  executor falls back to serial and records why in
  :attr:`~SweepExecutor.last_fallback_reason` instead of failing the sweep.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, List, Optional, Sequence, TypeVar, Union

from ..errors import ExperimentError
from ..obs import observe
from .backends import make_backend, probe_process_backend
from .cache import ResultCache

R = TypeVar("R")

#: Progress sinks: a callable taking one line, or any object with ``write``.
ProgressSink = Union[Callable[[str], None], Any]

#: Observation sinks receive ``(sweep_name, [per-point snapshots])`` after
#: each observed sweep, snapshots in parameter-index order.  Snapshots are
#: :class:`~repro.obs.CompactSnapshot` instances (columnar transport form)
#: or, under the reference recorder, classic snapshot dicts.
ObserveSink = Callable[[str, List[Any]], None]


class _ObservedPoint:
    """A picklable wrapper running one point inside a fresh observation.

    Returns ``(result, snapshot)``, so the trace/metrics record rides the
    same path as the result — through worker pickling and the on-disk
    cache — and is therefore byte-identical across serial, parallel, and
    warm-cache executions.  The snapshot travels in columnar form
    (:meth:`~repro.obs.Observation.snapshot_compact`, zlib-compressed when
    large) so IPC and cache bytes stay small for event-heavy points.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[Any], Any]) -> None:
        self.fn = fn

    def __call__(self, value: Any) -> tuple:
        with observe() as obs:
            result = self.fn(value)
        return result, obs.snapshot_compact()

    def __getstate__(self):
        return self.fn

    def __setstate__(self, state):
        self.fn = state


def _as_progress_fn(sink: Optional[ProgressSink]) -> Callable[[str], None]:
    if sink is None:
        return lambda line: None
    if callable(sink):
        return sink
    write = getattr(sink, "write", None)
    if write is None:
        raise ExperimentError(
            f"progress sink {sink!r} is neither callable nor writable"
        )
    return lambda line: write(line + "\n")


class SweepExecutor:
    """Run sweep points through a backend, with optional result caching.

    ``backend`` is ``"serial"`` or ``"process"``; ``jobs`` bounds worker
    count for parallel backends (default: the machine's CPU count).
    ``cache`` may be a :class:`ResultCache`, a directory path, or ``None``
    to disable caching.  ``progress`` receives one human-readable line per
    point plus a sweep summary.
    """

    def __init__(
        self,
        backend: str = "serial",
        jobs: Optional[int] = None,
        cache: Union[ResultCache, str, None] = None,
        chunk_size: Optional[int] = None,
        progress: Optional[ProgressSink] = None,
        observe_sink: Optional[ObserveSink] = None,
    ) -> None:
        self.backend_name = backend
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self.chunk_size = chunk_size
        self.cache = ResultCache(cache) if isinstance(cache, str) else cache
        self._progress = _as_progress_fn(progress)
        #: When set, every point runs inside an observation and the sink
        #: receives ``(sweep_name, snapshots)`` after each sweep.  Observed
        #: sweeps cache under a distinct namespace (``<name>+trace``) so
        #: traced and untraced runs never replay each other's entries.
        self.observe_sink = observe_sink
        #: Why the last sweep fell back to serial, or ``None`` if it didn't.
        self.last_fallback_reason: Optional[str] = None
        #: The backend the last sweep actually used.
        self.last_backend_used: Optional[str] = None
        #: Wall time of the last sweep, seconds (cache lookups included).
        self.last_elapsed_s: float = 0.0
        #: Per-point compute seconds from the last sweep, keyed by parameter
        #: index; cached points are absent.  ``benchmarks/perf`` reads this
        #: to attribute experiment wall time to individual sweep points.
        self.last_point_seconds: dict = {}

    # -- the engine -----------------------------------------------------

    def map(
        self,
        name: str,
        fn: Callable[[Any], R],
        values: Sequence[Any],
        *,
        seed: int = 0,
    ) -> List[R]:
        """Compute ``[fn(v) for v in values]``, cached and possibly parallel.

        The returned list is always in *values* order regardless of which
        backend ran or in what order points completed.
        """
        if not values:
            raise ExperimentError(f"sweep {name!r} given no values")
        start = time.perf_counter()
        total = len(values)
        observing = self.observe_sink is not None
        run_fn: Callable[[Any], Any] = _ObservedPoint(fn) if observing else fn
        cache_name = f"{name}+trace" if observing else name
        results: dict = {}
        pending: List[tuple] = []
        for index, value in enumerate(values):
            if self.cache is not None:
                hit, payload = self.cache.load(cache_name, value, seed)
                if hit:
                    results[index] = payload
                    self._progress(
                        f"{name}: point {index + 1}/{total} ({value!r}) cached"
                    )
                    continue
            pending.append((index, value))

        self.last_point_seconds = point_seconds = {}
        backend = self._resolve_backend(run_fn, len(pending))
        for index, seconds, result in backend.map(run_fn, pending):
            results[index] = result
            point_seconds[index] = seconds
            if self.cache is not None:
                self.cache.store(cache_name, values[index], seed, result)
            self._progress(
                f"{name}: point {index + 1}/{total} "
                f"({values[index]!r}) {seconds:.2f}s"
            )

        elapsed = time.perf_counter() - start
        self.last_elapsed_s = elapsed
        cached = total - len(pending)
        self._progress(
            f"{name}: {total} points in {elapsed:.2f}s "
            f"({cached} cached, backend={self.last_backend_used})"
        )
        merged = [results[index] for index in range(total)]
        if observing:
            assert self.observe_sink is not None
            self.observe_sink(name, [snapshot for __, snapshot in merged])
            merged = [result for result, __ in merged]
        return merged

    def run_sweep(self, sweep, values: Sequence[Any], *, seed: int = 0):
        """Execute a :class:`~repro.core.ParameterSweep` through this engine.

        Equivalent to ``sweep.execute(values)`` but cached/parallel; the
        returned :class:`~repro.core.SweepResult` rows are identical.
        """
        from ..core.experiment import SweepResult

        results = self.map(sweep.name, sweep.run, values, seed=seed)
        table: SweepResult = SweepResult(sweep.name, sweep.parameter)
        for value, result in zip(values, results):
            table.append(value, result)
        return table

    # -- backend resolution ---------------------------------------------

    def _resolve_backend(self, fn: Callable[[Any], Any], pending: int):
        """Pick the backend for this sweep, falling back to serial."""
        self.last_fallback_reason = None
        name = self.backend_name
        if name == "process" and pending <= 1:
            # One point gains nothing from a pool; skip the fork cost.
            name = "serial"
        elif name == "process":
            reason = probe_process_backend(fn)
            if reason is not None:
                self.last_fallback_reason = reason
                self._progress(f"falling back to serial: {reason}")
                name = "serial"
        backend = make_backend(name, self.jobs, self.chunk_size)
        self.last_backend_used = backend.name
        return backend

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SweepExecutor backend={self.backend_name!r} jobs={self.jobs} "
            f"cache={self.cache!r}>"
        )


def serial_executor() -> SweepExecutor:
    """The default engine: serial, uncached — plain-old ``map`` semantics."""
    return SweepExecutor(backend="serial", cache=None)
