"""The single-argument run context every CLI experiment receives.

The old runner signature — ``run(seed, out, csv_dir)`` positional — grew a
flag at a time and couldn't carry executor settings without breaking every
call site.  :class:`RunContext` replaces it: one dataclass holding the seed,
the output stream, the CSV directory, and the execution policy (jobs, cache
directory, cache on/off), plus a lazily-built :class:`SweepExecutor` shared
by every sweep the experiment runs.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Optional, TextIO

from .executor import ProgressSink, SweepExecutor


@dataclass
class RunContext:
    """Everything one experiment run needs, passed as a single argument.

    ``jobs > 1`` selects the process backend; caching engages whenever
    ``cache_dir`` is set and ``no_cache`` is not.  ``progress`` (a stream
    or callable) receives per-point timing lines; ``None`` keeps runs
    silent, which also keeps ``out`` byte-stable across repeats.
    """

    seed: int = 0
    out: TextIO = field(default_factory=lambda: sys.stdout)
    csv_dir: Optional[str] = None
    jobs: int = 1
    cache_dir: Optional[str] = None
    no_cache: bool = False
    progress: Optional[ProgressSink] = None
    _executor: Optional[SweepExecutor] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def executor(self) -> SweepExecutor:
        """The sweep engine for this run (built once, then reused)."""
        if self._executor is None:
            self._executor = SweepExecutor(
                backend="process" if self.jobs > 1 else "serial",
                jobs=self.jobs,
                cache=None if self.no_cache else self.cache_dir,
                progress=self.progress,
            )
        return self._executor
