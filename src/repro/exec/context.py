"""The single-argument run context every CLI experiment receives.

The old runner signature — ``run(seed, out, csv_dir)`` positional — grew a
flag at a time and couldn't carry executor settings without breaking every
call site.  :class:`RunContext` replaces it: one dataclass holding the seed,
the output stream, the CSV directory, and the execution policy (jobs, cache
directory, cache on/off), plus a lazily-built :class:`SweepExecutor` shared
by every sweep the experiment runs.

Tracing rides the same context: with ``observe=True`` (or a ``trace_dir``
set) the executor runs every sweep point inside an observation, and the
per-point trace/metrics snapshots accumulate here in sweep order.  The CLI
drains them with :meth:`RunContext.take_observations` after each experiment
to write artifacts and render the metrics summary.

Fault injection rides it too: ``faults`` holds the canonical ``--faults``
spec string (kept as a string so it pickles to workers and keys cache
entries) plus its ``fault_seed``; :meth:`RunContext.fault_plan` parses it
on demand and :attr:`RunContext.fault_suffix` tags sweep names so faulted
and clean sweeps never replay each other's cached points.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TextIO

from ..obs import RunObservations
from .executor import ProgressSink, SweepExecutor


@dataclass
class RunContext:
    """Everything one experiment run needs, passed as a single argument.

    ``jobs > 1`` selects the process backend; caching engages whenever
    ``cache_dir`` is set and ``no_cache`` is not.  ``progress`` (a stream
    or callable) receives per-point timing lines; ``None`` keeps runs
    silent, which also keeps ``out`` byte-stable across repeats.

    ``trace_dir``/``observe`` switch on the :mod:`repro.obs` layer: every
    sweep point records structured events and metrics, collected per sweep
    in :attr:`observations`.  Observation artifacts are byte-identical
    across the serial, process, and cached executor paths.
    """

    seed: int = 0
    out: TextIO = field(default_factory=lambda: sys.stdout)
    csv_dir: Optional[str] = None
    jobs: int = 1
    cache_dir: Optional[str] = None
    no_cache: bool = False
    progress: Optional[ProgressSink] = None
    trace_dir: Optional[str] = None
    observe: bool = False
    faults: Optional[str] = None
    fault_seed: int = 0
    _executor: Optional[SweepExecutor] = field(
        default=None, init=False, repr=False, compare=False
    )
    _observations: Dict[str, List[dict]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    @property
    def observing(self) -> bool:
        """Whether sweeps run instrumented (``observe`` or a trace dir)."""
        return self.observe or self.trace_dir is not None

    # -- fault injection --------------------------------------------------

    def fault_plan(self):
        """The parsed :class:`~repro.net.faults.FaultPlan`, or ``None``.

        ``None`` means a clean wire; experiments then build plain links and
        their output is byte-identical to a pre-fault-layer run.
        """
        if not self.faults:
            return None
        from ..net.faults import FaultPlan

        plan = FaultPlan.parse(self.faults, seed=self.fault_seed)
        return plan if plan.enabled else None

    @property
    def fault_suffix(self) -> str:
        """A sweep-name tag isolating faulted cache entries from clean ones."""
        if not self.faults:
            return ""
        return f"+faults[{self.faults}@{self.fault_seed}]"

    @property
    def executor(self) -> SweepExecutor:
        """The sweep engine for this run (built once, then reused)."""
        if self._executor is None:
            self._executor = SweepExecutor(
                backend="process" if self.jobs > 1 else "serial",
                jobs=self.jobs,
                cache=None if self.no_cache else self.cache_dir,
                progress=self.progress,
                observe_sink=self._record_observations if self.observing else None,
            )
        return self._executor

    # -- observation collection -----------------------------------------

    def _record_observations(self, sweep: str, snapshots: List[dict]) -> None:
        """Executor sink: append one sweep's per-point snapshots."""
        self._observations.setdefault(sweep, []).extend(snapshots)

    @property
    def observations(self) -> RunObservations:
        """Snapshots collected since the last :meth:`take_observations`."""
        return self._observations

    def take_observations(self) -> RunObservations:
        """Drain and return the collected observations (per-experiment)."""
        taken, self._observations = self._observations, {}
        return taken
