"""On-disk result cache for sweep points.

Every experiment in this package is a deterministic pure function of
(configuration, seed), so a sweep point's result can be replayed from disk
instead of recomputed.  :class:`ResultCache` keys each point by a content
hash of (experiment name, parameter value, seed, package version); bumping
the package version therefore invalidates every entry, and changing any key
component misses cleanly.

The cache is strictly best-effort: a corrupted, truncated, or stale entry
is treated as a miss and recomputed, never trusted, and a result that cannot
be pickled is simply not cached.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass
from typing import Any, Optional, Tuple

from .. import __version__

#: Sentinel distinguishing "miss" from a cached ``None`` result.
_MISS = object()


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss/store counters for one cache instance's lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0


def point_key(experiment: str, value: Any, seed: int, version: Optional[str] = None) -> str:
    """The content hash naming one sweep point's cache entry.

    Hashes the experiment name, the ``repr`` of the parameter value, the
    seed, and the package version, so any change to what the point *means*
    changes where it lives on disk.
    """
    material = _key_material(experiment, value, seed, version)
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def _key_material(experiment: str, value: Any, seed: int, version: Optional[str]) -> str:
    if version is None:
        version = __version__
    return "\x00".join((experiment, repr(value), str(seed), version))


class ResultCache:
    """A directory of pickled sweep-point results, keyed by content hash.

    Entries live at ``<root>/<key[:2]>/<key>.pkl`` and store the full key
    material alongside the payload; a load whose stored material does not
    match the requested key (a stale or colliding entry) is a miss.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self._hits = 0
        self._misses = 0
        self._stores = 0

    # -- lookup ---------------------------------------------------------

    def load(self, experiment: str, value: Any, seed: int) -> Tuple[bool, Any]:
        """Return ``(hit, payload)`` for one point; corrupt entries miss."""
        path = self._path(point_key(experiment, value, seed))
        try:
            with open(path, "rb") as f:
                entry = pickle.load(f)
            if entry.get("material") != _key_material(experiment, value, seed, None):
                raise ValueError("stale cache entry")
            payload = entry["payload"]
        except Exception:
            # Missing file, truncated pickle, tampered payload, version
            # drift — all recomputed, never trusted.
            self._misses += 1
            return False, _MISS
        self._hits += 1
        return True, payload

    def store(self, experiment: str, value: Any, seed: int, payload: Any) -> None:
        """Persist one point's result; silently skips unpicklable payloads."""
        key = point_key(experiment, value, seed)
        path = self._path(key)
        try:
            blob = pickle.dumps(
                {
                    "material": _key_material(experiment, value, seed, None),
                    "payload": payload,
                }
            )
        except Exception:
            return
        # Write-then-rename so a concurrent reader never sees a torn entry;
        # an unwritable cache directory degrades to uncached, never crashes.
        tmp = None
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
            with os.fdopen(fd, "wb") as f:
                f.write(blob)
            os.replace(tmp, path)
        except Exception:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            return
        self._stores += 1

    # -- bookkeeping ----------------------------------------------------

    @property
    def stats(self) -> CacheStats:
        """Counters accumulated since this instance was created."""
        return CacheStats(hits=self._hits, misses=self._misses, stores=self._stores)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".pkl")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ResultCache root={self.root!r} {self.stats}>"
