"""Execution backends: how a batch of sweep points actually runs.

A backend maps one picklable-or-not function over index-tagged parameter
values and yields ``(index, seconds, result)`` triples in whatever order
points *finish*.  Ordering is the executor's job — it merges by index — so
backends are free to complete points out of order.

Two backends ship:

``serial``
    Runs points in the calling process, in order.  Always available, and
    the semantic baseline every other backend must match bit-for-bit.

``process``
    Fans chunks of points out to a :class:`concurrent.futures.\
ProcessPoolExecutor`.  Requires the point function and every value/result
    to be picklable; :func:`probe_process_backend` reports (rather than
    raises) when that, or process creation itself, is impossible so the
    executor can fall back to serial.
"""

from __future__ import annotations

import pickle
import time
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from ..errors import ExperimentError

#: (index, value) pairs going in; (index, seconds, result) triples coming out.
TaggedValue = Tuple[int, Any]
PointOutput = Tuple[int, float, Any]

BACKEND_NAMES = ("serial", "process")


class BackendUnavailable(ExperimentError):
    """The requested backend cannot run in this environment."""


def _run_point(fn: Callable[[Any], Any], tagged: TaggedValue) -> PointOutput:
    index, value = tagged
    start = time.perf_counter()
    result = fn(value)
    return index, time.perf_counter() - start, result


def _run_chunk(
    fn: Callable[[Any], Any], chunk: Sequence[TaggedValue]
) -> List[PointOutput]:
    """Worker entry point: run one chunk of points (module-level, picklable)."""
    return [_run_point(fn, tagged) for tagged in chunk]


class SerialBackend:
    """In-process, in-order execution — the reference semantics."""

    name = "serial"

    def __init__(self, jobs: int = 1) -> None:
        self.jobs = 1  # serial by definition

    def map(
        self, fn: Callable[[Any], Any], tagged: Sequence[TaggedValue]
    ) -> Iterator[PointOutput]:
        """Yield ``(index, seconds, fn(value))`` for each point, in order."""
        for item in tagged:
            yield _run_point(fn, item)


class ProcessBackend:
    """Chunked fan-out over a :class:`ProcessPoolExecutor`."""

    name = "process"

    def __init__(self, jobs: int = 2, chunk_size: Optional[int] = None) -> None:
        if jobs < 1:
            raise ExperimentError(f"process backend needs jobs >= 1, got {jobs}")
        self.jobs = jobs
        self.chunk_size = chunk_size

    def _chunks(self, tagged: Sequence[TaggedValue]) -> List[List[TaggedValue]]:
        size = self.chunk_size
        if size is None:
            # Aim for a few chunks per worker so stragglers rebalance, but
            # never chunks so small that submission overhead dominates.
            size = max(1, len(tagged) // (self.jobs * 4) or 1)
        return [list(tagged[i : i + size]) for i in range(0, len(tagged), size)]

    def map(
        self, fn: Callable[[Any], Any], tagged: Sequence[TaggedValue]
    ) -> Iterator[PointOutput]:
        """Yield ``(index, seconds, fn(value))`` triples in completion order."""
        from concurrent.futures import ProcessPoolExecutor, as_completed

        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            futures = [pool.submit(_run_chunk, fn, c) for c in self._chunks(tagged)]
            for future in as_completed(futures):
                for output in future.result():
                    yield output


def probe_process_backend(fn: Callable[[Any], Any]) -> Optional[str]:
    """Why the process backend can't run *fn*, or ``None`` if it can.

    Checks the two preconditions cheaply before any fork: the point
    function must pickle (lambdas and closures don't), and the platform
    must support process pools at all (sandboxes sometimes deny the
    semaphores they need).
    """
    try:
        pickle.dumps(fn)
    except Exception as exc:
        return f"point function is not picklable ({type(exc).__name__})"
    try:
        import concurrent.futures  # noqa: F401
        import multiprocessing

        multiprocessing.cpu_count()
    except Exception as exc:  # pragma: no cover - platform-specific
        return f"process pools unavailable ({type(exc).__name__})"
    return None


def make_backend(name: str, jobs: int, chunk_size: Optional[int] = None):
    """Instantiate a backend by name, validating it exists."""
    if name == "serial":
        return SerialBackend()
    if name == "process":
        return ProcessBackend(jobs=jobs, chunk_size=chunk_size)
    raise ExperimentError(
        f"unknown backend {name!r}; expected one of {BACKEND_NAMES}"
    )
