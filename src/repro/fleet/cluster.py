"""N thin-client servers, one clock, one backbone: the fleet composition.

The paper measures a *single* multi-user server; the north star is millions
of users, which means composing many of them.  A :class:`Fleet` builds N
:class:`~repro.core.server.ThinClientServer` instances on one shared
:class:`~repro.sim.engine.Simulator`, puts a shared **backbone link**
between the client population and the server pool, and routes arriving
sessions through an :class:`~repro.fleet.admission.AdmissionController`
and a pluggable :class:`~repro.fleet.placement.PlacementPolicy`.

One fleet interaction crosses the full stack twice over two networks::

    client --input--> backbone --> server LAN --> scheduler/VM/protocol
           <--display-- backbone <-- server LAN <--/

so fleet-level session latency = backbone queueing (shared by *every*
session in the fleet) + the single-server path the paper measured.  That
is exactly the two-tier structure whose crossover Gray's NC-farm sizing
and Gunther's X-terminal queueing models predict: per-server resources
bind at small fleets, the backbone binds at large ones.

Observability (when run under ``with observe():`` / ``repro trace``):

* counters ``fleet.admitted`` / ``fleet.rejected`` / ``fleet.queued`` /
  ``fleet.migrations``;
* per-server load gauges ``fleet.load.sNN`` (active sessions);
* histogram ``fleet.session_latency_ms`` of end-to-end latencies.

Determinism: all randomness comes from named
:class:`~repro.sim.rng.RngRegistry` streams derived from the fleet seed,
and every data structure iterates in insertion order — a fleet run is a
pure function of ``(config, seed)``, byte-for-byte.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import Deque, Dict, List, Optional, Tuple

from ..core.server import ServerConfig, ThinClientServer, UserSession
from ..errors import FleetError
from ..gui.drawing import DisplayOp, DrawText
from ..net.faults import FaultPlan, make_link
from ..net.packet import Packet
from ..obs import current_observation
from ..sim.engine import PeriodicTask, Simulator
from ..sim.rng import RngRegistry, derive_seed
from ..workloads.behavior import TASK_WORKER, BehaviorProfile
from .admission import ADMITTED, QUEUED, AdmissionController, AdmissionPolicy, planned_session_capacity
from .placement import PlacementPolicy, make_placement

#: On-wire size of one keystroke crossing the backbone (TCP/IP framing
#: around a scan code — the input direction of §6.2's asymmetry).
INPUT_WIRE_BYTES = 64

#: Framing overhead added to a display payload crossing the backbone.
DISPLAY_OVERHEAD_BYTES = 48

#: How long a session waits for an interaction to complete before giving
#: up on it (ms).  On a faulted backbone a lost input or display packet
#: would otherwise leave the closed-loop session stuck forever.
INTERACTION_TIMEOUT_MS = 2_000.0


@dataclass(frozen=True)
class FleetConfig:
    """What fleet to build: pool, placement, admission, backbone.

    ``server`` is the per-server hardware/OS template (every server is
    identical — the homogeneous-farm case Gray prices).  ``capacity_per_server``
    defaults to the capacity planner's maximum for ``profile`` on that
    hardware.  ``backbone_mbps`` is the shared aggregate link between the
    client population and the pool; ``backbone_faults`` optionally runs it
    through the :mod:`repro.net.faults` layer.
    """

    server: ServerConfig = field(
        default_factory=lambda: ServerConfig.tse()
    )
    num_servers: int = 2
    placement: str = "round_robin"
    profile: BehaviorProfile = TASK_WORKER
    admission_mode: str = "reject"
    max_queue: Optional[int] = None
    capacity_per_server: Optional[int] = None
    backbone_mbps: float = 100.0
    backbone_propagation_ms: float = 0.5
    backbone_faults: Optional[FaultPlan] = None
    #: Open sessions in coordinated-omission-safe mode: typing ticks that
    #: land while an interaction is in flight are *queued* with their
    #: intended send time instead of dropped, and each completion records a
    #: second, corrected latency measured from that intended time.  Off by
    #: default — the legacy closed loop is byte-identical with this False.
    co_safe_sessions: bool = False

    def __post_init__(self) -> None:
        """Validate the pool size and backbone parameters."""
        if self.num_servers < 1:
            raise FleetError("a fleet needs at least one server")
        if self.backbone_mbps <= 0:
            raise FleetError("backbone bandwidth must be positive")

    def with_placement(self, name: str) -> "FleetConfig":
        """This config under a different placement policy."""
        return replace(self, placement=name)


class ServerState:
    """One pool member: the composed server plus fleet bookkeeping."""

    __slots__ = ("index", "label", "server", "failed", "sessions", "latency_ewma", "capacity")

    def __init__(self, index: int, label: str, server: ThinClientServer, capacity: int) -> None:
        self.index = index
        self.label = label  #: zero-padded id, e.g. ``s03``
        self.server = server
        self.capacity = capacity
        self.failed = False
        self.sessions: Dict[str, "FleetSession"] = {}
        self.latency_ewma: Optional[float] = None

    @property
    def active(self) -> int:
        """Sessions currently placed here."""
        return len(self.sessions)

    @property
    def latency_estimate_ms(self) -> float:
        """EWMA of this server's observed session latencies (0 = no data)."""
        return self.latency_ewma if self.latency_ewma is not None else 0.0

    def observe_latency(self, latency_ms: float, alpha: float = 0.2) -> None:
        """Fold one completed interaction into the latency EWMA."""
        if self.latency_ewma is None:
            self.latency_ewma = latency_ms
        else:
            self.latency_ewma += alpha * (latency_ms - self.latency_ewma)


class FleetSession:
    """One user of the *fleet*: a placed server session plus the backbone.

    The session owns its typing cadence and per-interaction display cost;
    :meth:`press_key` drives the full two-network round trip and stamps
    the end-to-end latency in :attr:`latencies_ms`.  Typing is
    **closed-loop**: at most one interaction is outstanding per session,
    and a typing tick that lands while one is in flight is skipped (a real
    user pacing themselves against the echo).  That keeps every latency
    sample paired with its own keystroke even when the fleet saturates,
    and an :data:`INTERACTION_TIMEOUT_MS` watchdog abandons interactions a
    faulted backbone swallowed.  When its server is marked failed the
    fleet re-places the session; :attr:`placements` records the server
    index history (the affinity invariant reads it).

    **Coordinated omission.**  The closed loop has the classic measurement
    blind spot: while the system stalls, the session stops sending, so the
    stall's victims never appear in :attr:`latencies_ms` — exactly the
    samples the tail needed.  With ``co_safe=True`` the session keeps the
    same tick cadence but *queues* blocked ticks with their intended send
    time (:attr:`missed_ticks` counts them); once the loop unblocks, the
    backlog drains one interaction per completion, and every interaction
    records a second sample in :attr:`intended_latencies_ms`, measured
    from the intended time — the wrk2/HdrHistogram correction.  Abandoned
    interactions contribute their (censored) wait as a corrected sample
    instead of vanishing.  The uncorrected series is untouched, so the
    corrected-vs-uncorrected gap is observable per run.
    """

    def __init__(
        self,
        fleet: "Fleet",
        name: str,
        *,
        rate_hz: float = 2.0,
        display_chars: int = 8,
        co_safe: bool = False,
    ) -> None:
        if rate_hz <= 0:
            raise FleetError("typing rate must be positive")
        self.fleet = fleet
        self.name = name
        self.rate_hz = rate_hz
        self.co_safe = co_safe
        self.display_ops: List[DisplayOp] = [DrawText(display_chars)]
        self.latencies_ms: List[float] = []
        self.intended_latencies_ms: List[float] = []  #: corrected series
        self.placements: List[int] = []
        self.skipped_ticks = 0  #: typing ticks dropped by the closed loop
        self.missed_ticks = 0  #: blocked ticks queued by the co-safe loop
        self.abandoned = 0  #: interactions the watchdog gave up on
        self.state: Optional[ServerState] = None
        self._session: Optional[UserSession] = None
        self._token = 0  # interaction id generator
        self._inflight: Optional[Tuple[int, float]] = None  # (token, t0)
        self._inflight_intended: Optional[float] = None
        self._backlog: Deque[float] = deque()  # intended times awaiting issue
        self._awaiting_display = False
        self._moves = 0
        self._typing: Optional[PeriodicTask] = None

    # -- placement lifecycle -------------------------------------------------

    def attach(self, state: ServerState) -> None:
        """Log in on *state*'s server and start measuring through it."""
        session = state.server.connect(f"{self.name}#{self._moves}")
        self._moves += 1
        self.state = state
        self._session = session
        self.placements.append(state.index)
        state.sessions[self.name] = self
        client = session.client
        original = client.display_received

        def measured(message) -> None:
            before = len(client.latencies_ms)
            original(message)
            if len(client.latencies_ms) > before:
                self._display_answered(message.payload_bytes)

        client.display_received = measured  # type: ignore[method-assign]
        if self.co_safe:
            self._try_issue()  # a migration may have left queued intents

    def detach(self) -> None:
        """Log out of the current server (in-flight interactions drop)."""
        if self.state is None:
            return
        self.state.server.disconnect(self._session.name)
        del self.state.sessions[self.name]
        self.state = None
        self._session = None
        if self.co_safe and self._inflight_intended is not None:
            # The dropped interaction's intent survives the move: reissue
            # it (oldest first) once the session lands on a new server.
            self._backlog.appendleft(self._inflight_intended)
        self._inflight = None
        self._inflight_intended = None
        self._awaiting_display = False

    # -- one interaction, across both networks -------------------------------

    def press_key(self) -> None:
        """Type once: input up the backbone, echo down it, stamp latency.

        A no-op while a previous interaction is still in flight (closed
        loop) or while the session is between placements.
        """
        if self.state is None:
            return  # between placements (server failed, not yet re-placed)
        if self._inflight is not None:
            self.skipped_ticks += 1
            return
        self._launch(self.fleet.sim.now)

    def _launch(self, intended_ms: float) -> None:
        """Issue one interaction now, attributed to intent time *intended_ms*."""
        self._token += 1
        token = self._token
        self._inflight = (token, self.fleet.sim.now)
        self._inflight_intended = intended_ms
        packet = Packet(INPUT_WIRE_BYTES, channel="input", protocol="fleet")
        self.fleet.backbone.send(packet, lambda __: self._input_arrived(token))
        self.fleet.sim.schedule(
            INTERACTION_TIMEOUT_MS, lambda: self._give_up(token)
        )

    def _co_press(self) -> None:
        """One co-safe typing tick: queue the intent, issue when unblocked."""
        if self.state is None or self._inflight is not None:
            self.missed_ticks += 1
        self._backlog.append(self.fleet.sim.now)
        self._try_issue()

    def _try_issue(self) -> None:
        """Issue the oldest queued intent if the closed loop is free."""
        if self.state is None or self._inflight is not None or not self._backlog:
            return
        self._launch(self._backlog.popleft())

    def _input_arrived(self, token: int) -> None:
        """The keystroke reached the pool: hand it to the placed server."""
        if self._inflight is None or self._inflight[0] != token:
            return  # abandoned, or the packet outlived the placement
        if self._session is None:
            self._inflight = None
            return
        self._awaiting_display = True
        self._session.press_key(ops=self.display_ops)

    def _display_answered(self, payload_bytes: int) -> None:
        """The server answered on its LAN; echo crosses the backbone down."""
        if not self._awaiting_display or self._inflight is None:
            return  # a display that outlived its (abandoned) interaction
        self._awaiting_display = False
        token = self._inflight[0]
        packet = Packet(
            payload_bytes + DISPLAY_OVERHEAD_BYTES,
            payload_bytes=payload_bytes,
            channel="display",
            protocol="fleet",
        )
        self.fleet.backbone.send(packet, lambda __: self._complete(token))

    def _complete(self, token: int) -> None:
        """The display update reached the client: one latency sample."""
        if self._inflight is None or self._inflight[0] != token:
            return
        now = self.fleet.sim.now
        latency = now - self._inflight[1]
        intended = self._inflight_intended
        self._inflight = None
        self._inflight_intended = None
        self.latencies_ms.append(latency)
        if self.state is not None:
            self.state.observe_latency(latency)
        self.fleet.record_latency(latency)
        if self.co_safe:
            self._record_corrected(now - (intended if intended is not None else now))

    def _give_up(self, token: int) -> None:
        """Watchdog: abandon the interaction if it is still outstanding."""
        if self._inflight is not None and self._inflight[0] == token:
            intended = self._inflight_intended
            self._inflight = None
            self._inflight_intended = None
            self._awaiting_display = False
            self.abandoned += 1
            if self.co_safe:
                # Censored corrected sample: the victim waited at least
                # this long — dropping it would re-omit the worst tail.
                self._record_corrected(
                    self.fleet.sim.now
                    - (intended if intended is not None else self.fleet.sim.now)
                )

    def _record_corrected(self, corrected_ms: float) -> None:
        """Stamp one corrected (intent-to-done) sample and drain the backlog."""
        self.intended_latencies_ms.append(corrected_ms)
        self.fleet.record_corrected_latency(corrected_ms)
        self._try_issue()

    # -- cadence -------------------------------------------------------------

    def start_typing(self, *, phase_ms: Optional[float] = None) -> None:
        """Type at :attr:`rate_hz` forever (first press after *phase_ms*)."""
        if self._typing is not None:
            raise FleetError(f"fleet session {self.name!r} is already typing")
        interval = 1000.0 / self.rate_hz
        start = None if phase_ms is None else self.fleet.sim.now + phase_ms
        handler = self._co_press if self.co_safe else self.press_key
        self._typing = self.fleet.sim.every(interval, handler, start=start)

    def stop_typing(self) -> None:
        """Release the key (idempotent)."""
        if self._typing is not None:
            self._typing.stop()
            self._typing = None


class Fleet:
    """The composed fleet; see module docstring."""

    def __init__(
        self,
        config: FleetConfig,
        *,
        seed: int = 0,
        sim: Optional[Simulator] = None,
    ) -> None:
        self.config = config
        self.seed = seed
        self.sim = sim if sim is not None else Simulator()
        self.rngs = RngRegistry(derive_seed(seed, "fleet"))
        self.backbone = make_link(
            self.sim,
            config.backbone_faults,
            name="backbone0",
            bandwidth_mbps=config.backbone_mbps,
            propagation_ms=config.backbone_propagation_ms,
        )
        capacity = (
            config.capacity_per_server
            if config.capacity_per_server is not None
            else planned_session_capacity(config.server, config.profile)
        )
        width = max(2, len(str(config.num_servers - 1)))
        self.servers: List[ServerState] = [
            ServerState(
                index,
                f"s{index:0{width}d}",
                ThinClientServer(
                    config.server,
                    seed=derive_seed(seed, f"fleet:server:{index}"),
                    sim=self.sim,
                ),
                capacity,
            )
            for index in range(config.num_servers)
        ]
        self.placement: PlacementPolicy = make_placement(config.placement)
        self.admission = AdmissionController(
            AdmissionPolicy(
                capacity=capacity,
                mode=config.admission_mode,
                max_queue=config.max_queue,
            )
        )
        self.sessions: Dict[str, FleetSession] = {}
        #: Hybrid-tier background populations by server index
        #: (:meth:`attach_background`); empty on every pre-scale path.
        self.backgrounds: Dict[int, object] = {}
        self.migrations = 0
        self._placement_rng = self.rngs.stream("fleet:placement")
        self._queued_params: Dict[str, tuple] = {}
        # Instrument handles, resolved lazily on first use (a fleet that
        # admits nothing must not register zero-valued metrics).
        self._obs = current_observation()
        self._counters: Dict[str, object] = {}
        self._gauges: Dict[str, object] = {}
        self._latency_histogram = None
        self._corrected_histogram = None
        #: Optional :class:`repro.slo.SloTracker` (duck-typed to keep the
        #: fleet layer import-free of slo); when set, every corrected
        #: latency sample is folded into it at its simulation timestamp.
        self.slo_tracker = None

    # -- observability -------------------------------------------------------

    def _count(self, name: str) -> None:
        """Bump counter ``fleet.<name>`` when observing (lazy handle)."""
        if self._obs is None:
            return
        counter = self._counters.get(name)
        if counter is None:
            counter = self._obs.metrics.counter(f"fleet.{name}")
            self._counters[name] = counter
        counter.value += 1

    def _publish_load(self, state: ServerState) -> None:
        """Publish one server's active-session count to its load gauge."""
        if self._obs is None:
            return
        gauge = self._gauges.get(state.label)
        if gauge is None:
            gauge = self._obs.metrics.gauge(f"fleet.load.{state.label}")
            self._gauges[state.label] = gauge
        gauge.set(state.active)

    def record_latency(self, latency_ms: float) -> None:
        """Fold one end-to-end session latency into the fleet histogram."""
        if self._obs is None:
            return
        histogram = self._latency_histogram
        if histogram is None:
            histogram = self._latency_histogram = self._obs.metrics.histogram(
                "fleet.session_latency_ms"
            )
        histogram.observe(latency_ms)

    def record_corrected_latency(self, latency_ms: float) -> None:
        """Fold one coordinated-omission-corrected latency sample.

        Feeds the attached :attr:`slo_tracker` (if any) and, when
        observing, a separate ``fleet.session_latency_corrected_ms``
        histogram — only co-safe sessions call this, so legacy fleet trace
        artifacts are unchanged.
        """
        if self.slo_tracker is not None:
            self.slo_tracker.observe(self.sim.now, latency_ms)
        if self._obs is None:
            return
        histogram = self._corrected_histogram
        if histogram is None:
            histogram = self._corrected_histogram = self._obs.metrics.histogram(
                "fleet.session_latency_corrected_ms"
            )
        histogram.observe(latency_ms)

    # -- session lifecycle ---------------------------------------------------

    def open_session(
        self,
        name: str,
        *,
        rate_hz: float = 2.0,
        display_chars: int = 8,
        start_typing: bool = True,
        pin_server: Optional[int] = None,
    ) -> Optional[FleetSession]:
        """One user arrives: admit, place, and (optionally) start typing.

        Returns the live :class:`FleetSession`, or ``None`` when the
        arrival was rejected or queued (queued arrivals are admitted later
        by :meth:`close_session`, with the same parameters).

        ``pin_server`` bypasses the placement policy and attaches the
        session to that server index (it must be admissible).  The hybrid
        tier's probe sessions use this: a probe must land on the server
        whose background population it is measuring, not wherever the
        policy would scatter it.
        """
        if name in self.sessions:
            raise FleetError(f"fleet session {name!r} already exists")
        outcome = self.admission.decide(name, self.servers)
        if outcome is not ADMITTED:
            self._count("rejected" if outcome != QUEUED else "queued")
            if outcome == QUEUED:
                self._queued_params[name] = (rate_hz, display_chars, start_typing)
            return None
        self._count("admitted")
        session = FleetSession(
            self,
            name,
            rate_hz=rate_hz,
            display_chars=display_chars,
            co_safe=self.config.co_safe_sessions,
        )
        if pin_server is not None:
            candidates = {
                id(state) for state in self.admission.admissible(self.servers)
            }
            try:
                state = self.servers[pin_server]
            except IndexError:
                raise FleetError(
                    f"no server {pin_server} in a fleet of {len(self.servers)}"
                ) from None
            if id(state) not in candidates:
                raise FleetError(
                    f"cannot pin session {name!r} to inadmissible server "
                    f"{pin_server}"
                )
        else:
            state = self.placement.choose(
                name,
                self.admission.admissible(self.servers),
                total_servers=self.config.num_servers,
                rng=self._placement_rng,
            )
        session.attach(state)
        self.sessions[name] = session
        self._publish_load(state)
        if start_typing:
            # Deterministic per-session phase staggers the fleet's typing
            # so sessions don't fire in lockstep on the shared backbone.
            phase = self.rngs.stream("fleet:phase").uniform(
                0.0, 1000.0 / rate_hz
            )
            session.start_typing(phase_ms=phase)
        return session

    def close_session(self, name: str) -> None:
        """One user departs; a queued arrival (if any) takes the slot."""
        session = self.sessions.pop(name, None)
        if session is None:
            raise FleetError(f"no fleet session {name!r}")
        state = session.state
        session.stop_typing()
        session.detach()
        if state is not None:
            self._publish_load(state)
        waiting = self.admission.release()
        if waiting is not None:
            rate_hz, display_chars, start_typing = self._queued_params.pop(
                waiting, (2.0, 8, True)
            )
            self.open_session(
                waiting,
                rate_hz=rate_hz,
                display_chars=display_chars,
                start_typing=start_typing,
            )

    def fail_server(self, index: int) -> List[str]:
        """Mark one server failed and migrate its sessions off it.

        Each displaced session re-runs placement among the remaining
        admissible servers (this is the *only* event that moves a
        session-affinity session).  Sessions that cannot be re-placed —
        no admissible server left — are dropped and counted rejected.
        Returns the names of migrated sessions, in placement order.
        """
        try:
            state = self.servers[index]
        except IndexError:
            raise FleetError(f"no server {index} in a fleet of {len(self.servers)}") from None
        if state.failed:
            raise FleetError(f"server {index} already failed")
        state.failed = True
        displaced = list(state.sessions.values())
        migrated: List[str] = []
        for session in displaced:
            session.detach()
            candidates = self.admission.admissible(self.servers)
            if not candidates:
                session.stop_typing()
                del self.sessions[session.name]
                self.admission.rejected_total += 1
                self._count("rejected")
                continue
            target = self.placement.choose(
                session.name,
                candidates,
                total_servers=self.config.num_servers,
                rng=self._placement_rng,
            )
            session.attach(target)
            self._publish_load(target)
            self.migrations += 1
            self._count("migrations")
            migrated.append(session.name)
        self._publish_load(state)
        return migrated

    def attach_background(
        self,
        index: int,
        spec,
        *,
        horizon_ms: float,
        seed: Optional[int] = None,
    ):
        """Deploy a hybrid-tier background population on server *index*.

        *spec* is a :class:`repro.scale.PopulationSpec` (open arrivals) or
        a :class:`repro.scale.ClosedLoopSpec` (typing sessions that block
        on their echoes); its users load the server's LAN as fluid and
        (when the spec carries CPU demand) its scheduler as aggregated
        per-tick bursts, out to *horizon_ms*.  Admission does not see
        these users — they are statistical mass, not sessions; pin probe
        sessions (:meth:`open_session` with ``pin_server=index``) to
        measure through them.  One population per server; the
        per-population seed derives from the fleet seed and the server
        index unless given.
        """
        from ..scale.population import (
            BackgroundPopulation,
            ClosedLoopPopulation,
            ClosedLoopSpec,
        )

        if index in self.backgrounds:
            raise FleetError(f"server {index} already has a background")
        try:
            state = self.servers[index]
        except IndexError:
            raise FleetError(
                f"no server {index} in a fleet of {len(self.servers)}"
            ) from None
        population_cls = (
            ClosedLoopPopulation
            if isinstance(spec, ClosedLoopSpec)
            else BackgroundPopulation
        )
        population = population_cls(
            self.sim,
            state.server.link,
            spec,
            duration_ms=horizon_ms,
            seed=derive_seed(self.seed, f"fleet:background:{index}")
            if seed is None
            else seed,
            cpu=state.server.cpu,
        )
        self.backgrounds[index] = population
        return population

    # -- driving -------------------------------------------------------------

    def run(self, duration_ms: float) -> None:
        """Advance the whole fleet on the shared clock."""
        self.sim.run(duration_ms)

    @property
    def session_count(self) -> int:
        """Users currently logged in fleet-wide."""
        return len(self.sessions)

    def latencies_ms(self) -> List[float]:
        """Every completed end-to-end latency, in session-creation order."""
        samples: List[float] = []
        for session in self.sessions.values():
            samples.extend(session.latencies_ms)
        return samples

    def corrected_latencies_ms(self) -> List[float]:
        """Every coordinated-omission-corrected latency (co-safe sessions).

        Empty unless the fleet was built with ``co_safe_sessions=True``.
        """
        samples: List[float] = []
        for session in self.sessions.values():
            samples.extend(session.intended_latencies_ms)
        return samples

    def report(self, t0: float = 0.0, t1: Optional[float] = None) -> Dict[str, object]:
        """A fleet-wide snapshot: per-server loads plus backbone state."""
        end = self.sim.now if t1 is None else t1
        per_server = [
            {
                "label": state.label,
                "failed": state.failed,
                "active_sessions": state.active,
                "latency_ewma_ms": state.latency_ewma,
                "cpu_utilization": state.server.cpu.utilization(t0, end)
                if end > t0
                else 0.0,
            }
            for state in self.servers
        ]
        return {
            "placement": self.placement.name,
            "num_servers": self.config.num_servers,
            "sessions": self.session_count,
            "admitted": self.admission.admitted_total,
            "queued": self.admission.queued_total,
            "rejected": self.admission.rejected_total,
            "migrations": self.migrations,
            "background_users": sum(
                population.spec.users
                for population in self.backgrounds.values()
            ),
            # Closed-loop populations report their measured throughput —
            # keystrokes the fleet actually echoed per second — and every
            # population kind exposes its peak fluid backlog; both stay
            # zero on open-only and pre-scale paths.
            "background_keys_per_s": sum(
                population.throughput_per_ms * 1000.0
                for population in self.backgrounds.values()
                if hasattr(population, "throughput_per_ms")
            ),
            "background_backlog_ms": max(
                (
                    population.fluid.peak_backlog_ms
                    for population in self.backgrounds.values()
                ),
                default=0.0,
            ),
            "backbone_utilization": self.backbone.utilization(t0, end)
            if end > t0
            else 0.0,
            "backbone_bytes": self.backbone.bytes_sent,
            "servers": per_server,
        }
