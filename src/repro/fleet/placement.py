"""Pluggable session-placement policies for a server fleet.

Where the paper sizes *one* multi-user server, a fleet must decide *which*
server each arriving session lands on — the bin-packing-vs-spreading choice
that Gray's NC-farm analysis prices out.  A policy sees the admissible
candidates (healthy servers with admission headroom) and picks one:

``random``
    Uniform choice from a named RNG stream — the stateless baseline.
``round_robin``
    Cycle through server indices; the classic spreader.
``least_loaded``
    Fewest active sessions wins; ties break on the lowest server index,
    so placement is a pure function of fleet state.
``latency_aware``
    Greedy on an estimated session latency: each server's observed
    latency EWMA plus a load-proportional queueing penalty.  Servers
    without observations score on load alone, so the policy explores
    before it exploits.
``session_affinity``
    A deterministic hash of the session id picks a home server; the
    session sticks to it (probing forward only past full or failed
    servers).  The fleet invariant — an affinity session never migrates
    unless its server is marked failed — is tested explicitly.

Policies are deterministic given (fleet state, RNG stream state), which is
what lets fleet sweeps reproduce byte-for-byte across ``--jobs N`` and
warm-cache replays.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Protocol, Sequence

from ..errors import FleetError
from ..sim.rng import derive_seed


class PlacementCandidate(Protocol):
    """What a policy may inspect about one admissible server."""

    index: int  #: stable server id within the fleet
    capacity: int  #: admission ceiling (sessions)

    @property
    def active(self) -> int:
        """Sessions currently placed on this server."""
        ...  # pragma: no cover - protocol declaration

    @property
    def latency_estimate_ms(self) -> float:
        """EWMA of observed session latencies (0 before any sample)."""
        ...  # pragma: no cover - protocol declaration


class PlacementPolicy:
    """Base class: pick one server from the admissible candidates."""

    #: Registry id; subclasses override.
    name = "abstract"

    def choose(
        self,
        session_id: str,
        candidates: Sequence[PlacementCandidate],
        *,
        total_servers: int,
        rng: random.Random,
    ) -> PlacementCandidate:
        """Return the chosen candidate.  *candidates* is never empty."""
        raise NotImplementedError  # pragma: no cover - abstract


class RandomPlacement(PlacementPolicy):
    """Uniform random spreading from the fleet's placement RNG stream."""

    name = "random"

    def choose(self, session_id, candidates, *, total_servers, rng):
        """Pick uniformly among admissible servers."""
        return candidates[rng.randrange(len(candidates))]


class RoundRobinPlacement(PlacementPolicy):
    """Cycle through server indices, skipping inadmissible servers."""

    name = "round_robin"

    def __init__(self) -> None:
        self._cursor = 0

    def choose(self, session_id, candidates, *, total_servers, rng):
        """Pick the first admissible server at or after the cursor."""
        chosen = min(
            candidates,
            key=lambda c: ((c.index - self._cursor) % total_servers, c.index),
        )
        self._cursor = (chosen.index + 1) % total_servers
        return chosen


class LeastLoadedPlacement(PlacementPolicy):
    """Fewest active sessions wins; ties break on the lowest server id."""

    name = "least_loaded"

    def choose(self, session_id, candidates, *, total_servers, rng):
        """Pick the least-loaded admissible server (index breaks ties)."""
        return min(candidates, key=lambda c: (c.active, c.index))


class LatencyAwarePlacement(PlacementPolicy):
    """Greedy on estimated latency: observed EWMA + load penalty.

    The penalty charges ``penalty_ms`` per unit of fractional load
    (``active / capacity``), so an empty server with no history beats a
    busy server with a good history — exploration falls out of the score.
    """

    name = "latency_aware"

    def __init__(self, penalty_ms: float = 50.0) -> None:
        self.penalty_ms = penalty_ms

    def score(self, candidate: PlacementCandidate) -> float:
        """Estimated session latency on *candidate*, in ms."""
        load = candidate.active / candidate.capacity if candidate.capacity else 1.0
        return candidate.latency_estimate_ms + self.penalty_ms * load

    def choose(self, session_id, candidates, *, total_servers, rng):
        """Pick the lowest-scoring admissible server (index breaks ties)."""
        return min(candidates, key=lambda c: (self.score(c), c.index))


class SessionAffinityPlacement(PlacementPolicy):
    """Stable hash of the session id, probing forward past full servers.

    The home index is ``sha256(session_id) % total_servers`` (via
    :func:`repro.sim.rng.derive_seed`, so it is stable across processes
    and Python versions); if the home server is inadmissible the probe
    walks forward cyclically.  Re-placing the *same* session id lands on
    the same server while it remains admissible — the affinity property.
    """

    name = "session_affinity"

    @staticmethod
    def home_index(session_id: str, total_servers: int) -> int:
        """The hashed home server index for *session_id*."""
        return derive_seed(0, f"affinity:{session_id}") % total_servers

    def choose(self, session_id, candidates, *, total_servers, rng):
        """Pick the first admissible server in probe order from home."""
        home = self.home_index(session_id, total_servers)
        return min(
            candidates, key=lambda c: ((c.index - home) % total_servers,)
        )


#: Factory table; every policy the CLI and fleet experiments accept.
PLACEMENT_POLICIES: Dict[str, Callable[[], PlacementPolicy]] = {
    "random": RandomPlacement,
    "round_robin": RoundRobinPlacement,
    "least_loaded": LeastLoadedPlacement,
    "latency_aware": LatencyAwarePlacement,
    "session_affinity": SessionAffinityPlacement,
}


def make_placement(name: str) -> PlacementPolicy:
    """Instantiate the placement policy registered under *name*."""
    try:
        factory = PLACEMENT_POLICIES[name]
    except KeyError:
        raise FleetError(
            f"unknown placement policy {name!r}; expected one of "
            f"{sorted(PLACEMENT_POLICIES)}"
        ) from None
    return factory()
