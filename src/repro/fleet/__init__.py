"""Fleet-scale composition: many thin-client servers behind one backbone.

The paper sizes one multi-user server; this package composes N of them on
a shared simulator clock with pluggable session placement, admission
control, and a shared client-side backbone — the substrate the registered
``fleet_capacity`` and ``fleet_placement`` experiments run on.
"""

from .admission import (
    ADMISSION_MODES,
    AdmissionController,
    AdmissionPolicy,
    planned_session_capacity,
)
from .cluster import Fleet, FleetConfig, FleetSession, ServerState
from .placement import (
    PLACEMENT_POLICIES,
    LatencyAwarePlacement,
    LeastLoadedPlacement,
    PlacementPolicy,
    RandomPlacement,
    RoundRobinPlacement,
    SessionAffinityPlacement,
    make_placement,
)

__all__ = [
    "ADMISSION_MODES",
    "AdmissionController",
    "AdmissionPolicy",
    "Fleet",
    "FleetConfig",
    "FleetSession",
    "LatencyAwarePlacement",
    "LeastLoadedPlacement",
    "PLACEMENT_POLICIES",
    "PlacementPolicy",
    "RandomPlacement",
    "RoundRobinPlacement",
    "ServerState",
    "SessionAffinityPlacement",
    "make_placement",
    "planned_session_capacity",
]
