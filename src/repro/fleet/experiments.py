"""Registered fleet experiments: capacity frontier and placement shoot-out.

Two experiments extend the paper's single-server measurements to a server
pool, through the same executor pipeline as every figure (``--jobs``,
result cache, tracing, fault injection all compose):

``fleet_capacity``
    The Figure-8 question at fleet scale: how many sessions per server can
    a fleet of N servers carry before p99 user-perceived latency violates
    the interaction SLO?  Sweeps a (fleet size × sessions-per-server) grid
    and reports the SLO-preserving frontier — per-server resources bind
    small fleets, the shared backbone binds large ones.

``fleet_placement``
    The same fleet under each session-placement policy, with a mid-run
    server failure.  Reports p50/p99 session latency and the migration
    count per policy.

Both sweeps key their cache entries on the full parameter + seed + fault
spec, and their artifacts are byte-identical across serial, ``--jobs N``,
and warm-cache runs.
"""

from __future__ import annotations

from functools import partial
from typing import List, Tuple

from ..core.registry import experiment
from ..core.report import format_series, format_table, write_csv

#: p99 user-perceived latency SLO (ms) a fleet configuration must hold —
#: the paper's 100 ms perception threshold, applied to the latency tail.
SLO_P99_MS = 100.0

#: Fleet sizes swept by ``fleet_capacity``.
CAPACITY_FLEET_SIZES = [1, 2, 4, 8]

#: Sessions-per-server levels swept by ``fleet_capacity``.
CAPACITY_PER_SERVER = [4, 8, 12]

#: Shared client-side backbone for the capacity sweep (Mbps).  Sized so
#: the aggregate display traffic of the largest fleet saturates it while
#: a mid-size fleet still has headroom — the crossover the frontier shows.
CAPACITY_BACKBONE_MBPS = 0.15

#: Placement policies raced by ``fleet_placement`` (output row order).
PLACEMENT_POLICIES_ORDER = [
    "random",
    "round_robin",
    "least_loaded",
    "latency_aware",
    "session_affinity",
]

#: ``fleet_placement`` fleet shape: servers, per-server cap, and sessions.
PLACEMENT_SERVERS = 4
PLACEMENT_CAPACITY = 8
PLACEMENT_SESSIONS = 20

#: Background CPU hogs per server in the placement race (by server index).
#: Heterogeneous compute load is what gives the policies something to
#: avoid; the *unloaded* server is the one that fails mid-run, forcing
#: every policy to re-place its sessions onto loaded servers.
PLACEMENT_HOGS = (3, 2, 1, 0)

#: Each hog submits a burst this long (ms) every ``HOG_PERIOD_MS``.
HOG_BURST_MS = 30.0
HOG_PERIOD_MS = 100.0

#: Simulated warmup (session setup drains) and measurement windows, ms.
WARMUP_MS = 1_500.0
MEASURE_MS = 4_000.0


def _percentile(samples: List[float], pct: float) -> float:
    """Nearest-rank percentile of *samples* (0.0 when empty)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = int(round(pct / 100.0 * (len(ordered) - 1)))
    return ordered[min(rank, len(ordered) - 1)]


def _drive_fleet(fleet, sessions: int) -> List[float]:
    """Open *sessions* users, warm the fleet up, and measure latencies.

    Typing rates and display sizes cycle deterministically so the offered
    load is heterogeneous (policies have something to balance).  The
    warmup window lets session-setup traffic drain off the per-server
    LANs before measurement starts; warmup latencies are discarded.
    """
    rates = [1.0, 2.0, 4.0]
    chars = [4, 8, 16]
    for i in range(sessions):
        fleet.open_session(
            f"u{i:03d}",
            rate_hz=rates[i % len(rates)],
            display_chars=chars[i % len(chars)],
        )
    fleet.run(WARMUP_MS)
    for session in fleet.sessions.values():
        session.latencies_ms.clear()
    fleet.run(MEASURE_MS)
    return fleet.latencies_ms()


def _fleet_capacity_point(
    point: Tuple[int, int],
    *,
    seed: int,
    faults: str = "",
    fault_seed: int = 0,
) -> Tuple[float, float, int, int, float]:
    """One capacity cell: (p50, p99, admitted, rejected, backbone util)."""
    from ..core.server import ServerConfig
    from ..net.faults import FaultPlan
    from ..sim.rng import derive_seed
    from .cluster import Fleet, FleetConfig

    num_servers, per_server = point
    plan = FaultPlan.parse(faults, seed=fault_seed) if faults else None
    config = FleetConfig(
        # Idle-activity stalls are the paper's §4 story; here they would
        # only blur the load signal the frontier is after, so the fleet
        # sweeps run quiet servers.
        server=ServerConfig.tse(include_idle_activity=False),
        num_servers=num_servers,
        placement="round_robin",
        admission_mode="reject",
        capacity_per_server=per_server,
        backbone_mbps=CAPACITY_BACKBONE_MBPS,
        backbone_faults=plan,
    )
    fleet = Fleet(
        config,
        seed=derive_seed(seed, f"fleet_capacity:{num_servers}x{per_server}"),
    )
    # Offer more sessions than the fleet admits, so the admission
    # controller's reject path is exercised at every cell.
    offered = num_servers * per_server + max(2, num_servers)
    latencies = _drive_fleet(fleet, offered)
    report = fleet.report(t0=WARMUP_MS)
    return (
        _percentile(latencies, 50.0),
        _percentile(latencies, 99.0),
        fleet.admission.admitted_total,
        fleet.admission.rejected_total,
        float(report["backbone_utilization"]),
    )


def _install_hogs(fleet) -> None:
    """Pin the :data:`PLACEMENT_HOGS` compute load onto each server.

    Each hog is a non-interactive thread submitting a
    :data:`HOG_BURST_MS` burst every :data:`HOG_PERIOD_MS` — the
    run-queue contention of §4, dialed per server so the fleet is
    heterogeneous in a way only latency observations reveal.
    """
    from ..cpu.thread import Burst, Thread

    for index, hogs in enumerate(PLACEMENT_HOGS):
        state = fleet.servers[index]
        for h in range(hogs):
            thread = Thread(f"hog:{index}:{h}")
            state.server.cpu.add_thread(thread)

            def submit(cpu=state.server.cpu, thread=thread) -> None:
                cpu.submit(thread, Burst(HOG_BURST_MS))

            fleet.sim.every(HOG_PERIOD_MS, submit)


def _fleet_placement_point(
    policy: str,
    *,
    seed: int,
    faults: str = "",
    fault_seed: int = 0,
) -> Tuple[float, float, int, int]:
    """One policy race: (p50, p99, migrations, rejected) under a failure."""
    from ..core.server import ServerConfig
    from ..net.faults import FaultPlan
    from ..sim.rng import derive_seed
    from .cluster import Fleet, FleetConfig

    plan = FaultPlan.parse(faults, seed=fault_seed) if faults else None
    config = FleetConfig(
        # Linux/X on purpose: its round-robin scheduler lets the hog load
        # actually stall the echo path (fig 3), where TSE's foreground
        # boost would hide it — so placement choices show up in the tail.
        server=ServerConfig.linux(include_idle_activity=False),
        num_servers=PLACEMENT_SERVERS,
        placement=policy,
        admission_mode="reject",
        capacity_per_server=PLACEMENT_CAPACITY,
        backbone_mbps=2.0,
        backbone_faults=plan,
    )
    fleet = Fleet(config, seed=derive_seed(seed, f"fleet_placement:{policy}"))
    _install_hogs(fleet)
    # Halfway through the measurement window the *unloaded* server dies;
    # its sessions must migrate onto the loaded ones (the only event
    # allowed to move a session-affinity session), and where each policy
    # puts them decides the tail.
    failed_index = PLACEMENT_HOGS.index(0)
    fleet.sim.schedule(
        WARMUP_MS + MEASURE_MS / 2, lambda: fleet.fail_server(failed_index)
    )
    latencies = _drive_fleet(fleet, PLACEMENT_SESSIONS)
    return (
        _percentile(latencies, 50.0),
        _percentile(latencies, 99.0),
        fleet.migrations,
        fleet.admission.rejected_total,
    )


def _fleet_capacity(ctx) -> None:
    """Sweep the (fleet size × sessions/server) grid; print the frontier."""
    grid = [
        (num_servers, per_server)
        for num_servers in CAPACITY_FLEET_SIZES
        for per_server in CAPACITY_PER_SERVER
    ]
    points = ctx.executor.map(
        "fleet_capacity" + ctx.fault_suffix,
        partial(
            _fleet_capacity_point,
            seed=ctx.seed,
            faults=ctx.faults or "",
            fault_seed=ctx.fault_seed,
        ),
        grid,
        seed=ctx.seed,
    )
    rows = [
        (
            num_servers,
            per_server,
            admitted,
            rejected,
            f"{p50:.1f}",
            f"{p99:.1f}",
            f"{util * 100:.0f}%",
        )
        for (num_servers, per_server), (p50, p99, admitted, rejected, util) in zip(
            grid, points
        )
    ]
    ctx.out.write(
        format_table(
            [
                "servers",
                "sessions/server",
                "admitted",
                "rejected",
                "p50 (ms)",
                "p99 (ms)",
                "backbone",
            ],
            rows,
            title="Fleet capacity grid (shared backbone, round_robin)",
        )
        + "\n"
    )
    by_cell = dict(zip(grid, points))
    frontier = []
    for num_servers in CAPACITY_FLEET_SIZES:
        best = 0
        for per_server in CAPACITY_PER_SERVER:
            if by_cell[(num_servers, per_server)][1] <= SLO_P99_MS:
                best = max(best, per_server)
        frontier.append(best)
    ctx.out.write(
        format_series(
            "servers",
            f"max sessions/server (p99 <= {SLO_P99_MS:.0f} ms)",
            CAPACITY_FLEET_SIZES,
            [float(best) for best in frontier],
            title="Fleet capacity frontier",
            y_format="{:.0f}",
        )
        + "\n"
    )
    if ctx.csv_dir:
        write_csv(
            f"{ctx.csv_dir}/fleet_capacity.csv",
            [
                "servers",
                "sessions_per_server",
                "admitted",
                "rejected",
                "p50_ms",
                "p99_ms",
                "backbone_utilization",
            ],
            [
                (num_servers, per_server, admitted, rejected, p50, p99, util)
                for (num_servers, per_server), (
                    p50,
                    p99,
                    admitted,
                    rejected,
                    util,
                ) in zip(grid, points)
            ],
        )
        write_csv(
            f"{ctx.csv_dir}/fleet_capacity_frontier.csv",
            ["servers", "max_sessions_per_server", "fleet_sessions"],
            [
                (num_servers, best, num_servers * best)
                for num_servers, best in zip(CAPACITY_FLEET_SIZES, frontier)
            ],
        )


def _fleet_placement(ctx) -> None:
    """Race every placement policy on the same fleet; print latency rows."""
    points = ctx.executor.map(
        "fleet_placement" + ctx.fault_suffix,
        partial(
            _fleet_placement_point,
            seed=ctx.seed,
            faults=ctx.faults or "",
            fault_seed=ctx.fault_seed,
        ),
        list(PLACEMENT_POLICIES_ORDER),
        seed=ctx.seed,
    )
    rows = [
        (policy, f"{p50:.1f}", f"{p99:.1f}", migrations, rejected)
        for policy, (p50, p99, migrations, rejected) in zip(
            PLACEMENT_POLICIES_ORDER, points
        )
    ]
    ctx.out.write(
        format_table(
            ["policy", "p50 (ms)", "p99 (ms)", "migrations", "rejected"],
            rows,
            title=(
                f"Placement policies: {PLACEMENT_SESSIONS} sessions on "
                f"{PLACEMENT_SERVERS} servers, one mid-run failure"
            ),
        )
        + "\n"
    )
    if ctx.csv_dir:
        write_csv(
            f"{ctx.csv_dir}/fleet_placement.csv",
            ["policy", "p50_ms", "p99_ms", "migrations", "rejected"],
            [
                (policy, p50, p99, migrations, rejected)
                for policy, (p50, p99, migrations, rejected) in zip(
                    PLACEMENT_POLICIES_ORDER, points
                )
            ],
        )


_REGISTERED = False


def _register() -> None:
    """Register this module's experiments; idempotent.

    Registry order is a compatibility surface (``run all`` order, cache
    keys), so registration is driven by ``repro.cli`` at this module's
    canonical position in the sequence — never by module import.  A
    decorator at module scope would register whenever the body runs,
    and a process whose *first* import is an experiments module defers
    that body past the circular ``repro.cli`` import, appending its
    experiments after every group the CLI registers in the meantime.
    """
    global _REGISTERED
    if _REGISTERED:
        return
    _REGISTERED = True
    experiment(
        "fleet_capacity",
        title="Fleet capacity: SLO sessions/server vs fleet size",
        group="fleet",
    )(_fleet_capacity)
    experiment(
        "fleet_placement",
        title="Placement policies: p50/p99 latency under a server failure",
        group="fleet",
    )(_fleet_placement)


# Importing any experiments module alone must still populate the whole
# registry in canonical order: pull in the CLI, which calls every
# module's ``_register`` in sequence.  Bottom-of-module so ``_register``
# above already exists when the circular import re-enters this module.
from .. import cli as _cli  # noqa: E402,F401
