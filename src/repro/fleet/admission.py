"""Admission control: the fleet's answer to "how many users fit?".

The paper's capacity question (§3.1) becomes operational at fleet scale:
every server has a planned session ceiling — by default the
:func:`~repro.core.capacity.plan_capacity` maximum for the fleet's user
profile on the server's hardware — and the admission controller enforces
it at session-arrival time.  Above capacity the fleet either **rejects**
the login (the deployer's overload contract) or **queues** it FIFO until a
session departs (the login-storm contract).

Determinism: admission decisions are pure functions of fleet state and
arrival order, so sweeps reproduce byte-for-byte across executor paths.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence

from ..core.capacity import plan_capacity
from ..core.server import ServerConfig
from ..errors import FleetError
from ..workloads.behavior import BehaviorProfile

#: Admission outcomes, in the order the counters report them.
ADMITTED, QUEUED, REJECTED = "admitted", "queued", "rejected"

#: Recognized overload behaviours.
ADMISSION_MODES = ("reject", "queue")


def planned_session_capacity(
    config: ServerConfig,
    profile: BehaviorProfile,
    *,
    cpu_count: int = 1,
    cpu_headroom: float = 0.7,
    network_utilization_cap: float = 0.8,
) -> int:
    """One server's session ceiling from the capacity planner.

    Maps the :class:`~repro.core.server.ServerConfig` hardware onto
    :func:`~repro.core.capacity.plan_capacity` and takes the planned
    maximum (at least 1, so a fleet of viable servers is never planned to
    zero).
    """
    report = plan_capacity(
        config.os_name,
        profile,
        physical_bytes=config.physical_bytes,
        bandwidth_mbps=config.bandwidth_mbps,
        cpu_count=cpu_count,
        cpu_speed=config.cpu_speed,
        cpu_headroom=cpu_headroom,
        network_utilization_cap=network_utilization_cap,
        session_variant=config.session_variant,
    )
    return max(1, report.max_users)


@dataclass(frozen=True)
class AdmissionPolicy:
    """Per-server ceiling plus the overload behaviour.

    ``capacity`` is sessions per server; ``mode`` is ``"reject"`` or
    ``"queue"``; ``max_queue`` bounds the waiting line (``None`` =
    unbounded) — an arrival past a full queue is rejected even in queue
    mode.
    """

    capacity: int
    mode: str = "reject"
    max_queue: Optional[int] = None

    def __post_init__(self) -> None:
        """Validate the ceiling, mode, and queue bound."""
        if self.capacity < 1:
            raise FleetError("per-server capacity must be at least 1")
        if self.mode not in ADMISSION_MODES:
            raise FleetError(
                f"unknown admission mode {self.mode!r}; expected one of "
                f"{ADMISSION_MODES}"
            )
        if self.max_queue is not None and self.max_queue < 0:
            raise FleetError("max_queue cannot be negative")


class AdmissionController:
    """Stateful gate in front of the fleet's placement policy.

    The controller owns the waiting line; the fleet consults
    :meth:`admissible` for placement candidates and reports outcomes back
    through :meth:`decide` / :meth:`release`.
    """

    def __init__(self, policy: AdmissionPolicy) -> None:
        self.policy = policy
        self.waiting: Deque[str] = deque()
        self.admitted_total = 0
        self.queued_total = 0
        self.rejected_total = 0

    def admissible(self, states: Sequence) -> List:
        """Healthy servers with admission headroom, in index order."""
        return [
            state
            for state in states
            if not state.failed and state.active < self.policy.capacity
        ]

    def decide(self, session_id: str, states: Sequence) -> str:
        """Classify one arrival: ``admitted``, ``queued``, or ``rejected``.

        ``admitted`` means at least one admissible server exists (the
        placement policy then picks among them); the caller must actually
        place the session.  ``queued`` appends the id to the waiting line.
        """
        if self.admissible(states):
            self.admitted_total += 1
            return ADMITTED
        if self.policy.mode == "queue" and (
            self.policy.max_queue is None
            or len(self.waiting) < self.policy.max_queue
        ):
            self.waiting.append(session_id)
            self.queued_total += 1
            return QUEUED
        self.rejected_total += 1
        return REJECTED

    def release(self) -> Optional[str]:
        """A session departed: pop the next waiting id (FIFO), if any."""
        if self.waiting:
            return self.waiting.popleft()
        return None
