"""A shared network link with a FIFO transmit queue.

Models the paper's testbed medium: 10 Mbps shared Ethernet.  All traffic —
both directions plus synthetic load — contends for the same wire, which is
what makes Figures 8 and 9 interesting: as offered load approaches
capacity, queueing delay (and its variance) explodes.

The model is a single-server FIFO queue: each packet occupies the wire for
``wire_bytes / bandwidth`` and is delivered ``propagation_ms`` after its
transmission completes.  Collisions/backoff are folded into the queueing
behaviour (a fine approximation for a switched hub, and the right *shape*
for coax).
"""

from __future__ import annotations

from collections import deque
from functools import partial
from typing import Callable, Deque, Optional, Tuple

from ..errors import NetworkError
from ..obs import current_observation
from ..sim.engine import Simulator
from ..sim.trace import ByteTrace
from ..units import mbps_to_bytes_per_ms
from .packet import Packet

DeliveryCallback = Callable[[Packet], None]


class Link:
    """A shared, half-duplex link with FIFO queueing.

    The transmit queue is unbounded by default (the paper's hub just gets
    slow, not lossy).  Pass ``max_queue`` to model a bounded device queue:
    a packet arriving with ``max_queue`` packets already waiting is
    tail-dropped and counted in :attr:`packets_dropped`.
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth_mbps: float = 10.0,
        propagation_ms: float = 0.05,
        name: str = "ether0",
        max_queue: Optional[int] = None,
    ) -> None:
        if bandwidth_mbps <= 0:
            raise NetworkError("bandwidth must be positive")
        if propagation_ms < 0:
            raise NetworkError("propagation delay cannot be negative")
        if max_queue is not None and max_queue < 0:
            raise NetworkError("max_queue cannot be negative")
        self.sim = sim
        self.bandwidth_mbps = bandwidth_mbps
        self.bytes_per_ms = mbps_to_bytes_per_ms(bandwidth_mbps)
        self.propagation_ms = propagation_ms
        self.name = name
        self.max_queue = max_queue

        self._queue: Deque[Tuple[Packet, Optional[DeliveryCallback]]] = deque()
        self._transmitting = False
        self._in_flight: Optional[Tuple[Packet, Optional[DeliveryCallback]]] = None
        self.trace = ByteTrace(name)  #: every packet, stamped at send-complete
        self.packets_sent = 0
        self.bytes_sent = 0
        self.packets_dropped = 0
        self._obs = current_observation()
        # Instrument handles, resolved lazily on first use (not in __init__:
        # a link that never sends/drops must not register zero-valued
        # metrics the seed kernel's artifacts wouldn't contain).
        self._sent_counter = None
        self._bytes_counter = None
        self._depth_gauge = None
        self._dropped_counter = None
        self._drop_channel = None
        # Optional hybrid-tier background (repro.scale): aggregate offered
        # load carried as fluid workload instead of per-packet events.
        # None on every pre-scale path, where behaviour is untouched.
        self._background = None

    @property
    def queue_depth(self) -> int:
        """Packets waiting (not counting the one on the wire)."""
        return len(self._queue)

    @property
    def busy(self) -> bool:
        """Whether a packet is occupying the wire right now."""
        return self._transmitting

    @property
    def background(self):
        """The attached hybrid-tier background load, or ``None``."""
        return self._background

    def attach_background(self, background) -> None:
        """Route this link through the hybrid fluid-workload path.

        *background* is a :class:`repro.scale.FluidBackground` (duck-typed:
        anything with ``queueing_delay_ms(now)`` and ``add_work_ms(ms)``).
        Once attached, every packet's FIFO wait is computed from the unified
        workload process — discrete foreground packets plus the fluid
        aggregate — instead of the per-packet transmit queue; see
        :meth:`_send_hybrid`.  Attaching mid-flight would strand queued
        packets between the two disciplines, so it is only legal on a
        quiet link, and only once.
        """
        if self._background is not None:
            raise NetworkError(f"link {self.name!r} already has a background")
        if self._transmitting or self._queue:
            raise NetworkError(
                f"cannot attach a background to busy link {self.name!r}"
            )
        self._background = background

    def send(self, packet: Packet, on_delivered: Optional[DeliveryCallback] = None) -> None:
        """Queue *packet* for transmission; *on_delivered* fires at arrival.

        With a bounded queue (``max_queue``), a packet arriving at a full
        queue is dropped: it never reaches the wire and its delivery
        callback never fires.

        With a hybrid background attached, the packet rides the unified
        workload process instead of the per-packet queue (``max_queue``
        does not apply there; hybrid links model the paper's unbounded
        hub).
        """
        if self._background is not None:
            self._send_hybrid(packet, on_delivered)
            return
        if self.max_queue is not None and len(self._queue) >= self.max_queue:
            if self._obs is not None:
                # Publish the depth that caused the drop *before* counting
                # it, so a consumer never sees the drop counter move while
                # the gauge still shows a non-full queue.
                self._queue_depth_gauge().set(len(self._queue))
            self.packets_dropped += 1
            if self._obs is not None:
                counter = self._dropped_counter
                if counter is None:
                    counter = self._dropped_counter = self._obs.metrics.counter(
                        "net.packets_dropped"
                    )
                    self._drop_channel = self._obs.channel(
                        "net.drop", "link", "wire_bytes", "queue_depth"
                    )
                counter.value += 1
                self._drop_channel(
                    self.sim.now, self.name, packet.wire_bytes, len(self._queue)
                )
            return
        packet.enqueued_at = self.sim.now
        self._queue.append((packet, on_delivered))
        if self._obs is not None:
            # Inlined Gauge.set: one sample per offered packet.
            gauge = self._depth_gauge
            if gauge is None:
                gauge = self._queue_depth_gauge()
            depth = len(self._queue)
            gauge.last = depth
            if gauge.samples == 0 or depth > gauge.peak:
                gauge.peak = depth
            gauge.samples += 1
        if not self._transmitting:
            self._transmit_next()

    def _queue_depth_gauge(self):
        gauge = self._depth_gauge
        if gauge is None:
            gauge = self._depth_gauge = self._obs.metrics.gauge(
                "net.queue_depth"
            )
        return gauge

    def _transmit_next(self) -> None:
        # The wire is a single server, so exactly one packet is in flight at
        # a time: its state lives on the link and send-complete is a reused
        # bound method instead of a fresh closure per packet.
        if not self._queue:
            self._transmitting = False
            return
        self._transmitting = True
        entry = self._queue.popleft()
        self._in_flight = entry
        self.sim.schedule(entry[0].wire_bytes / self.bytes_per_ms, self._tx_done)

    def _tx_done(self) -> None:
        entry = self._in_flight
        assert entry is not None
        packet, on_delivered = entry
        wire_bytes = packet.wire_bytes
        self.trace.record(self.sim.now, wire_bytes)
        self.packets_sent += 1
        self.bytes_sent += wire_bytes
        if self._obs is not None:
            sent = self._sent_counter
            if sent is None:
                metrics = self._obs.metrics
                sent = self._sent_counter = metrics.counter("net.packets_sent")
                self._bytes_counter = metrics.counter("net.bytes_sent")
            sent.value += 1
            self._bytes_counter.value += wire_bytes
        if on_delivered is not None:
            # Propagation delays overlap across packets, so delivery still
            # needs per-packet state — a partial, not a nested closure pair.
            self.sim.schedule(
                self.propagation_ms, partial(self._deliver, packet, on_delivered)
            )
        self._transmit_next()

    def _deliver(self, packet: Packet, on_delivered: DeliveryCallback) -> None:
        packet.delivered_at = self.sim.now
        on_delivered(packet)

    # -- hybrid (fluid background) path ---------------------------------------

    def _send_hybrid(
        self, packet: Packet, on_delivered: Optional[DeliveryCallback]
    ) -> None:
        """FIFO send through the unified workload process.

        The wire is still a single FIFO server; with the aggregate
        background carried as fluid, a packet arriving at time t waits
        exactly the unfinished work W(t) ahead of it (earlier foreground
        packets *and* fluid bytes that arrived before t), then occupies
        the wire for its own transmission.  That is the standard M/G/1
        workload recursion, so foreground packets — the probe sessions —
        see the same FIFO discipline the per-packet queue implements,
        with the background's per-packet events replaced by piecewise
        -linear drift.
        """
        packet.enqueued_at = self.sim.now
        background = self._background
        wait_ms = background.queueing_delay_ms(self.sim.now)
        service_ms = packet.wire_bytes / self.bytes_per_ms
        background.add_work_ms(service_ms)
        self.sim.schedule(
            wait_ms + service_ms,
            partial(self._hybrid_tx_done, packet, on_delivered),
        )

    def _hybrid_tx_done(
        self, packet: Packet, on_delivered: Optional[DeliveryCallback]
    ) -> None:
        """Send-complete bookkeeping for the hybrid path (mirrors _tx_done)."""
        wire_bytes = packet.wire_bytes
        self.trace.record(self.sim.now, wire_bytes)
        self.packets_sent += 1
        self.bytes_sent += wire_bytes
        if self._obs is not None:
            sent = self._sent_counter
            if sent is None:
                metrics = self._obs.metrics
                sent = self._sent_counter = metrics.counter("net.packets_sent")
                self._bytes_counter = metrics.counter("net.bytes_sent")
            sent.value += 1
            self._bytes_counter.value += wire_bytes
        if on_delivered is not None:
            self.sim.schedule(
                self.propagation_ms, partial(self._deliver, packet, on_delivered)
            )

    def utilization(self, t0: float, t1: float) -> float:
        """Fraction of link capacity used over ``[t0, t1)``."""
        if t1 <= t0:
            raise NetworkError("empty utilization window")
        sent = sum(
            size
            for time, size in zip(self.trace.times, self.trace.sizes)
            if t0 <= time < t1
        )
        return sent / (self.bytes_per_ms * (t1 - t0))
