"""prototap: protocol tracing and per-channel accounting (§6.1.2).

The paper's authors wrote *prototap*, "our own protocol tracing software
based on the tcpdump pcap packet sniffing library", to break a session's
traffic into the **input channel** (client → server: keystrokes, mouse) and
the **display channel** (server → client: drawing).  This module is its
simulation equivalent.

Accounting model: protocol **messages** are counted individually (the
paper's message columns), but messages written together in one flush share
TCP segments — a keystroke's lone event message pays a full header, while
LBX's many tiny proxy chunks emitted in one write amortize theirs.  Wire
bytes are therefore computed per *flush group*: the group's payloads are
concatenated and segmented under the configured header stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import NetworkError
from .framing import DEFAULT_MTU, TCPIP, VIP, HeaderStack, wire_bytes

#: The two channels of a remote-display session (§6).
INPUT_CHANNEL = "input"
DISPLAY_CHANNEL = "display"


@dataclass
class KindStats:
    """Per-message-kind totals (Danskin-style idiom profiling)."""

    kind: str
    messages: int = 0
    payload_bytes: int = 0

    @property
    def avg_payload(self) -> float:
        """Mean payload bytes per message of this kind."""
        if self.messages == 0:
            raise NetworkError(f"no messages of kind {self.kind!r}")
        return self.payload_bytes / self.messages


@dataclass(frozen=True)
class ChannelStats:
    """Byte/message totals for one directed channel."""

    channel: str
    bytes: int
    messages: int

    @property
    def avg_message_size(self) -> float:
        """Mean wire bytes per message on this channel."""
        if self.messages == 0:
            raise NetworkError(f"no messages on channel {self.channel!r}")
        return self.bytes / self.messages


@dataclass(frozen=True)
class ProtocolTrace:
    """The full §6.1.2 row set for one protocol's session."""

    protocol: str
    input: ChannelStats
    display: ChannelStats

    @property
    def total_bytes(self) -> int:
        """Both channels' wire bytes (the paper's "total" row)."""
        return self.input.bytes + self.display.bytes

    @property
    def total_messages(self) -> int:
        """Both channels' message counts."""
        return self.input.messages + self.display.messages

    @property
    def avg_message_size(self) -> float:
        """Mean wire bytes per message across both channels."""
        if self.total_messages == 0:
            raise NetworkError("empty protocol trace")
        return self.total_bytes / self.total_messages


class ProtoTap:
    """Accumulates flush groups of messages and renders channel statistics.

    Accepts anything with ``channel`` and ``payload_bytes`` attributes
    (:class:`repro.net.tcpstream.Message`,
    :class:`repro.protocols.base.EncodedMessage`).
    """

    def __init__(self, protocol: str, mtu: int = DEFAULT_MTU) -> None:
        self.protocol = protocol
        self.mtu = mtu
        #: (channel, [(payload, kind)]) — one entry per flush group.
        self._groups: List[Tuple[str, List[Tuple[int, str]]]] = []

    # -- recording ----------------------------------------------------------

    @staticmethod
    def _entry(message) -> Tuple[int, str]:
        return (message.payload_bytes, getattr(message, "kind", "") or "")

    def observe(self, message) -> None:
        """Record one message flushed on its own."""
        self._groups.append((message.channel, [self._entry(message)]))

    def observe_step(self, messages: Iterable) -> None:
        """Record messages flushed together (one interaction step).

        Messages of the same channel within the step share segments.
        """
        by_channel: Dict[str, List[Tuple[int, str]]] = {}
        for message in messages:
            by_channel.setdefault(message.channel, []).append(
                self._entry(message)
            )
        for channel, entries in by_channel.items():
            self._groups.append((channel, entries))

    def observe_connection(self, connection) -> None:
        """Record every message already sent on a TcpConnection (one group
        per message — the connection already framed them individually)."""
        for message in connection.messages:
            self.observe(message)

    def observe_all(self, messages: Iterable) -> None:
        """Record each message as its own flush group."""
        for message in messages:
            self.observe(message)

    # -- reduction -----------------------------------------------------------

    @property
    def message_count(self) -> int:
        """Total messages observed so far."""
        return sum(len(entries) for __, entries in self._groups)

    def _bytes_for(self, channel: str, stack: HeaderStack) -> int:
        total = 0
        for group_channel, entries in self._groups:
            if group_channel == channel:
                payload = sum(size for size, __ in entries)
                total += wire_bytes(payload, stack, self.mtu)
        return total

    def _channel_stats(self, channel: str) -> ChannelStats:
        messages = sum(
            len(entries)
            for group_channel, entries in self._groups
            if group_channel == channel
        )
        return ChannelStats(
            channel=channel,
            bytes=self._bytes_for(channel, TCPIP),
            messages=messages,
        )

    def kind_breakdown(self, channel: str) -> Dict[str, "KindStats"]:
        """Danskin-style idiom profiling: payload bytes/messages by kind.

        Danskin's X-protocol profiling work (the inspiration for prototap)
        characterized which request idioms carried a session's bytes; this
        reduction does the same for any protocol's message kinds on one
        channel ("put-image" vs "requests" on X, "orders" vs
        "bitmap-update" on RDP, ...).  Payload bytes only — header
        amortization across kinds in a shared segment is not attributable.
        """
        out: Dict[str, KindStats] = {}
        for group_channel, entries in self._groups:
            if group_channel != channel:
                continue
            for size, kind in entries:
                stats = out.get(kind)
                if stats is None:
                    stats = KindStats(kind=kind)
                    out[kind] = stats
                stats.messages += 1
                stats.payload_bytes += size
        return out

    def trace(self) -> ProtocolTrace:
        """The per-channel table (bytes on the wire under TCP/IP)."""
        return ProtocolTrace(
            protocol=self.protocol,
            input=self._channel_stats(INPUT_CHANNEL),
            display=self._channel_stats(DISPLAY_CHANNEL),
        )

    def vip_table_row(self) -> Dict[str, float]:
        """The VIP table row: normal bytes, VIP bytes, fractional savings."""
        if not self._groups:
            raise NetworkError("empty protocol trace")
        channels = {channel for channel, __ in self._groups}
        normal = sum(self._bytes_for(c, TCPIP) for c in channels)
        vip = sum(self._bytes_for(c, VIP) for c in channels)
        return {
            "normal_bytes": normal,
            "vip_bytes": vip,
            "savings": (normal - vip) / normal,
        }
