"""Header stacks and segmentation: Ethernet, IP, TCP, and x-kernel VIP.

The paper's protocols (RDP, X, LBX) all ran over TCP/IP on 10 Mbps
Ethernet.  Protocol messages average just 267 bytes, "much smaller than the
interface MTU on our systems (1500 bytes)", so "the overhead imposed even by
just 20 byte IP headers is significant" — which motivates the paper's VIP
table: in non-routed deployments, the x-kernel *virtual IP* stack omits the
IP header entirely (Hutchinson et al.).

:func:`segment` turns an application message into on-wire frame sizes, one
header stack per MTU-sized segment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import NetworkError

ETHERNET_HEADER = 14  #: destination + source + ethertype
ETHERNET_FCS = 4  #: trailing frame check sequence
IP_HEADER = 20  #: the header VIP elides (§6.1.2)
TCP_HEADER = 20
#: Maximum transmission unit — IP packet size, as on the paper's systems.
DEFAULT_MTU = 1500


@dataclass(frozen=True)
class HeaderStack:
    """Per-segment framing overhead of one network stack."""

    name: str
    link_bytes: int  #: link-layer header + trailer per frame
    network_bytes: int  #: IP (or 0 for VIP)
    transport_bytes: int  #: TCP

    @property
    def per_segment_overhead(self) -> int:
        """Framing bytes added to every segment under this stack."""
        return self.link_bytes + self.network_bytes + self.transport_bytes

    def max_segment_payload(self, mtu: int = DEFAULT_MTU) -> int:
        """Application bytes that fit in one frame of *mtu* IP bytes."""
        payload = mtu - self.network_bytes - self.transport_bytes
        if payload <= 0:
            raise NetworkError(f"MTU {mtu} too small for {self.name} headers")
        return payload


#: Standard TCP/IP over Ethernet, as the paper's testbed ran.
TCPIP = HeaderStack(
    "tcp/ip",
    link_bytes=ETHERNET_HEADER + ETHERNET_FCS,
    network_bytes=IP_HEADER,
    transport_bytes=TCP_HEADER,
)

#: x-kernel virtual-IP: the IP header omitted in non-routed deployments.
VIP = HeaderStack(
    "vip",
    link_bytes=ETHERNET_HEADER + ETHERNET_FCS,
    network_bytes=0,
    transport_bytes=TCP_HEADER,
)

#: Bare frames, for synthetic load and ping packets whose size is given
#: as the full on-wire size (the paper's "64 byte packets").
RAW = HeaderStack("raw", link_bytes=0, network_bytes=0, transport_bytes=0)


def segment(payload_bytes: int, stack: HeaderStack, mtu: int = DEFAULT_MTU) -> List[int]:
    """On-wire frame sizes for one *payload_bytes* application message.

    Zero-byte messages still cost one header-only frame (a bare protocol
    message with no payload, e.g. a cache-swap notification is modelled by
    its small positive size, but defensively we emit one frame).
    """
    if payload_bytes < 0:
        raise NetworkError("negative payload")
    mss = stack.max_segment_payload(mtu) if stack.per_segment_overhead else mtu
    frames: List[int] = []
    remaining = payload_bytes
    while True:
        chunk = min(remaining, mss)
        frames.append(chunk + stack.per_segment_overhead)
        remaining -= chunk
        if remaining <= 0:
            break
    return frames


def wire_bytes(payload_bytes: int, stack: HeaderStack, mtu: int = DEFAULT_MTU) -> int:
    """Total on-wire bytes for one message under *stack*."""
    return sum(segment(payload_bytes, stack, mtu))


def framing_overhead_fraction(
    payload_bytes: int, stack: HeaderStack = TCPIP, mtu: int = DEFAULT_MTU
) -> float:
    """Fraction of on-wire bytes that is framing, for one message size.

    Danskin's conclusion, which the paper reaches too (§7): the small
    message sizes of display protocols make TCP/IP an inefficient
    substrate — a 64-byte keystroke message is ~48 % headers, while a
    full segment is ~4 %.
    """
    wire = wire_bytes(payload_bytes, stack, mtu)
    if wire == 0:
        raise NetworkError("empty message")
    return (wire - payload_bytes) / wire


def vip_savings(payload_sizes: List[int], mtu: int = DEFAULT_MTU) -> float:
    """Fractional byte savings of VIP over TCP/IP for a message trace.

    This is the paper's VIP table: each segment saves the 20-byte IP
    header, so chatty protocols with small messages (LBX) save the most.
    """
    normal = sum(wire_bytes(p, TCPIP, mtu) for p in payload_sizes)
    vip = sum(wire_bytes(p, VIP, mtu) for p in payload_sizes)
    if normal == 0:
        raise NetworkError("empty message trace")
    return (normal - vip) / normal
