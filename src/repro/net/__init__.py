"""Network substrate: framing, links, streams, load generation, tracing.

Implements the paper's §6 measurement environment: a 10 Mbps shared
Ethernet, TCP/IP (and VIP) framing, Poisson synthetic load, the ping RTT
experiment (Figs. 8–9), and prototap per-channel accounting.
"""

from .framing import (
    DEFAULT_MTU,
    ETHERNET_FCS,
    ETHERNET_HEADER,
    IP_HEADER,
    RAW,
    TCP_HEADER,
    TCPIP,
    VIP,
    HeaderStack,
    segment,
    vip_savings,
    wire_bytes,
)
from .link import Link
from .loadgen import DEFAULT_LOAD_PACKET_BYTES, PoissonLoadGenerator
from .packet import Packet
from .ping import (
    PING_INTERVAL_MS,
    PING_PACKET_BYTES,
    Pinger,
    PingResult,
    run_ping_experiment,
)
from .prototap import (
    DISPLAY_CHANNEL,
    INPUT_CHANNEL,
    ChannelStats,
    KindStats,
    ProtocolTrace,
    ProtoTap,
)
from .tcpstream import Message, TcpConnection

__all__ = [
    "ChannelStats",
    "DEFAULT_LOAD_PACKET_BYTES",
    "DEFAULT_MTU",
    "DISPLAY_CHANNEL",
    "ETHERNET_FCS",
    "ETHERNET_HEADER",
    "HeaderStack",
    "INPUT_CHANNEL",
    "KindStats",
    "IP_HEADER",
    "Link",
    "Message",
    "Packet",
    "PING_INTERVAL_MS",
    "PING_PACKET_BYTES",
    "Pinger",
    "PingResult",
    "PoissonLoadGenerator",
    "ProtoTap",
    "ProtocolTrace",
    "RAW",
    "TCPIP",
    "TCP_HEADER",
    "TcpConnection",
    "VIP",
    "run_ping_experiment",
    "segment",
    "vip_savings",
    "wire_bytes",
]
