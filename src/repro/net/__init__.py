"""Network substrate: framing, links, streams, load generation, tracing.

Implements the paper's §6 measurement environment: a 10 Mbps shared
Ethernet, TCP/IP (and VIP) framing, Poisson synthetic load, the ping RTT
experiment (Figs. 8–9), and prototap per-channel accounting.
"""

from .framing import (
    DEFAULT_MTU,
    ETHERNET_FCS,
    ETHERNET_HEADER,
    IP_HEADER,
    RAW,
    TCP_HEADER,
    TCPIP,
    VIP,
    HeaderStack,
    segment,
    vip_savings,
    wire_bytes,
)
from .faults import (
    DEFAULT_REORDER_HOLD_MS,
    ChaosResult,
    FaultPlan,
    FaultyLink,
    PacketFate,
    make_link,
    run_chaos_experiment,
)
from .link import Link
from .loadgen import (
    DEFAULT_LOAD_PACKET_BYTES,
    OnOffLoadGenerator,
    PoissonLoadGenerator,
)
from .packet import Packet
from .ping import (
    PING_INTERVAL_MS,
    PING_PACKET_BYTES,
    Pinger,
    PingResult,
    run_ping_experiment,
)
from .prototap import (
    DISPLAY_CHANNEL,
    INPUT_CHANNEL,
    ChannelStats,
    KindStats,
    ProtocolTrace,
    ProtoTap,
)
from .tcpstream import (
    DEFAULT_MAX_RETRIES,
    RTO_INITIAL_MS,
    RTO_MAX_MS,
    RTO_MIN_MS,
    Message,
    RtoEstimator,
    TcpConnection,
)

__all__ = [
    "ChannelStats",
    "ChaosResult",
    "DEFAULT_LOAD_PACKET_BYTES",
    "DEFAULT_MAX_RETRIES",
    "DEFAULT_MTU",
    "DEFAULT_REORDER_HOLD_MS",
    "DISPLAY_CHANNEL",
    "ETHERNET_FCS",
    "ETHERNET_HEADER",
    "FaultPlan",
    "FaultyLink",
    "HeaderStack",
    "INPUT_CHANNEL",
    "KindStats",
    "IP_HEADER",
    "Link",
    "Message",
    "Packet",
    "PacketFate",
    "RTO_INITIAL_MS",
    "RTO_MAX_MS",
    "RTO_MIN_MS",
    "RtoEstimator",
    "PING_INTERVAL_MS",
    "PING_PACKET_BYTES",
    "Pinger",
    "PingResult",
    "OnOffLoadGenerator",
    "PoissonLoadGenerator",
    "ProtoTap",
    "ProtocolTrace",
    "RAW",
    "TCPIP",
    "TCP_HEADER",
    "TcpConnection",
    "VIP",
    "make_link",
    "run_chaos_experiment",
    "run_ping_experiment",
    "segment",
    "vip_savings",
    "wire_bytes",
]
