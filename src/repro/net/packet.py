"""Packets on the simulated wire."""

from __future__ import annotations

from typing import Optional

from ..errors import NetworkError


class Packet:
    """One frame queued on (or delivered by) a link.

    ``wire_bytes`` is the full on-wire size including all framing; the
    split into payload and overhead is kept for per-channel accounting.
    """

    __slots__ = (
        "wire_bytes",
        "payload_bytes",
        "channel",
        "protocol",
        "enqueued_at",
        "delivered_at",
    )

    def __init__(
        self,
        wire_bytes: int,
        *,
        payload_bytes: Optional[int] = None,
        channel: str = "data",
        protocol: str = "",
    ) -> None:
        if wire_bytes <= 0:
            raise NetworkError("packet must have positive wire size")
        self.wire_bytes = wire_bytes
        self.payload_bytes = wire_bytes if payload_bytes is None else payload_bytes
        if self.payload_bytes > wire_bytes:
            raise NetworkError("payload larger than wire size")
        self.channel = channel
        self.protocol = protocol
        self.enqueued_at: Optional[float] = None
        self.delivered_at: Optional[float] = None

    @property
    def overhead_bytes(self) -> int:
        """Framing bytes (wire size minus payload)."""
        return self.wire_bytes - self.payload_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Packet {self.wire_bytes}B {self.channel}"
            f"{' ' + self.protocol if self.protocol else ''}>"
        )
