"""A simplified TCP byte stream over a shared link.

The remote-display protocols are interactive, so the connection models the
behaviour that matters to the paper's measurements and nothing more:

* each application **message** is framed immediately (no Nagle batching —
  display protocols disable it) and segmented at the MTU with the
  configured header stack per segment;
* on a clean link delivery is reliable and ordered (the link never drops);
* pure ACKs are omitted by default — the paper's per-channel tables count
  protocol messages, and our per-channel accounting mirrors that.  An
  optional delayed-ACK model can be enabled for overhead studies.

Against a faulted link (:mod:`repro.net.faults`) the clean-path assumption
breaks, so the connection grows the recovery machinery the paper's real
stacks had: ``reliable=True`` arms a per-segment retransmission timer
driven by a Jacobson-style RTO estimator (:class:`RtoEstimator`) with
exponential backoff and Karn's rule (no RTT samples from retransmitted
segments).  A message completes when **all** of its segments have been
delivered; segments that exhaust ``max_retries`` abandon the message and
are counted, never silently lost.

Per-channel accounting (the ``prototap`` view) hangs off the messages sent
through :meth:`TcpConnection.send_message`.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..errors import NetworkError
from ..obs import current_observation
from ..sim.engine import Event, Simulator
from .framing import DEFAULT_MTU, TCPIP, HeaderStack, segment
from .link import Link
from .packet import Packet

MessageCallback = Callable[[ "Message"], None]

#: Jacobson/Karels smoothing gains (RFC 6298's alpha and beta).
RTO_ALPHA = 0.125
RTO_BETA = 0.25
#: RTO clamps, scaled to the simulated LAN/WAN regime (ms).
RTO_MIN_MS = 10.0
RTO_MAX_MS = 3_000.0
#: Conservative RTO before the first RTT sample arrives.
RTO_INITIAL_MS = 200.0
#: Retransmissions before a segment is abandoned.
DEFAULT_MAX_RETRIES = 8


class RtoEstimator:
    """Jacobson-style smoothed RTT and retransmission timeout, simplified.

    ``srtt += alpha * (sample - srtt)`` and ``rttvar`` tracks mean
    deviation; the timeout is ``srtt + 4 * rttvar`` clamped to
    ``[min_ms, max_ms]``.  Until the first sample the conservative
    ``initial_ms`` applies.
    """

    __slots__ = ("initial_ms", "min_ms", "max_ms", "srtt_ms", "rttvar_ms")

    def __init__(
        self,
        initial_ms: float = RTO_INITIAL_MS,
        *,
        min_ms: float = RTO_MIN_MS,
        max_ms: float = RTO_MAX_MS,
    ) -> None:
        if initial_ms <= 0 or min_ms <= 0 or max_ms < min_ms:
            raise NetworkError("bad RTO bounds")
        self.initial_ms = initial_ms
        self.min_ms = min_ms
        self.max_ms = max_ms
        self.srtt_ms: Optional[float] = None
        self.rttvar_ms = 0.0

    def observe(self, sample_ms: float) -> None:
        """Fold one round-trip sample into the smoothed estimate."""
        if sample_ms < 0:
            raise NetworkError("negative RTT sample")
        if self.srtt_ms is None:
            self.srtt_ms = sample_ms
            self.rttvar_ms = sample_ms / 2.0
        else:
            self.rttvar_ms += RTO_BETA * (
                abs(sample_ms - self.srtt_ms) - self.rttvar_ms
            )
            self.srtt_ms += RTO_ALPHA * (sample_ms - self.srtt_ms)

    @property
    def rto_ms(self) -> float:
        """The current retransmission timeout."""
        if self.srtt_ms is None:
            return self.initial_ms
        return min(
            self.max_ms, max(self.min_ms, self.srtt_ms + 4.0 * self.rttvar_ms)
        )


class Message:
    """One application-level protocol message."""

    __slots__ = (
        "channel",
        "payload_bytes",
        "kind",
        "protocol",
        "sent_at",
        "delivered_at",
    )

    def __init__(
        self, channel: str, payload_bytes: int, kind: str = "", protocol: str = ""
    ) -> None:
        if payload_bytes <= 0:
            raise NetworkError("message must have positive size")
        self.channel = channel
        self.payload_bytes = payload_bytes
        self.kind = kind
        self.protocol = protocol
        self.sent_at: Optional[float] = None
        self.delivered_at: Optional[float] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Message {self.channel} {self.kind} {self.payload_bytes}B>"


class _Segment:
    """One in-flight reliable segment: wire size, attempts, its timer."""

    __slots__ = ("wire", "payload", "channel", "attempt", "acked", "timer", "group")

    def __init__(self, wire: int, payload: int, channel: str, group: dict) -> None:
        self.wire = wire
        self.payload = payload
        self.channel = channel
        self.attempt = 0
        self.acked = False
        self.timer: Optional[Event] = None
        self.group = group  #: the message-completion tracker


class TcpConnection:
    """One direction-agnostic reliable stream between client and server.

    With ``reliable=False`` (the default, and the right model for a clean
    link) segments are fire-and-forget exactly as before.  ``reliable=True``
    arms the RTO/retransmission machinery for every segment — pass it when
    the link is a :class:`~repro.net.faults.FaultyLink`.
    """

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        *,
        stack: HeaderStack = TCPIP,
        mtu: int = DEFAULT_MTU,
        protocol: str = "",
        ack_bytes: int = 0,
        reliable: bool = False,
        rto: Optional[RtoEstimator] = None,
        max_retries: int = DEFAULT_MAX_RETRIES,
    ) -> None:
        if max_retries < 0:
            raise NetworkError("max_retries cannot be negative")
        self.sim = sim
        self.link = link
        self.stack = stack
        self.mtu = mtu
        self.protocol = protocol
        self.ack_bytes = ack_bytes
        self.reliable = reliable
        self.rto = rto if rto is not None else RtoEstimator()
        self.max_retries = max_retries
        self.messages: List[Message] = []
        self.retransmits = 0
        self.timeouts_fired = 0
        self.segments_abandoned = 0
        self._obs = current_observation()
        # Lazily-resolved instrument handles (first use only, so loss-free
        # runs keep the seed's exact metric set).
        self._timeouts_counter = None
        self._abandoned_counter = None
        self._abandoned_channel = None
        self._retransmits_counter = None
        self._retransmit_channel = None

    def send_message(
        self,
        channel: str,
        payload_bytes: int,
        *,
        kind: str = "",
        on_delivered: Optional[MessageCallback] = None,
    ) -> Message:
        """Frame, segment, and transmit one protocol message."""
        message = Message(channel, payload_bytes, kind, self.protocol)
        message.sent_at = self.sim.now
        self.messages.append(message)
        frames = segment(payload_bytes, self.stack, self.mtu)
        if self.reliable:
            self._send_reliable(frames, channel, message, on_delivered)
            return message
        last_index = len(frames) - 1

        for i, wire in enumerate(frames):
            payload_share = wire - self.stack.per_segment_overhead
            packet = Packet(
                wire,
                payload_bytes=max(0, payload_share),
                channel=channel,
                protocol=self.protocol,
            )
            if i == last_index:

                def delivered(pkt: Packet, message=message) -> None:
                    message.delivered_at = pkt.delivered_at
                    if on_delivered is not None:
                        on_delivered(message)

                self.link.send(packet, delivered)
            else:
                self.link.send(packet)
            if self.ack_bytes:
                self.link.send(
                    Packet(
                        self.ack_bytes,
                        payload_bytes=0,
                        channel=f"{channel}-ack",
                        protocol=self.protocol,
                    )
                )
        return message

    # -- the reliable path (faulted links) -----------------------------------

    def _send_reliable(
        self,
        frames: List[int],
        channel: str,
        message: Message,
        on_delivered: Optional[MessageCallback],
    ) -> None:
        """Transmit every segment under a retransmission timer.

        The message completes when its last outstanding segment is
        delivered — under reordering that may not be the textually last
        segment, so completion counts segments instead of tagging one.
        """
        group = {
            "left": len(frames),
            "message": message,
            "on_delivered": on_delivered,
            "failed": False,
        }
        for wire in frames:
            payload_share = max(0, wire - self.stack.per_segment_overhead)
            self._transmit(_Segment(wire, payload_share, channel, group))
            if self.ack_bytes:
                self.link.send(
                    Packet(
                        self.ack_bytes,
                        payload_bytes=0,
                        channel=f"{channel}-ack",
                        protocol=self.protocol,
                    )
                )

    def _transmit(self, seg: _Segment) -> None:
        packet = Packet(
            seg.wire,
            payload_bytes=seg.payload,
            channel=seg.channel,
            protocol=self.protocol,
        )
        sent_at = self.sim.now

        def acked(pkt: Packet) -> None:
            if seg.acked:
                return  # a late original arriving after its retransmission
            seg.acked = True
            if seg.timer is not None:
                seg.timer.cancel()
            if seg.attempt == 0:
                # Karn's rule: only never-retransmitted segments produce an
                # unambiguous RTT sample.
                self.rto.observe(self.sim.now - sent_at)
            self._segment_done(seg, pkt)

        self.link.send(packet, acked)
        # Exponential backoff: each retransmission doubles the wait.
        timeout_ms = min(RTO_MAX_MS, self.rto.rto_ms * (2 ** seg.attempt))
        seg.timer = self.sim.schedule(timeout_ms, lambda: self._timeout(seg))

    def _timeout(self, seg: _Segment) -> None:
        if seg.acked:
            return
        self.timeouts_fired += 1
        obs = self._obs
        if obs is not None:
            counter = self._timeouts_counter
            if counter is None:
                counter = self._timeouts_counter = obs.metrics.counter(
                    "net.timeouts_fired"
                )
            counter.value += 1
        if seg.attempt >= self.max_retries:
            self.segments_abandoned += 1
            seg.group["failed"] = True
            if obs is not None:
                counter = self._abandoned_counter
                if counter is None:
                    counter = self._abandoned_counter = obs.metrics.counter(
                        "net.segments_abandoned"
                    )
                    self._abandoned_channel = obs.channel(
                        "net.segment_abandoned",
                        "channel",
                        "wire_bytes",
                        "attempts",
                    )
                counter.value += 1
                self._abandoned_channel(
                    self.sim.now, seg.channel, seg.wire, seg.attempt + 1
                )
            return
        seg.attempt += 1
        self.retransmits += 1
        if obs is not None:
            counter = self._retransmits_counter
            if counter is None:
                counter = self._retransmits_counter = obs.metrics.counter(
                    "net.retransmits"
                )
                self._retransmit_channel = obs.channel(
                    "net.retransmit", "channel", "wire_bytes", "attempt"
                )
            counter.value += 1
            self._retransmit_channel(
                self.sim.now, seg.channel, seg.wire, seg.attempt
            )
        self._transmit(seg)

    def _segment_done(self, seg: _Segment, pkt: Packet) -> None:
        group = seg.group
        group["left"] -= 1
        if group["left"] == 0 and not group["failed"]:
            message: Message = group["message"]
            message.delivered_at = pkt.delivered_at
            callback = group["on_delivered"]
            if callback is not None:
                callback(message)

    # -- accounting (prototap feeds on this) ---------------------------------

    def channel_messages(self, channel: str) -> List[Message]:
        """All messages sent on *channel* so far."""
        return [m for m in self.messages if m.channel == channel]
