"""A simplified TCP byte stream over a shared link.

The remote-display protocols are interactive, so the connection models the
behaviour that matters to the paper's measurements and nothing more:

* each application **message** is framed immediately (no Nagle batching —
  display protocols disable it) and segmented at the MTU with the
  configured header stack per segment;
* delivery is reliable and ordered (the link never drops);
* pure ACKs are omitted by default — the paper's per-channel tables count
  protocol messages, and our per-channel accounting mirrors that.  An
  optional delayed-ACK model can be enabled for overhead studies.

Per-channel accounting (the ``prototap`` view) hangs off the messages sent
through :meth:`TcpConnection.send_message`.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..errors import NetworkError
from ..sim.engine import Simulator
from .framing import DEFAULT_MTU, TCPIP, HeaderStack, segment
from .link import Link
from .packet import Packet

MessageCallback = Callable[[ "Message"], None]


class Message:
    """One application-level protocol message."""

    __slots__ = (
        "channel",
        "payload_bytes",
        "kind",
        "protocol",
        "sent_at",
        "delivered_at",
    )

    def __init__(
        self, channel: str, payload_bytes: int, kind: str = "", protocol: str = ""
    ) -> None:
        if payload_bytes <= 0:
            raise NetworkError("message must have positive size")
        self.channel = channel
        self.payload_bytes = payload_bytes
        self.kind = kind
        self.protocol = protocol
        self.sent_at: Optional[float] = None
        self.delivered_at: Optional[float] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Message {self.channel} {self.kind} {self.payload_bytes}B>"


class TcpConnection:
    """One direction-agnostic reliable stream between client and server."""

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        *,
        stack: HeaderStack = TCPIP,
        mtu: int = DEFAULT_MTU,
        protocol: str = "",
        ack_bytes: int = 0,
    ) -> None:
        self.sim = sim
        self.link = link
        self.stack = stack
        self.mtu = mtu
        self.protocol = protocol
        self.ack_bytes = ack_bytes
        self.messages: List[Message] = []

    def send_message(
        self,
        channel: str,
        payload_bytes: int,
        *,
        kind: str = "",
        on_delivered: Optional[MessageCallback] = None,
    ) -> Message:
        """Frame, segment, and transmit one protocol message."""
        message = Message(channel, payload_bytes, kind, self.protocol)
        message.sent_at = self.sim.now
        self.messages.append(message)
        frames = segment(payload_bytes, self.stack, self.mtu)
        last_index = len(frames) - 1

        for i, wire in enumerate(frames):
            payload_share = wire - self.stack.per_segment_overhead
            packet = Packet(
                wire,
                payload_bytes=max(0, payload_share),
                channel=channel,
                protocol=self.protocol,
            )
            if i == last_index:

                def delivered(pkt: Packet, message=message) -> None:
                    message.delivered_at = pkt.delivered_at
                    if on_delivered is not None:
                        on_delivered(message)

                self.link.send(packet, delivered)
            else:
                self.link.send(packet)
            if self.ack_bytes:
                self.link.send(
                    Packet(
                        self.ack_bytes,
                        payload_bytes=0,
                        channel=f"{channel}-ack",
                        protocol=self.protocol,
                    )
                )
        return message

    # -- accounting (prototap feeds on this) ---------------------------------

    def channel_messages(self, channel: str) -> List[Message]:
        """All messages sent on *channel* so far."""
        return [m for m in self.messages if m.channel == channel]
