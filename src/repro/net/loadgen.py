"""Synthetic offered load (Figures 8–9's x-axis).

A Poisson packet generator: exponential inter-arrivals at the rate that
yields the requested offered load in Mbps, fixed-size frames.  The paper
"produced synthetic TCP/IP network load on our experimental testbed"; the
generator is the simulation equivalent.
"""

from __future__ import annotations

import random
from typing import Optional

from ..errors import NetworkError
from ..sim.engine import Event, Simulator
from ..units import mbps_to_bytes_per_ms
from .link import Link
from .packet import Packet

#: Full-size data frames, the natural choice for bulk synthetic load.
DEFAULT_LOAD_PACKET_BYTES = 1500


class PoissonLoadGenerator:
    """Offers *mbps* of load to *link* until stopped."""

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        mbps: float,
        rng: random.Random,
        *,
        packet_bytes: int = DEFAULT_LOAD_PACKET_BYTES,
        channel: str = "load",
    ) -> None:
        if mbps < 0:
            raise NetworkError("offered load cannot be negative")
        if packet_bytes <= 0:
            raise NetworkError("load packets must have positive size")
        self.sim = sim
        self.link = link
        self.mbps = mbps
        self.rng = rng
        self.packet_bytes = packet_bytes
        self.channel = channel
        self.packets_offered = 0
        self._stopped = False
        self._next: Optional[Event] = None
        if mbps > 0:
            self._mean_interarrival_ms = packet_bytes / mbps_to_bytes_per_ms(mbps)
            self._schedule_next()
        else:
            self._mean_interarrival_ms = float("inf")

    def _schedule_next(self) -> None:
        delay = self.rng.expovariate(1.0 / self._mean_interarrival_ms)
        self._next = self.sim.schedule(delay, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        self.link.send(Packet(self.packet_bytes, channel=self.channel))
        self.packets_offered += 1
        self._schedule_next()

    def stop(self) -> None:
        """Stop offering load; any queued arrival is cancelled."""
        self._stopped = True
        if self._next is not None:
            self._next.cancel()
