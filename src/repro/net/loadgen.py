"""Synthetic offered load (Figures 8–9's x-axis).

A Poisson packet generator: exponential inter-arrivals at the rate that
yields the requested offered load in Mbps, fixed-size frames.  The paper
"produced synthetic TCP/IP network load on our experimental testbed"; the
generator is the simulation equivalent.

:class:`OnOffLoadGenerator` adds the bursty counterpart: a two-state
Markov-modulated Poisson process (exponential ON/OFF holding times,
Poisson arrivals only while ON) calibrated so its *mean* rate equals the
requested Mbps.  Equal-mean Poisson vs on-off is the classic tail
experiment — means match, p99 does not — and the ``slo_burst`` scenario
races exactly that pair.
"""

from __future__ import annotations

import random
from typing import Optional

from ..errors import NetworkError
from ..sim.engine import Event, Simulator
from ..units import mbps_to_bytes_per_ms
from .link import Link
from .packet import Packet

#: Full-size data frames, the natural choice for bulk synthetic load.
DEFAULT_LOAD_PACKET_BYTES = 1500


class PoissonLoadGenerator:
    """Offers *mbps* of load to *link* until stopped."""

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        mbps: float,
        rng: random.Random,
        *,
        packet_bytes: int = DEFAULT_LOAD_PACKET_BYTES,
        channel: str = "load",
    ) -> None:
        if mbps < 0:
            raise NetworkError("offered load cannot be negative")
        if packet_bytes <= 0:
            raise NetworkError("load packets must have positive size")
        self.sim = sim
        self.link = link
        self.mbps = mbps
        self.rng = rng
        self.packet_bytes = packet_bytes
        self.channel = channel
        self.packets_offered = 0
        self._stopped = False
        self._next: Optional[Event] = None
        if mbps > 0:
            self._mean_interarrival_ms = packet_bytes / mbps_to_bytes_per_ms(mbps)
            self._schedule_next()
        else:
            self._mean_interarrival_ms = float("inf")

    def _schedule_next(self) -> None:
        delay = self.rng.expovariate(1.0 / self._mean_interarrival_ms)
        self._next = self.sim.schedule(delay, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        self.link.send(Packet(self.packet_bytes, channel=self.channel))
        self.packets_offered += 1
        self._schedule_next()

    def stop(self) -> None:
        """Stop offering load; any queued arrival is cancelled."""
        self._stopped = True
        if self._next is not None:
            self._next.cancel()


class OnOffLoadGenerator:
    """Bursty offered load: a two-state MMPP with the same mean as *mbps*.

    The generator alternates between ON and OFF states with exponential
    holding times.  A full ON+OFF cycle averages *cycle_ms*, of which the
    ON state occupies *on_fraction*; while ON, packets arrive as a Poisson
    stream at rate ``mbps / on_fraction``, so the long-run mean offered
    load is exactly *mbps* — the equal-mean twin of
    :class:`PoissonLoadGenerator` with a burstier interarrival law.

    All randomness (holding times and interarrivals) draws from the single
    *rng* in event order, so runs are deterministic per seed.  The
    generator starts in the ON state.
    """

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        mbps: float,
        rng: random.Random,
        *,
        on_fraction: float = 0.25,
        cycle_ms: float = 500.0,
        packet_bytes: int = DEFAULT_LOAD_PACKET_BYTES,
        channel: str = "load",
    ) -> None:
        if mbps < 0:
            raise NetworkError("offered load cannot be negative")
        if not 0.0 < on_fraction <= 1.0:
            raise NetworkError(
                f"on_fraction must be in (0, 1], got {on_fraction}"
            )
        if cycle_ms <= 0:
            raise NetworkError("burst cycle must have positive length")
        if packet_bytes <= 0:
            raise NetworkError("load packets must have positive size")
        self.sim = sim
        self.link = link
        self.mbps = mbps
        self.rng = rng
        self.on_fraction = on_fraction
        self.cycle_ms = cycle_ms
        self.packet_bytes = packet_bytes
        self.channel = channel
        self.packets_offered = 0
        self.on = True
        self._stopped = False
        self._next: Optional[Event] = None
        self._flip: Optional[Event] = None
        self._mean_on_ms = on_fraction * cycle_ms
        self._mean_off_ms = (1.0 - on_fraction) * cycle_ms
        if mbps > 0:
            burst_rate = mbps / on_fraction
            self._mean_interarrival_ms = (
                self.packet_bytes / mbps_to_bytes_per_ms(burst_rate)
            )
            self._schedule_arrival()
            self._schedule_flip()

    def _schedule_arrival(self) -> None:
        delay = self.rng.expovariate(1.0 / self._mean_interarrival_ms)
        self._next = self.sim.schedule(delay, self._fire)

    def _schedule_flip(self) -> None:
        # on_fraction == 1 degenerates to pure Poisson: never leave ON.
        if self._mean_off_ms <= 0:
            return
        mean = self._mean_on_ms if self.on else self._mean_off_ms
        self._flip = self.sim.schedule(self.rng.expovariate(1.0 / mean), self._toggle)

    def _toggle(self) -> None:
        if self._stopped:
            return
        self.on = not self.on
        if self.on:
            self._schedule_arrival()
        elif self._next is not None:
            self._next.cancel()
            self._next = None
        self._schedule_flip()

    def _fire(self) -> None:
        if self._stopped or not self.on:
            return
        self.link.send(Packet(self.packet_bytes, channel=self.channel))
        self.packets_offered += 1
        self._schedule_arrival()

    def stop(self) -> None:
        """Stop offering load; queued arrivals and state flips are cancelled."""
        self._stopped = True
        if self._next is not None:
            self._next.cancel()
        if self._flip is not None:
            self._flip.cancel()
