"""Synthetic offered load (Figures 8–9's x-axis).

A Poisson packet generator: exponential inter-arrivals at the rate that
yields the requested offered load in Mbps, fixed-size frames.  The paper
"produced synthetic TCP/IP network load on our experimental testbed"; the
generator is the simulation equivalent.

:class:`OnOffLoadGenerator` adds the bursty counterpart: a two-state
Markov-modulated Poisson process (exponential ON/OFF holding times,
Poisson arrivals only while ON) calibrated so its *mean* rate equals the
requested Mbps.  Equal-mean Poisson vs on-off is the classic tail
experiment — means match, p99 does not — and the ``slo_burst`` scenario
races exactly that pair.

**Batch sampling** (:class:`BatchPoissonSampler`,
:class:`BatchOnOffSampler`, :class:`BatchClosedLoopSampler`) is the
heavy-traffic tier's vectorized twin of the per-event generators: instead
of one simulator event per packet, a sampler draws *per-tick aggregate
packet counts* for a whole run in a few numpy calls.  The Poisson sampler
is statistically **exact** — the superposition of N independent Poisson
streams at rate λ is one Poisson stream at N·λ, so the aggregate per-tick
counts have exactly the law the per-event generators would produce.  The
on-off sampler aggregates N independent two-state sources by tracking only
the *number* of ON sources (a count-level Markov chain stepped once per
tick: two binomial flips plus one Poisson count draw), which is exact up
to within-tick state constancy.  The closed-loop sampler does the same
for *typing* sessions — counts over a thinking / typing / blocked-on-echo
chain, binomial transition draws per tick — so keystroke load that
self-throttles under latency (the paper's defining workload) vectorizes
too.  All consume split-stable numpy PCG64 child streams, one per
purpose, so drawing ticks in one batch or many produces identical values —
``tests/scale/test_batch_sampling.py`` pins that boundary invariance.

numpy is deliberately a soft dependency: the per-event generators above
never touch it, and the batch samplers import it lazily so the library
core stays dependency-free.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from ..errors import NetworkError
from ..sim.engine import Event, Simulator
from ..sim.rng import derive_seed
from ..units import mbps_to_bytes_per_ms
from .link import Link
from .packet import Packet

#: Full-size data frames, the natural choice for bulk synthetic load.
DEFAULT_LOAD_PACKET_BYTES = 1500


class PoissonLoadGenerator:
    """Offers *mbps* of load to *link* until stopped."""

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        mbps: float,
        rng: random.Random,
        *,
        packet_bytes: int = DEFAULT_LOAD_PACKET_BYTES,
        channel: str = "load",
    ) -> None:
        if mbps < 0:
            raise NetworkError("offered load cannot be negative")
        if packet_bytes <= 0:
            raise NetworkError("load packets must have positive size")
        self.sim = sim
        self.link = link
        self.mbps = mbps
        self.rng = rng
        self.packet_bytes = packet_bytes
        self.channel = channel
        self.packets_offered = 0
        self._stopped = False
        self._next: Optional[Event] = None
        if mbps > 0:
            self._mean_interarrival_ms = packet_bytes / mbps_to_bytes_per_ms(mbps)
            self._schedule_next()
        else:
            self._mean_interarrival_ms = float("inf")

    def _schedule_next(self) -> None:
        delay = self.rng.expovariate(1.0 / self._mean_interarrival_ms)
        self._next = self.sim.schedule(delay, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        self.link.send(Packet(self.packet_bytes, channel=self.channel))
        self.packets_offered += 1
        self._schedule_next()

    def stop(self) -> None:
        """Stop offering load; any queued arrival is cancelled."""
        self._stopped = True
        if self._next is not None:
            self._next.cancel()


class OnOffLoadGenerator:
    """Bursty offered load: a two-state MMPP with the same mean as *mbps*.

    The generator alternates between ON and OFF states with exponential
    holding times.  A full ON+OFF cycle averages *cycle_ms*, of which the
    ON state occupies *on_fraction*; while ON, packets arrive as a Poisson
    stream at rate ``mbps / on_fraction``, so the long-run mean offered
    load is exactly *mbps* — the equal-mean twin of
    :class:`PoissonLoadGenerator` with a burstier interarrival law.

    All randomness (holding times and interarrivals) draws from the single
    *rng* in event order, so runs are deterministic per seed.  The
    generator starts in the ON state.
    """

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        mbps: float,
        rng: random.Random,
        *,
        on_fraction: float = 0.25,
        cycle_ms: float = 500.0,
        packet_bytes: int = DEFAULT_LOAD_PACKET_BYTES,
        channel: str = "load",
    ) -> None:
        if mbps < 0:
            raise NetworkError("offered load cannot be negative")
        if not 0.0 < on_fraction <= 1.0:
            raise NetworkError(
                f"on_fraction must be in (0, 1], got {on_fraction}"
            )
        if cycle_ms <= 0:
            raise NetworkError("burst cycle must have positive length")
        if packet_bytes <= 0:
            raise NetworkError("load packets must have positive size")
        self.sim = sim
        self.link = link
        self.mbps = mbps
        self.rng = rng
        self.on_fraction = on_fraction
        self.cycle_ms = cycle_ms
        self.packet_bytes = packet_bytes
        self.channel = channel
        self.packets_offered = 0
        self.on = True
        self._stopped = False
        self._next: Optional[Event] = None
        self._flip: Optional[Event] = None
        self._mean_on_ms = on_fraction * cycle_ms
        self._mean_off_ms = (1.0 - on_fraction) * cycle_ms
        if mbps > 0:
            burst_rate = mbps / on_fraction
            self._mean_interarrival_ms = (
                self.packet_bytes / mbps_to_bytes_per_ms(burst_rate)
            )
            self._schedule_arrival()
            self._schedule_flip()

    def _schedule_arrival(self) -> None:
        delay = self.rng.expovariate(1.0 / self._mean_interarrival_ms)
        self._next = self.sim.schedule(delay, self._fire)

    def _schedule_flip(self) -> None:
        # on_fraction == 1 degenerates to pure Poisson: never leave ON.
        if self._mean_off_ms <= 0:
            return
        mean = self._mean_on_ms if self.on else self._mean_off_ms
        self._flip = self.sim.schedule(self.rng.expovariate(1.0 / mean), self._toggle)

    def _toggle(self) -> None:
        if self._stopped:
            return
        self.on = not self.on
        if self.on:
            self._schedule_arrival()
        elif self._next is not None:
            self._next.cancel()
            self._next = None
        self._schedule_flip()

    def _fire(self) -> None:
        if self._stopped or not self.on:
            return
        self.link.send(Packet(self.packet_bytes, channel=self.channel))
        self.packets_offered += 1
        self._schedule_arrival()

    def stop(self) -> None:
        """Stop offering load; queued arrivals and state flips are cancelled."""
        self._stopped = True
        if self._next is not None:
            self._next.cancel()
        if self._flip is not None:
            self._flip.cancel()


# --- batch (vectorized) sampling ---------------------------------------------


def _numpy():
    """Import numpy on demand; the per-event path never needs it."""
    try:
        import numpy
    except ImportError as exc:  # pragma: no cover - numpy is baked into CI
        raise NetworkError(
            "batch load sampling requires numpy; install it or use the "
            "per-event generators"
        ) from exc
    return numpy


def _generator(seed: int, purpose: str):
    """A PCG64 stream derived from (*seed*, *purpose*).

    Each sampler purpose (state chain, counts, interarrivals) gets its own
    stream, so a batch split across several calls consumes each stream
    sequentially — numpy fills arrays one variate at a time, which makes
    ``sample(a); sample(b)`` byte-identical to ``sample(a + b)``.
    """
    np = _numpy()
    return np.random.Generator(np.random.PCG64(derive_seed(seed, purpose)))


class BatchPoissonSampler:
    """Vectorized per-tick packet counts for a homogeneous Poisson population.

    Represents *sources* independent Poisson packet streams, each at
    *rate_per_ms* packets/ms, aggregated per tick of *tick_ms*: the counts
    are ``Poisson(sources · rate_per_ms · tick_ms)`` draws — the exact law
    of the superposed stream, at O(1) cost per tick instead of one
    simulator event per packet.  The sampler holds generator state, so
    consecutive :meth:`tick_counts` calls continue the same realization.
    """

    def __init__(
        self,
        rate_per_ms: float,
        tick_ms: float,
        *,
        sources: int = 1,
        seed: int = 0,
        packet_bytes: int = DEFAULT_LOAD_PACKET_BYTES,
    ) -> None:
        if rate_per_ms < 0:
            raise NetworkError("batch arrival rate cannot be negative")
        if tick_ms <= 0:
            raise NetworkError("batch tick must have positive length")
        if sources < 1:
            raise NetworkError("a batch population needs at least one source")
        if packet_bytes <= 0:
            raise NetworkError("load packets must have positive size")
        self.rate_per_ms = rate_per_ms
        self.tick_ms = tick_ms
        self.sources = sources
        self.packet_bytes = packet_bytes
        self.ticks_sampled = 0
        self._counts = _generator(seed, "batch:poisson:counts")
        self._gaps = _generator(seed, "batch:poisson:gaps")

    @property
    def aggregate_rate_per_ms(self) -> float:
        """The superposed packet rate N·λ (packets/ms)."""
        return self.sources * self.rate_per_ms

    @property
    def mean_per_tick(self) -> float:
        """Expected packets per tick of the aggregated stream."""
        return self.aggregate_rate_per_ms * self.tick_ms

    def tick_counts(self, n_ticks: int):
        """Packet counts for the next *n_ticks* ticks (numpy int array)."""
        if n_ticks < 0:
            raise NetworkError("cannot sample a negative number of ticks")
        self.ticks_sampled += n_ticks
        return self._counts.poisson(self.mean_per_tick, size=n_ticks)

    def tick_bytes(self, n_ticks: int):
        """Offered bytes for the next *n_ticks* ticks (numpy int array)."""
        return self.tick_counts(n_ticks) * self.packet_bytes

    def interarrivals(self, n: int):
        """*n* aggregate-stream interarrival gaps (ms, numpy float array).

        Drawn from an independent child stream, so mixing count and gap
        sampling never perturbs either sequence.  The gaps are exponential
        at the superposed rate — the distribution the per-event
        :class:`PoissonLoadGenerator` realizes one event at a time.
        """
        if n < 0:
            raise NetworkError("cannot sample a negative number of gaps")
        if self.aggregate_rate_per_ms <= 0:
            raise NetworkError("interarrivals need a positive rate")
        return self._gaps.exponential(
            1.0 / self.aggregate_rate_per_ms, size=n
        )


class BatchOnOffSampler:
    """Vectorized per-tick counts for N independent on-off (MMPP) sources.

    Each source mirrors :class:`OnOffLoadGenerator`: exponential ON/OFF
    holding times (a full cycle averages *cycle_ms*, ON for *on_fraction*
    of it) and Poisson packets at ``rate_per_ms / on_fraction`` while ON,
    so each source's long-run mean is *rate_per_ms*.  Aggregation tracks
    only the number of ON sources: per tick, ``Binomial(on, p_off)``
    sources switch OFF, ``Binomial(n - on, p_on)`` switch ON, and the tick
    count is a Poisson draw at the current ON level — O(1) per tick for a
    million sources.  The chain starts in its stationary distribution
    (``Binomial(n, on_fraction)``), so no burn-in is needed for the
    aggregate rate to be correct.

    The within-tick state-constancy approximation is the only gap vs N
    per-event generators; it vanishes as ``tick_ms / cycle_ms → 0`` and is
    pinned statistically by ``tests/scale/test_batch_sampling.py``.
    """

    def __init__(
        self,
        rate_per_ms: float,
        tick_ms: float,
        *,
        sources: int = 1,
        seed: int = 0,
        on_fraction: float = 0.25,
        cycle_ms: float = 500.0,
        packet_bytes: int = DEFAULT_LOAD_PACKET_BYTES,
    ) -> None:
        if rate_per_ms < 0:
            raise NetworkError("batch arrival rate cannot be negative")
        if tick_ms <= 0:
            raise NetworkError("batch tick must have positive length")
        if sources < 1:
            raise NetworkError("a batch population needs at least one source")
        if not 0.0 < on_fraction <= 1.0:
            raise NetworkError(
                f"on_fraction must be in (0, 1], got {on_fraction}"
            )
        if cycle_ms <= 0:
            raise NetworkError("burst cycle must have positive length")
        if packet_bytes <= 0:
            raise NetworkError("load packets must have positive size")
        np = _numpy()
        self.rate_per_ms = rate_per_ms
        self.tick_ms = tick_ms
        self.sources = sources
        self.on_fraction = on_fraction
        self.cycle_ms = cycle_ms
        self.packet_bytes = packet_bytes
        self.ticks_sampled = 0
        self._np = np
        self._chain = _generator(seed, "batch:onoff:chain")
        self._counts = _generator(seed, "batch:onoff:counts")
        mean_on = on_fraction * cycle_ms
        mean_off = (1.0 - on_fraction) * cycle_ms
        # Exact discretization of the two-state CTMC sampled at tick
        # boundaries (rates 1/mean_off off->on, 1/mean_on on->off):
        # both flips share 1 - exp(-(a+b)*tick), split by the stationary
        # fractions, so the discrete chain's stationary ON probability is
        # exactly on_fraction for any tick size.
        if mean_off > 0:
            shared = -math.expm1(
                -tick_ms * (1.0 / mean_on + 1.0 / mean_off)
            )
            self._p_off = (1.0 - on_fraction) * shared
            self._p_on = on_fraction * shared
        else:
            self._p_off = 0.0
            self._p_on = 0.0
        #: Packets/ms of one source while ON.
        self.burst_rate_per_ms = rate_per_ms / on_fraction
        # Stationary start: each source is ON with probability on_fraction
        # (degenerate all-ON when on_fraction == 1, like the per-event
        # generator, which never leaves ON in that case).
        if mean_off > 0:
            self.on = int(self._chain.binomial(sources, on_fraction))
        else:
            self.on = sources

    @property
    def mean_rate_per_ms(self) -> float:
        """Long-run aggregate packet rate N·λ (packets/ms)."""
        return self.sources * self.rate_per_ms

    @property
    def mean_per_tick(self) -> float:
        """Expected packets per tick of the aggregated stream."""
        return self.mean_rate_per_ms * self.tick_ms

    def tick_counts(self, n_ticks: int):
        """Packet counts for the next *n_ticks* ticks (numpy int array).

        The ON-level chain steps once per tick on its own stream; the
        count draws then vectorize over the whole batch on theirs, so
        batch boundaries never change either sequence.
        """
        if n_ticks < 0:
            raise NetworkError("cannot sample a negative number of ticks")
        np = self._np
        levels = np.empty(n_ticks, dtype=np.int64)
        on = self.on
        chain = self._chain
        for i in range(n_ticks):
            levels[i] = on
            if self._p_off > 0.0:
                on += int(chain.binomial(self.sources - on, self._p_on)) - int(
                    chain.binomial(on, self._p_off)
                )
        self.on = on
        self.ticks_sampled += n_ticks
        lam = levels * (self.burst_rate_per_ms * self.tick_ms)
        return self._counts.poisson(lam)

    def tick_bytes(self, n_ticks: int):
        """Offered bytes for the next *n_ticks* ticks (numpy int array)."""
        return self.tick_counts(n_ticks) * self.packet_bytes


#: Wire bytes of one keystroke packet (matches the fleet's input frames).
DEFAULT_KEYSTROKE_BYTES = 64


class BatchClosedLoopSampler:
    """Vectorized per-tick counts for N closed-loop typing sessions.

    Each session cycles through the paper's interactive loop — *think*,
    then emit a geometric burst of keystrokes (mean *burst_keys*, one
    every *type_ms* on average), blocking on the echo after each — but
    the population is carried as three **counts** (thinking / typing /
    blocked-on-echo), not N objects.  Per tick the counts move by exact
    binomial draws from the tau-leaped CTMC: ``p = 1 - exp(-tick/mean)``
    for the think->type and inter-keystroke hazards, so every session is
    accounted for every tick (conservation is exact by construction) at
    O(1) cost for a million sessions.

    Echo completions — the closed-loop feedback that open samplers don't
    have — come in three flavours, chosen by *echo_servers*:

    * ``None`` (dedicated): every blocked session completes independently
      with ``p_echo = 1 - exp(-tick/echo_ms)`` — an infinite-server
      station, exactly solvable, which pins the stationary think-fraction
      law in the property tests.
    * an integer ``c`` (shared): completions per tick are a Poisson draw
      at the busy-server rate ``min(blocked, c) / echo_ms``, capped at
      the blocked count — the M/M/c station the MVA oracle models.
    * caller-supplied: :meth:`step` accepts an explicit completion count,
      which is how :class:`~repro.scale.population.ClosedLoopPopulation`
      feeds link-drain-driven completions back into the chain.

    Completed sessions continue their burst with probability
    ``1 - 1/burst_keys`` (returning to typing) else go back to thinking.
    The chain and the echo draws consume separate split-stable child
    streams, so batch boundaries never change either sequence.
    """

    def __init__(
        self,
        think_ms: float,
        type_ms: float,
        echo_ms: float,
        tick_ms: float,
        *,
        sources: int = 1,
        seed: int = 0,
        burst_keys: float = 1.0,
        echo_servers: Optional[int] = None,
        keystroke_bytes: int = DEFAULT_KEYSTROKE_BYTES,
    ) -> None:
        if think_ms <= 0 or type_ms <= 0 or echo_ms <= 0:
            raise NetworkError(
                "closed-loop think/type/echo means must be positive"
            )
        if tick_ms <= 0:
            raise NetworkError("batch tick must have positive length")
        if sources < 1:
            raise NetworkError("a batch population needs at least one source")
        if burst_keys < 1.0:
            raise NetworkError(
                f"burst_keys is a mean burst length, must be >= 1, "
                f"got {burst_keys}"
            )
        if echo_servers is not None and echo_servers < 1:
            raise NetworkError("a shared echo station needs >= 1 server")
        if keystroke_bytes <= 0:
            raise NetworkError("keystroke packets must have positive size")
        np = _numpy()
        self.think_ms = think_ms
        self.type_ms = type_ms
        self.echo_ms = echo_ms
        self.tick_ms = tick_ms
        self.sources = sources
        self.burst_keys = burst_keys
        self.echo_servers = echo_servers
        self.keystroke_bytes = keystroke_bytes
        self._np = np
        self._chain = _generator(seed, "batch:closed:chain")
        self._echo = _generator(seed, "batch:closed:echo")
        #: Per-tick transition probabilities (tau-leaped CTMC hazards).
        self.p_think = -math.expm1(-tick_ms / think_ms)
        self.p_type = -math.expm1(-tick_ms / type_ms)
        self.p_echo = -math.expm1(-tick_ms / echo_ms)
        #: Probability a completed echo continues the burst (geometric).
        self.continue_prob = 1.0 - 1.0 / burst_keys
        self.ticks_sampled = 0
        self.keystrokes_total = 0
        self.completions_total = 0
        # Start-of-tick state integrals, for Little's-law estimates.
        self.thinking_ticks = 0
        self.typing_ticks = 0
        self.blocked_ticks = 0
        if echo_servers is None:
            # The dedicated-echo chain is fully solvable: expected ticks
            # per think/type/echo visit are 1/p each, and one cycle makes
            # burst_keys type+echo visits per think visit.  Start in that
            # stationary law so no burn-in is needed (mirrors the on-off
            # sampler's stationary start).
            weights = self.stationary_fractions()
            drawn = self._chain.multinomial(sources, weights)
            self.thinking = int(drawn[0])
            self.typing = int(drawn[1])
            self.blocked = int(drawn[2])
        else:
            # Shared/external echo: the stationary split depends on the
            # (possibly external) completion process, so start cold —
            # everyone thinking — and let the caller's warmup converge it.
            self.thinking = sources
            self.typing = 0
            self.blocked = 0

    def stationary_fractions(self):
        """Stationary (thinking, typing, blocked) fractions, dedicated mode.

        Expected ticks per cycle in each state are ``1/p_think``,
        ``L/p_type`` and ``L/p_echo`` (L = *burst_keys*); normalizing
        gives the exact stationary law of the discrete chain at **any**
        tick width — the property the Hypothesis suite pins.
        """
        weights = [
            1.0 / self.p_think,
            self.burst_keys / self.p_type,
            self.burst_keys / self.p_echo,
        ]
        total = sum(weights)
        return [w / total for w in weights]

    def step(self, completions: Optional[int] = None):
        """Advance one tick; returns ``(keystrokes, completions)``.

        All draws use start-of-tick counts.  *completions* overrides the
        internal echo model (external mode); it is clamped to the blocked
        count so conservation survives an optimistic caller.
        """
        thinking, typing, blocked = self.thinking, self.typing, self.blocked
        self.thinking_ticks += thinking
        self.typing_ticks += typing
        self.blocked_ticks += blocked
        chain = self._chain
        t2y = int(chain.binomial(thinking, self.p_think)) if thinking else 0
        keys = int(chain.binomial(typing, self.p_type)) if typing else 0
        if completions is not None:
            if completions < 0:
                raise NetworkError("echo completions cannot be negative")
            done = min(int(completions), blocked)
        elif self.echo_servers is None:
            done = int(self._echo.binomial(blocked, self.p_echo)) if blocked else 0
        else:
            busy = min(blocked, self.echo_servers)
            mean = busy * (self.tick_ms / self.echo_ms)
            done = min(blocked, int(self._echo.poisson(mean))) if busy else 0
        resume = (
            int(self._echo.binomial(done, self.continue_prob)) if done else 0
        )
        self.thinking = thinking + done - resume - t2y
        self.typing = typing + t2y + resume - keys
        self.blocked = blocked + keys - done
        self.ticks_sampled += 1
        self.keystrokes_total += keys
        self.completions_total += done
        return keys, done

    def advance(self, n_ticks: int):
        """Batch-run *n_ticks* internal-echo ticks.

        Returns ``(keystrokes, completions)`` numpy int arrays, one entry
        per tick.  Only the two result arrays are allocated (once, here);
        the per-tick loop itself is scalar draws — the no-allocation hot
        path the benchmark gates.  External-completion populations drive
        :meth:`step` instead.
        """
        if n_ticks < 0:
            raise NetworkError("cannot sample a negative number of ticks")
        np = self._np
        keys_out = np.empty(n_ticks, dtype=np.int64)
        done_out = np.empty(n_ticks, dtype=np.int64)
        for i in range(n_ticks):
            keys_out[i], done_out[i] = self.step()
        return keys_out, done_out

    @property
    def mean_blocked(self) -> float:
        """Time-average blocked count over the sampled ticks (Little's L)."""
        if not self.ticks_sampled:
            return 0.0
        return self.blocked_ticks / self.ticks_sampled

    @property
    def throughput_per_ms(self) -> float:
        """Echo completions per ms over the sampled ticks (X in MVA terms)."""
        if not self.ticks_sampled:
            return 0.0
        return self.completions_total / (self.ticks_sampled * self.tick_ms)
