"""Deterministic network fault injection: loss, bursts, corruption, jitter.

The paper's network chapter (§6) measures a *perfect* shared medium — the
testbed hub queues but never drops.  Real thin-client deployments live on
worse wire: WAN loss, bursty outages, cross-traffic jitter.  This module
adds that robustness axis without touching the happy path:

* :class:`FaultPlan` — a frozen, seed-driven description of one link's
  adversity: independent per-packet loss, a Gilbert–Elliott burst-loss
  chain, bit corruption, packet reordering, latency jitter, and scheduled
  outage windows.  The plan is pure data: :meth:`FaultPlan.fates` derives
  the exact per-packet fate sequence from ``(seed, stream name)`` alone, so
  serial, ``--jobs N``, and cached runs see byte-identical fault schedules.
* :class:`FaultyLink` — a :class:`~repro.net.link.Link` subclass that
  applies a plan's fates on :meth:`~FaultyLink.send`.  Every packet offered
  is assigned exactly one fate bucket, giving the conservation law
  ``delivered + dropped + corrupted == sent`` once in-flight traffic
  drains.
* :func:`make_link` — the one constructor experiments use: a disabled (or
  absent) plan returns a plain ``Link``, byte-identical to a no-fault run.

Corrupted frames still occupy the wire (the checksum fails at the
*receiver*), so they consume bandwidth but never reach the application —
exactly the case that forces the transport retransmission machinery in
:mod:`repro.net.tcpstream` to earn its keep.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace
from typing import Iterator, List, Optional, Tuple

from ..errors import NetworkError
from ..sim.engine import Simulator
from ..sim.rng import derive_seed
from .link import DeliveryCallback, Link
from .packet import Packet

#: Extra hold-back applied to a reordered packet, in ms — long enough to
#: let at least one full-size frame at 10 Mbps overtake it.
DEFAULT_REORDER_HOLD_MS = 2.0


@dataclass(frozen=True)
class PacketFate:
    """The fault decision for one offered packet, fully precomputable."""

    lost: bool = False  #: dropped on the wire (random or burst loss)
    corrupt: bool = False  #: delivered with a bad checksum; receiver drops
    extra_delay_ms: float = 0.0  #: jitter + reorder hold added past propagation


@dataclass(frozen=True)
class FaultPlan:
    """One link's adversity, as pure data.

    All probabilities are per-packet.  The burst model is Gilbert–Elliott:
    a two-state Markov chain entered with probability ``burst_enter`` per
    packet, left with ``burst_exit``, dropping each packet seen in the bad
    state with probability ``burst_loss``.  ``outages`` are absolute
    ``(start_ms, end_ms)`` windows during which every offered packet is
    dropped (a dead wire, an AP roam, a modem retrain).

    A default-constructed plan is **disabled** (:attr:`enabled` is False)
    and :func:`make_link` then builds a plain :class:`Link` — the happy
    path is untouched, byte for byte.
    """

    loss: float = 0.0
    burst_enter: float = 0.0
    burst_exit: float = 0.5
    burst_loss: float = 1.0
    corrupt: float = 0.0
    reorder: float = 0.0
    reorder_hold_ms: float = DEFAULT_REORDER_HOLD_MS
    jitter_ms: float = 0.0  #: mean of the exponential jitter added per packet
    outages: Tuple[Tuple[float, float], ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("loss", "burst_enter", "burst_exit", "burst_loss",
                     "corrupt", "reorder"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise NetworkError(f"{name} must be a probability, got {p}")
        if self.reorder_hold_ms < 0 or self.jitter_ms < 0:
            raise NetworkError("delays cannot be negative")
        for window in self.outages:
            if len(window) != 2 or window[0] < 0 or window[1] <= window[0]:
                raise NetworkError(f"bad outage window {window!r}")

    # -- identity ----------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether any fault mechanism is active."""
        return bool(
            self.loss
            or self.burst_enter
            or self.corrupt
            or self.reorder
            or self.jitter_ms
            or self.outages
        )

    def spec(self) -> str:
        """Canonical ``key=value`` string; parses back via :meth:`parse`.

        Stable across processes, so it can key executor cache entries and
        name sweeps.
        """
        parts: List[str] = []
        defaults = FaultPlan()
        for name in ("loss", "burst_enter", "burst_exit", "burst_loss",
                     "corrupt", "reorder", "reorder_hold_ms", "jitter_ms"):
            value = getattr(self, name)
            if value != getattr(defaults, name):
                parts.append(f"{name}={value:g}")
        for start, end in self.outages:
            parts.append(f"outage={start:g}-{end:g}")
        return ",".join(parts)

    @classmethod
    def parse(cls, spec: str, *, seed: int = 0) -> "FaultPlan":
        """Build a plan from a ``--faults`` CLI string.

        Example: ``loss=0.05,jitter_ms=3,corrupt=0.01,outage=1000-2000``.
        An empty string is the disabled plan.
        """
        kwargs: dict = {"seed": seed}
        outages: List[Tuple[float, float]] = []
        for part in filter(None, (p.strip() for p in spec.split(","))):
            if "=" not in part:
                raise NetworkError(
                    f"bad --faults item {part!r}; expected key=value"
                )
            key, __, value = part.partition("=")
            key = key.strip()
            if key == "outage":
                start, sep, end = value.partition("-")
                if not sep:
                    raise NetworkError(
                        f"bad outage {value!r}; expected start-end in ms"
                    )
                outages.append((float(start), float(end)))
            elif key in ("loss", "burst_enter", "burst_exit", "burst_loss",
                         "corrupt", "reorder", "reorder_hold_ms",
                         "jitter_ms"):
                kwargs[key] = float(value)
            else:
                raise NetworkError(f"unknown --faults key {key!r}")
        return cls(outages=tuple(outages), **kwargs)

    def with_(self, **overrides) -> "FaultPlan":
        """A copy with *overrides* applied (sweep helper)."""
        return replace(self, **overrides)

    # -- the schedule ------------------------------------------------------

    def fates(self, stream: str) -> Iterator[PacketFate]:
        """The deterministic per-packet fate sequence for one named stream.

        A pure function of ``(seed, stream)``: every draw a packet needs is
        consumed in a fixed order, so the n-th offered packet receives the
        same fate no matter which process, backend, or cache path computes
        it.  Outage windows are applied separately by the link (they depend
        on send *time*, not packet index).
        """
        rng = random.Random(derive_seed(self.seed, f"faults:{stream}"))
        bad_state = False
        while True:
            u_loss = rng.random()
            u_burst = rng.random()
            u_exitenter = rng.random()
            u_corrupt = rng.random()
            u_reorder = rng.random()
            u_jitter = rng.random()
            if bad_state:
                bad_state = u_exitenter >= self.burst_exit
            else:
                bad_state = u_exitenter < self.burst_enter
            lost = u_loss < self.loss or (
                bad_state and u_burst < self.burst_loss
            )
            corrupt = not lost and u_corrupt < self.corrupt
            delay = 0.0
            if self.jitter_ms:
                # Inverse-CDF exponential draw from the pre-consumed uniform
                # keeps the stream length fixed per packet; random() is in
                # [0, 1) so the argument stays positive.
                delay += -self.jitter_ms * math.log(1.0 - u_jitter)
            if self.reorder and u_reorder < self.reorder:
                delay += self.reorder_hold_ms
            yield PacketFate(lost=lost, corrupt=corrupt, extra_delay_ms=delay)

    def schedule(self, stream: str, n: int) -> List[PacketFate]:
        """The first *n* packet fates — the property-test surface."""
        fates = self.fates(stream)
        return [next(fates) for __ in range(n)]

    def outage_at(self, t: float) -> bool:
        """Whether *t* (ms) falls inside a scheduled outage window."""
        return any(start <= t < end for start, end in self.outages)


class FaultyLink(Link):
    """A :class:`Link` that subjects offered packets to a :class:`FaultPlan`.

    Fate accounting: every packet offered to :meth:`send` lands in exactly
    one bucket — :attr:`fault_delivered` (reached the receiver intact),
    :attr:`fault_dropped` (random/burst loss, outage, or device tail drop),
    or :attr:`fault_corrupted` (crossed the wire, failed the checksum).
    Once in-flight traffic drains, ``delivered + dropped + corrupted ==
    sent`` holds exactly.

    Degradation listeners (objects with optional ``on_corruption()`` /
    ``on_outage(active)`` methods — see
    :class:`repro.protocols.base.RemoteDisplayProtocol`) are notified when
    corruption is detected at the receiver and at outage edges.
    """

    def __init__(
        self,
        sim: Simulator,
        plan: FaultPlan,
        *,
        name: str = "ether0",
        **link_kwargs,
    ) -> None:
        super().__init__(sim, name=name, **link_kwargs)
        self.plan = plan
        self._fates = plan.fates(name)
        self.fault_sent = 0
        self.fault_delivered = 0
        self.fault_dropped = 0
        self.fault_corrupted = 0
        self._listeners: List[object] = []
        # Lazily-resolved instrument handles (first use only, so fault-free
        # runs keep the seed's exact metric set).
        self._outage_drops_counter = None
        self._outage_drop_channel = None
        self._lost_counter = None
        self._loss_channel = None
        self._corrupt_counter = None
        self._corrupt_channel = None
        self._schedule_outages()

    # -- listeners ---------------------------------------------------------

    def add_listener(self, listener: object) -> None:
        """Register a degradation listener (e.g. a protocol encoder)."""
        self._listeners.append(listener)

    def _notify(self, method: str, *args) -> None:
        for listener in self._listeners:
            hook = getattr(listener, method, None)
            if hook is not None:
                hook(*args)

    # -- outages -----------------------------------------------------------

    def _schedule_outages(self) -> None:
        for start, end in self.plan.outages:
            self.sim.schedule_at(start, lambda s=start, e=end: self._outage_edge(True, e - s))
            self.sim.schedule_at(end, lambda s=start, e=end: self._outage_edge(False, e - s))

    def _outage_edge(self, starting: bool, duration_ms: float) -> None:
        if self._obs is not None:
            self._obs.trace(
                self.sim.now,
                "net.outage.start" if starting else "net.outage.end",
                link=self.name,
            )
            if not starting:
                # Accumulated at the trailing edge so partial windows that
                # outlive the run never over-count.
                self._obs.metrics.counter("net.outage_ms").inc(duration_ms)
        self._notify("on_outage", starting)

    # -- the faulted send path ---------------------------------------------

    def send(
        self, packet: Packet, on_delivered: Optional[DeliveryCallback] = None
    ) -> None:
        self.fault_sent += 1
        fate = next(self._fates)
        now = self.sim.now
        if self.plan.outage_at(now):
            self.fault_dropped += 1
            if self._obs is not None:
                counter = self._outage_drops_counter
                if counter is None:
                    counter = self._outage_drops_counter = (
                        self._obs.metrics.counter("net.fault.outage_drops")
                    )
                    self._outage_drop_channel = self._obs.channel(
                        "net.fault.outage_drop", "link", "wire_bytes"
                    )
                counter.value += 1
                self._outage_drop_channel(now, self.name, packet.wire_bytes)
            return
        if fate.lost:
            self.fault_dropped += 1
            if self._obs is not None:
                counter = self._lost_counter
                if counter is None:
                    counter = self._lost_counter = self._obs.metrics.counter(
                        "net.fault.lost"
                    )
                    self._loss_channel = self._obs.channel(
                        "net.fault.loss", "link", "wire_bytes"
                    )
                counter.value += 1
                self._loss_channel(now, self.name, packet.wire_bytes)
            return
        if self.max_queue is not None and len(self._queue) >= self.max_queue:
            # The device queue is full: the base class tail-drops, which is
            # a *drop* in fate accounting regardless of the drawn fate.
            self.fault_dropped += 1
            super().send(packet, on_delivered)
            return
        if fate.corrupt:
            self.fault_corrupted += 1
            super().send(packet, self._corrupt_receiver(packet))
            return
        super().send(packet, self._intact_receiver(fate, on_delivered))

    def _corrupt_receiver(self, packet: Packet) -> DeliveryCallback:
        def receive(pkt: Packet) -> None:
            # The frame spent wire time, but the checksum fails here: the
            # receiver discards it and the application callback never runs.
            if self._obs is not None:
                counter = self._corrupt_counter
                if counter is None:
                    counter = self._corrupt_counter = self._obs.metrics.counter(
                        "net.corrupt_drops"
                    )
                    self._corrupt_channel = self._obs.channel(
                        "net.fault.corrupt_drop", "link", "wire_bytes"
                    )
                counter.value += 1
                self._corrupt_channel(self.sim.now, self.name, pkt.wire_bytes)
            self._notify("on_corruption")

        return receive

    def _intact_receiver(
        self, fate: PacketFate, on_delivered: Optional[DeliveryCallback]
    ) -> DeliveryCallback:
        def receive(pkt: Packet) -> None:
            if fate.extra_delay_ms > 0.0:
                self.sim.schedule(fate.extra_delay_ms, lambda: arrive(pkt))
            else:
                arrive(pkt)

        def arrive(pkt: Packet) -> None:
            pkt.delivered_at = self.sim.now
            self.fault_delivered += 1
            if on_delivered is not None:
                on_delivered(pkt)

        return receive

    @property
    def fault_in_flight(self) -> int:
        """Offered packets not yet assigned a terminal fate bucket."""
        return (
            self.fault_sent
            - self.fault_delivered
            - self.fault_dropped
            - self.fault_corrupted
        )


@dataclass(frozen=True)
class ChaosResult:
    """Interactive message latency at one loss level of a chaos sweep."""

    loss: float
    latencies_ms: Tuple[float, ...]
    messages_sent: int
    messages_delivered: int
    retransmits: int
    timeouts_fired: int
    segments_abandoned: int
    corrupt_drops: int

    @property
    def delivered_fraction(self) -> float:
        """Messages that eventually arrived, retransmissions included."""
        if self.messages_sent == 0:
            raise NetworkError("empty chaos run")
        return self.messages_delivered / self.messages_sent

    @property
    def mean_latency_ms(self) -> float:
        """Mean send-to-complete latency of the delivered messages."""
        from ..sim.stats import mean

        return mean(list(self.latencies_ms))

    def latency_percentile_ms(self, p: float) -> float:
        """Latency percentile *p* (e.g. 99.0) among delivered messages."""
        from ..sim.stats import percentile

        return percentile(list(self.latencies_ms), p)


def run_chaos_experiment(
    loss_levels,
    *,
    base: Optional[FaultPlan] = None,
    seed: int = 0,
    duration_ms: float = 30_000.0,
    message_interval_ms: float = 50.0,
    message_bytes: int = 256,
    bandwidth_mbps: float = 10.0,
    drain_ms: float = 10_000.0,
) -> List[ChaosResult]:
    """Latency vs loss rate — the degraded-wire sibling of Figures 8–9.

    At each loss level a keystroke-sized message is sent every
    *message_interval_ms* over a reliable connection on a faulted link;
    the recorded latency of each delivered message includes every
    retransmission round it needed.  The zero-loss level of a disabled
    *base* plan runs on a plain :class:`Link`, so the sweep's baseline is
    byte-identical to the clean model.
    """
    from .tcpstream import TcpConnection

    plan_base = base if base is not None else FaultPlan()
    results: List[ChaosResult] = []
    for loss in loss_levels:
        plan = plan_base.with_(loss=loss, seed=seed)
        sim = Simulator()
        link = make_link(sim, plan, bandwidth_mbps=bandwidth_mbps)
        faulted = isinstance(link, FaultyLink)
        conn = TcpConnection(sim, link, reliable=faulted)
        latencies: List[float] = []
        sent = [0]

        def send_one() -> None:
            sent[0] += 1
            start = sim.now
            conn.send_message(
                "input",
                message_bytes,
                kind="chaos-probe",
                on_delivered=lambda m: latencies.append(sim.now - start),
            )

        task = sim.every(message_interval_ms, send_one)
        sim.run_until(duration_ms)
        task.stop()
        # Let retransmission rounds resolve so tail latencies are counted.
        sim.run_until(duration_ms + drain_ms)
        results.append(
            ChaosResult(
                loss=loss,
                latencies_ms=tuple(latencies),
                messages_sent=sent[0],
                messages_delivered=len(latencies),
                retransmits=conn.retransmits,
                timeouts_fired=conn.timeouts_fired,
                segments_abandoned=conn.segments_abandoned,
                corrupt_drops=link.fault_corrupted if faulted else 0,
            )
        )
    return results


def make_link(
    sim: Simulator,
    plan: Optional[FaultPlan] = None,
    *,
    name: str = "ether0",
    **link_kwargs,
) -> Link:
    """The one link constructor experiments should use.

    ``plan=None`` or a disabled plan builds a plain :class:`Link` — the
    code path, event sequence, and trace bytes of a no-fault run are
    completely unchanged.  An enabled plan builds a :class:`FaultyLink`.
    """
    if plan is None or not plan.enabled:
        return Link(sim, name=name, **link_kwargs)
    return FaultyLink(sim, plan, name=name, **link_kwargs)
