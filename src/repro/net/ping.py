"""RTT measurement under load (Figures 8 and 9).

The paper: "For each load level, we ran ping for 60 seconds and took the
average and variance in RTT for all packets sent.  We used the default
packet size in ping, which is 64 bytes.  64 bytes is roughly the size of a
typical input channel message, such as a keystroke."

A :class:`Pinger` sends a 64-byte probe each second; the echo transits the
same shared link (both directions contend on the medium), so the RTT is
two queueing+transmission delays plus two propagations — exactly the
quantity whose knee and jitter the figures show.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..sim.engine import Simulator
from ..sim.rng import RngRegistry
from ..sim.stats import mean, variance
from .faults import FaultPlan, make_link
from .link import Link
from .loadgen import PoissonLoadGenerator
from .packet import Packet

#: ping's default: 64-byte probes (§6.2).
PING_PACKET_BYTES = 64
#: One probe per second, ping's default interval.
PING_INTERVAL_MS = 1000.0


class Pinger:
    """Sends periodic probes over *link* and records round-trip times."""

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        *,
        interval_ms: float = PING_INTERVAL_MS,
        packet_bytes: int = PING_PACKET_BYTES,
    ) -> None:
        self.sim = sim
        self.link = link
        self.interval_ms = interval_ms
        self.packet_bytes = packet_bytes
        self.rtts_ms: List[float] = []
        self.probes_sent = 0
        self._task = sim.every(interval_ms, self._probe)

    @property
    def probes_lost(self) -> int:
        """Probes whose echo never came back (possible on faulted links)."""
        return self.probes_sent - len(self.rtts_ms)

    def _probe(self) -> None:
        self.probes_sent += 1
        sent_at = self.sim.now

        def echoed(pkt: Packet) -> None:
            self.rtts_ms.append(self.sim.now - sent_at)

        def reached_remote(pkt: Packet) -> None:
            # The echo reply contends for the same shared medium.
            self.link.send(
                Packet(self.packet_bytes, channel="ping-reply"), echoed
            )

        self.link.send(
            Packet(self.packet_bytes, channel="ping"), reached_remote
        )

    def stop(self) -> None:
        """Stop probing."""
        self._task.stop()


@dataclass
class PingResult:
    """RTT statistics at one offered-load level."""

    offered_mbps: float
    rtts_ms: List[float] = field(default_factory=list)

    @property
    def mean_rtt_ms(self) -> float:
        """Average round-trip time (Figure 8's y-axis)."""
        return mean(self.rtts_ms)

    @property
    def rtt_variance(self) -> float:
        """RTT variance (Figure 9's y-axis)."""
        return variance(self.rtts_ms)


def run_ping_experiment(
    offered_mbps_levels: Sequence[float],
    *,
    bandwidth_mbps: float = 10.0,
    duration_ms: float = 60_000.0,
    seed: int = 0,
    faults: Optional[FaultPlan] = None,
) -> List[PingResult]:
    """Figures 8–9: RTT mean and variance per offered-load level.

    Each level runs on a fresh link for *duration_ms* (the paper's 60 s),
    with Poisson synthetic load and a 1 Hz 64-byte pinger sharing the
    medium.  Passing *faults* runs every level on a faulted link (the same
    fault schedule at each level — common random numbers); ``None`` or a
    disabled plan is the paper's perfect wire, byte for byte.
    """
    rngs = RngRegistry(seed)
    results: List[PingResult] = []
    for level in offered_mbps_levels:
        sim = Simulator()
        link = make_link(sim, faults, bandwidth_mbps=bandwidth_mbps)
        load = PoissonLoadGenerator(
            sim, link, level, rngs.stream(f"ping-load:{level}")
        )
        pinger = Pinger(sim, link)
        sim.run_until(duration_ms)
        load.stop()
        pinger.stop()
        # Let in-flight probes drain so late RTTs are counted.
        sim.run_until(duration_ms + 5_000.0)
        results.append(PingResult(offered_mbps=level, rtts_ms=list(pinger.rtts_ms)))
    return results
