"""Tail-latency SLOs: budgets, windowed percentiles, burn-rate accounting.

The paper's thesis is a latency *budget* — interaction must complete
within human perception thresholds — and this package turns that into the
modern SLO formulation: per-operation :class:`LatencyBudget` contracts,
:class:`WindowedPercentiles` rollups (p50/p90/p99/p99.9 per time window,
exact under window merging), and :class:`SloTracker` error-budget / burn
accounting, all deterministic folds over the simulated latency stream.

``experiments`` registers the three SLO scenarios (``slo_burst``,
``slo_chaos_grid``, ``slo_fleet``); it is imported by :mod:`repro.cli`
like every other experiment module, not from here, so importing the SLO
primitives never drags in the experiment harness.
"""

from ..errors import SloError
from .budget import LatencyBudget, SloReport, SloTracker
from .windows import PERCENTILE_LEVELS, WindowedPercentiles

__all__ = [
    "LatencyBudget",
    "PERCENTILE_LEVELS",
    "SloError",
    "SloReport",
    "SloTracker",
    "WindowedPercentiles",
]
