"""Windowed percentile tracking on fixed latency buckets.

Production latency is judged on *windows* — "p99 over the last minute" —
not on a whole-run average, and the SLO layer needs that view without
keeping raw samples.  :class:`WindowedPercentiles` buckets each sample by
its simulation timestamp into fixed time windows, each window holding the
same fixed-bucket state an :class:`~repro.obs.metrics.Histogram` keeps
(bucket counts + count/sum/min/max), and answers p50/p90/p99/p99.9 per
window, over any merged subset of windows, or over the whole stream.

The quantile estimator is :func:`repro.obs.metrics.bucket_quantile`, a
pure function of the aggregate bucket state.  Because merging windows sums
exactly the state one big window would have accumulated, the merge-of-
windows quantile equals the whole-stream quantile *exactly*, and both
agree with the true sample percentile within bin resolution (the estimate
and the exact nearest-rank sample always share a bucket).  The property
suite in ``tests/slo/test_windows.py`` pins all three claims.

Everything here is a pure function of the observed ``(timestamp, value)``
stream — no wall clock, no randomness — so trackers embedded in sweep
points keep the executor's byte-identity contract for free.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SloError
from ..obs.metrics import DEFAULT_BOUNDS_MS, bucket_quantile

#: The percentile levels the SLO layer reports everywhere, in order.
PERCENTILE_LEVELS: Tuple[float, ...] = (50.0, 90.0, 99.0, 99.9)


class _Window:
    """One time window's histogram state (a bare-metal obs Histogram)."""

    __slots__ = ("bucket_counts", "count", "total", "vmin", "vmax")

    def __init__(self, num_buckets: int) -> None:
        self.bucket_counts: List[int] = [0] * num_buckets
        self.count = 0
        self.total = 0.0
        self.vmin = 0.0
        self.vmax = 0.0

    def add(self, bucket: int, value: float) -> None:
        self.bucket_counts[bucket] += 1
        if self.count == 0:
            self.vmin = value
            self.vmax = value
        else:
            if value < self.vmin:
                self.vmin = value
            if value > self.vmax:
                self.vmax = value
        self.count += 1
        self.total += value


class WindowedPercentiles:
    """Streaming time-window percentile rollups on fixed buckets.

    ``bounds`` are the inclusive bucket upper edges (defaulting to the obs
    layer's latency bounds); ``window_ms`` is the rollup granularity.
    :meth:`observe` files each sample under window ``floor(t / window_ms)``;
    windows materialize lazily, so idle stretches cost nothing and *empty*
    windows simply do not exist (asking one for a quantile raises).
    """

    def __init__(
        self,
        *,
        bounds: Sequence[float] = DEFAULT_BOUNDS_MS,
        window_ms: float = 1_000.0,
    ) -> None:
        ordered = tuple(float(b) for b in bounds)
        if not ordered or list(ordered) != sorted(set(ordered)):
            raise SloError(
                "window bounds must be non-empty and strictly increasing "
                f"(got {bounds!r})"
            )
        if window_ms <= 0:
            raise SloError(f"window length must be positive, got {window_ms}")
        self.bounds = ordered
        self.window_ms = float(window_ms)
        self._windows: Dict[int, _Window] = {}

    # -- recording -------------------------------------------------------

    def observe(self, t_ms: float, value: float) -> None:
        """File one sample observed at simulation time *t_ms*."""
        index = math.floor(t_ms / self.window_ms)
        window = self._windows.get(index)
        if window is None:
            window = self._windows[index] = _Window(len(self.bounds) + 1)
        window.add(bisect_left(self.bounds, float(value)), float(value))

    # -- aggregate views -------------------------------------------------

    @property
    def count(self) -> int:
        """Samples observed across every window."""
        return sum(w.count for w in self._windows.values())

    def window_indices(self) -> List[int]:
        """Indices of the non-empty windows, in time order."""
        return sorted(self._windows)

    def window_count(self, index: int) -> int:
        """Samples in window *index* (0 when the window never materialized)."""
        window = self._windows.get(index)
        return window.count if window is not None else 0

    def _merged(
        self, indices: Optional[Sequence[int]]
    ) -> Tuple[List[int], int, float, float]:
        chosen = self.window_indices() if indices is None else list(indices)
        counts = [0] * (len(self.bounds) + 1)
        count = 0
        vmin = vmax = 0.0
        for index in chosen:
            window = self._windows.get(index)
            if window is None or window.count == 0:
                continue
            for bucket, c in enumerate(window.bucket_counts):
                counts[bucket] += c
            if count == 0:
                vmin, vmax = window.vmin, window.vmax
            else:
                vmin = min(vmin, window.vmin)
                vmax = max(vmax, window.vmax)
            count += window.count
        return counts, count, vmin, vmax

    def quantile(
        self, pct: float, *, windows: Optional[Sequence[int]] = None
    ) -> float:
        """The *pct* quantile estimate over *windows* (default: all).

        Merging is exact — summed bucket counts, min of mins, max of
        maxes — so ``quantile(p)`` equals the quantile a single untiled
        histogram of the same samples would report, byte for byte.
        Raises :class:`~repro.errors.SloError` when the selected windows
        hold no samples.
        """
        counts, count, vmin, vmax = self._merged(windows)
        if count == 0:
            raise SloError("quantile over empty windows")
        return bucket_quantile(self.bounds, counts, count, vmin, vmax, pct)

    def window_quantile(self, index: int, pct: float) -> float:
        """The *pct* quantile of the single window *index*."""
        return self.quantile(pct, windows=[index])

    def rollup(
        self, levels: Sequence[float] = PERCENTILE_LEVELS
    ) -> List[Tuple[int, int, List[float]]]:
        """Per-window ``(index, samples, [quantile per level])`` rows.

        The streaming rollup a dashboard would render: one row per
        non-empty window in time order.
        """
        return [
            (
                index,
                self._windows[index].count,
                [self.window_quantile(index, pct) for pct in levels],
            )
            for index in self.window_indices()
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<WindowedPercentiles {len(self._windows)} windows, "
            f"{self.count} samples, window={self.window_ms:g} ms>"
        )
