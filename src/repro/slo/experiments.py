"""Registered SLO experiments: burst tails, chaos × load grid, fleet burn.

Three scenarios take the SLO layer through the same executor pipeline as
every figure (``--jobs``, result cache, tracing all compose):

``slo_burst``
    Equal means, different tails: a Poisson and an on-off (MMPP) load
    process offer the *same* mean utilization to the shared link while
    open-loop probes measure delay against a 10 ms budget.  Means barely
    move; p99 and the error-budget burn blow up under bursts — the tail
    argument for SLOs in one table.

``slo_chaos_grid``
    A FaultPlan × session-count grid over a co-safe fleet: each cell
    reports uncorrected vs coordinated-omission-corrected p99 and the
    100 ms budget's violation rate and burn.  The corrected column is the
    one that sees outages; the uncorrected column is what a naive
    closed-loop harness would have reported.

``slo_fleet``
    The placement shoot-out rerun with co-safe sessions and a mid-run
    server failure, raced on corrected p99/p99.9 and error-budget burn —
    tail-aware policy comparison instead of mean-aware.

The chaos grid deliberately sweeps its *own* fault specs (that is the
grid's x-axis), so the global ``--faults`` flag is not composed into the
cells; the sweep name still carries the fault suffix so cache entries
stay distinct.  All sweeps are byte-identical across serial, ``--jobs N``,
and warm-cache runs on either kernel.
"""

from __future__ import annotations

from functools import partial
from typing import List, Tuple

from ..core.registry import experiment
from ..core.report import format_series, format_table, write_csv

#: ``slo_burst`` probe budget: the paper's 10 ms computing threshold.
BURST_BUDGET_MS = 10.0

#: SLO target for every scenario here: 99% of samples within budget.
SLO_TARGET = 0.99

#: Offered-load levels (link utilization) swept by ``slo_burst``.
BURST_RHO_LEVELS = [0.3, 0.5, 0.7, 0.85]

#: Arrival processes raced by ``slo_burst`` (output row order).
BURST_PROCESSES = ["poisson", "onoff"]

#: On-off burst shape: ON a quarter of a 500 ms mean cycle, so the ON-state
#: rate is 4x the mean — bursty enough to queue, mild enough to stay stable.
BURST_ON_FRACTION = 0.25
BURST_CYCLE_MS = 500.0

#: ``slo_burst`` link and probe cadence (matches the analytic link probe).
BURST_BANDWIDTH_MBPS = 10.0
BURST_PROBE_INTERVAL_MS = 5.0
BURST_DURATION_MS = 20_000.0
BURST_WARMUP_MS = 1_000.0

#: Fault scenarios on the chaos grid's x-axis: ``(label, FaultPlan spec)``.
CHAOS_SCENARIOS = [
    ("clean", ""),
    ("loss", "loss=0.03"),
    ("burst", "burst_enter=0.02,burst_exit=0.25,burst_loss=1"),
    ("outage", "outage=3000-3500"),
]

#: Session counts on the chaos grid's y-axis.
CHAOS_SESSIONS = [4, 8, 12]

#: Chaos-grid fleet shape and interaction budget (the 100 ms perception
#: threshold at p99, the same contract ``fleet_capacity`` enforces).
CHAOS_SERVERS = 2
CHAOS_BACKBONE_MBPS = 1.0
CHAOS_BUDGET_MS = 100.0

#: Placement policies raced by ``slo_fleet`` (output row order).
FLEET_POLICIES_ORDER = [
    "random",
    "round_robin",
    "least_loaded",
    "latency_aware",
    "session_affinity",
]

#: ``slo_fleet`` fleet shape: servers, per-server cap, sessions, budget.
FLEET_SERVERS = 4
FLEET_CAPACITY = 8
FLEET_SESSIONS = 20
FLEET_BACKBONE_MBPS = 1.0
#: The fleet race budgets the keystroke echo itself: tighter than the
#: 100 ms whole-interaction threshold, loose enough that only scheduling
#: stalls and post-failure crowding violate it — which is the point.
FLEET_BUDGET_MS = 30.0

#: Warmup (setup traffic drains, samples discarded) and measure windows.
WARMUP_MS = 1_500.0
MEASURE_MS = 4_000.0
FLEET_MEASURE_MS = 10_000.0


def _percentile(samples: List[float], pct: float) -> float:
    """Nearest-rank percentile of *samples* (0.0 when empty)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = int(round(pct / 100.0 * (len(ordered) - 1)))
    return ordered[min(rank, len(ordered) - 1)]


def _slo_burst_point(
    point: Tuple[str, float],
    *,
    seed: int,
    faults: str = "",
    fault_seed: int = 0,
) -> Tuple[int, float, float, float, float, float, float]:
    """One burst cell: (n, util, p50, p90, p99, viol rate, burn).

    Open-loop probes are coordinated-omission-safe by construction — the
    probe stream never waits for an answer, so every intended send happens
    on time and latency is measured from it.
    """
    from ..net.faults import FaultPlan, make_link
    from ..net.loadgen import OnOffLoadGenerator, PoissonLoadGenerator
    from ..net.packet import Packet
    from ..sim.engine import Simulator
    from ..sim.rng import RngRegistry, derive_seed
    from .budget import LatencyBudget, SloTracker

    process, rho = point
    plan = FaultPlan.parse(faults, seed=fault_seed) if faults else None
    rngs = RngRegistry(derive_seed(seed, f"slo_burst:{process}:{rho}"))
    sim = Simulator()
    link = make_link(
        sim, plan, name="slo0", bandwidth_mbps=BURST_BANDWIDTH_MBPS
    )
    load_rng = rngs.stream("slo:load")
    mean_mbps = rho * BURST_BANDWIDTH_MBPS
    if process == "poisson":
        load = PoissonLoadGenerator(sim, link, mean_mbps, load_rng)
    else:
        load = OnOffLoadGenerator(
            sim,
            link,
            mean_mbps,
            load_rng,
            on_fraction=BURST_ON_FRACTION,
            cycle_ms=BURST_CYCLE_MS,
        )
    tracker = SloTracker(
        LatencyBudget("probe", BURST_BUDGET_MS, target=SLO_TARGET)
    )
    probes = rngs.stream("slo:probes")

    def probe() -> None:
        sent_at = sim.now
        if sent_at >= BURST_WARMUP_MS:

            def delivered(packet) -> None:
                tracker.observe(sent_at, sim.now - sent_at)

            link.send(Packet(64, channel="probe"), delivered)
        else:
            link.send(Packet(64, channel="probe"))
        sim.schedule(probes.expovariate(1.0 / BURST_PROBE_INTERVAL_MS), probe)

    sim.schedule(probes.expovariate(1.0 / BURST_PROBE_INTERVAL_MS), probe)
    sim.run_until(BURST_DURATION_MS)
    load.stop()
    report = tracker.report()
    return (
        report.samples,
        link.utilization(BURST_WARMUP_MS, BURST_DURATION_MS),
        report.percentiles[0],
        report.percentiles[1],
        report.percentiles[2],
        report.violation_rate,
        report.budget_burn,
    )


def _drive_co_fleet(
    fleet,
    sessions: int,
    measure_ms: float,
    rates=None,
    budget_ms: float = CHAOS_BUDGET_MS,
):
    """Open co-safe sessions, warm up, attach a tracker, and measure.

    Mirrors the fleet experiments' driver (same rate/char cycling) but
    resets *both* latency series after warmup and only attaches the SLO
    tracker for the measurement window, so warmup traffic never burns
    budget.  Returns the installed :class:`~repro.slo.SloTracker`.
    """
    from .budget import LatencyBudget, SloTracker

    rates = [1.0, 2.0, 4.0] if rates is None else rates
    chars = [4, 8, 16]
    for i in range(sessions):
        fleet.open_session(
            f"u{i:03d}",
            rate_hz=rates[i % len(rates)],
            display_chars=chars[i % len(chars)],
        )
    fleet.run(WARMUP_MS)
    for session in fleet.sessions.values():
        session.latencies_ms.clear()
        session.intended_latencies_ms.clear()
    tracker = SloTracker(
        LatencyBudget("interaction", budget_ms, target=SLO_TARGET)
    )
    fleet.slo_tracker = tracker
    fleet.run(measure_ms)
    return tracker


def _slo_chaos_point(
    cell: Tuple[str, str, int],
    *,
    seed: int,
    fault_seed: int = 0,
) -> Tuple[int, int, float, float, float, float, int]:
    """One chaos cell: (n_unc, n_cor, p99_unc, p99_cor, viol, burn, missed)."""
    from ..core.server import ServerConfig
    from ..net.faults import FaultPlan
    from ..sim.rng import derive_seed
    from ..fleet.cluster import Fleet, FleetConfig

    label, spec, sessions = cell
    plan = (
        FaultPlan.parse(spec, seed=derive_seed(fault_seed, label))
        if spec
        else None
    )
    config = FleetConfig(
        server=ServerConfig.tse(include_idle_activity=False),
        num_servers=CHAOS_SERVERS,
        placement="round_robin",
        admission_mode="reject",
        capacity_per_server=sessions,  # every offered session admits
        backbone_mbps=CHAOS_BACKBONE_MBPS,
        backbone_faults=plan,
        co_safe_sessions=True,
    )
    fleet = Fleet(
        config, seed=derive_seed(seed, f"slo_chaos:{label}:{sessions}")
    )
    tracker = _drive_co_fleet(fleet, sessions, MEASURE_MS)
    uncorrected = fleet.latencies_ms()
    corrected = fleet.corrected_latencies_ms()
    return (
        len(uncorrected),
        len(corrected),
        _percentile(uncorrected, 99.0),
        _percentile(corrected, 99.0),
        tracker.violation_rate,
        tracker.budget_burn,
        sum(s.missed_ticks for s in fleet.sessions.values()),
    )


def _slo_fleet_point(
    policy: str,
    *,
    seed: int,
    faults: str = "",
    fault_seed: int = 0,
) -> Tuple[float, float, float, float, int]:
    """One policy race: (p99, p99.9, burn, worst burn, migrations)."""
    from ..core.server import ServerConfig
    from ..net.faults import FaultPlan
    from ..sim.rng import derive_seed
    from ..fleet.cluster import Fleet, FleetConfig
    from ..fleet.experiments import PLACEMENT_HOGS, _install_hogs

    plan = FaultPlan.parse(faults, seed=fault_seed) if faults else None
    config = FleetConfig(
        # Linux/X for the same reason as fleet_placement, but *with* the
        # paper's idle-activity stalls: those background pauses are tail
        # events — invisible at the mean, decisive for budget burn.
        server=ServerConfig.linux(),
        num_servers=FLEET_SERVERS,
        placement=policy,
        admission_mode="reject",
        capacity_per_server=FLEET_CAPACITY,
        backbone_mbps=FLEET_BACKBONE_MBPS,
        backbone_faults=plan,
        co_safe_sessions=True,
    )
    fleet = Fleet(config, seed=derive_seed(seed, f"slo_fleet:{policy}"))
    _install_hogs(fleet)
    failed_index = PLACEMENT_HOGS.index(0)
    fleet.sim.schedule(
        WARMUP_MS + FLEET_MEASURE_MS / 2, lambda: fleet.fail_server(failed_index)
    )
    # Faster typists than the chaos grid: the added closed-loop pressure
    # is what separates the policies' tails after the failure.
    tracker = _drive_co_fleet(
        fleet,
        FLEET_SESSIONS,
        FLEET_MEASURE_MS,
        rates=[2.0, 4.0, 8.0],
        budget_ms=FLEET_BUDGET_MS,
    )
    corrected = sorted(fleet.corrected_latencies_ms())
    return (
        _percentile(corrected, 99.0),
        _percentile(corrected, 99.9),
        tracker.budget_burn,
        tracker.worst_window_burn(),
        fleet.migrations,
    )


def _slo_burst(ctx) -> None:
    """Race both arrival processes over the rho sweep; print tail blow-up."""
    grid = [
        (process, rho)
        for process in BURST_PROCESSES
        for rho in BURST_RHO_LEVELS
    ]
    points = ctx.executor.map(
        "slo_burst" + ctx.fault_suffix,
        partial(
            _slo_burst_point,
            seed=ctx.seed,
            faults=ctx.faults or "",
            fault_seed=ctx.fault_seed,
        ),
        grid,
        seed=ctx.seed,
    )
    by_cell = dict(zip(grid, points))
    rows = [
        (
            process,
            f"{rho:.2f}",
            n,
            f"{util * 100:.0f}%",
            f"{p50:.2f}",
            f"{p90:.2f}",
            f"{p99:.2f}",
            f"{viol * 100:.2f}%",
            f"{burn:.2f}",
        )
        for (process, rho), (n, util, p50, p90, p99, viol, burn) in zip(
            grid, points
        )
    ]
    ctx.out.write(
        format_table(
            [
                "process",
                "rho",
                "n",
                "util",
                "p50 (ms)",
                "p90 (ms)",
                "p99 (ms)",
                "viol rate",
                f"burn ({BURST_BUDGET_MS:.0f} ms)",
            ],
            rows,
            title="Equal-mean load, unequal tails (10 ms probe budget)",
        )
        + "\n"
    )
    ctx.out.write(
        format_series(
            "rho",
            "p99 blow-up (onoff / poisson)",
            [f"{rho:.2f}" for rho in BURST_RHO_LEVELS],
            [
                by_cell[("onoff", rho)][4] / by_cell[("poisson", rho)][4]
                for rho in BURST_RHO_LEVELS
            ],
            title="Tail amplification from burstiness alone",
            y_format="{:.2f}x",
        )
        + "\n"
    )
    if ctx.csv_dir:
        write_csv(
            f"{ctx.csv_dir}/slo_burst.csv",
            [
                "process",
                "rho",
                "samples",
                "utilization",
                "p50_ms",
                "p90_ms",
                "p99_ms",
                "violation_rate",
                "budget_burn",
            ],
            [
                (process, rho, n, util, p50, p90, p99, viol, burn)
                for (process, rho), (n, util, p50, p90, p99, viol, burn) in zip(
                    grid, points
                )
            ],
        )


def _slo_chaos_grid(ctx) -> None:
    """Sweep fault scenarios against session counts on a co-safe fleet."""
    grid = [
        (label, spec, sessions)
        for (label, spec) in CHAOS_SCENARIOS
        for sessions in CHAOS_SESSIONS
    ]
    points = ctx.executor.map(
        "slo_chaos_grid" + ctx.fault_suffix,
        partial(_slo_chaos_point, seed=ctx.seed, fault_seed=ctx.fault_seed),
        grid,
        seed=ctx.seed,
    )
    rows = [
        (
            label,
            sessions,
            n_unc,
            n_cor,
            f"{p99_unc:.1f}",
            f"{p99_cor:.1f}",
            f"{viol * 100:.2f}%",
            f"{burn:.2f}",
            missed,
        )
        for (label, __, sessions), (
            n_unc,
            n_cor,
            p99_unc,
            p99_cor,
            viol,
            burn,
            missed,
        ) in zip(grid, points)
    ]
    ctx.out.write(
        format_table(
            [
                "fault",
                "sessions",
                "n uncorr",
                "n corr",
                "p99 uncorr",
                "p99 corr",
                "viol rate",
                f"burn ({CHAOS_BUDGET_MS:.0f} ms)",
                "missed",
            ],
            rows,
            title=(
                "Chaos x load grid: coordinated omission hides the fault "
                "column's tail"
            ),
        )
        + "\n"
    )
    if ctx.csv_dir:
        write_csv(
            f"{ctx.csv_dir}/slo_chaos_grid.csv",
            [
                "fault",
                "sessions",
                "n_uncorrected",
                "n_corrected",
                "p99_uncorrected_ms",
                "p99_corrected_ms",
                "violation_rate",
                "budget_burn",
                "missed_ticks",
            ],
            [
                (label, sessions, n_unc, n_cor, p99_unc, p99_cor, viol, burn, missed)
                for (label, __, sessions), (
                    n_unc,
                    n_cor,
                    p99_unc,
                    p99_cor,
                    viol,
                    burn,
                    missed,
                ) in zip(grid, points)
            ],
        )


def _slo_fleet(ctx) -> None:
    """Race placement policies on p99/p99.9 and burn under a failure."""
    points = ctx.executor.map(
        "slo_fleet" + ctx.fault_suffix,
        partial(
            _slo_fleet_point,
            seed=ctx.seed,
            faults=ctx.faults or "",
            fault_seed=ctx.fault_seed,
        ),
        list(FLEET_POLICIES_ORDER),
        seed=ctx.seed,
    )
    rows = [
        (
            policy,
            f"{p99:.1f}",
            f"{p999:.1f}",
            f"{burn:.2f}",
            f"{worst:.2f}",
            migrations,
        )
        for policy, (p99, p999, burn, worst, migrations) in zip(
            FLEET_POLICIES_ORDER, points
        )
    ]
    ctx.out.write(
        format_table(
            [
                "policy",
                "p99 (ms)",
                "p99.9 (ms)",
                f"burn ({FLEET_BUDGET_MS:.0f} ms)",
                "worst burn",
                "migrations",
            ],
            rows,
            title=(
                f"Placement under failure, CO-corrected: {FLEET_SESSIONS} "
                f"sessions on {FLEET_SERVERS} servers"
            ),
        )
        + "\n"
    )
    if ctx.csv_dir:
        write_csv(
            f"{ctx.csv_dir}/slo_fleet.csv",
            [
                "policy",
                "p99_ms",
                "p999_ms",
                "budget_burn",
                "worst_window_burn",
                "migrations",
            ],
            [
                (policy, p99, p999, burn, worst, migrations)
                for policy, (p99, p999, burn, worst, migrations) in zip(
                    FLEET_POLICIES_ORDER, points
                )
            ],
        )


_REGISTERED = False


def _register() -> None:
    """Register this module's experiments; idempotent.

    Driven by ``repro.cli`` at this module's canonical position in the
    registration sequence (see ``repro.fleet.experiments._register`` for
    why import-time decorators would make registry order depend on which
    module a process imports first).
    """
    global _REGISTERED
    if _REGISTERED:
        return
    _REGISTERED = True
    experiment(
        "slo_burst",
        title="Burst tails: equal-mean Poisson vs on-off load against a budget",
        group="slo",
    )(_slo_burst)
    experiment(
        "slo_chaos_grid",
        title="Chaos x load grid: corrected vs uncorrected p99 and budget burn",
        group="slo",
    )(_slo_chaos_grid)
    experiment(
        "slo_fleet",
        title="Placement policies raced on corrected tails and budget burn",
        group="slo",
    )(_slo_fleet)


# Importing any experiments module alone must still populate the whole
# registry in canonical order: pull in the CLI, which calls every
# module's ``_register`` in sequence.
from .. import cli as _cli  # noqa: E402,F401
