"""SLO definitions: latency budgets, violation counters, error-budget burn.

*10-millisecond Computing* argues the metric that matters for interactive
systems is the latency *tail* against a concrete budget, not the mean.
This module gives the repo that vocabulary:

* :class:`LatencyBudget` — one operation's contract: "``target`` of
  samples complete within ``budget_ms``" (e.g. 99% of keystroke echoes
  within 100 ms).  ``1 - target`` is the **error budget**: the fraction
  of samples *allowed* to violate.
* :class:`SloTracker` — the live accountant: feeds every sample into a
  :class:`~repro.slo.windows.WindowedPercentiles` rollup, counts
  violations globally and per window, and reports error-budget
  consumption and burn rate.  **Burn rate** is the SRE quantity: observed
  violation fraction divided by the allowed fraction, so burn 1.0 means
  "exactly spending the budget", burn 10 means "ten times over".
* :class:`SloReport` — one frozen row of the accounting, rendered by
  :func:`repro.core.report.format_slo_summary`.

When the tracker runs inside an observation (``with observe():`` /
``repro trace``), it publishes ``slo.<operation>.samples`` /
``slo.<operation>.violations`` counters, a ``slo.<operation>.latency_ms``
histogram, and a ``slo.<operation>.burn_rate`` gauge through the ambient
metrics registry, so SLO state rides the standard trace artifacts.  All
handles resolve lazily on first sample — an idle tracker leaves no
metrics behind, keeping pre-SLO trace artifacts byte-identical.

Determinism: the tracker is a pure fold over the observed
``(timestamp, latency)`` stream; identical streams produce identical
reports on every executor path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ..errors import SloError
from ..obs import current_observation
from ..obs.metrics import DEFAULT_BOUNDS_MS
from .windows import PERCENTILE_LEVELS, WindowedPercentiles


@dataclass(frozen=True)
class LatencyBudget:
    """One operation's latency SLO: ``target`` of samples within ``budget_ms``.

    ``target`` is a fraction in (0, 1); the remainder is the error budget.
    The default target 0.99 with a 100 ms budget is the paper's perception
    threshold applied at p99 — the contract the fleet experiments already
    enforce informally.
    """

    operation: str
    budget_ms: float
    target: float = 0.99

    def __post_init__(self) -> None:
        if not self.operation:
            raise SloError("a latency budget needs an operation name")
        if self.budget_ms <= 0:
            raise SloError(f"latency budget must be positive, got {self.budget_ms}")
        if not 0.0 < self.target < 1.0:
            raise SloError(
                f"SLO target must be a fraction in (0, 1), got {self.target}"
            )

    @property
    def allowed_violation_fraction(self) -> float:
        """The error budget: the fraction of samples allowed past the budget."""
        return 1.0 - self.target


@dataclass(frozen=True)
class SloReport:
    """One operation's SLO accounting over a finished measurement.

    ``budget_burn`` is the whole-stream burn rate (violation fraction over
    allowed fraction); ``worst_window_burn`` is the same ratio in the
    single worst time window — the quantity paging policies alert on.
    ``percentiles`` aligns with
    :data:`~repro.slo.windows.PERCENTILE_LEVELS` (p50/p90/p99/p99.9).
    """

    operation: str
    budget_ms: float
    target: float
    samples: int
    violations: int
    percentiles: Tuple[float, ...]
    worst_window_burn: float = 0.0

    @property
    def violation_rate(self) -> float:
        """Fraction of samples that blew the budget (0.0 when empty)."""
        return self.violations / self.samples if self.samples else 0.0

    @property
    def budget_burn(self) -> float:
        """Error-budget burn rate: violation rate over the allowed rate."""
        return self.violation_rate / (1.0 - self.target)


class SloTracker:
    """The live SLO accountant for one operation; see module docstring."""

    def __init__(
        self,
        budget: LatencyBudget,
        *,
        window_ms: float = 1_000.0,
        bounds: Sequence[float] = DEFAULT_BOUNDS_MS,
    ) -> None:
        self.budget = budget
        self.windows = WindowedPercentiles(bounds=bounds, window_ms=window_ms)
        self.samples = 0
        self.violations = 0
        #: per-window ``index -> (samples, violations)``, insertion-ordered.
        self._window_counts: Dict[int, Tuple[int, int]] = {}
        # Lazy instrument handles: resolved on the first sample only, so an
        # idle tracker adds nothing to a trace artifact.
        self._obs = current_observation()
        self._samples_counter = None
        self._violations_counter = None
        self._latency_histogram = None

    # -- recording -------------------------------------------------------

    def observe(self, t_ms: float, latency_ms: float) -> None:
        """Fold one latency sample observed at simulation time *t_ms*."""
        self.windows.observe(t_ms, latency_ms)
        self.samples += 1
        violated = latency_ms > self.budget.budget_ms
        if violated:
            self.violations += 1
        index = math.floor(t_ms / self.windows.window_ms)
        seen, bad = self._window_counts.get(index, (0, 0))
        self._window_counts[index] = (seen + 1, bad + (1 if violated else 0))
        if self._obs is not None:
            self._publish(latency_ms, violated)

    def _publish(self, latency_ms: float, violated: bool) -> None:
        name = self.budget.operation
        if self._samples_counter is None:
            metrics = self._obs.metrics
            self._samples_counter = metrics.counter(f"slo.{name}.samples")
            self._violations_counter = metrics.counter(f"slo.{name}.violations")
            self._latency_histogram = metrics.histogram(f"slo.{name}.latency_ms")
        self._samples_counter.value += 1
        if violated:
            self._violations_counter.value += 1
        self._latency_histogram.observe(latency_ms)

    # -- accounting ------------------------------------------------------

    @property
    def violation_rate(self) -> float:
        """Fraction of samples past the budget so far (0.0 when empty)."""
        return self.violations / self.samples if self.samples else 0.0

    @property
    def budget_burn(self) -> float:
        """Whole-stream error-budget burn rate (1.0 = exactly on budget)."""
        return self.violation_rate / self.budget.allowed_violation_fraction

    def worst_window_burn(self) -> float:
        """The burn rate of the single worst window (0.0 when empty)."""
        worst = 0.0
        for seen, bad in self._window_counts.values():
            if seen:
                worst = max(
                    worst, (bad / seen) / self.budget.allowed_violation_fraction
                )
        return worst

    def report(
        self, levels: Sequence[float] = PERCENTILE_LEVELS
    ) -> SloReport:
        """The finished accounting as one frozen row.

        Publishes the ``slo.<operation>.burn_rate`` gauge when observing,
        so trace metrics carry the final budget state.
        """
        if self.samples == 0:
            raise SloError(
                f"SLO report for {self.budget.operation!r} with no samples"
            )
        report = SloReport(
            operation=self.budget.operation,
            budget_ms=self.budget.budget_ms,
            target=self.budget.target,
            samples=self.samples,
            violations=self.violations,
            percentiles=tuple(self.windows.quantile(pct) for pct in levels),
            worst_window_burn=self.worst_window_burn(),
        )
        if self._obs is not None and self._samples_counter is not None:
            self._obs.metrics.gauge(
                f"slo.{self.budget.operation}.burn_rate"
            ).set(report.budget_burn)
        return report

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SloTracker {self.budget.operation} samples={self.samples} "
            f"violations={self.violations}>"
        )
