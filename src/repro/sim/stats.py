"""Summary statistics used by the analysis framework.

Plain-Python implementations (no numpy dependency in the library core) of the
handful of statistics the paper reports: means, variances, percentiles,
min/avg/max summaries, histograms, empirical CDFs, and the *cumulative
latency by event duration* reduction behind Figure 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import SimulationError


def mean(xs: Sequence[float]) -> float:
    """Arithmetic mean.  Raises on empty input."""
    if not xs:
        raise SimulationError("mean of empty sequence")
    return sum(xs) / len(xs)


def variance(xs: Sequence[float]) -> float:
    """Population variance (the paper's 'variance in RTT', Figure 9)."""
    if not xs:
        raise SimulationError("variance of empty sequence")
    mu = mean(xs)
    return sum((x - mu) ** 2 for x in xs) / len(xs)


def stddev(xs: Sequence[float]) -> float:
    """Population standard deviation."""
    return math.sqrt(variance(xs))


def percentile(xs: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile, ``p`` in [0, 100]."""
    if not xs:
        raise SimulationError("percentile of empty sequence")
    if not 0.0 <= p <= 100.0:
        raise SimulationError(f"percentile {p} out of range")
    ordered = sorted(xs)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass(frozen=True)
class Summary:
    """A min/avg/max/count summary, as in the paper's memory-latency table."""

    count: int
    minimum: float
    average: float
    maximum: float
    std: float

    @classmethod
    def of(cls, xs: Sequence[float]) -> "Summary":
        """Summarize a non-empty sample."""
        if not xs:
            raise SimulationError("summary of empty sequence")
        return cls(
            count=len(xs),
            minimum=min(xs),
            average=mean(xs),
            maximum=max(xs),
            std=stddev(xs),
        )

    def __str__(self) -> str:
        return (
            f"n={self.count} min={self.minimum:.1f} avg={self.average:.1f} "
            f"max={self.maximum:.1f} std={self.std:.1f}"
        )


class Histogram:
    """Fixed-width histogram over ``[lo, hi)`` with overflow/underflow bins."""

    def __init__(self, lo: float, hi: float, nbins: int) -> None:
        if hi <= lo or nbins <= 0:
            raise SimulationError("bad histogram bounds")
        self.lo = lo
        self.hi = hi
        self.nbins = nbins
        self.width = (hi - lo) / nbins
        self.counts = [0] * nbins
        self.underflow = 0
        self.overflow = 0

    def add(self, x: float, weight: int = 1) -> None:
        """Count *x* (under/overflow tracked outside the bounds)."""
        if x < self.lo:
            self.underflow += weight
        elif x >= self.hi:
            self.overflow += weight
        else:
            self.counts[int((x - self.lo) / self.width)] += weight

    @property
    def total(self) -> int:
        """All counted samples including under/overflow."""
        return sum(self.counts) + self.underflow + self.overflow

    def bin_edges(self) -> List[float]:
        """The nbins+1 bin boundary values."""
        return [self.lo + i * self.width for i in range(self.nbins + 1)]


def ecdf(xs: Sequence[float]) -> Tuple[List[float], List[float]]:
    """Empirical CDF: returns (sorted values, cumulative fractions)."""
    if not xs:
        raise SimulationError("ecdf of empty sequence")
    ordered = sorted(xs)
    n = len(ordered)
    fractions = [(i + 1) / n for i in range(n)]
    return ordered, fractions


def cumulative_latency_by_duration(
    durations_ms: Sequence[float], thresholds_ms: Sequence[float]
) -> List[float]:
    """Figure 2's reduction: total latency from events no longer than *t*.

    For each threshold *t*, sums the durations of all busy events whose
    individual duration is ``<= t``, returning **seconds** (the paper's
    y-axis).  The curve's final value is the aggregate idle-state load.
    """
    out: List[float] = []
    ordered = sorted(durations_ms)
    for threshold in thresholds_ms:
        total_ms = 0.0
        for duration in ordered:
            if duration > threshold:
                break
            total_ms += duration
        out.append(total_ms / 1000.0)
    return out


def jitter(xs: Sequence[float]) -> float:
    """The paper's notion of jitter: variability of a latency series.

    We report the population standard deviation; Figure 9 reports variance —
    :func:`variance` is used directly there.
    """
    return stddev(xs)


def rate_per_second(count: int, duration_ms: float) -> float:
    """Events per second over a window given in ms."""
    if duration_ms <= 0:
        raise SimulationError("duration must be positive")
    return count / (duration_ms / 1000.0)
