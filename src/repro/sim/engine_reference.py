"""The frozen *reference* discrete-event kernel.

This module is the seed implementation of the simulation kernel, kept
verbatim as the semantic baseline for the optimized kernel in
:mod:`repro.sim.engine`.  Selecting it (``REPRO_KERNEL=reference`` in the
environment before the first import) must produce **byte-identical**
experiment artifacts — CSV, trace JSONL, metrics JSON — to the optimized
path; ``tests/integration/test_kernel_equivalence.py`` enforces exactly
that over every CLI experiment.

Do not optimize this file.  It exists to stay slow and obviously correct.

The original kernel description:

This is the substrate under every experiment in the package.  It provides:

* :class:`Simulator` — a clock plus a priority queue of timestamped events.
* :class:`Event` — a cancellable handle for a scheduled callback.
* :class:`Signal` — a one-shot condition that coroutine processes can wait on.
* :class:`Process` — a lightweight generator-based process: the generator
  yields either a delay in milliseconds (float/int) or a :class:`Signal`.

Determinism
-----------
Events at equal timestamps fire in FIFO scheduling order (a monotonically
increasing sequence number breaks ties), so a run is a pure function of its
inputs and seeds.  No wall-clock time or global state is consulted anywhere.

Time is in **milliseconds** (see :mod:`repro.units`).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from ..errors import SimulationError
from ..obs import current_observation

Action = Callable[[], Any]


class Event:
    """A handle for a scheduled callback.

    Instances are created by :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at`; user code only ever calls :meth:`cancel`
    and reads :attr:`time`.
    """

    __slots__ = ("time", "seq", "action", "canceled")

    def __init__(self, time: float, seq: int, action: Action) -> None:
        self.time = time
        self.seq = seq
        self.action = action
        self.canceled = False

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent; safe after firing."""
        self.canceled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "canceled" if self.canceled else "pending"
        return f"<Event t={self.time:.3f} seq={self.seq} {state}>"


class Signal:
    """A one-shot, many-waiter condition variable for simulated processes.

    A signal starts *pending*; :meth:`succeed` fires it exactly once with an
    optional value.  Processes that ``yield`` a signal are resumed (in FIFO
    order) when it fires; waiting on an already-fired signal resumes the
    process immediately.
    """

    __slots__ = ("sim", "fired", "value", "_waiters")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.fired = False
        self.value: Any = None
        self._waiters: List[Callable[[Any], None]] = []

    def succeed(self, value: Any = None) -> None:
        """Fire the signal, waking every waiter at the current sim time."""
        if self.fired:
            raise SimulationError("Signal.succeed() called twice")
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for resume in waiters:
            self.sim.schedule(0.0, lambda r=resume: r(self.value))

    def add_waiter(self, resume: Callable[[Any], None]) -> None:
        """Register *resume* to be called with the signal's value on fire."""
        if self.fired:
            self.sim.schedule(0.0, lambda: resume(self.value))
        else:
            self._waiters.append(resume)


ProcessGen = Generator[Any, Any, Any]


class Process:
    """A generator-based simulated process.

    The generator may yield:

    * a non-negative ``float``/``int`` — sleep for that many milliseconds;
    * a :class:`Signal` — suspend until the signal fires; the signal's value
      is sent back into the generator.

    When the generator returns, :attr:`done` fires with its return value, so
    processes can wait on each other.
    """

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str = "") -> None:
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.done = Signal(sim)
        if sim.obs is not None:
            sim.obs.trace(sim.now, "proc.spawn", proc=self.name)
        sim.schedule(0.0, lambda: self._step(None))

    def _step(self, value: Any) -> None:
        obs = self.sim.obs
        if obs is not None:
            obs.trace(self.sim.now, "proc.wake", proc=self.name)
        try:
            yielded = self.gen.send(value)
        except StopIteration as stop:
            if obs is not None:
                obs.trace(self.sim.now, "proc.exit", proc=self.name)
            self.done.succeed(stop.value)
            return
        if isinstance(yielded, Signal):
            if obs is not None:
                obs.trace(self.sim.now, "proc.wait", proc=self.name)
            yielded.add_waiter(self._step)
        elif isinstance(yielded, (int, float)):
            if yielded < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded a negative delay: {yielded}"
                )
            if obs is not None:
                obs.trace(
                    self.sim.now,
                    "proc.sleep",
                    proc=self.name,
                    delay_ms=float(yielded),
                )
            self.sim.schedule(float(yielded), lambda: self._step(None))
        else:
            raise SimulationError(
                f"process {self.name!r} yielded {yielded!r}; "
                "expected a delay (ms) or a Signal"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r}>"


class Simulator:
    """The discrete-event clock and event queue.

    Typical use::

        sim = Simulator()
        sim.schedule(10.0, lambda: print("at t=10ms"))
        sim.run_until(1000.0)
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._queue: List[Event] = []
        self._running = False
        # Ambient observation, bound at construction.  When tracing is off
        # this is None and every hook below is a single pointer test.
        self.obs = current_observation()
        self._dispatch_counter = (
            self.obs.metrics.counter("sim.events_dispatched")
            if self.obs is not None
            else None
        )

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in milliseconds."""
        return self._now

    # -- scheduling ------------------------------------------------------------

    def schedule(self, delay: float, action: Action) -> Event:
        """Run *action* ``delay`` ms from now.  Returns a cancellable handle."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ms in the past")
        return self.schedule_at(self._now + delay, action)

    def schedule_at(self, time: float, action: Action) -> Event:
        """Run *action* at absolute simulation time *time* (ms)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is t={self._now})"
            )
        event = Event(time, self._seq, action)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def every(
        self,
        interval: float,
        action: Action,
        *,
        start: Optional[float] = None,
        jitter: Callable[[], float] = lambda: 0.0,
    ) -> "PeriodicTask":
        """Run *action* every *interval* ms until the returned task is stopped.

        ``start`` defaults to one interval from now.  ``jitter`` is called
        before each firing and its result (ms) is added to that firing's
        delay — pass a seeded RNG-backed callable for noisy periodic work.
        """
        if interval <= 0:
            raise SimulationError("periodic interval must be positive")
        return PeriodicTask(self, interval, action, start=start, jitter=jitter)

    def signal(self) -> Signal:
        """Create a fresh one-shot :class:`Signal` bound to this simulator."""
        return Signal(self)

    def spawn(self, gen: ProcessGen, name: str = "") -> Process:
        """Start a generator-based :class:`Process` at the current time."""
        return Process(self, gen, name=name)

    def timeout(self, delay: float) -> Signal:
        """A signal that fires *delay* ms from now (for use inside processes)."""
        sig = Signal(self)
        self.schedule(delay, sig.succeed)
        return sig

    # -- execution ---------------------------------------------------------------

    def step(self) -> bool:
        """Fire the single next pending event.  Returns False if queue empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.canceled:
                continue
            self._now = event.time
            if self._dispatch_counter is not None:
                self._dispatch_counter.inc()
            event.action()
            return True
        return False

    def run_until(self, time: float) -> None:
        """Run all events with timestamp ``<= time``, then set the clock there.

        The clock always ends exactly at *time* even if the queue drains
        early, so back-to-back ``run_until`` calls measure wall-clock-like
        windows.
        """
        if time < self._now:
            raise SimulationError(
                f"run_until({time}) is in the past (now={self._now})"
            )
        if self._running:
            raise SimulationError("Simulator.run_until() is not reentrant")
        self._running = True
        try:
            while self._queue:
                event = self._queue[0]
                if event.time > time:
                    break
                heapq.heappop(self._queue)
                if event.canceled:
                    continue
                self._now = event.time
                if self._dispatch_counter is not None:
                    self._dispatch_counter.inc()
                event.action()
            self._now = time
        finally:
            self._running = False

    def run(self, duration: float) -> None:
        """Run for *duration* ms from the current time."""
        self.run_until(self._now + duration)

    def drain(self, limit: int = 1_000_000) -> int:
        """Fire events until the queue is empty.  Returns the count fired.

        ``limit`` guards against accidental infinite self-scheduling loops.
        """
        fired = 0
        while self.step():
            fired += 1
            if fired >= limit:
                raise SimulationError(f"drain() exceeded {limit} events")
        return fired

    @property
    def pending(self) -> int:
        """Number of queued (possibly canceled) events — a debugging aid."""
        return sum(1 for e in self._queue if not e.canceled)


class PeriodicTask:
    """A repeating action created by :meth:`Simulator.every`."""

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        action: Action,
        *,
        start: Optional[float] = None,
        jitter: Callable[[], float] = lambda: 0.0,
    ) -> None:
        self.sim = sim
        self.interval = interval
        self.action = action
        self.jitter = jitter
        self._stopped = False
        first_delay = interval if start is None else max(0.0, start - sim.now)
        self._event = sim.schedule(first_delay + max(0.0, jitter()), self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        self.action()
        if not self._stopped:
            delay = self.interval + max(0.0, self.jitter())
            self._event = self.sim.schedule(delay, self._fire)

    def stop(self) -> None:
        """Stop the task; any queued firing is canceled."""
        self._stopped = True
        self._event.cancel()


def all_of(sim: Simulator, signals: Iterable[Signal]) -> Signal:
    """A signal that fires once every signal in *signals* has fired.

    The combined signal's value is the list of individual values, in the
    order the signals were given.
    """
    sigs: Tuple[Signal, ...] = tuple(signals)
    combined = Signal(sim)
    remaining = len(sigs)
    if remaining == 0:
        combined.fired = True
        combined.value = []
        return combined
    values: List[Any] = [None] * remaining
    state = {"left": remaining}

    def make_waiter(i: int) -> Callable[[Any], None]:
        def waiter(value: Any) -> None:
            values[i] = value
            state["left"] -= 1
            if state["left"] == 0:
                combined.succeed(values)

        return waiter

    for i, sig in enumerate(sigs):
        sig.add_waiter(make_waiter(i))
    return combined
