"""Deterministic discrete-event simulation kernel (optimized).

This is the substrate under every experiment in the package.  It provides:

* :class:`Simulator` — a clock plus a timestamp-bucketed event queue.
* :class:`Event` — a cancellable handle for a scheduled callback.
* :class:`Signal` — a one-shot condition that coroutine processes can wait on.
* :class:`Process` — a lightweight generator-based process: the generator
  yields either a delay in milliseconds (float/int) or a :class:`Signal`.

Determinism
-----------
Events at equal timestamps fire in FIFO scheduling order (a monotonically
increasing sequence number breaks ties), so a run is a pure function of its
inputs and seeds.  No wall-clock time or global state is consulted anywhere.

Time is in **milliseconds** (see :mod:`repro.units`).

The fast queue
--------------
The seed kernel kept a binary heap of :class:`Event` objects, which made
every push/pop perform ``O(log n)`` *Python-level* ``Event.__lt__`` calls —
the single largest cost in profile traces of the figure experiments.  This
kernel replaces it with a hashed timer wheel:

* ``_buckets`` maps each distinct pending timestamp to the FIFO list of
  events scheduled at it (append order *is* sequence order, so the
  equal-timestamp FIFO guarantee is structural);
* ``_times`` is a heap of the distinct timestamps only, so every heap
  comparison is a C-level float compare and repeated timestamps — periodic
  clock ticks, same-tick signal wakes, t=0 spawn storms — cost one dict
  append instead of a heap reshuffle.

Cancelled events are never re-wrapped or re-heapified: cancellation sets a
flag and dispatch skips the corpse when its bucket drains (lazy deletion).
A fired event marks itself by dropping its action reference, which both
releases the closure early and lets :attr:`Simulator.pending` distinguish
fired from cancelled from live entries exactly.

Observation hooks are bound once at construction: with tracing off every
hook is a single ``is None`` test, so the untraced hot loop pays one pointer
test per event.

``REPRO_KERNEL=reference`` in the environment (read at import time) swaps
in the frozen seed kernel from :mod:`repro.sim.engine_reference`; the
differential-equivalence suite proves the two produce byte-identical
experiment artifacts.
"""

from __future__ import annotations

import os
from functools import partial
from heapq import heappop, heappush
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional, Tuple

from ..errors import SimulationError
from ..obs import current_observation

Action = Callable[[], Any]

#: Which kernel implementation this module exports: ``"fast"`` (default) or
#: ``"reference"`` (the frozen seed kernel, via ``REPRO_KERNEL=reference``).
KERNEL = os.environ.get("REPRO_KERNEL", "fast").strip().lower() or "fast"


class Event:
    """A handle for a scheduled callback.

    Instances are created by :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at`; user code only ever calls :meth:`cancel`
    and reads :attr:`time`.  After firing, :attr:`action` is cleared — the
    kernel uses that as the "already fired" marker.
    """

    __slots__ = ("time", "seq", "action", "canceled")

    def __init__(self, time: float, seq: int, action: Optional[Action]) -> None:
        self.time = time
        self.seq = seq
        self.action = action
        self.canceled = False

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent; safe after firing."""
        self.canceled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "canceled" if self.canceled else "pending"
        return f"<Event t={self.time:.3f} seq={self.seq} {state}>"


class Signal:
    """A one-shot, many-waiter condition variable for simulated processes.

    A signal starts *pending*; :meth:`succeed` fires it exactly once with an
    optional value.  Processes that ``yield`` a signal are resumed (in FIFO
    order) when it fires; waiting on an already-fired signal resumes the
    process immediately.
    """

    __slots__ = ("sim", "fired", "value", "_waiters")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.fired = False
        self.value: Any = None
        self._waiters: List[Callable[[Any], None]] = []

    def succeed(self, value: Any = None) -> None:
        """Fire the signal, waking every waiter at the current sim time."""
        if self.fired:
            raise SimulationError("Signal.succeed() called twice")
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        schedule = self.sim.schedule
        for resume in waiters:
            schedule(0.0, partial(resume, value))

    def add_waiter(self, resume: Callable[[Any], None]) -> None:
        """Register *resume* to be called with the signal's value on fire."""
        if self.fired:
            self.sim.schedule(0.0, partial(resume, self.value))
        else:
            self._waiters.append(resume)


ProcessGen = Generator[Any, Any, Any]


class Process:
    """A generator-based simulated process.

    The generator may yield:

    * a non-negative ``float``/``int`` — sleep for that many milliseconds;
    * a :class:`Signal` — suspend until the signal fires; the signal's value
      is sent back into the generator.

    When the generator returns, :attr:`done` fires with its return value, so
    processes can wait on each other.
    """

    __slots__ = ("sim", "gen", "name", "done", "_wake")

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str = "") -> None:
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.done = Signal(sim)
        # One resume callable for the process's whole life: sleeps reuse it
        # instead of allocating a fresh closure per yield.
        self._wake = partial(self._step, None)
        if sim.obs is not None:
            sim._tr_spawn(sim.now, self.name)
        sim.schedule(0.0, self._wake)

    def _step(self, value: Any) -> None:
        sim = self.sim
        obs = sim.obs
        if obs is not None:
            sim._tr_wake(sim.now, self.name)
        try:
            yielded = self.gen.send(value)
        except StopIteration as stop:
            if obs is not None:
                sim._tr_exit(sim.now, self.name)
            self.done.succeed(stop.value)
            return
        tp = type(yielded)
        if tp is float or tp is int:
            # The dominant case: a plain sleep.  Checked first, via exact
            # type, so the hot path skips two isinstance() calls.
            if yielded < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded a negative delay: {yielded}"
                )
            if obs is not None:
                sim._tr_sleep(sim.now, self.name, float(yielded))
            sim.schedule(float(yielded), self._wake)
        elif isinstance(yielded, Signal):
            if obs is not None:
                sim._tr_wait(sim.now, self.name)
            yielded.add_waiter(self._step)
        elif isinstance(yielded, (int, float)):  # int/float subclasses (bool)
            if yielded < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded a negative delay: {yielded}"
                )
            if obs is not None:
                sim._tr_sleep(sim.now, self.name, float(yielded))
            sim.schedule(float(yielded), self._wake)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded {yielded!r}; "
                "expected a delay (ms) or a Signal"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r}>"


class Simulator:
    """The discrete-event clock and event queue.

    Typical use::

        sim = Simulator()
        sim.schedule(10.0, lambda: print("at t=10ms"))
        sim.run_until(1000.0)
    """

    __slots__ = (
        "_now",
        "_seq",
        "_times",
        "_buckets",
        "_running",
        "obs",
        "_dispatch_counter",
        "_tr_spawn",
        "_tr_wake",
        "_tr_exit",
        "_tr_sleep",
        "_tr_wait",
    )

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        #: Heap of *distinct* pending timestamps (plain floats: C compares).
        self._times: List[float] = []
        #: timestamp -> FIFO list of events scheduled at it.
        self._buckets: Dict[float, List[Event]] = {}
        self._running = False
        # Ambient observation, bound at construction.  When tracing is off
        # this is None and every hook below is a single pointer test.  When
        # it is on, the process-lifecycle trace channels and the dispatch
        # counter are resolved here, once, so per-event work is a positional
        # call (no kwargs dict, no registry lookup).
        obs = current_observation()
        self.obs = obs
        if obs is not None:
            self._dispatch_counter = obs.metrics.counter("sim.events_dispatched")
            channel = obs.channel
            self._tr_spawn = channel("proc.spawn", "proc")
            self._tr_wake = channel("proc.wake", "proc")
            self._tr_exit = channel("proc.exit", "proc")
            self._tr_sleep = channel("proc.sleep", "proc", "delay_ms")
            self._tr_wait = channel("proc.wait", "proc")
        else:
            self._dispatch_counter = None
            self._tr_spawn = None
            self._tr_wake = None
            self._tr_exit = None
            self._tr_sleep = None
            self._tr_wait = None

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in milliseconds."""
        return self._now

    # -- scheduling ------------------------------------------------------------

    def schedule(self, delay: float, action: Action) -> Event:
        """Run *action* ``delay`` ms from now.  Returns a cancellable handle."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ms in the past")
        time = self._now + delay
        event = Event(time, self._seq, action)
        self._seq += 1
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [event]
            heappush(self._times, time)
        else:
            bucket.append(event)
        return event

    def schedule_at(self, time: float, action: Action) -> Event:
        """Run *action* at absolute simulation time *time* (ms)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is t={self._now})"
            )
        event = Event(time, self._seq, action)
        self._seq += 1
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [event]
            heappush(self._times, time)
        else:
            bucket.append(event)
        return event

    def every(
        self,
        interval: float,
        action: Action,
        *,
        start: Optional[float] = None,
        jitter: Optional[Callable[[], float]] = None,
    ) -> "PeriodicTask":
        """Run *action* every *interval* ms until the returned task is stopped.

        ``start`` defaults to one interval from now.  ``jitter`` is called
        before each firing and its result (ms) is added to that firing's
        delay — pass a seeded RNG-backed callable for noisy periodic work.
        Omitting it takes the no-jitter fast lane (no callable invocation
        per tick).
        """
        if interval <= 0:
            raise SimulationError("periodic interval must be positive")
        return PeriodicTask(self, interval, action, start=start, jitter=jitter)

    def signal(self) -> Signal:
        """Create a fresh one-shot :class:`Signal` bound to this simulator."""
        return Signal(self)

    def spawn(self, gen: ProcessGen, name: str = "") -> Process:
        """Start a generator-based :class:`Process` at the current time."""
        return Process(self, gen, name=name)

    def timeout(self, delay: float) -> Signal:
        """A signal that fires *delay* ms from now (for use inside processes)."""
        sig = Signal(self)
        self.schedule(delay, sig.succeed)
        return sig

    # -- execution ---------------------------------------------------------------

    def step(self) -> bool:
        """Fire the single next pending event.  Returns False if queue empty."""
        times = self._times
        buckets = self._buckets
        while times:
            t = times[0]
            bucket = buckets[t]
            i = 0
            n = len(bucket)
            while i < n:
                event = bucket[i]
                i += 1
                action = event.action
                if action is None or event.canceled:
                    continue
                # Trim the consumed prefix (fired/cancelled corpses plus
                # this event) before running the action, so a same-time
                # reschedule lands *after* the surviving remainder.
                del bucket[:i]
                if not bucket:
                    heappop(times)
                    del buckets[t]
                event.action = None
                self._now = t
                counter = self._dispatch_counter
                if counter is not None:
                    counter.value += 1
                action()
                return True
            # Every entry was cancelled or already fired: drop the bucket.
            heappop(times)
            del buckets[t]
        return False

    def run_until(self, time: float) -> None:
        """Run all events with timestamp ``<= time``, then set the clock there.

        The clock always ends exactly at *time* even if the queue drains
        early, so back-to-back ``run_until`` calls measure wall-clock-like
        windows.
        """
        if time < self._now:
            raise SimulationError(
                f"run_until({time}) is in the past (now={self._now})"
            )
        if self._running:
            raise SimulationError("Simulator.run_until() is not reentrant")
        self._running = True
        times = self._times
        buckets = self._buckets
        counter = self._dispatch_counter
        try:
            while times:
                t = times[0]
                if t > time:
                    break
                self._now = t
                # The bucket stays in the dict while it drains: actions
                # that schedule back at time t append to this same list and
                # the iterator picks them up, preserving sequence order
                # without touching the heap.
                bucket = buckets[t]
                if counter is None:
                    for event in bucket:
                        action = event.action
                        if action is None or event.canceled:
                            continue
                        event.action = None
                        action()
                else:
                    for event in bucket:
                        action = event.action
                        if action is None or event.canceled:
                            continue
                        event.action = None
                        counter.value += 1
                        action()
                heappop(times)
                del buckets[t]
            self._now = time
        finally:
            self._running = False

    def run(self, duration: float) -> None:
        """Run for *duration* ms from the current time."""
        self.run_until(self._now + duration)

    def drain(self, limit: int = 1_000_000) -> int:
        """Fire events until the queue is empty.  Returns the count fired.

        ``limit`` guards against accidental infinite self-scheduling loops.
        """
        fired = 0
        while self.step():
            fired += 1
            if fired >= limit:
                raise SimulationError(f"drain() exceeded {limit} events")
        return fired

    @property
    def pending(self) -> int:
        """Number of queued live events — a debugging aid.

        Cancelled entries and already-fired corpses awaiting lazy cleanup
        are never counted.
        """
        return sum(
            1
            for bucket in self._buckets.values()
            for e in bucket
            if e.action is not None and not e.canceled
        )

    def __len__(self) -> int:
        """``len(sim)`` is the number of live (uncancelled, unfired) events."""
        return self.pending


class PeriodicTask:
    """A repeating action created by :meth:`Simulator.every`."""

    __slots__ = ("sim", "interval", "action", "jitter", "_stopped", "_event")

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        action: Action,
        *,
        start: Optional[float] = None,
        jitter: Optional[Callable[[], float]] = None,
    ) -> None:
        self.sim = sim
        self.interval = interval
        self.action = action
        self.jitter = jitter
        self._stopped = False
        first_delay = interval if start is None else max(0.0, start - sim.now)
        if jitter is not None:
            first_delay += max(0.0, jitter())
        self._event = sim.schedule(first_delay, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        self.action()
        if not self._stopped:
            jitter = self.jitter
            if jitter is None:
                # The fixed-interval fast lane: no jitter callable, no max().
                delay = self.interval
            else:
                delay = self.interval + max(0.0, jitter())
            self._event = self.sim.schedule(delay, self._fire)

    def stop(self) -> None:
        """Stop the task; any queued firing is canceled."""
        self._stopped = True
        self._event.cancel()


def all_of(sim: Simulator, signals: Iterable[Signal]) -> Signal:
    """A signal that fires once every signal in *signals* has fired.

    The combined signal's value is the list of individual values, in the
    order the signals were given.
    """
    sigs: Tuple[Signal, ...] = tuple(signals)
    combined = Signal(sim)
    remaining = len(sigs)
    if remaining == 0:
        combined.fired = True
        combined.value = []
        return combined
    values: List[Any] = [None] * remaining
    state = {"left": remaining}

    def make_waiter(i: int) -> Callable[[Any], None]:
        def waiter(value: Any) -> None:
            values[i] = value
            state["left"] -= 1
            if state["left"] == 0:
                combined.succeed(values)

        return waiter

    for i, sig in enumerate(sigs):
        sig.add_waiter(make_waiter(i))
    return combined


if KERNEL == "reference":
    # The frozen seed kernel, selected via REPRO_KERNEL=reference.  Shadowing
    # the names here means every `from repro.sim.engine import ...` in the
    # package transparently gets the reference implementations.
    from .engine_reference import (  # noqa: F811
        Event,
        PeriodicTask,
        Process,
        Signal,
        Simulator,
        all_of,
    )
elif KERNEL != "fast":
    raise SimulationError(
        f"unknown REPRO_KERNEL {KERNEL!r}; expected 'fast' or 'reference'"
    )
