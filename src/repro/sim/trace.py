"""Trace recording: time series, busy intervals, and byte-rate traces.

Three recorders cover everything the paper's figures need:

* :class:`TimeSeries` — sampled ``(time, value)`` pairs (e.g. cache hit ratio).
* :class:`IntervalTrace` — closed busy intervals ``[start, end)``; can be
  rendered as a per-bin **utilization trace** (Figure 1) or reduced to a
  distribution of interval durations (Figure 2).
* :class:`ByteTrace` — timestamped byte counts (packets on a wire); can be
  rendered as a windowed **Mbps load trace** (Figures 4, 5, 7).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..units import bytes_over_ms_to_mbps
from ..errors import SimulationError


class TimeSeries:
    """An append-only series of ``(time_ms, value)`` samples."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        """Append one sample.  Times must be non-decreasing."""
        if self.times and time < self.times[-1]:
            raise SimulationError(
                f"TimeSeries {self.name!r}: time went backwards "
                f"({time} < {self.times[-1]})"
            )
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self):
        return iter(zip(self.times, self.values))

    def last(self) -> Tuple[float, float]:
        """The most recent sample."""
        if not self.times:
            raise SimulationError(f"TimeSeries {self.name!r} is empty")
        return self.times[-1], self.values[-1]


class IntervalTrace:
    """Closed busy intervals, e.g. 'the CPU was handling work from t0 to t1'.

    Intervals may be recorded out of order and may overlap (overlap is merged
    when computing utilization).
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.intervals: List[Tuple[float, float]] = []

    def record(self, start: float, end: float) -> None:
        """Record one busy interval ``[start, end)``."""
        if end < start:
            raise SimulationError(
                f"IntervalTrace {self.name!r}: end {end} before start {start}"
            )
        if end > start:
            self.intervals.append((start, end))

    def durations(self) -> List[float]:
        """Durations of all recorded intervals, in ms."""
        return [end - start for start, end in self.intervals]

    def total_busy(self) -> float:
        """Total busy time in ms, with overlapping intervals merged."""
        merged = self.merged()
        return sum(end - start for start, end in merged)

    def merged(self) -> List[Tuple[float, float]]:
        """The recorded intervals, sorted and with overlaps coalesced."""
        out: List[Tuple[float, float]] = []
        for start, end in sorted(self.intervals):
            if out and start <= out[-1][1]:
                prev_start, prev_end = out[-1]
                out[-1] = (prev_start, max(prev_end, end))
            else:
                out.append((start, end))
        return out

    def utilization(
        self, t0: float, t1: float, bin_ms: float
    ) -> Tuple[List[float], List[float]]:
        """Per-bin utilization over ``[t0, t1)``.

        Returns ``(bin_start_times, utilizations)`` where each utilization is
        the fraction of that bin covered by (merged) busy intervals — exactly
        the quantity plotted in the paper's Figure 1.
        """
        if bin_ms <= 0:
            raise SimulationError("bin width must be positive")
        if t1 <= t0:
            raise SimulationError("empty utilization window")
        # Round to the nearest bin count, but never below one: a window
        # narrower than half a bin used to round to zero bins and silently
        # return empty series.
        nbins = max(1, int((t1 - t0) / bin_ms + 0.5))
        busy = [0.0] * nbins
        for start, end in self.merged():
            start = max(start, t0)
            end = min(end, t1)
            if end <= start:
                continue
            first = int((start - t0) / bin_ms)
            last = min(int((end - t0) / bin_ms), nbins - 1)
            for i in range(first, last + 1):
                bin_start = t0 + i * bin_ms
                bin_end = bin_start + bin_ms
                busy[i] += max(0.0, min(end, bin_end) - max(start, bin_start))
        times = [t0 + i * bin_ms for i in range(nbins)]
        utils = [b / bin_ms for b in busy]
        return times, utils


class ByteTrace:
    """Timestamped byte counts — typically one record per packet on a wire."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: List[float] = []
        self.sizes: List[int] = []

    def record(self, time: float, nbytes: int) -> None:
        """Record *nbytes* observed at *time* (ms)."""
        if nbytes < 0:
            raise SimulationError("negative byte count")
        self.times.append(time)
        self.sizes.append(nbytes)

    @property
    def total_bytes(self) -> int:
        """Sum of all recorded byte counts."""
        return sum(self.sizes)

    @property
    def count(self) -> int:
        """Number of records (e.g. packets) observed."""
        return len(self.sizes)

    def load_series(
        self, t0: float, t1: float, window_ms: float
    ) -> Tuple[List[float], List[float]]:
        """Windowed network load in Mbps over ``[t0, t1)``.

        Returns ``(window_start_times, mbps)`` — the series the paper plots in
        Figures 4, 5, and 7.
        """
        if window_ms <= 0:
            raise SimulationError("window width must be positive")
        if t1 <= t0:
            raise SimulationError("empty load window")
        # As in IntervalTrace.utilization: clamp so a window narrower than
        # half a bin yields one bin instead of a silently empty series.
        nbins = max(1, int((t1 - t0) / window_ms + 0.5))
        per_bin = [0] * nbins
        for time, size in zip(self.times, self.sizes):
            if t0 <= time < t1:
                i = int((time - t0) / window_ms)
                if i >= nbins:
                    i = nbins - 1
                per_bin[i] += size
        times = [t0 + i * window_ms for i in range(nbins)]
        mbps = [bytes_over_ms_to_mbps(b, window_ms) for b in per_bin]
        return times, mbps

    def average_mbps(self, t0: float, t1: float) -> float:
        """Average load in Mbps over ``[t0, t1)``."""
        total = sum(
            size for time, size in zip(self.times, self.sizes) if t0 <= time < t1
        )
        return bytes_over_ms_to_mbps(total, t1 - t0)
