"""Named, independently seeded random-number streams.

Every stochastic component of the simulator (idle-activity generators, disk
service times, Poisson load generators, …) draws from its **own** named
stream, derived deterministically from the experiment's master seed.  Adding
or removing one consumer therefore never perturbs the variates any other
consumer sees — runs stay comparable across code changes, which is essential
when calibrating figures against the paper.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from *master_seed* and a stream *name*.

    Uses SHA-256 over the pair, so child streams are statistically
    independent for all practical purposes and stable across Python versions
    (unlike ``hash()``, which is salted per-process).
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def derive_point_seed(master_seed: int, sweep_name: str, index: int) -> int:
    """Derive the seed for one point of a named parameter sweep.

    Point seeds depend on the sweep's *name* and the point's *index* in run
    order, never on which worker computes it or in what order points finish.
    A parallel executor therefore reproduces the serial run bit-for-bit, and
    inserting a new point perturbs only the points after it.
    """
    return derive_seed(master_seed, f"{sweep_name}[{index}]")


class RngRegistry:
    """A factory for named :class:`random.Random` streams.

    >>> rngs = RngRegistry(seed=42)
    >>> a = rngs.stream("disk")
    >>> b = rngs.stream("link")
    >>> a is rngs.stream("disk")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for *name*, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.seed, name))
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose master seed is derived from *name*.

        Useful when a component owns several sub-streams of its own.
        """
        return RngRegistry(derive_seed(self.seed, name))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RngRegistry seed={self.seed} streams={sorted(self._streams)}>"
