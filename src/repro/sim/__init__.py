"""Deterministic discrete-event simulation kernel and measurement tools."""

from .engine import Event, PeriodicTask, Process, Signal, Simulator, all_of
from .rng import RngRegistry, derive_point_seed, derive_seed
from .stats import (
    Histogram,
    Summary,
    cumulative_latency_by_duration,
    ecdf,
    jitter,
    mean,
    percentile,
    stddev,
    variance,
)
from .trace import ByteTrace, IntervalTrace, TimeSeries

__all__ = [
    "ByteTrace",
    "Event",
    "Histogram",
    "IntervalTrace",
    "PeriodicTask",
    "Process",
    "RngRegistry",
    "Signal",
    "Simulator",
    "Summary",
    "TimeSeries",
    "all_of",
    "cumulative_latency_by_duration",
    "derive_point_seed",
    "derive_seed",
    "ecdf",
    "jitter",
    "mean",
    "percentile",
    "stddev",
    "variance",
]
