"""repro — a latency-centric thin-client operating system simulator.

A from-scratch reproduction of Wong & Seltzer, *Operating System Support for
Multi-User, Remote, Graphical Interaction* (USENIX 2000).  The package
rebuilds the paper's measured environment as a deterministic discrete-event
simulation:

* :mod:`repro.sim` — the event kernel, RNG streams, traces, statistics;
* :mod:`repro.cpu` — NT/TSE, Linux 2.0, and SVR4-interactive schedulers,
  idle-activity profiles, and lost-time latency measurement;
* :mod:`repro.memory` — frames, page tables, replacement, a paging disk;
* :mod:`repro.net` — a shared link, TCP/IP framing, load generation, ping;
* :mod:`repro.gui` — the display-operation vocabulary and input events;
* :mod:`repro.protocols` — RDP (with client bitmap cache), X, and LBX;
* :mod:`repro.workloads` — sink, typing, memory hog, animations, app scripts;
* :mod:`repro.core` — the paper's behaviour → load → latency framework,
  thin-client server/client composition, experiments, and reports.

See README.md and DESIGN.md for the full map, and ``examples/`` for runnable
scenarios.
"""

__version__ = "1.1.0"

from . import units
from .errors import ReproError

__all__ = ["ReproError", "__version__", "units"]
