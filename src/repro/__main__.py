"""``python -m repro`` — the command-line experiment runner."""

import sys

from .cli import main

sys.exit(main(progress=sys.stderr))
