"""LBX: the Low Bandwidth X proxy (§2, §6.1.2).

LBX "is implemented as a proxy server that lives on both ends of an X
Windows connection.  It takes normal X traffic and applies various
compression techniques to reduce the bandwidth usage of X applications."

The model wraps an :class:`~repro.protocols.x11.XProtocol` encoder:

* every X display message is compressed (per-kind ratios from
  :class:`~repro.protocols.compression.CompressionModel`) and then
  **re-framed into small proxy chunks** — which is why the paper measures
  LBX with an ~80 % *higher* display message count than X but the smallest
  average message size of the three protocols (87 bytes);
* input events are delta-compressed (32 → ~14 bytes) and occasionally
  squished together (motion coalescing), giving slightly *fewer* input
  messages than X.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import ProtocolError
from ..gui.drawing import DisplayOp
from ..gui.input import InputEvent, MouseMove
from .base import EncodedMessage, RemoteDisplayProtocol
from .compression import CompressionModel
from .x11 import XProtocol

#: Proxy chunk framing: payload ceiling and per-chunk header.
LBX_CHUNK_BYTES = 120
LBX_CHUNK_HEADER = 4
#: Delta-compressed input event size.
LBX_EVENT_BYTES = 14
#: Full (undeltaed) event size used while re-syncing after corruption.
LBX_FULL_EVENT_BYTES = 32
#: Every Nth motion event is squished into its predecessor.
MOTION_SQUISH_PERIOD = 10
#: Input events sent full-size after corruption breaks the delta chain.
LBX_RESYNC_EVENTS = 8


class LBXProtocol(RemoteDisplayProtocol):
    """One LBX session: an X stream through compressing proxies."""

    name = "lbx"
    #: The proxy forwards each chunk as its own write/packet.
    packs_display_writes = False

    def __init__(
        self,
        x: Optional[XProtocol] = None,
        compression: CompressionModel = CompressionModel(),
        chunk_bytes: int = LBX_CHUNK_BYTES,
    ) -> None:
        if chunk_bytes <= LBX_CHUNK_HEADER:
            raise ProtocolError("chunk size must exceed the chunk header")
        self.x = x or XProtocol()
        self.compression = compression
        self.chunk_bytes = chunk_bytes
        self._motion_counter = 0
        self._resync_events = 0

    def reset(self) -> None:
        self._motion_counter = 0
        self._resync_events = 0

    # -- graceful degradation ---------------------------------------------

    def on_corruption(self) -> None:
        """Restart the proxy's delta chain: a lost frame desynchronizes it.

        The next :data:`LBX_RESYNC_EVENTS` input events travel full-size
        (no delta, no squishing) so both proxies re-agree on the reference
        state, then delta compression resumes.
        """
        self._resync_events = LBX_RESYNC_EVENTS

    def on_outage(self, active: bool) -> None:
        """The proxied Xlib stream batches through the outage too."""
        self.x.on_outage(active)

    def degradation_state(self) -> dict:
        state = {"resync_events": self._resync_events}
        state.update(self.x.degradation_state())
        return state

    # -- display --------------------------------------------------------------

    def _chunk(self, payload: int, kind: str) -> List[EncodedMessage]:
        """Split compressed payload into proxy frames of <= chunk_bytes."""
        messages: List[EncodedMessage] = []
        remaining = payload
        body = self.chunk_bytes - LBX_CHUNK_HEADER
        while remaining > 0:
            take = min(remaining, body)
            messages.append(
                EncodedMessage("display", take + LBX_CHUNK_HEADER, kind)
            )
            remaining -= take
        return messages

    def encode_display_step(
        self, ops: Sequence[DisplayOp]
    ) -> List[EncodedMessage]:
        """Re-encode the X request stream through the proxy.

        The proxy works *per X request* — each request is individually
        squished/delta-compressed and re-framed with a small proxy header,
        so LBX emits **more, smaller** display messages than Xlib's packed
        writes (the paper's +80 % display message count and 87-byte average
        message size), while the bytes shrink.  Bulk image data travels as
        one compressed message, chunked only at the proxy's frame ceiling.
        """
        messages: List[EncodedMessage] = []
        for op in ops:
            for request in self.x.request_sizes_for(op):
                image = request >= self.x.flush_bytes
                compressed = self.compression.compress(request, image=image)
                if image:
                    # Bulk image data: one compressed proxy message.
                    messages.append(
                        EncodedMessage(
                            "display",
                            compressed + LBX_CHUNK_HEADER,
                            "lbx-image",
                        )
                    )
                else:
                    messages.extend(self._chunk(compressed, "lbx-request"))
        return self._observe_messages(messages)

    # -- input ------------------------------------------------------------------

    def encode_input_step(
        self, events: Sequence[InputEvent]
    ) -> List[EncodedMessage]:
        messages: List[EncodedMessage] = []
        for event in events:
            if self._resync_events > 0:
                # Delta chain broken by corruption: ship the full event.
                self._resync_events -= 1
                messages.append(
                    EncodedMessage("input", LBX_FULL_EVENT_BYTES, "full-event")
                )
                continue
            if isinstance(event, MouseMove):
                self._motion_counter += 1
                if self._motion_counter % MOTION_SQUISH_PERIOD == 0:
                    if messages:
                        # Squish into this step's previous message: a few
                        # delta bytes, no new message.
                        prev = messages[-1]
                        messages[-1] = EncodedMessage(
                            "input", prev.payload_bytes + 6, prev.kind
                        )
                    # Else the proxy coalesced it into the *last* packet it
                    # already forwarded; the event costs nothing new.
                    continue
            messages.append(
                EncodedMessage("input", LBX_EVENT_BYTES, "delta-event")
            )
        return self._observe_messages(messages)
