"""Remote display protocols: RDP (with bitmap cache), X, and LBX."""

from typing import Dict, Type

from ..errors import ProtocolError
from .base import EncodedMessage, RemoteDisplayProtocol
from .bitmapcache import (
    DEFAULT_CACHE_BYTES,
    CacheStats,
    LoopAwareBitmapCache,
    LRUBitmapCache,
)
from .compression import CompressionModel
from .lbx import LBXProtocol
from .rdp import RDPProtocol
from .slim import SLIMProtocol
from .vnc import VNCProtocol
from .x11 import X_EVENT_BYTES, XProtocol, XRequestSizes

_PROTOCOLS: Dict[str, Type[RemoteDisplayProtocol]] = {
    "rdp": RDPProtocol,
    "x": XProtocol,
    "lbx": LBXProtocol,
    "slim": SLIMProtocol,
    "vnc": VNCProtocol,
}

#: The three protocols of the §6 comparison, in the paper's table order.
PROTOCOL_NAMES = ("rdp", "x", "lbx")

#: The §7 related-work protocols, available for the extended comparison.
RELATED_PROTOCOL_NAMES = ("slim", "vnc")


def make_protocol(name: str) -> RemoteDisplayProtocol:
    """A fresh session encoder: rdp, x, lbx, slim, or vnc."""
    try:
        return _PROTOCOLS[name]()
    except KeyError:
        raise ProtocolError(
            f"unknown protocol {name!r}; expected one of {PROTOCOL_NAMES}"
        ) from None


__all__ = [
    "CacheStats",
    "CompressionModel",
    "DEFAULT_CACHE_BYTES",
    "EncodedMessage",
    "LBXProtocol",
    "LoopAwareBitmapCache",
    "LRUBitmapCache",
    "PROTOCOL_NAMES",
    "RDPProtocol",
    "RELATED_PROTOCOL_NAMES",
    "SLIMProtocol",
    "VNCProtocol",
    "RemoteDisplayProtocol",
    "XProtocol",
    "XRequestSizes",
    "X_EVENT_BYTES",
    "make_protocol",
]
