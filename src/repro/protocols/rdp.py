"""RDP: the Remote Display Protocol of NT TSE (§2, §6).

RDP's specification was unpublished when the paper was written; the model
follows the paper's measured characterization plus what Microsoft's
documentation states:

* **high-level orders**: "RDP messages encode higher level graphics
  semantics than do those of X and LBX" — a dialog's chrome is a handful
  of orders, not dozens of primitives, and text rides a glyph cache;
* **order batching**: multiple orders produced by one interaction step
  coalesce into a single update PDU (bounded so a PDU fits one TCP
  segment), giving RDP the *largest* average message size (482 bytes) and
  by far the fewest messages;
* **input coalescing**: input events batch into input PDUs — motion events
  accumulate until a flush threshold, key events flush the pending batch —
  giving RDP's input channel 736 messages where X's has 13,076;
* the **client-side bitmap cache** (1.5 MB LRU, §6.1.3): a re-drawn bitmap
  that hits costs a ~17-byte ``MemBlt`` order; a miss ships the compressed
  bitmap and a cache-install header.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import ProtocolError
from ..gui.drawing import (
    CopyArea,
    DisplayOp,
    DrawBitmap,
    DrawText,
    DrawWidget,
    FillRect,
    RestoreRegion,
)
from ..gui.input import InputEvent, KeyPress, KeyRelease
from ..obs import current_observation
from .base import EncodedMessage, RemoteDisplayProtocol
from .bitmapcache import DEFAULT_CACHE_BYTES, LRUBitmapCache

#: Update-PDU payload ceiling: one PDU fits one TCP segment.
RDP_PDU_BYTES = 1400
RDP_PDU_HEADER = 18
#: Input PDU framing: header plus per-event bytes.
RDP_INPUT_HEADER = 16
RDP_INPUT_EVENT_BYTES = 12
#: Motion events buffered before a flush (absent a key event).
RDP_INPUT_FLUSH_COUNT = 24

#: Order sizes.
ORDER_MEMBLT = 17  #: draw-from-cache
ORDER_CACHE_HEADER = 26  #: cache-install header preceding bitmap data
ORDER_FILL = 12
ORDER_SCRBLT = 16
ORDER_TEXT_BASE = 10  #: glyph-index text order, plus one byte per char
ORDER_WIDGET_BASE = 16  #: one high-level widget order...
ORDER_WIDGET_PER_ELEMENT = 4  #: ...plus a few bytes per element
#: RDP compresses bitmap data (interleaved RLE) beyond the bitmap's own
#: content compressibility.
RDP_BITMAP_RLE_RATIO = 0.85
#: Cache-hit draws re-shipped in full after wire corruption is detected:
#: the client's cache contents are suspect until this many draws re-sync.
RDP_CORRUPTION_BYPASS_DRAWS = 16


class RDPProtocol(RemoteDisplayProtocol):
    """One TSE session's RDP encoder with its client bitmap cache."""

    name = "rdp"

    #: Bitmap-cache metric handles, keyed by observation identity (class
    #: defaults keep the per-draw check a plain attribute read).
    _c_obs = None
    _c_hits = None
    _c_misses = None
    _c_bypasses = None

    # RDP does far more server-side work per byte than X: order building
    # plus interleaved RLE compression of bitmap data.  Calibrated so a
    # 5 fps stream of cache-missing banner frames keeps the server CPU
    # near the ~10% the paper's Figure 6 shows.
    encode_cost_per_message_ms = 0.06
    encode_cost_per_kb_ms = 0.9

    def __init__(
        self,
        cache: Optional[LRUBitmapCache] = None,
        *,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        pdu_bytes: int = RDP_PDU_BYTES,
        display_flush_steps: int = 6,
    ) -> None:
        if pdu_bytes <= RDP_PDU_HEADER:
            raise ProtocolError("PDU ceiling must exceed the PDU header")
        if display_flush_steps < 1:
            raise ProtocolError("display flush period must be >= 1 step")
        self.cache = cache if cache is not None else LRUBitmapCache(cache_bytes)
        self.pdu_bytes = pdu_bytes
        self.display_flush_steps = display_flush_steps
        self._pending_input: List[InputEvent] = []
        self._pending_orders: List[int] = []
        self._steps_since_flush = 0
        self._cache_bypass_draws = 0

    def reset(self) -> None:
        self.cache.clear()
        self._pending_input = []
        self._pending_orders = []
        self._steps_since_flush = 0
        self._cache_bypass_draws = 0

    # -- graceful degradation -----------------------------------------------

    def on_corruption(self) -> None:
        """Fall back past the bitmap cache until the stream re-syncs.

        A corrupt frame may have carried a cache install, so the client's
        cache contents can no longer be trusted: the next
        :data:`RDP_CORRUPTION_BYPASS_DRAWS` bitmap draws ship in full even
        on a server-side cache hit, re-priming the client copy.
        """
        self._cache_bypass_draws = RDP_CORRUPTION_BYPASS_DRAWS

    def degradation_state(self) -> dict:
        return {"cache_bypass_draws": self._cache_bypass_draws}

    # -- display ----------------------------------------------------------------

    def order_sizes_for(self, op: DisplayOp) -> List[int]:
        """The order byte sizes one display op generates (cache-stateful)."""
        if isinstance(op, DrawText):
            return [ORDER_TEXT_BASE + op.chars]
        if isinstance(op, FillRect):
            return [ORDER_FILL]
        if isinstance(op, CopyArea):
            return [ORDER_SCRBLT]
        if isinstance(op, DrawWidget):
            return [ORDER_WIDGET_BASE + ORDER_WIDGET_PER_ELEMENT * op.elements]
        if isinstance(op, DrawBitmap):
            hit = self.cache.access(op.bitmap)
            obs = current_observation()
            if obs is not None:
                # Handles cached per observation identity, each registered
                # on first actual use (an all-hit run must not grow a
                # zero-valued miss counter): the draw loop is hot and must
                # not pay a registry name lookup per bitmap.
                if obs is not self._c_obs:
                    self._c_obs = obs
                    self._c_hits = None
                    self._c_misses = None
                    self._c_bypasses = None
                if hit:
                    counter = self._c_hits
                    if counter is None:
                        counter = self._c_hits = obs.metrics.counter(
                            "proto.rdp.cache_hits"
                        )
                else:
                    counter = self._c_misses
                    if counter is None:
                        counter = self._c_misses = obs.metrics.counter(
                            "proto.rdp.cache_misses"
                        )
                counter.value += 1
            if hit and self._cache_bypass_draws > 0:
                # Post-corruption re-sync: the client copy is suspect, so a
                # hit still ships the full bitmap (and re-primes the cache).
                self._cache_bypass_draws -= 1
                hit = False
                if obs is not None:
                    if self._c_bypasses is None:
                        self._c_bypasses = obs.metrics.counter(
                            "proto.rdp.cache_bypasses"
                        )
                    self._c_bypasses.value += 1
            if hit:
                return [ORDER_MEMBLT]
            data = max(
                1, int(op.bitmap.compressed_bytes * RDP_BITMAP_RLE_RATIO)
            )
            return [ORDER_CACHE_HEADER + data, ORDER_MEMBLT]
        if isinstance(op, RestoreRegion):
            # The server keeps the rendered screen; restoring an uncovered
            # region is one blit from the shadow surface.
            return [ORDER_MEMBLT]
        raise ProtocolError(f"unknown display op {op!r}")

    def encode_display_step(
        self, ops: Sequence[DisplayOp]
    ) -> List[EncodedMessage]:
        """Buffer this step's orders; flush on the update-timer model.

        RDP coalesces display updates — the server flushes accumulated
        orders periodically rather than per drawing call, which is why the
        paper measures 1,105 display messages against X's 13,847 with the
        largest average message size of the three protocols.  We model the
        timer as "every ``display_flush_steps`` interaction steps", with an
        immediate flush whenever a PDU's worth of orders has accumulated.
        """
        messages: List[EncodedMessage] = []
        body = self.pdu_bytes - RDP_PDU_HEADER
        for op in ops:
            for order in self.order_sizes_for(op):
                if order >= body:
                    # A large bitmap flushes everything and spans PDUs.
                    messages.extend(self._flush_orders())
                    remaining = order
                    while remaining > 0:
                        take = min(remaining, body)
                        messages.append(
                            EncodedMessage(
                                "display",
                                take + RDP_PDU_HEADER,
                                "bitmap-update",
                            )
                        )
                        remaining -= take
                else:
                    self._pending_orders.append(order)
                    if sum(self._pending_orders) >= body:
                        messages.extend(self._flush_orders())
        self._steps_since_flush += 1
        if self._steps_since_flush >= self.display_flush_steps:
            messages.extend(self._flush_orders())
        return self._observe_messages(messages)

    def _flush_orders(self) -> List[EncodedMessage]:
        self._steps_since_flush = 0
        if not self._pending_orders:
            return []
        messages: List[EncodedMessage] = []
        body = self.pdu_bytes - RDP_PDU_HEADER
        buffered = 0
        for order in self._pending_orders:
            if buffered and buffered + order > body:
                messages.append(
                    EncodedMessage("display", buffered + RDP_PDU_HEADER, "orders")
                )
                buffered = 0
            buffered += order
        if buffered:
            messages.append(
                EncodedMessage("display", buffered + RDP_PDU_HEADER, "orders")
            )
        self._pending_orders = []
        return messages

    def flush_display(self) -> List[EncodedMessage]:
        return self._observe_messages(self._flush_orders())

    # -- input --------------------------------------------------------------------

    def _flush_pending(self) -> List[EncodedMessage]:
        if not self._pending_input:
            return []
        payload = (
            RDP_INPUT_HEADER
            + RDP_INPUT_EVENT_BYTES * len(self._pending_input)
        )
        self._pending_input = []
        return [EncodedMessage("input", payload, "input-pdu")]

    def encode_input_step(
        self, events: Sequence[InputEvent]
    ) -> List[EncodedMessage]:
        messages: List[EncodedMessage] = []
        flush = False
        for event in events:
            self._pending_input.append(event)
            if isinstance(event, (KeyPress, KeyRelease)):
                flush = True
        if flush or len(self._pending_input) >= RDP_INPUT_FLUSH_COUNT:
            messages.extend(self._flush_pending())
        return self._observe_messages(messages)

    def flush_input(self) -> List[EncodedMessage]:
        return self._observe_messages(self._flush_pending())
