"""The client-side bitmap cache (§6.1.3).

"According to Microsoft's product literature, the TSE client reserves, by
default, 1.5MB of memory for a bitmap cache using an LRU eviction policy."
The cache is what lets RDP display a looping animation at ~0.01 Mbps while
X retransmits every frame — and also what produces the pathological cliff
of Figure 7: "Looping animations defeat LRU bitmap caches in the same way
that sequential byte range accesses defeat LRU disk caches."

Two implementations:

* :class:`LRUBitmapCache` — the TSE client's documented behaviour;
* :class:`LoopAwareBitmapCache` — the paper's suggested fix ("a more
  intelligent scheme capable of dealing with such animations might somehow
  detect loop patterns and adjust its eviction behavior"): on detecting a
  cyclic re-reference pattern it switches to MRU-style eviction, which
  pins a stable prefix of the loop in cache instead of thrashing all of it.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..errors import ProtocolError
from ..gui.drawing import Bitmap
from ..units import mb

#: The TSE client's default cache reservation.
DEFAULT_CACHE_BYTES = mb(1.5)


class CacheStats:
    """Hit/miss counters with the cumulative ratio Figure 6 plots."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bytes_inserted = 0

    @property
    def accesses(self) -> int:
        """Total bitmap draws observed (hits + misses)."""
        return self.hits + self.misses

    @property
    def cumulative_hit_ratio(self) -> float:
        """Hits over all accesses so far (the PerfMon 'Cache Hit Ratio')."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


class LRUBitmapCache:
    """A byte-capacity-bounded LRU cache of bitmaps, keyed by bitmap id."""

    def __init__(self, capacity_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        if capacity_bytes <= 0:
            raise ProtocolError("cache capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.used_bytes = 0
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, int]" = OrderedDict()  # id -> bytes

    def __contains__(self, bitmap: Bitmap) -> bool:
        return bitmap.bitmap_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def access(self, bitmap: Bitmap) -> bool:
        """Draw *bitmap*: True on hit; on miss, insert (evicting LRU).

        Bitmaps larger than the whole cache are never cached (every access
        misses without disturbing resident entries).
        """
        size = bitmap.compressed_bytes
        key = bitmap.bitmap_id
        if key in self._entries:
            self.stats.hits += 1
            self._touch(key)
            return True
        self.stats.misses += 1
        if size > self.capacity_bytes:
            return False
        self._make_room(size)
        self._entries[key] = size
        self.used_bytes += size
        self.stats.bytes_inserted += size
        return False

    def _touch(self, key: str) -> None:
        self._entries.move_to_end(key)

    def _make_room(self, size: int) -> None:
        while self.used_bytes + size > self.capacity_bytes:
            self._evict_one()

    def _evict_one(self) -> None:
        key, evicted_size = self._select_victim()
        del self._entries[key]
        self.used_bytes -= evicted_size
        self.stats.evictions += 1

    def _select_victim(self) -> Tuple[str, int]:
        """LRU order: the head of the OrderedDict."""
        if not self._entries:
            raise ProtocolError("eviction from empty cache")
        return next(iter(self._entries.items()))

    def clear(self) -> None:
        """Empty the cache (stats are kept)."""
        self._entries.clear()
        self.used_bytes = 0


class LoopAwareBitmapCache(LRUBitmapCache):
    """LRU that detects re-reference loops and flips to MRU eviction.

    Loop detection: if a miss is for a bitmap id we *recently evicted*
    (i.e. the working loop is bigger than the cache), thrashing is
    underway — evicting the most-recently-inserted entry instead keeps a
    stable subset of the loop resident, so a loop of N frames with a cache
    of C bytes hits at roughly ``C/N_bytes`` instead of 0.
    """

    #: How many recently evicted ids to remember for loop detection.
    EVICTION_MEMORY = 4096

    def __init__(self, capacity_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        super().__init__(capacity_bytes)
        self._recently_evicted: "OrderedDict[str, None]" = OrderedDict()
        self.loop_mode = False

    def access(self, bitmap: Bitmap) -> bool:
        key = bitmap.bitmap_id
        if key not in self._entries and key in self._recently_evicted:
            # A re-reference of something we threw away: a loop larger
            # than the cache.  Switch to MRU-style victim selection.
            self.loop_mode = True
        return super().access(bitmap)

    def _select_victim(self) -> Tuple[str, int]:
        if not self._entries:
            raise ProtocolError("eviction from empty cache")
        if self.loop_mode:
            key, size = next(reversed(self._entries.items()))
        else:
            key, size = next(iter(self._entries.items()))
        self._remember_eviction(key)
        return key, size

    def _remember_eviction(self, key: str) -> None:
        self._recently_evicted[key] = None
        self._recently_evicted.move_to_end(key)
        while len(self._recently_evicted) > self.EVICTION_MEMORY:
            self._recently_evicted.popitem(last=False)

    def clear(self) -> None:
        """Empty the cache and forget any detected loop."""
        super().clear()
        self._recently_evicted.clear()
        self.loop_mode = False
