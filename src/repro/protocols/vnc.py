"""VNC: the RFB remote-framebuffer protocol (§7).

Richardson et al.'s Virtual Network Computing is "yet another network
protocol that is similar to SLIM" (§7): the server renders into a virtual
framebuffer and ships *pixels*, not drawing semantics.  Two properties
distinguish it from SLIM in the model:

* **client-pull updates**: the client requests framebuffer updates; damage
  accumulated between requests coalesces into one update message with one
  rectangle per damaged region — fewer, larger messages than SLIM's
  command-per-draw stream;
* **encodings**: hextile-style compression on synthetic UI pixels and a
  CopyRect encoding for on-screen copies, so VNC lands somewhat below raw
  SLIM/X byte counts while staying far above RDP/LBX.

Drawing ops are converted to *damaged pixel areas* (8 bpp) and compressed
at per-content hextile ratios.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import ProtocolError
from ..gui.drawing import (
    CopyArea,
    DisplayOp,
    DrawBitmap,
    DrawText,
    DrawWidget,
    FillRect,
    RestoreRegion,
)
from ..gui.input import InputEvent, KeyPress, KeyRelease
from .base import EncodedMessage, RemoteDisplayProtocol

#: FramebufferUpdate header + per-rectangle header.
VNC_UPDATE_HEADER = 4
VNC_RECT_HEADER = 12
#: RFB fixed input message sizes.
VNC_KEY_EVENT = 8
VNC_POINTER_EVENT = 6
#: Hextile compresses flat synthetic UI well, photos poorly.
HEXTILE_UI_RATIO = 0.35
HEXTILE_IMAGE_RATIO = 0.8
#: Glyph cell geometry for server-rendered text damage.
GLYPH_WIDTH, GLYPH_HEIGHT = 8, 16


class VNCProtocol(RemoteDisplayProtocol):
    """One VNC session's encoder: damage in, update rectangles out."""

    name = "vnc"

    def rect_sizes_for(self, op: DisplayOp) -> List[int]:
        """Encoded rectangle sizes (excluding the shared update header)."""
        if isinstance(op, DrawText):
            damage = GLYPH_WIDTH * GLYPH_HEIGHT * op.chars  # 8bpp pixels
            return [VNC_RECT_HEADER + int(damage * HEXTILE_UI_RATIO)]
        if isinstance(op, FillRect):
            # A solid rect hextiles to almost nothing.
            return [VNC_RECT_HEADER + 4]
        if isinstance(op, CopyArea):
            return [VNC_RECT_HEADER + 4]  # CopyRect encoding
        if isinstance(op, DrawWidget):
            damage = op.elements * 24 * 24  # chrome pixels per element
            return [VNC_RECT_HEADER + int(damage * HEXTILE_UI_RATIO)]
        if isinstance(op, DrawBitmap):
            return [
                VNC_RECT_HEADER
                + int(op.bitmap.raw_bytes * HEXTILE_IMAGE_RATIO)
            ]
        if isinstance(op, RestoreRegion):
            damage = op.width * op.height
            return [VNC_RECT_HEADER + int(damage * HEXTILE_UI_RATIO)]
        raise ProtocolError(f"unknown display op {op!r}")

    def encode_display_step(
        self, ops: Sequence[DisplayOp]
    ) -> List[EncodedMessage]:
        """One client update request per step: damage coalesces."""
        if not ops:
            return []
        payload = VNC_UPDATE_HEADER
        for op in ops:
            for rect in self.rect_sizes_for(op):
                payload += rect
        return [EncodedMessage("display", payload, "fb-update")]

    def encode_input_step(
        self, events: Sequence[InputEvent]
    ) -> List[EncodedMessage]:
        messages: List[EncodedMessage] = []
        for event in events:
            if isinstance(event, (KeyPress, KeyRelease)):
                size = VNC_KEY_EVENT
            else:
                size = VNC_POINTER_EVENT
            messages.append(EncodedMessage("input", size, "rfb-event"))
        return messages
