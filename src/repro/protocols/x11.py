"""The X core protocol encoder.

X encodes display updates as a stream of fixed-format requests: text via
``ImageText8``, fills via ``PolyFillRectangle``, scrolls via ``CopyArea``,
widget chrome via many small primitives, and raster images via ``PutImage``
carrying **uncompressed** pixel data — "X, and consequently LBX, does not
support bitmap caching" (§6.1.3), so every animation frame ships in full.

Xlib buffers requests and flushes the buffer to the wire; we pack each
step's requests into messages up to :data:`XLIB_FLUSH_BYTES`.  Input events
(keys, motion) are fixed 32-byte X events, one message each — the source of
X's enormous input-channel message count (§6.1.2).
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import ProtocolError
from ..gui.drawing import (
    CopyArea,
    DisplayOp,
    DrawBitmap,
    DrawText,
    DrawWidget,
    FillRect,
    RestoreRegion,
)
from ..gui.input import InputEvent
from .base import EncodedMessage, RemoteDisplayProtocol

#: X events are a fixed 32 bytes on the wire.
X_EVENT_BYTES = 32
#: Xlib's output buffer flush threshold for our model.
XLIB_FLUSH_BYTES = 1024
#: While the wire is in outage, Xlib's writes back up in the socket buffer
#: anyway, so the encoder batches this many times harder — fewer, larger
#: messages to replay when the link returns.
X_OUTAGE_BATCH_FACTOR = 4


def _pad4(n: int) -> int:
    """X requests are padded to 4-byte boundaries."""
    return (n + 3) & ~3


class XRequestSizes:
    """Core-protocol request sizes (header + fixed fields + data, padded)."""

    @staticmethod
    def image_text(chars: int) -> int:
        """ImageText8: header plus one byte per character, padded."""
        return _pad4(16 + chars)

    POLY_FILL_RECTANGLE = 20
    COPY_AREA = 28
    CHANGE_GC = 16
    WIDGET_PRIMITIVE = 24  #: average of the line/rect/text mix widgets use

    @staticmethod
    def put_image(raw_bytes: int) -> int:
        """PutImage: header plus uncompressed pixel data, padded."""
        return _pad4(24 + raw_bytes)


class XProtocol(RemoteDisplayProtocol):
    """One X session's encoder (stateless beyond the Xlib buffer model)."""

    name = "x"

    def __init__(self, flush_bytes: int = XLIB_FLUSH_BYTES) -> None:
        if flush_bytes <= 0:
            raise ProtocolError("flush threshold must be positive")
        self.flush_bytes = flush_bytes
        self._base_flush_bytes = flush_bytes
        self._outage_depth = 0

    # -- graceful degradation -------------------------------------------------

    def on_outage(self, active: bool) -> None:
        """Batch harder while the wire is dead; restore when it returns.

        Overlapping outage windows nest: the flush threshold stays widened
        until every window has closed.
        """
        if active:
            self._outage_depth += 1
            self.flush_bytes = self._base_flush_bytes * X_OUTAGE_BATCH_FACTOR
        elif self._outage_depth > 0:
            self._outage_depth -= 1
            if self._outage_depth == 0:
                self.flush_bytes = self._base_flush_bytes

    def degradation_state(self) -> dict:
        return {
            "outage_depth": self._outage_depth,
            "flush_bytes": self.flush_bytes,
        }

    # -- display ------------------------------------------------------------

    def request_sizes_for(self, op: DisplayOp) -> List[int]:
        """The X request byte sizes one display op generates."""
        if isinstance(op, DrawText):
            # Apps typically touch the GC (font/colors) around text runs.
            return [XRequestSizes.CHANGE_GC, XRequestSizes.image_text(op.chars)]
        if isinstance(op, FillRect):
            return [XRequestSizes.POLY_FILL_RECTANGLE]
        if isinstance(op, CopyArea):
            return [XRequestSizes.COPY_AREA]
        if isinstance(op, DrawWidget):
            return [XRequestSizes.WIDGET_PRIMITIVE] * op.elements
        if isinstance(op, DrawBitmap):
            # No cache, no compression: full pixels every time (§6.1.3).
            return [XRequestSizes.put_image(op.bitmap.raw_bytes)]
        if isinstance(op, RestoreRegion):
            # No server-side screen state: the application re-renders the
            # uncovered region primitive by primitive.
            return [XRequestSizes.WIDGET_PRIMITIVE] * op.complexity
        raise ProtocolError(f"unknown display op {op!r}")

    def encode_display_step(
        self, ops: Sequence[DisplayOp]
    ) -> List[EncodedMessage]:
        messages: List[EncodedMessage] = []
        buffered = 0
        for op in ops:
            for request in self.request_sizes_for(op):
                if buffered and buffered + request > self.flush_bytes:
                    messages.append(
                        EncodedMessage("display", buffered, "requests")
                    )
                    buffered = 0
                if request >= self.flush_bytes:
                    # Big requests (PutImage) flush straight through.
                    messages.append(EncodedMessage("display", request, "put-image"))
                else:
                    buffered += request
        if buffered:
            messages.append(EncodedMessage("display", buffered, "requests"))
        return self._observe_messages(messages)

    # -- input ---------------------------------------------------------------

    def encode_input_step(
        self, events: Sequence[InputEvent]
    ) -> List[EncodedMessage]:
        """One fixed 32-byte event message per input event."""
        return self._observe_messages(
            [EncodedMessage("input", X_EVENT_BYTES, "event") for __ in events]
        )
