"""Modeled stream compression for LBX.

LBX "takes normal X traffic and applies various compression techniques to
reduce the bandwidth usage of X applications" (Fulton & Kantarjiev).  We
model it as deterministic per-kind ratios: protocol/geometry traffic
compresses well (delta encoding, GC caching, motion-event squishing);
image data less so (a byte-oriented quick compressor).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ProtocolError


@dataclass(frozen=True)
class CompressionModel:
    """Per-kind compression ratios (compressed/original, smaller is better)."""

    protocol_ratio: float = 0.40  #: requests, replies, events
    image_ratio: float = 0.55  #: PutImage pixel data
    min_bytes: int = 4  #: nothing compresses below a frame's floor

    def __post_init__(self) -> None:
        for ratio in (self.protocol_ratio, self.image_ratio):
            if not 0.0 < ratio <= 1.0:
                raise ProtocolError("compression ratio must be in (0, 1]")

    def compress(self, nbytes: int, *, image: bool = False) -> int:
        """Compressed size of *nbytes* of protocol or image data."""
        if nbytes < 0:
            raise ProtocolError("negative size")
        ratio = self.image_ratio if image else self.protocol_ratio
        return max(self.min_bytes, int(round(nbytes * ratio)))
