"""The remote-display protocol interface.

A protocol instance is **stateful, per session** (RDP's bitmap cache, input
batching buffers, LBX's compressor context all live here).  The server
composition feeds it *interaction steps*:

* :meth:`encode_display_step` — the display operations one application
  action produced, returned as encoded protocol messages for the display
  channel;
* :meth:`encode_input_step` — the input events the client produced in one
  step, returned as input-channel messages (possibly empty: RDP coalesces
  motion events across steps);
* :meth:`flush_input` — drain any batching buffer at end of trace.

Encoded message sizes are protocol payload bytes; TCP/IP framing is added
by the network layer (:mod:`repro.net`).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import ProtocolError
from ..gui.drawing import DisplayOp
from ..gui.input import InputEvent
from ..obs import current_observation


@dataclass(frozen=True)
class EncodedMessage:
    """One protocol message ready for the wire."""

    channel: str  #: "input" or "display"
    payload_bytes: int
    kind: str = ""  #: e.g. "orders", "bitmap-update", "cache-hit", "events"

    def __post_init__(self) -> None:
        if self.payload_bytes <= 0:
            raise ProtocolError("encoded message must have positive size")
        if self.channel not in ("input", "display"):
            raise ProtocolError(f"unknown channel {self.channel!r}")


class RemoteDisplayProtocol(abc.ABC):
    """One session's encoder for a remote-display wire protocol."""

    name = "abstract"

    #: Server-side CPU cost of encoding: per message and per payload byte.
    #: Used by the Figure 6 CPU-utilization series and the server model.
    encode_cost_per_message_ms = 0.05
    encode_cost_per_kb_ms = 0.18

    #: Whether this protocol's display writes from one flush share TCP
    #: segments.  Xlib and RDP write whole buffers/PDUs; the LBX proxy
    #: forwards each re-framed chunk immediately, so every chunk rides its
    #: own packet (the paper's 87-byte LBX average message size).
    packs_display_writes = True

    #: Per-message delivery policy, consumed by the transport when the wire
    #: is faulted: how many retransmissions a message's segments may spend
    #: before being abandoned, and an optional per-message timeout floor
    #: (``None`` defers to the transport's RTO estimate).
    max_message_retries = 8
    message_timeout_ms: Optional[float] = None

    #: Wire-metric handle cache for :meth:`_observe_messages`, keyed by the
    #: observation's identity.  Class-level defaults so the per-call check
    #: is a plain attribute read even before the first observed message.
    _m_obs = None
    _m_messages = None
    _m_bytes = None

    @abc.abstractmethod
    def encode_display_step(
        self, ops: Sequence[DisplayOp]
    ) -> List[EncodedMessage]:
        """Encode one step's display operations into wire messages."""

    @abc.abstractmethod
    def encode_input_step(
        self, events: Sequence[InputEvent]
    ) -> List[EncodedMessage]:
        """Encode one step's input events (may buffer and return [])."""

    def flush_input(self) -> List[EncodedMessage]:
        """Drain any input batching buffer (default: nothing buffered)."""
        return []

    def flush_display(self) -> List[EncodedMessage]:
        """Drain any display batching buffer (default: nothing buffered)."""
        return []

    def reset(self) -> None:
        """Forget per-session state (fresh connection)."""

    # -- graceful degradation (faulted links) ----------------------------

    def on_corruption(self) -> None:
        """The receiver discarded a corrupt frame of this session's stream.

        Encoders with replicated client state (caches, delta-compressor
        contexts) override this to stop trusting that state for a while;
        the default assumes stateless encoding and does nothing.
        """

    def on_outage(self, active: bool) -> None:
        """The wire went dead (``active=True``) or came back (``False``).

        Encoders that can trade latency for efficiency override this to
        batch harder while nothing can be delivered anyway.
        """

    def degradation_state(self) -> dict:
        """Current degradation posture, for reports and tests (may be {})."""
        return {}

    def _observe_messages(
        self, messages: List[EncodedMessage]
    ) -> List[EncodedMessage]:
        """Count *messages* toward this protocol's wire metrics; pass through.

        Encoders wrap their return values in this.  Protocols are built at
        arbitrary times (sometimes before an observation opens), so the
        lookup is per call rather than per instance; with tracing off it is
        one function call returning ``None``.  The counter handles are
        cached keyed on the observation's identity, so the per-call cost
        inside one observation is two attribute tests, not two f-string
        registry lookups.
        """
        if messages:
            obs = current_observation()
            if obs is not None:
                if obs is not self._m_obs:
                    metrics = obs.metrics
                    self._m_obs = obs
                    self._m_messages = metrics.counter(
                        f"proto.{self.name}.messages"
                    )
                    self._m_bytes = metrics.counter(f"proto.{self.name}.bytes")
                self._m_messages.value += len(messages)
                payload = 0
                for m in messages:
                    payload += m.payload_bytes
                self._m_bytes.value += payload
        return messages

    def encode_cost_ms(self, messages: Sequence[EncodedMessage]) -> float:
        """Server CPU time to produce *messages*."""
        total_bytes = sum(m.payload_bytes for m in messages)
        return (
            len(messages) * self.encode_cost_per_message_ms
            + total_bytes / 1024.0 * self.encode_cost_per_kb_ms
        )
