"""SLIM: the stateless thin-client protocol of the Sun Ray (§7).

Schmidt, Lam & Northcutt's SLIM ("The interactive performance of SLIM: a
stateless, thin-client architecture", SOSP/OSR 1999) renders *everything*
server-side and ships a small fixed vocabulary of low-level commands to a
stateless terminal: SET (raw pixels), BITMAP (two-color pixels), FILL,
COPY, and CSCS (video color-space conversion).  There is no client cache
and no client font — text leaves the server as pixels.

The paper's §7: "their results show it to be roughly equivalent in
performance to X, placing it still behind RDP and LBX in network load
efficiency."  The model below reproduces exactly that positioning:

* text becomes BITMAP commands (1 bpp glyph pixels — cheap, but more than
  an X text request);
* UI chrome becomes FILL/COPY/BITMAP mixes;
* images and exposure repaints become raw SET rectangles (the server
  keeps the virtual framebuffer, but the *wire* still carries the pixels
  again — stateless client);
* input events are small fixed-size reports.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import ProtocolError
from ..gui.drawing import (
    CopyArea,
    DisplayOp,
    DrawBitmap,
    DrawText,
    DrawWidget,
    FillRect,
    RestoreRegion,
)
from ..gui.input import InputEvent
from .base import EncodedMessage, RemoteDisplayProtocol

#: Per-command header (opcode, sequence, geometry).
SLIM_HEADER = 20
#: Glyph cell geometry for server-rendered text.
GLYPH_WIDTH, GLYPH_HEIGHT = 8, 16
#: Fixed input report size (keyboard/pointer state).
SLIM_INPUT_BYTES = 22
#: The terminal accepts commands up to this payload per message.
SLIM_MAX_COMMAND = 1460


class SLIMProtocol(RemoteDisplayProtocol):
    """One SLIM session's encoder (stateless client: nothing cached)."""

    name = "slim"

    def command_sizes_for(self, op: DisplayOp) -> List[int]:
        """The SLIM command byte sizes one display op generates."""
        if isinstance(op, DrawText):
            # BITMAP: two-color glyph pixels at 1 bpp, plus the header.
            glyph_bits = GLYPH_WIDTH * GLYPH_HEIGHT * op.chars
            return [SLIM_HEADER + -(-glyph_bits // 8)]
        if isinstance(op, FillRect):
            return [SLIM_HEADER]  # FILL is geometry + color only
        if isinstance(op, CopyArea):
            return [SLIM_HEADER]  # COPY is geometry only
        if isinstance(op, DrawWidget):
            # Chrome mixes FILLs, COPYs, and small BITMAPs; roughly one
            # command per couple of elements plus their glyph/border bits.
            commands = max(1, op.elements // 2)
            return [SLIM_HEADER + 24] * commands
        if isinstance(op, DrawBitmap):
            # SET: raw pixels, no compression (stateless terminal).
            return [SLIM_HEADER + op.bitmap.raw_bytes]
        if isinstance(op, RestoreRegion):
            # The wire carries the uncovered region's pixels again, at
            # the region's full 8bpp geometry.
            return [SLIM_HEADER + op.width * op.height]
        raise ProtocolError(f"unknown display op {op!r}")

    def encode_display_step(
        self, ops: Sequence[DisplayOp]
    ) -> List[EncodedMessage]:
        messages: List[EncodedMessage] = []
        for op in ops:
            for command in self.command_sizes_for(op):
                remaining = command
                while remaining > 0:
                    take = min(remaining, SLIM_MAX_COMMAND)
                    messages.append(
                        EncodedMessage("display", take, "slim-command")
                    )
                    remaining -= take
        return messages

    def encode_input_step(
        self, events: Sequence[InputEvent]
    ) -> List[EncodedMessage]:
        return [
            EncodedMessage("input", SLIM_INPUT_BYTES, "slim-input")
            for __ in events
        ]
