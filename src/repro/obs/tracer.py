"""Structured event tracing and the ambient observation context.

:class:`Tracer` records timestamped, structured events in the order the
simulation produced them.  Since the event kernel is deterministic, the
recorded stream is a pure function of (configuration, seed): the same run
always yields the same events, which is what makes byte-for-byte golden
traces and serial/parallel/cached equivalence checks possible.

Recording is **columnar**: instead of allocating one dict per event, the
tracer groups events by *shape* — the ``(kind, field-name tuple)`` pair,
captured once at a shape's first emission — and appends the timestamp and
field values into flat per-shape lists.  A per-event shape index preserves
the global emission order, so the classic list-of-dicts view can always be
rebuilt exactly (:meth:`Observation.snapshot`), while hot consumers — the
executor's process transport and the JSONL encoder in
:mod:`~repro.obs.serialize` — work on the columns directly and never pay
for the dicts at all (:meth:`Observation.snapshot_compact`).

Instrumented components do **not** take a tracer parameter — they look up
the ambient :class:`Observation` (tracer + metrics) once, at construction,
via :func:`current_observation`:

* with no observation installed the lookup returns ``None`` and every
  instrumentation site reduces to one ``is not None`` test — the zero-cost
  disabled path;
* inside a ``with observe() as obs:`` block, components built in the block
  record into *obs*, and ``obs.snapshot()`` afterwards is a picklable,
  JSON-ready account of everything that happened.

Hot call sites can additionally pre-register a :meth:`Observation.channel`
for one event shape and emit through it with positional arguments — no
keyword-dict packing, no shape lookup per event.

The executor's process backend runs each sweep point in a worker that opens
its own observation around the point function, so snapshots ship back to the
parent exactly as a serial run would have produced them — in columnar form,
zlib-compressed when large, reconstructed on demand.

``REPRO_OBS=reference`` selects :class:`ReferenceTracer`, the seed
dict-per-event recorder kept as the differential baseline: property tests
assert the two recorders keep identical events, drop behaviour, and bytes,
and ``benchmarks/perf/bench_obs.py`` prices the difference.
"""

from __future__ import annotations

import os
import pickle
import sys
import zlib
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from .metrics import MetricsRegistry, ObservabilityError

#: Default cap on recorded events per observation.  Dropping is deterministic
#: (always the tail) and counted, so capped traces still compare byte-for-byte.
DEFAULT_MAX_EVENTS = 100_000

#: Which recorder :class:`Observation` builds: ``"columnar"`` (the default)
#: or ``"reference"`` (the seed dict recorder, for differential testing and
#: overhead benchmarks).  Seeded from ``REPRO_OBS``; tests may rebind it.
RECORDER = os.environ.get("REPRO_OBS", "columnar")

#: Compact snapshots whose pickled event payload reaches this many bytes are
#: shipped zlib-compressed across the executor's process/cache boundary.
COMPRESS_MIN_BYTES = 16 * 1024


class _Column:
    """One event shape's flat storage: parallel timestamp/value lists.

    ``values`` holds every event's fields back to back (event *j* of a
    ``len(names) == w`` column occupies ``values[j*w:(j+1)*w]``), so a
    column never allocates per event — two list appends and one extend.
    """

    __slots__ = ("index", "kind", "names", "ts", "values")

    def __init__(self, index: int, kind: str, names: Tuple[str, ...]) -> None:
        self.index = index
        self.kind = sys.intern(kind)
        self.names = names
        self.ts: List[float] = []
        self.values: List[Any] = []


def _materialize_events(
    columns: Tuple[tuple, ...], order: Any
) -> List[Dict[str, Any]]:
    """Rebuild the classic list-of-dicts event view from columnar storage.

    ``order`` holds one column index per event in emission order; a cursor
    per column walks its rows, so interleaved shapes reconstruct exactly.
    ``t``/``kind`` are written last so they win over a (pathological) field
    reusing those names, exactly as the reference recorder resolves it.
    """
    cursors = [0] * len(columns)
    events: List[Dict[str, Any]] = []
    append = events.append
    for ci in order:
        kind, names, ts, values = columns[ci]
        j = cursors[ci]
        cursors[ci] = j + 1
        base = j * len(names)
        event = dict(zip(names, values[base : base + len(names)]))
        event["t"] = ts[j]
        event["kind"] = kind
        append(event)
    return events


class CompactSnapshot:
    """One observation's record in columnar, transport-ready form.

    The executor ships these through worker pickling and the on-disk result
    cache instead of lists of event dicts: tuples of interned kind strings
    and field names, flat value lists, and one small per-event shape index.
    Pickling compresses the event payload with zlib once it is large enough
    to matter, so a fig2-scale trace crosses the process boundary in a
    fraction of the dict form's bytes.

    For consumers that still want the classic view, :meth:`to_dict`
    materializes the exact snapshot dict the seed recorder produced, and
    ``snapshot["events"] / ["metrics"] / ["dropped_events"]`` indexing is
    supported directly (metrics access never materializes the events).
    """

    __slots__ = ("columns", "order", "dropped_events", "metrics", "_dict")

    def __init__(
        self,
        columns: Tuple[tuple, ...],
        order: Any,
        dropped_events: int,
        metrics: dict,
    ) -> None:
        self.columns = columns
        self.order = order
        self.dropped_events = dropped_events
        self.metrics = metrics
        self._dict: Optional[dict] = None

    @property
    def event_count(self) -> int:
        """Number of recorded events (without materializing them)."""
        return len(self.order)

    def to_dict(self) -> dict:
        """The classic ``{"events", "dropped_events", "metrics"}`` snapshot."""
        d = self._dict
        if d is None:
            d = self._dict = {
                "events": _materialize_events(self.columns, self.order),
                "dropped_events": self.dropped_events,
                "metrics": self.metrics,
            }
        return d

    def __getitem__(self, key: str) -> Any:
        if key == "metrics":
            return self.metrics
        if key == "dropped_events":
            return self.dropped_events
        if key == "events":
            return self.to_dict()["events"]
        raise KeyError(key)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CompactSnapshot):
            return (
                self.columns == other.columns
                and tuple(self.order) == tuple(other.order)
                and self.dropped_events == other.dropped_events
                and self.metrics == other.metrics
            )
        return NotImplemented

    __hash__ = None  # type: ignore[assignment] - mutable payload

    # -- transport -------------------------------------------------------

    def __getstate__(self) -> tuple:
        payload = (self.columns, self.order, self.dropped_events, self.metrics)
        blob = pickle.dumps(payload, pickle.HIGHEST_PROTOCOL)
        if len(blob) >= COMPRESS_MIN_BYTES:
            packed = zlib.compress(blob, 6)
            if len(packed) < len(blob):
                return ("z", packed)
        return ("r", payload)

    def __setstate__(self, state: tuple) -> None:
        tag, data = state
        if tag == "z":
            data = pickle.loads(zlib.decompress(data))
        self.columns, self.order, self.dropped_events, self.metrics = data
        self._dict = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CompactSnapshot {self.event_count} events in "
            f"{len(self.columns)} columns, dropped={self.dropped_events}>"
        )


class Tracer:
    """An append-only columnar buffer of structured trace events."""

    __slots__ = ("max_events", "dropped", "_count", "_columns", "_shapes", "_order")

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        if max_events < 0:
            raise ObservabilityError("max_events cannot be negative")
        self.max_events = max_events
        self.dropped = 0
        self._count = 0
        self._columns: List[_Column] = []
        self._shapes: Dict[Tuple[str, Tuple[str, ...]], _Column] = {}
        self._order: List[int] = []

    def emit(self, t: float, kind: str, **fields: Any) -> None:
        """Record one event at simulation time *t* (ms).

        Field values must be JSON-representable scalars (str/int/float/bool)
        so traces serialize deterministically.
        """
        if self._count >= self.max_events:
            self.dropped += 1
            return
        self._count += 1
        names = tuple(fields)
        col = self._shapes.get((kind, names))
        if col is None:
            col = self._add_column(kind, names)
        self._order.append(col.index)
        col.ts.append(t)
        col.values.extend(fields.values())

    def channel(
        self, kind: str, *names: str
    ) -> Callable[..., None]:
        """A positional fast-path appender for one event shape.

        ``channel("cpu.switch", "cpu", "prev", "next")`` returns an
        ``append(t, cpu, prev, next)`` callable equivalent to
        ``emit(t, "cpu.switch", cpu=..., prev=..., next=...)`` but without
        the keyword-dict packing or the per-event shape lookup.  Hot
        instrumentation sites resolve a channel once, at construction.
        """
        col = self._shapes.get((kind, names))
        if col is None:
            col = self._add_column(kind, names)
        order_append = self._order.append
        ts_append = col.ts.append
        values_extend = col.values.extend
        index = col.index
        tracer = self

        def append(t: float, *values: Any) -> None:
            if tracer._count >= tracer.max_events:
                tracer.dropped += 1
                return
            tracer._count += 1
            order_append(index)
            ts_append(t)
            values_extend(values)

        return append

    def _add_column(self, kind: str, names: Tuple[str, ...]) -> _Column:
        col = _Column(len(self._columns), kind, names)
        self._columns.append(col)
        self._shapes[(kind, names)] = col
        return col

    # -- views -----------------------------------------------------------

    @property
    def events(self) -> List[Dict[str, Any]]:
        """The recorded events as fresh dicts, in emission order.

        A materialized *view* — mutating it never touches the columnar
        record.  Hot consumers should use :meth:`snapshot_columns` instead.
        """
        return _materialize_events(self.snapshot_columns(), self._order)

    def snapshot_columns(self) -> Tuple[tuple, ...]:
        """The columns as immutable ``(kind, names, ts, values)`` tuples."""
        return tuple(
            (c.kind, c.names, tuple(c.ts), tuple(c.values))
            for c in self._columns
        )

    def snapshot_order(self) -> Any:
        """The per-event column indices, packed to bytes when they fit."""
        order = self._order
        if len(self._columns) <= 0xFF:
            return bytes(order)
        return tuple(order)

    def __len__(self) -> int:
        return self._count


class ReferenceTracer:
    """The seed dict-per-event recorder, kept verbatim as the baseline.

    ``REPRO_OBS=reference`` routes every :class:`Observation` through this
    recorder (and, downstream, the per-event ``json.dumps`` encoder), so the
    columnar pipeline can be differentially tested against it and its cost
    measured by ``benchmarks/perf/bench_obs.py``.
    """

    __slots__ = ("events", "max_events", "dropped")

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        if max_events < 0:
            raise ObservabilityError("max_events cannot be negative")
        self.events: List[Dict[str, Any]] = []
        self.max_events = max_events
        self.dropped = 0

    def emit(self, t: float, kind: str, **fields: Any) -> None:
        """Record one event at simulation time *t* (ms)."""
        events = self.events
        if len(events) >= self.max_events:
            self.dropped += 1
            return
        fields["t"] = t
        fields["kind"] = kind
        events.append(fields)

    def channel(self, kind: str, *names: str) -> Callable[..., None]:
        """Positional appender matching :meth:`Tracer.channel` semantics."""

        def append(t: float, *values: Any) -> None:
            events = self.events
            if len(events) >= self.max_events:
                self.dropped += 1
                return
            event = dict(zip(names, values))
            event["t"] = t
            event["kind"] = kind
            events.append(event)

        return append

    def __len__(self) -> int:
        return len(self.events)


class NullTracer(Tracer):
    """A tracer that records nothing — explicit-injection no-op.

    Components that take a tracer argument can default to this instead of
    branching on ``None``; it satisfies the :class:`Tracer` interface at a
    single discarded method call per event.
    """

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(max_events=0)

    def emit(self, t: float, kind: str, **fields: Any) -> None:
        pass

    def channel(self, kind: str, *names: str) -> Callable[..., None]:
        def append(t: float, *values: Any) -> None:
            pass

        return append


class Observation:
    """One run's worth of trace events and metrics, as a unit."""

    __slots__ = ("tracer", "metrics", "trace")

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        if RECORDER == "reference":
            self.tracer: Any = ReferenceTracer(max_events=max_events)
        else:
            self.tracer = Tracer(max_events=max_events)
        self.metrics = MetricsRegistry()
        #: Shorthand for ``self.tracer.emit(...)`` — bound directly so the
        #: per-event cost on the traced path is one call, not a delegating
        #: frame plus a second ``**fields`` repack.
        self.trace = self.tracer.emit

    def channel(self, kind: str, *names: str) -> Callable[..., None]:
        """A positional appender for one event shape (see Tracer.channel)."""
        return self.tracer.channel(kind, *names)

    def snapshot(self) -> dict:
        """Everything observed, as a picklable, JSON-ready dict.

        The dict contains only simulation-domain data (no wall-clock time,
        no object identities), with deterministic key order, so equal runs
        produce equal snapshots.  This is the materialized (list-of-dicts)
        view; transport paths use :meth:`snapshot_compact`.
        """
        return {
            "events": list(self.tracer.events),
            "dropped_events": self.tracer.dropped,
            "metrics": self.metrics.snapshot(),
        }

    def snapshot_compact(self) -> Any:
        """The observed record in columnar transport form.

        Returns a :class:`CompactSnapshot` for the columnar recorder; the
        reference recorder has no columnar form and returns the classic
        snapshot dict (every downstream consumer accepts both).
        """
        tracer = self.tracer
        if type(tracer) is ReferenceTracer:
            return self.snapshot()
        return CompactSnapshot(
            tracer.snapshot_columns(),
            tracer.snapshot_order(),
            tracer.dropped,
            self.metrics.snapshot(),
        )


_current: Optional[Observation] = None


def current_observation() -> Optional[Observation]:
    """The ambient observation, or ``None`` when instrumentation is off.

    Instrumented components call this **once, at construction**, and keep
    the result; per-event work is then a single attribute test.
    """
    return _current


@contextmanager
def observe(max_events: int = DEFAULT_MAX_EVENTS) -> Iterator[Observation]:
    """Install a fresh ambient observation for the duration of the block.

    Nested blocks shadow the outer observation and restore it on exit, so a
    traced sweep point can itself run helper code that opens an observation
    without corrupting either record.
    """
    global _current
    previous = _current
    obs = Observation(max_events=max_events)
    _current = obs
    try:
        yield obs
    finally:
        _current = previous
