"""Structured event tracing and the ambient observation context.

:class:`Tracer` records timestamped, structured events (plain dicts) in the
order the simulation produced them.  Since the event kernel is deterministic,
the recorded stream is a pure function of (configuration, seed): the same
run always yields the same events, which is what makes byte-for-byte golden
traces and serial/parallel/cached equivalence checks possible.

Instrumented components do **not** take a tracer parameter — they look up
the ambient :class:`Observation` (tracer + metrics) once, at construction,
via :func:`current_observation`:

* with no observation installed the lookup returns ``None`` and every
  instrumentation site reduces to one ``is not None`` test — the zero-cost
  disabled path;
* inside a ``with observe() as obs:`` block, components built in the block
  record into *obs*, and ``obs.snapshot()`` afterwards is a picklable,
  JSON-ready account of everything that happened.

The executor's process backend runs each sweep point in a worker that opens
its own observation around the point function, so snapshots ship back to the
parent exactly as a serial run would have produced them.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from .metrics import MetricsRegistry, ObservabilityError

#: Default cap on recorded events per observation.  Dropping is deterministic
#: (always the tail) and counted, so capped traces still compare byte-for-byte.
DEFAULT_MAX_EVENTS = 100_000


class Tracer:
    """An append-only buffer of structured ``{"t", "kind", ...}`` events."""

    __slots__ = ("events", "max_events", "dropped")

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        if max_events < 0:
            raise ObservabilityError("max_events cannot be negative")
        self.events: List[Dict[str, Any]] = []
        self.max_events = max_events
        self.dropped = 0

    def emit(self, t: float, kind: str, **fields: Any) -> None:
        """Record one event at simulation time *t* (ms).

        Field values must be JSON-representable scalars (str/int/float/bool)
        so traces serialize deterministically.
        """
        events = self.events
        if len(events) >= self.max_events:
            self.dropped += 1
            return
        fields["t"] = t
        fields["kind"] = kind
        events.append(fields)

    def __len__(self) -> int:
        return len(self.events)


class NullTracer(Tracer):
    """A tracer that records nothing — explicit-injection no-op.

    Components that take a tracer argument can default to this instead of
    branching on ``None``; it satisfies the :class:`Tracer` interface at a
    single discarded method call per event.
    """

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(max_events=0)

    def emit(self, t: float, kind: str, **fields: Any) -> None:
        pass


class Observation:
    """One run's worth of trace events and metrics, as a unit."""

    __slots__ = ("tracer", "metrics", "trace")

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        self.tracer = Tracer(max_events=max_events)
        self.metrics = MetricsRegistry()
        #: Shorthand for ``self.tracer.emit(...)`` — bound directly so the
        #: per-event cost on the traced path is one call, not a delegating
        #: frame plus a second ``**fields`` repack.
        self.trace = self.tracer.emit

    def snapshot(self) -> dict:
        """Everything observed, as a picklable, JSON-ready dict.

        The dict contains only simulation-domain data (no wall-clock time,
        no object identities), with deterministic key order, so equal runs
        produce equal snapshots.
        """
        return {
            "events": list(self.tracer.events),
            "dropped_events": self.tracer.dropped,
            "metrics": self.metrics.snapshot(),
        }


_current: Optional[Observation] = None


def current_observation() -> Optional[Observation]:
    """The ambient observation, or ``None`` when instrumentation is off.

    Instrumented components call this **once, at construction**, and keep
    the result; per-event work is then a single attribute test.
    """
    return _current


@contextmanager
def observe(max_events: int = DEFAULT_MAX_EVENTS) -> Iterator[Observation]:
    """Install a fresh ambient observation for the duration of the block.

    Nested blocks shadow the outer observation and restore it on exit, so a
    traced sweep point can itself run helper code that opens an observation
    without corrupting either record.
    """
    global _current
    previous = _current
    obs = Observation(max_events=max_events)
    _current = obs
    try:
        yield obs
    finally:
        _current = previous
