"""Deterministic serialization of observations: JSONL traces, JSON metrics.

All encoders here sort keys and contain no wall-clock or environment data,
so two observations with equal content serialize to **identical bytes** —
the property the golden-trace suite and the serial/parallel/cached
equivalence tests lock down.

Trace lines are rendered by a **template encoder**: for each event shape
(one column of a :class:`~repro.obs.tracer.CompactSnapshot`) the key-sorted
JSON skeleton — braces, quoted keys, and the constant ``kind``/``sweep``/
``point`` values — is precomputed once, and each event fills only its
variable slots (``t`` plus the field values) with scalar encoders chosen to
reproduce :func:`json.dumps` byte-for-byte (``repr`` for finite floats,
``str`` for ints, a raw quote for escape-free ASCII strings).  Any value or
shape the fast encoders cannot prove equivalent falls back to
``json.dumps`` itself, so the output is identical to the classic per-event
encoder *by construction* — a property the round-trip hypothesis suite
exercises with adversarial scalars.

Artifact layout for one experiment run (``write_run_artifacts``):

``<dir>/<experiment>.trace.jsonl``
    One compact JSON object per line, each carrying the sweep name, the
    point index within the sweep, and the event fields (``t`` in simulated
    ms, ``kind``, plus event-specific scalars).  Lines are ordered by sweep
    registration order, then point index, then emission order, and are
    **streamed** — a fig2-scale trace never materializes in memory.

``<dir>/<experiment>.metrics.json``
    Pretty-printed (stable, sorted, 2-space) JSON: per-sweep, per-point
    metric snapshots plus aggregated counter totals for the whole run.

Traces diff naturally: ``diff a/fig1.trace.jsonl b/fig1.trace.jsonl`` shows
exactly which simulated events moved between two runs.
"""

from __future__ import annotations

import json
import os
import re
from functools import partial
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, Union

from .tracer import CompactSnapshot

#: {sweep_name: [per-point snapshots, in index order]} — values are either
#: classic ``Observation.snapshot()`` dicts or
#: :class:`~repro.obs.tracer.CompactSnapshot` instances; every consumer in
#: this module accepts both.
RunObservations = Dict[str, List[Any]]

#: The one JSON dialect every artifact uses: sorted keys, no whitespace.
_dumps = partial(json.dumps, sort_keys=True, separators=(",", ":"))

#: Strings matching this need no JSON escaping and survive ensure_ascii:
#: printable ASCII minus the quote (0x22) and backslash (0x5C).
_safe_str = re.compile(r'[ !#-\[\]-~]*\Z').match

#: Largest/smallest finite doubles — floats outside (NaN, ±inf) encode as
#: ``NaN``/``Infinity`` under json.dumps, not ``repr``.
_MAX_FINITE = 1.7976931348623157e308

#: Keys the trace-line tagger owns; a field using one of these names (only
#: possible through the positional channel API) disables the template.
_RESERVED_KEYS = frozenset(("t", "kind", "sweep", "point"))


def _encode_value(v: Any) -> str:
    """One scalar as JSON, byte-identical to ``json.dumps(v, sort_keys=True,
    separators=(",", ":"))``.

    Exact ``type()`` checks keep subclasses (bool *is* an int subclass;
    IntEnum, numpy scalars, str subclasses) on the proven ``json.dumps``
    path — the fast branches handle only values whose encoding we can
    reproduce exactly: ``repr`` for finite floats (CPython's json uses
    ``float.__repr__``), ``str`` for ints, a bare quote for escape-free
    ASCII strings.
    """
    t = type(v)
    if t is float:
        if -_MAX_FINITE <= v <= _MAX_FINITE:
            return repr(v)
        return _dumps(v)
    if t is int:
        return str(v)
    if t is str:
        if _safe_str(v):
            return '"' + v + '"'
        return _dumps(v)
    if t is bool:
        return "true" if v else "false"
    return _dumps(v)


def dumps_event(event: dict) -> str:
    """One trace event as a compact, key-sorted JSON line (no newline)."""
    return _dumps(event)


def dumps_snapshot(snapshot: Union[dict, CompactSnapshot]) -> str:
    """A whole observation snapshot as canonical, diff-friendly JSON.

    Key-sorted, 1-space-indented, newline-terminated — the format the
    golden-trace files under ``tests/golden/`` are committed in.  Accepts
    compact snapshots (materialized first) as well as classic dicts.
    """
    if isinstance(snapshot, CompactSnapshot):
        snapshot = snapshot.to_dict()
    return json.dumps(snapshot, sort_keys=True, indent=1) + "\n"


def _line_template(
    kind: str, names: Tuple[str, ...], sweep: str, point: int
) -> Optional[Tuple[Tuple[str, ...], Tuple[int, ...]]]:
    """The precomputed JSON skeleton for one column's tagged trace lines.

    Returns ``(literals, slots)`` where the rendered line is
    ``literals[0] + enc(slot 0) + literals[1] + enc(slot 1) + ... +
    literals[-1]`` and each slot is ``-1`` for the timestamp or a field
    index into the column's value row.  Returns ``None`` when the shape
    cannot be proven equivalent to the dict encoder — duplicate field
    names, or a field reusing a reserved tag key (the dict path resolves
    those collisions by overwriting, which a baked template cannot).
    """
    if len(set(names)) != len(names) or _RESERVED_KEYS.intersection(names):
        return None
    constants = {
        "kind": _encode_value(kind),
        "sweep": _encode_value(sweep),
        "point": _encode_value(point),
    }
    literals: List[str] = []
    slots: List[int] = []
    buf = "{"
    first = True
    for key in sorted(tuple(names) + ("kind", "point", "sweep", "t")):
        prefix = ("" if first else ",") + '"' + key + '":'
        first = False
        const = constants.get(key)
        if const is not None:
            buf += prefix + const
        else:
            literals.append(buf + prefix)
            buf = ""
            slots.append(-1 if key == "t" else names.index(key))
    literals.append(buf + "}")
    return tuple(literals), tuple(slots)


def _compact_trace_lines(
    snapshot: CompactSnapshot, sweep: str, point: int
) -> Iterator[str]:
    """Tagged JSONL lines for one compact snapshot, in emission order.

    The hot loop renders each line as ``fmt % (encoded slot values)`` with
    the scalar encoders inlined — the same branches as
    :func:`_encode_value`, minus one function call per slot — and a cache
    of encoded strings (event fields carry a small set of names repeated
    tens of thousands of times, so each unique string is escaped once).
    Literal ``%`` in a template is escaped so the format pass cannot
    consume it.
    """
    columns = snapshot.columns
    contexts = []
    for kind, names, ts, values in columns:
        template = _line_template(kind, names, sweep, point)
        if template is not None:
            literals, slots = template
            fmt = "%s".join(part.replace("%", "%%") for part in literals)
            contexts.append((fmt, slots, len(names), ts, values))
        else:
            contexts.append((None, None, len(names), ts, values))
    cursors = [0] * len(columns)
    scache: Dict[str, str] = {}
    max_finite = _MAX_FINITE
    min_finite = -_MAX_FINITE
    for ci in snapshot.order:
        fmt, slots, n, ts, values = contexts[ci]
        j = cursors[ci]
        cursors[ci] = j + 1
        base = j * n
        if fmt is not None:
            vals = []
            ap = vals.append
            for slot in slots:
                v = ts[j] if slot < 0 else values[base + slot]
                tv = type(v)
                if tv is float:
                    if min_finite <= v <= max_finite:
                        ap(repr(v))
                    else:
                        ap(_dumps(v))
                elif tv is int:
                    ap(str(v))
                elif tv is str:
                    e = scache.get(v)
                    if e is None:
                        e = '"' + v + '"' if _safe_str(v) else _dumps(v)
                        scache[v] = e
                    ap(e)
                elif tv is bool:
                    ap("true" if v else "false")
                else:
                    ap(_dumps(v))
            yield fmt % tuple(vals)
        else:
            kind = columns[ci][0]
            names = columns[ci][1]
            tagged = dict(zip(names, values[base : base + n]))
            tagged["t"] = ts[j]
            tagged["kind"] = kind
            tagged["sweep"] = sweep
            tagged["point"] = point
            yield _dumps(tagged)


def trace_lines(observations: RunObservations) -> Iterator[str]:
    """Stream a run's observations as ordered JSONL trace lines.

    A generator: lines are produced one at a time (sweep registration
    order, then point index, then emission order) so writers can stream
    them to disk without holding a fig2-scale trace in memory.
    """
    for sweep, snapshots in observations.items():
        for point, snapshot in enumerate(snapshots):
            if isinstance(snapshot, CompactSnapshot):
                yield from _compact_trace_lines(snapshot, sweep, point)
            else:
                for event in snapshot["events"]:
                    tagged = dict(event)
                    tagged["sweep"] = sweep
                    tagged["point"] = point
                    yield _dumps(tagged)


def _event_count(snapshot: Any) -> int:
    """Recorded-event count without materializing a compact snapshot."""
    if isinstance(snapshot, CompactSnapshot):
        return snapshot.event_count
    return len(snapshot["events"])


def merge_counters(observations: RunObservations) -> Dict[str, Any]:
    """Sum every counter across all sweeps and points, sorted by name."""
    totals: Dict[str, Any] = {}
    for snapshots in observations.values():
        for snapshot in snapshots:
            for name, value in snapshot["metrics"]["counters"].items():
                totals[name] = totals.get(name, 0) + value
    return {name: totals[name] for name in sorted(totals)}


def _merged_events_dropped(observations: RunObservations) -> Tuple[int, int]:
    events = dropped = 0
    for snapshots in observations.values():
        for snapshot in snapshots:
            events += _event_count(snapshot)
            dropped += snapshot["dropped_events"]
    return events, dropped


def metrics_document(
    experiment: str, seed: int, observations: RunObservations
) -> dict:
    """The metrics artifact for one experiment run, as a plain dict."""
    events, dropped = _merged_events_dropped(observations)
    return {
        "experiment": experiment,
        "seed": seed,
        "trace": {"events": events, "dropped": dropped},
        "totals": {"counters": merge_counters(observations)},
        "sweeps": {
            sweep: [snapshot["metrics"] for snapshot in snapshots]
            for sweep, snapshots in sorted(observations.items())
        },
    }


def write_run_artifacts(
    directory: str,
    experiment: str,
    seed: int,
    observations: RunObservations,
) -> Tuple[str, str]:
    """Write the trace JSONL and metrics JSON for one experiment run.

    Returns ``(trace_path, metrics_path)``.  Both files are byte-stable:
    re-running the same experiment at the same seed — serially, with
    ``--jobs N``, or from a warm cache — rewrites identical bytes.  Trace
    lines stream straight from the recorder's columns to disk; the full
    line list is never held in memory.
    """
    os.makedirs(directory, exist_ok=True)
    trace_path = os.path.join(directory, f"{experiment}.trace.jsonl")
    metrics_path = os.path.join(directory, f"{experiment}.metrics.json")
    with open(trace_path, "w", newline="\n") as f:
        f.writelines(line + "\n" for line in trace_lines(observations))
    with open(metrics_path, "w", newline="\n") as f:
        f.write(dumps_snapshot(metrics_document(experiment, seed, observations)))
    return trace_path, metrics_path


def _format_value(value: Any) -> str:
    if isinstance(value, bool):  # pragma: no cover - no bool metrics today
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    return f"{value:.6g}"


def summary_rows(observations: RunObservations) -> List[Tuple[str, str]]:
    """(metric, value) rows for the human-readable metrics summary table.

    Counters render as run totals; gauges as their peak reading; histograms
    as count/mean/min/max.  A final pair of rows reports trace volume.
    """
    rows: List[Tuple[str, str]] = []
    for name, value in merge_counters(observations).items():
        rows.append((name, _format_value(value)))

    gauges: Dict[str, Any] = {}
    histograms: Dict[str, Dict[str, Any]] = {}
    for snapshots in observations.values():
        for snapshot in snapshots:
            for name, g in snapshot["metrics"]["gauges"].items():
                peak = gauges.get(name)
                if peak is None or g["peak"] > peak:
                    gauges[name] = g["peak"]
            for name, h in snapshot["metrics"]["histograms"].items():
                agg = histograms.setdefault(
                    name, {"count": 0, "sum": 0.0, "max": 0.0, "min": None}
                )
                agg["count"] += h["count"]
                agg["sum"] += h["sum"]
                if h["count"]:
                    if h["max"] > agg["max"]:
                        agg["max"] = h["max"]
                    if agg["min"] is None or h["min"] < agg["min"]:
                        agg["min"] = h["min"]
    for name in sorted(gauges):
        rows.append((f"{name} (peak)", _format_value(gauges[name])))
    for name in sorted(histograms):
        agg = histograms[name]
        mean = agg["sum"] / agg["count"] if agg["count"] else 0.0
        vmin = agg["min"] if agg["min"] is not None else 0.0
        rows.append(
            (
                name,
                f"n={agg['count']:,} mean={mean:.6g} "
                f"min={vmin:.6g} max={agg['max']:.6g}",
            )
        )

    events, dropped = _merged_events_dropped(observations)
    rows.append(("trace.events", _format_value(events)))
    rows.append(("trace.dropped", _format_value(dropped)))
    return rows
