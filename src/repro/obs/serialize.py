"""Deterministic serialization of observations: JSONL traces, JSON metrics.

All encoders here sort keys and contain no wall-clock or environment data,
so two observations with equal content serialize to **identical bytes** —
the property the golden-trace suite and the serial/parallel/cached
equivalence tests lock down.

Artifact layout for one experiment run (``write_run_artifacts``):

``<dir>/<experiment>.trace.jsonl``
    One compact JSON object per line, each carrying the sweep name, the
    point index within the sweep, and the event fields (``t`` in simulated
    ms, ``kind``, plus event-specific scalars).  Lines are ordered by sweep
    registration order, then point index, then emission order.

``<dir>/<experiment>.metrics.json``
    Pretty-printed (stable, sorted, 2-space) JSON: per-sweep, per-point
    metric snapshots plus aggregated counter totals for the whole run.

Traces diff naturally: ``diff a/fig1.trace.jsonl b/fig1.trace.jsonl`` shows
exactly which simulated events moved between two runs.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Sequence, Tuple

#: {sweep_name: [per-point Observation.snapshot() dicts, in index order]}
RunObservations = Dict[str, List[dict]]


def dumps_event(event: dict) -> str:
    """One trace event as a compact, key-sorted JSON line (no newline)."""
    return json.dumps(event, sort_keys=True, separators=(",", ":"))


def dumps_snapshot(snapshot: dict) -> str:
    """A whole observation snapshot as canonical, diff-friendly JSON.

    Key-sorted, 1-space-indented, newline-terminated — the format the
    golden-trace files under ``tests/golden/`` are committed in.
    """
    return json.dumps(snapshot, sort_keys=True, indent=1) + "\n"


def trace_lines(observations: RunObservations) -> List[str]:
    """Flatten a run's observations into ordered JSONL trace lines."""
    lines: List[str] = []
    for sweep, snapshots in observations.items():
        for point, snapshot in enumerate(snapshots):
            for event in snapshot["events"]:
                tagged = dict(event)
                tagged["sweep"] = sweep
                tagged["point"] = point
                lines.append(dumps_event(tagged))
    return lines


def merge_counters(observations: RunObservations) -> Dict[str, Any]:
    """Sum every counter across all sweeps and points, sorted by name."""
    totals: Dict[str, Any] = {}
    for snapshots in observations.values():
        for snapshot in snapshots:
            for name, value in snapshot["metrics"]["counters"].items():
                totals[name] = totals.get(name, 0) + value
    return {name: totals[name] for name in sorted(totals)}


def _merged_events_dropped(observations: RunObservations) -> Tuple[int, int]:
    events = dropped = 0
    for snapshots in observations.values():
        for snapshot in snapshots:
            events += len(snapshot["events"])
            dropped += snapshot["dropped_events"]
    return events, dropped


def metrics_document(
    experiment: str, seed: int, observations: RunObservations
) -> dict:
    """The metrics artifact for one experiment run, as a plain dict."""
    events, dropped = _merged_events_dropped(observations)
    return {
        "experiment": experiment,
        "seed": seed,
        "trace": {"events": events, "dropped": dropped},
        "totals": {"counters": merge_counters(observations)},
        "sweeps": {
            sweep: [snapshot["metrics"] for snapshot in snapshots]
            for sweep, snapshots in sorted(observations.items())
        },
    }


def write_run_artifacts(
    directory: str,
    experiment: str,
    seed: int,
    observations: RunObservations,
) -> Tuple[str, str]:
    """Write the trace JSONL and metrics JSON for one experiment run.

    Returns ``(trace_path, metrics_path)``.  Both files are byte-stable:
    re-running the same experiment at the same seed — serially, with
    ``--jobs N``, or from a warm cache — rewrites identical bytes.
    """
    os.makedirs(directory, exist_ok=True)
    trace_path = os.path.join(directory, f"{experiment}.trace.jsonl")
    metrics_path = os.path.join(directory, f"{experiment}.metrics.json")
    with open(trace_path, "w", newline="\n") as f:
        for line in trace_lines(observations):
            f.write(line + "\n")
    with open(metrics_path, "w", newline="\n") as f:
        f.write(dumps_snapshot(metrics_document(experiment, seed, observations)))
    return trace_path, metrics_path


def _format_value(value: Any) -> str:
    if isinstance(value, bool):  # pragma: no cover - no bool metrics today
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    return f"{value:.6g}"


def summary_rows(observations: RunObservations) -> List[Tuple[str, str]]:
    """(metric, value) rows for the human-readable metrics summary table.

    Counters render as run totals; gauges as their peak reading; histograms
    as count/mean/max.  A final pair of rows reports trace volume.
    """
    rows: List[Tuple[str, str]] = []
    for name, value in merge_counters(observations).items():
        rows.append((name, _format_value(value)))

    gauges: Dict[str, Any] = {}
    histograms: Dict[str, Dict[str, Any]] = {}
    for snapshots in observations.values():
        for snapshot in snapshots:
            for name, g in snapshot["metrics"]["gauges"].items():
                peak = gauges.get(name)
                if peak is None or g["peak"] > peak:
                    gauges[name] = g["peak"]
            for name, h in snapshot["metrics"]["histograms"].items():
                agg = histograms.setdefault(
                    name, {"count": 0, "sum": 0.0, "max": 0.0}
                )
                agg["count"] += h["count"]
                agg["sum"] += h["sum"]
                if h["count"] and h["max"] > agg["max"]:
                    agg["max"] = h["max"]
    for name in sorted(gauges):
        rows.append((f"{name} (peak)", _format_value(gauges[name])))
    for name in sorted(histograms):
        agg = histograms[name]
        mean = agg["sum"] / agg["count"] if agg["count"] else 0.0
        rows.append(
            (
                name,
                f"n={agg['count']:,} mean={mean:.6g} max={agg['max']:.6g}",
            )
        )

    events, dropped = _merged_events_dropped(observations)
    rows.append(("trace.events", _format_value(events)))
    rows.append(("trace.dropped", _format_value(dropped)))
    return rows
