"""Counters, gauges, and histograms for simulation instrumentation.

Every metric lives in a :class:`MetricsRegistry` and is identified by a
dotted name (``cpu.context_switches``, ``proto.rdp.cache_hits``).  The
registry's :meth:`~MetricsRegistry.snapshot` renders the whole collection
as a plain, picklable, JSON-ready dict with **sorted keys**, so two runs
that made the same measurements serialize to the same bytes regardless of
metric registration order.

All values are simulation-domain quantities — nothing here reads the wall
clock, so snapshots are pure functions of the simulated run.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ReproError

Number = Union[int, float]

#: Default histogram bucket upper bounds, in ms — spans the latency range the
#: paper cares about (sub-perceptual to multi-second stalls).
DEFAULT_BOUNDS_MS: Tuple[float, ...] = (
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    50.0,
    100.0,
    500.0,
    1000.0,
    5000.0,
)


class ObservabilityError(ReproError):
    """Misuse of the tracing/metrics layer (name collisions, bad bounds)."""


class Counter:
    """A monotonically increasing count of discrete occurrences."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self, n: Number = 1) -> None:
        """Add *n* (default 1) to the counter.  *n* must be non-negative."""
        if n < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc({n}))"
            )
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A sampled instantaneous value; remembers its last and peak readings."""

    __slots__ = ("name", "last", "peak", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.last: Number = 0
        self.peak: Number = 0
        self.samples = 0

    def set(self, value: Number) -> None:
        """Record the gauge's current reading."""
        self.last = value
        if self.samples == 0 or value > self.peak:
            self.peak = value
        self.samples += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name} last={self.last} peak={self.peak}>"


def bucket_quantile(
    bounds: Sequence[float],
    bucket_counts: Sequence[int],
    count: int,
    vmin: float,
    vmax: float,
    pct: float,
) -> float:
    """A quantile estimate from fixed-bucket counts alone.

    The estimator the SLO layer's windowed percentile tracker and
    :meth:`Histogram.quantile` share.  It is a pure function of the
    aggregate ``(bucket_counts, count, vmin, vmax)`` state, so merging two
    histograms (summing counts, min of mins, max of maxes) and asking for
    a quantile gives *exactly* the same answer as one histogram that saw
    every sample — the property windowed rollups rely on.

    The nearest-rank sample (1-based rank ``ceil(pct/100 * count)``) lies
    in some bucket; the estimate interpolates the rank's position across
    that bucket's value span and clamps into ``[vmin, vmax]``, so the
    estimate and the exact sample percentile always share a bucket —
    agreement within bin resolution.  Monotone in *pct* by construction
    (rank is nondecreasing, interpolation is monotone, bucket spans abut).
    """
    if count <= 0:
        raise ObservabilityError("quantile of an empty histogram")
    if not 0.0 <= pct <= 100.0:
        raise ObservabilityError(f"percentile {pct} out of [0, 100]")
    rank = max(1, math.ceil(pct / 100.0 * count))
    cumulative = 0
    for index, bucket_count in enumerate(bucket_counts):
        if bucket_count and cumulative + bucket_count >= rank:
            lo = bounds[index - 1] if index >= 1 else min(vmin, bounds[0])
            hi = bounds[index] if index < len(bounds) else max(vmax, bounds[-1])
            value = lo + (rank - cumulative) / bucket_count * (hi - lo)
            return min(max(value, vmin), vmax)
        cumulative += bucket_count
    raise ObservabilityError(
        f"histogram counts sum to {cumulative}, below count {count}"
    )


class Histogram:
    """A fixed-bucket histogram of observed values.

    ``bounds`` are inclusive upper edges of the first ``len(bounds)``
    buckets; one final overflow bucket catches everything larger.  The
    histogram also tracks count, sum, min, and max so summaries can report
    a mean and range without keeping raw samples.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "vmin", "vmax")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BOUNDS_MS) -> None:
        ordered = tuple(float(b) for b in bounds)
        if not ordered or list(ordered) != sorted(set(ordered)):
            raise ObservabilityError(
                f"histogram {name!r} bounds must be non-empty and strictly "
                f"increasing (got {bounds!r})"
            )
        self.name = name
        self.bounds = ordered
        self.bucket_counts: List[int] = [0] * (len(ordered) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin = 0.0
        self.vmax = 0.0

    def observe(self, value: Number) -> None:
        """Record one sample.

        The bucket is the first whose inclusive upper edge admits the
        value — ``bisect_left`` finds it in O(log buckets), and lands on
        ``len(bounds)`` (the overflow bucket) when every edge is smaller.
        """
        v = float(value)
        self.bucket_counts[bisect_left(self.bounds, v)] += 1
        if self.count == 0:
            self.vmin = v
            self.vmax = v
        else:
            if v < self.vmin:
                self.vmin = v
            if v > self.vmax:
                self.vmax = v
        self.count += 1
        self.total += v

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observed samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, pct: float) -> float:
        """Bucket-resolution quantile estimate; see :func:`bucket_quantile`."""
        return bucket_quantile(
            self.bounds,
            self.bucket_counts,
            self.count,
            self.vmin,
            self.vmax,
            pct,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} n={self.count} mean={self.mean:.3g}>"


class MetricsRegistry:
    """A namespace of counters, gauges, and histograms.

    Accessors create on first use and return the existing instrument on
    later calls; asking for a name that already exists as a *different*
    instrument kind is an error (it would silently split the measurement).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- accessors -------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter called *name*, created on first use."""
        c = self._counters.get(name)
        if c is None:
            self._check_free(name, "counter")
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        """The gauge called *name*, created on first use."""
        g = self._gauges.get(name)
        if g is None:
            self._check_free(name, "gauge")
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        """The histogram called *name*, created on first use.

        ``bounds`` applies only at creation; later calls must either omit
        it or pass the same edges.
        """
        h = self._histograms.get(name)
        if h is None:
            self._check_free(name, "histogram")
            h = self._histograms[name] = Histogram(
                name, bounds if bounds is not None else DEFAULT_BOUNDS_MS
            )
        elif bounds is not None and tuple(float(b) for b in bounds) != h.bounds:
            raise ObservabilityError(
                f"histogram {name!r} already exists with different bounds"
            )
        return h

    def _check_free(self, name: str, kind: str) -> None:
        for other_kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if name in table:
                raise ObservabilityError(
                    f"metric {name!r} is already a {other_kind}, "
                    f"cannot reuse it as a {kind}"
                )

    # -- snapshots -------------------------------------------------------

    def snapshot(self) -> dict:
        """The registry as a plain dict with deterministically sorted keys."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: {
                    "last": self._gauges[name].last,
                    "peak": self._gauges[name].peak,
                    "samples": self._gauges[name].samples,
                }
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: {
                    "bounds": list(self._histograms[name].bounds),
                    "buckets": list(self._histograms[name].bucket_counts),
                    "count": self._histograms[name].count,
                    "max": self._histograms[name].vmax,
                    "min": self._histograms[name].vmin,
                    "sum": self._histograms[name].total,
                }
                for name in sorted(self._histograms)
            },
        }

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MetricsRegistry {len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, {len(self._histograms)} histograms>"
        )
